/root/repo/target/release/deps/ompi_bench-f3155ea3c0eaf35d.d: crates/bench/src/lib.rs crates/bench/src/compare.rs crates/bench/src/experiments.rs crates/bench/src/measure.rs crates/bench/src/report.rs

/root/repo/target/release/deps/libompi_bench-f3155ea3c0eaf35d.rlib: crates/bench/src/lib.rs crates/bench/src/compare.rs crates/bench/src/experiments.rs crates/bench/src/measure.rs crates/bench/src/report.rs

/root/repo/target/release/deps/libompi_bench-f3155ea3c0eaf35d.rmeta: crates/bench/src/lib.rs crates/bench/src/compare.rs crates/bench/src/experiments.rs crates/bench/src/measure.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/compare.rs:
crates/bench/src/experiments.rs:
crates/bench/src/measure.rs:
crates/bench/src/report.rs:
