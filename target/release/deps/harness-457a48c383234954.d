/root/repo/target/release/deps/harness-457a48c383234954.d: crates/bench/src/bin/harness.rs

/root/repo/target/release/deps/harness-457a48c383234954: crates/bench/src/bin/harness.rs

crates/bench/src/bin/harness.rs:
