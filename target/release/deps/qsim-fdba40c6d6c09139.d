/root/repo/target/release/deps/qsim-fdba40c6d6c09139.d: crates/qsim/src/lib.rs crates/qsim/src/handle.rs crates/qsim/src/kernel.rs crates/qsim/src/proc.rs crates/qsim/src/rng.rs crates/qsim/src/signal.rs crates/qsim/src/sync.rs crates/qsim/src/time.rs

/root/repo/target/release/deps/libqsim-fdba40c6d6c09139.rlib: crates/qsim/src/lib.rs crates/qsim/src/handle.rs crates/qsim/src/kernel.rs crates/qsim/src/proc.rs crates/qsim/src/rng.rs crates/qsim/src/signal.rs crates/qsim/src/sync.rs crates/qsim/src/time.rs

/root/repo/target/release/deps/libqsim-fdba40c6d6c09139.rmeta: crates/qsim/src/lib.rs crates/qsim/src/handle.rs crates/qsim/src/kernel.rs crates/qsim/src/proc.rs crates/qsim/src/rng.rs crates/qsim/src/signal.rs crates/qsim/src/sync.rs crates/qsim/src/time.rs

crates/qsim/src/lib.rs:
crates/qsim/src/handle.rs:
crates/qsim/src/kernel.rs:
crates/qsim/src/proc.rs:
crates/qsim/src/rng.rs:
crates/qsim/src/signal.rs:
crates/qsim/src/sync.rs:
crates/qsim/src/time.rs:
