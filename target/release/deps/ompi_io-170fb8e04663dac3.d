/root/repo/target/release/deps/ompi_io-170fb8e04663dac3.d: crates/io/src/lib.rs crates/io/src/pfs.rs

/root/repo/target/release/deps/libompi_io-170fb8e04663dac3.rlib: crates/io/src/lib.rs crates/io/src/pfs.rs

/root/repo/target/release/deps/libompi_io-170fb8e04663dac3.rmeta: crates/io/src/lib.rs crates/io/src/pfs.rs

crates/io/src/lib.rs:
crates/io/src/pfs.rs:
