/root/repo/target/release/deps/openmpi_elan4_repro-43617684cc336808.d: src/lib.rs

/root/repo/target/release/deps/libopenmpi_elan4_repro-43617684cc336808.rlib: src/lib.rs

/root/repo/target/release/deps/libopenmpi_elan4_repro-43617684cc336808.rmeta: src/lib.rs

src/lib.rs:
