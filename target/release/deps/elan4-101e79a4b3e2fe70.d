/root/repo/target/release/deps/elan4-101e79a4b3e2fe70.d: crates/elan4/src/lib.rs crates/elan4/src/alloc.rs crates/elan4/src/cluster.rs crates/elan4/src/config.rs crates/elan4/src/ctx.rs crates/elan4/src/mmu.rs crates/elan4/src/tport.rs crates/elan4/src/types.rs

/root/repo/target/release/deps/libelan4-101e79a4b3e2fe70.rlib: crates/elan4/src/lib.rs crates/elan4/src/alloc.rs crates/elan4/src/cluster.rs crates/elan4/src/config.rs crates/elan4/src/ctx.rs crates/elan4/src/mmu.rs crates/elan4/src/tport.rs crates/elan4/src/types.rs

/root/repo/target/release/deps/libelan4-101e79a4b3e2fe70.rmeta: crates/elan4/src/lib.rs crates/elan4/src/alloc.rs crates/elan4/src/cluster.rs crates/elan4/src/config.rs crates/elan4/src/ctx.rs crates/elan4/src/mmu.rs crates/elan4/src/tport.rs crates/elan4/src/types.rs

crates/elan4/src/lib.rs:
crates/elan4/src/alloc.rs:
crates/elan4/src/cluster.rs:
crates/elan4/src/config.rs:
crates/elan4/src/ctx.rs:
crates/elan4/src/mmu.rs:
crates/elan4/src/tport.rs:
crates/elan4/src/types.rs:
