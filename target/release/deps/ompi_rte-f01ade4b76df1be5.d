/root/repo/target/release/deps/ompi_rte-f01ade4b76df1be5.d: crates/rte/src/lib.rs

/root/repo/target/release/deps/libompi_rte-f01ade4b76df1be5.rlib: crates/rte/src/lib.rs

/root/repo/target/release/deps/libompi_rte-f01ade4b76df1be5.rmeta: crates/rte/src/lib.rs

crates/rte/src/lib.rs:
