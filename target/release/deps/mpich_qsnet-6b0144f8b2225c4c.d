/root/repo/target/release/deps/mpich_qsnet-6b0144f8b2225c4c.d: crates/mpich-qsnet/src/lib.rs

/root/repo/target/release/deps/libmpich_qsnet-6b0144f8b2225c4c.rlib: crates/mpich-qsnet/src/lib.rs

/root/repo/target/release/deps/libmpich_qsnet-6b0144f8b2225c4c.rmeta: crates/mpich-qsnet/src/lib.rs

crates/mpich-qsnet/src/lib.rs:
