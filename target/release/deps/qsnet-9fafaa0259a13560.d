/root/repo/target/release/deps/qsnet-9fafaa0259a13560.d: crates/qsnet/src/lib.rs crates/qsnet/src/fabric.rs crates/qsnet/src/topology.rs

/root/repo/target/release/deps/libqsnet-9fafaa0259a13560.rlib: crates/qsnet/src/lib.rs crates/qsnet/src/fabric.rs crates/qsnet/src/topology.rs

/root/repo/target/release/deps/libqsnet-9fafaa0259a13560.rmeta: crates/qsnet/src/lib.rs crates/qsnet/src/fabric.rs crates/qsnet/src/topology.rs

crates/qsnet/src/lib.rs:
crates/qsnet/src/fabric.rs:
crates/qsnet/src/topology.rs:
