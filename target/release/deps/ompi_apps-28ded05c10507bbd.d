/root/repo/target/release/deps/ompi_apps-28ded05c10507bbd.d: crates/apps/src/lib.rs crates/apps/src/cg.rs crates/apps/src/ep.rs crates/apps/src/samplesort.rs crates/apps/src/stencil.rs crates/apps/src/stencil2d.rs

/root/repo/target/release/deps/libompi_apps-28ded05c10507bbd.rlib: crates/apps/src/lib.rs crates/apps/src/cg.rs crates/apps/src/ep.rs crates/apps/src/samplesort.rs crates/apps/src/stencil.rs crates/apps/src/stencil2d.rs

/root/repo/target/release/deps/libompi_apps-28ded05c10507bbd.rmeta: crates/apps/src/lib.rs crates/apps/src/cg.rs crates/apps/src/ep.rs crates/apps/src/samplesort.rs crates/apps/src/stencil.rs crates/apps/src/stencil2d.rs

crates/apps/src/lib.rs:
crates/apps/src/cg.rs:
crates/apps/src/ep.rs:
crates/apps/src/samplesort.rs:
crates/apps/src/stencil.rs:
crates/apps/src/stencil2d.rs:
