/root/repo/target/release/deps/openmpi_core-7a6b437e39bbb4fd.d: crates/core/src/lib.rs crates/core/src/coll.rs crates/core/src/comm.rs crates/core/src/config.rs crates/core/src/endpoint.rs crates/core/src/hdr.rs crates/core/src/metrics.rs crates/core/src/mpi.rs crates/core/src/peer.rs crates/core/src/proto.rs crates/core/src/ptl.rs crates/core/src/ptl_tcp.rs crates/core/src/rma.rs crates/core/src/state.rs crates/core/src/trace.rs crates/core/src/universe.rs

/root/repo/target/release/deps/libopenmpi_core-7a6b437e39bbb4fd.rlib: crates/core/src/lib.rs crates/core/src/coll.rs crates/core/src/comm.rs crates/core/src/config.rs crates/core/src/endpoint.rs crates/core/src/hdr.rs crates/core/src/metrics.rs crates/core/src/mpi.rs crates/core/src/peer.rs crates/core/src/proto.rs crates/core/src/ptl.rs crates/core/src/ptl_tcp.rs crates/core/src/rma.rs crates/core/src/state.rs crates/core/src/trace.rs crates/core/src/universe.rs

/root/repo/target/release/deps/libopenmpi_core-7a6b437e39bbb4fd.rmeta: crates/core/src/lib.rs crates/core/src/coll.rs crates/core/src/comm.rs crates/core/src/config.rs crates/core/src/endpoint.rs crates/core/src/hdr.rs crates/core/src/metrics.rs crates/core/src/mpi.rs crates/core/src/peer.rs crates/core/src/proto.rs crates/core/src/ptl.rs crates/core/src/ptl_tcp.rs crates/core/src/rma.rs crates/core/src/state.rs crates/core/src/trace.rs crates/core/src/universe.rs

crates/core/src/lib.rs:
crates/core/src/coll.rs:
crates/core/src/comm.rs:
crates/core/src/config.rs:
crates/core/src/endpoint.rs:
crates/core/src/hdr.rs:
crates/core/src/metrics.rs:
crates/core/src/mpi.rs:
crates/core/src/peer.rs:
crates/core/src/proto.rs:
crates/core/src/ptl.rs:
crates/core/src/ptl_tcp.rs:
crates/core/src/rma.rs:
crates/core/src/state.rs:
crates/core/src/trace.rs:
crates/core/src/universe.rs:
