/root/repo/target/release/deps/ompi_datatype-839cd58016ca3aa8.d: crates/datatype/src/lib.rs crates/datatype/src/cost.rs crates/datatype/src/typemap.rs

/root/repo/target/release/deps/libompi_datatype-839cd58016ca3aa8.rlib: crates/datatype/src/lib.rs crates/datatype/src/cost.rs crates/datatype/src/typemap.rs

/root/repo/target/release/deps/libompi_datatype-839cd58016ca3aa8.rmeta: crates/datatype/src/lib.rs crates/datatype/src/cost.rs crates/datatype/src/typemap.rs

crates/datatype/src/lib.rs:
crates/datatype/src/cost.rs:
crates/datatype/src/typemap.rs:
