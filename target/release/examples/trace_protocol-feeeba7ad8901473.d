/root/repo/target/release/examples/trace_protocol-feeeba7ad8901473.d: examples/trace_protocol.rs

/root/repo/target/release/examples/trace_protocol-feeeba7ad8901473: examples/trace_protocol.rs

examples/trace_protocol.rs:
