/root/repo/target/release/examples/quickstart-5a1416788a4bc0a8.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-5a1416788a4bc0a8: examples/quickstart.rs

examples/quickstart.rs:
