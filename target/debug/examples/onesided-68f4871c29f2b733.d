/root/repo/target/debug/examples/onesided-68f4871c29f2b733.d: examples/onesided.rs Cargo.toml

/root/repo/target/debug/examples/libonesided-68f4871c29f2b733.rmeta: examples/onesided.rs Cargo.toml

examples/onesided.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
