/root/repo/target/debug/examples/trace_protocol-87df80f40456876f.d: examples/trace_protocol.rs

/root/repo/target/debug/examples/trace_protocol-87df80f40456876f: examples/trace_protocol.rs

examples/trace_protocol.rs:
