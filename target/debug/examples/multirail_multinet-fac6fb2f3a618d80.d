/root/repo/target/debug/examples/multirail_multinet-fac6fb2f3a618d80.d: examples/multirail_multinet.rs Cargo.toml

/root/repo/target/debug/examples/libmultirail_multinet-fac6fb2f3a618d80.rmeta: examples/multirail_multinet.rs Cargo.toml

examples/multirail_multinet.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
