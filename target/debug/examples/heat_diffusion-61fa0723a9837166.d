/root/repo/target/debug/examples/heat_diffusion-61fa0723a9837166.d: examples/heat_diffusion.rs

/root/repo/target/debug/examples/heat_diffusion-61fa0723a9837166: examples/heat_diffusion.rs

examples/heat_diffusion.rs:
