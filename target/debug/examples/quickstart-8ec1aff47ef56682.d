/root/repo/target/debug/examples/quickstart-8ec1aff47ef56682.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-8ec1aff47ef56682: examples/quickstart.rs

examples/quickstart.rs:
