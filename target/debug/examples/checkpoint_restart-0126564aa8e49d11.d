/root/repo/target/debug/examples/checkpoint_restart-0126564aa8e49d11.d: examples/checkpoint_restart.rs

/root/repo/target/debug/examples/checkpoint_restart-0126564aa8e49d11: examples/checkpoint_restart.rs

examples/checkpoint_restart.rs:
