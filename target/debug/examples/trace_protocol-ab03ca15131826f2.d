/root/repo/target/debug/examples/trace_protocol-ab03ca15131826f2.d: examples/trace_protocol.rs Cargo.toml

/root/repo/target/debug/examples/libtrace_protocol-ab03ca15131826f2.rmeta: examples/trace_protocol.rs Cargo.toml

examples/trace_protocol.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
