/root/repo/target/debug/examples/heat_diffusion-3f93c835745eb77e.d: examples/heat_diffusion.rs Cargo.toml

/root/repo/target/debug/examples/libheat_diffusion-3f93c835745eb77e.rmeta: examples/heat_diffusion.rs Cargo.toml

examples/heat_diffusion.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
