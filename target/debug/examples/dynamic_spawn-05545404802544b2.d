/root/repo/target/debug/examples/dynamic_spawn-05545404802544b2.d: examples/dynamic_spawn.rs Cargo.toml

/root/repo/target/debug/examples/libdynamic_spawn-05545404802544b2.rmeta: examples/dynamic_spawn.rs Cargo.toml

examples/dynamic_spawn.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
