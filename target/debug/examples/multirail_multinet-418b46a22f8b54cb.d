/root/repo/target/debug/examples/multirail_multinet-418b46a22f8b54cb.d: examples/multirail_multinet.rs

/root/repo/target/debug/examples/multirail_multinet-418b46a22f8b54cb: examples/multirail_multinet.rs

examples/multirail_multinet.rs:
