/root/repo/target/debug/examples/dynamic_spawn-d9203cdc64436567.d: examples/dynamic_spawn.rs

/root/repo/target/debug/examples/dynamic_spawn-d9203cdc64436567: examples/dynamic_spawn.rs

examples/dynamic_spawn.rs:
