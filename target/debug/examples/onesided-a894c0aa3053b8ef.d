/root/repo/target/debug/examples/onesided-a894c0aa3053b8ef.d: examples/onesided.rs

/root/repo/target/debug/examples/onesided-a894c0aa3053b8ef: examples/onesided.rs

examples/onesided.rs:
