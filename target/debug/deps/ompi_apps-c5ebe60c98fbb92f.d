/root/repo/target/debug/deps/ompi_apps-c5ebe60c98fbb92f.d: crates/apps/src/lib.rs crates/apps/src/cg.rs crates/apps/src/ep.rs crates/apps/src/samplesort.rs crates/apps/src/stencil.rs crates/apps/src/stencil2d.rs

/root/repo/target/debug/deps/libompi_apps-c5ebe60c98fbb92f.rlib: crates/apps/src/lib.rs crates/apps/src/cg.rs crates/apps/src/ep.rs crates/apps/src/samplesort.rs crates/apps/src/stencil.rs crates/apps/src/stencil2d.rs

/root/repo/target/debug/deps/libompi_apps-c5ebe60c98fbb92f.rmeta: crates/apps/src/lib.rs crates/apps/src/cg.rs crates/apps/src/ep.rs crates/apps/src/samplesort.rs crates/apps/src/stencil.rs crates/apps/src/stencil2d.rs

crates/apps/src/lib.rs:
crates/apps/src/cg.rs:
crates/apps/src/ep.rs:
crates/apps/src/samplesort.rs:
crates/apps/src/stencil.rs:
crates/apps/src/stencil2d.rs:
