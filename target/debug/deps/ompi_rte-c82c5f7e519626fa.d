/root/repo/target/debug/deps/ompi_rte-c82c5f7e519626fa.d: crates/rte/src/lib.rs

/root/repo/target/debug/deps/ompi_rte-c82c5f7e519626fa: crates/rte/src/lib.rs

crates/rte/src/lib.rs:
