/root/repo/target/debug/deps/mpich_qsnet-f360b61b8a979542.d: crates/mpich-qsnet/src/lib.rs

/root/repo/target/debug/deps/libmpich_qsnet-f360b61b8a979542.rlib: crates/mpich-qsnet/src/lib.rs

/root/repo/target/debug/deps/libmpich_qsnet-f360b61b8a979542.rmeta: crates/mpich-qsnet/src/lib.rs

crates/mpich-qsnet/src/lib.rs:
