/root/repo/target/debug/deps/ompi_io-65b922953e2908f6.d: crates/io/src/lib.rs crates/io/src/pfs.rs

/root/repo/target/debug/deps/libompi_io-65b922953e2908f6.rlib: crates/io/src/lib.rs crates/io/src/pfs.rs

/root/repo/target/debug/deps/libompi_io-65b922953e2908f6.rmeta: crates/io/src/lib.rs crates/io/src/pfs.rs

crates/io/src/lib.rs:
crates/io/src/pfs.rs:
