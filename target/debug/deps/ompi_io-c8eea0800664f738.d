/root/repo/target/debug/deps/ompi_io-c8eea0800664f738.d: crates/io/src/lib.rs crates/io/src/pfs.rs Cargo.toml

/root/repo/target/debug/deps/libompi_io-c8eea0800664f738.rmeta: crates/io/src/lib.rs crates/io/src/pfs.rs Cargo.toml

crates/io/src/lib.rs:
crates/io/src/pfs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
