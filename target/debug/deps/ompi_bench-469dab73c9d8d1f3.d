/root/repo/target/debug/deps/ompi_bench-469dab73c9d8d1f3.d: crates/bench/src/lib.rs crates/bench/src/compare.rs crates/bench/src/experiments.rs crates/bench/src/measure.rs crates/bench/src/report.rs Cargo.toml

/root/repo/target/debug/deps/libompi_bench-469dab73c9d8d1f3.rmeta: crates/bench/src/lib.rs crates/bench/src/compare.rs crates/bench/src/experiments.rs crates/bench/src/measure.rs crates/bench/src/report.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/compare.rs:
crates/bench/src/experiments.rs:
crates/bench/src/measure.rs:
crates/bench/src/report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
