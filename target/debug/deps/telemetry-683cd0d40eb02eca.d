/root/repo/target/debug/deps/telemetry-683cd0d40eb02eca.d: tests/telemetry.rs Cargo.toml

/root/repo/target/debug/deps/libtelemetry-683cd0d40eb02eca.rmeta: tests/telemetry.rs Cargo.toml

tests/telemetry.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
