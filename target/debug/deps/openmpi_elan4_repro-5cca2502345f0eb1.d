/root/repo/target/debug/deps/openmpi_elan4_repro-5cca2502345f0eb1.d: src/lib.rs

/root/repo/target/debug/deps/libopenmpi_elan4_repro-5cca2502345f0eb1.rlib: src/lib.rs

/root/repo/target/debug/deps/libopenmpi_elan4_repro-5cca2502345f0eb1.rmeta: src/lib.rs

src/lib.rs:
