/root/repo/target/debug/deps/openmpi_elan4_repro-f49f7988595879f5.d: src/lib.rs

/root/repo/target/debug/deps/openmpi_elan4_repro-f49f7988595879f5: src/lib.rs

src/lib.rs:
