/root/repo/target/debug/deps/ompi_bench-b2ae290b64caa5ad.d: crates/bench/src/lib.rs crates/bench/src/compare.rs crates/bench/src/experiments.rs crates/bench/src/measure.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/libompi_bench-b2ae290b64caa5ad.rlib: crates/bench/src/lib.rs crates/bench/src/compare.rs crates/bench/src/experiments.rs crates/bench/src/measure.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/libompi_bench-b2ae290b64caa5ad.rmeta: crates/bench/src/lib.rs crates/bench/src/compare.rs crates/bench/src/experiments.rs crates/bench/src/measure.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/compare.rs:
crates/bench/src/experiments.rs:
crates/bench/src/measure.rs:
crates/bench/src/report.rs:
