/root/repo/target/debug/deps/qsnet-50301ecff518b976.d: crates/qsnet/src/lib.rs crates/qsnet/src/fabric.rs crates/qsnet/src/topology.rs Cargo.toml

/root/repo/target/debug/deps/libqsnet-50301ecff518b976.rmeta: crates/qsnet/src/lib.rs crates/qsnet/src/fabric.rs crates/qsnet/src/topology.rs Cargo.toml

crates/qsnet/src/lib.rs:
crates/qsnet/src/fabric.rs:
crates/qsnet/src/topology.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
