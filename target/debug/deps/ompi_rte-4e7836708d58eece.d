/root/repo/target/debug/deps/ompi_rte-4e7836708d58eece.d: crates/rte/src/lib.rs

/root/repo/target/debug/deps/libompi_rte-4e7836708d58eece.rlib: crates/rte/src/lib.rs

/root/repo/target/debug/deps/libompi_rte-4e7836708d58eece.rmeta: crates/rte/src/lib.rs

crates/rte/src/lib.rs:
