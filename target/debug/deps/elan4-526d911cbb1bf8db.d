/root/repo/target/debug/deps/elan4-526d911cbb1bf8db.d: crates/elan4/src/lib.rs crates/elan4/src/alloc.rs crates/elan4/src/cluster.rs crates/elan4/src/config.rs crates/elan4/src/ctx.rs crates/elan4/src/mmu.rs crates/elan4/src/tport.rs crates/elan4/src/types.rs crates/elan4/src/tests.rs

/root/repo/target/debug/deps/elan4-526d911cbb1bf8db: crates/elan4/src/lib.rs crates/elan4/src/alloc.rs crates/elan4/src/cluster.rs crates/elan4/src/config.rs crates/elan4/src/ctx.rs crates/elan4/src/mmu.rs crates/elan4/src/tport.rs crates/elan4/src/types.rs crates/elan4/src/tests.rs

crates/elan4/src/lib.rs:
crates/elan4/src/alloc.rs:
crates/elan4/src/cluster.rs:
crates/elan4/src/config.rs:
crates/elan4/src/ctx.rs:
crates/elan4/src/mmu.rs:
crates/elan4/src/tport.rs:
crates/elan4/src/types.rs:
crates/elan4/src/tests.rs:
