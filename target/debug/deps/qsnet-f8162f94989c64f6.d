/root/repo/target/debug/deps/qsnet-f8162f94989c64f6.d: crates/qsnet/src/lib.rs crates/qsnet/src/fabric.rs crates/qsnet/src/topology.rs

/root/repo/target/debug/deps/qsnet-f8162f94989c64f6: crates/qsnet/src/lib.rs crates/qsnet/src/fabric.rs crates/qsnet/src/topology.rs

crates/qsnet/src/lib.rs:
crates/qsnet/src/fabric.rs:
crates/qsnet/src/topology.rs:
