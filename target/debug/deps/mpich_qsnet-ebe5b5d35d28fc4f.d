/root/repo/target/debug/deps/mpich_qsnet-ebe5b5d35d28fc4f.d: crates/mpich-qsnet/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmpich_qsnet-ebe5b5d35d28fc4f.rmeta: crates/mpich-qsnet/src/lib.rs Cargo.toml

crates/mpich-qsnet/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
