/root/repo/target/debug/deps/ompi_io-6957f2742524bf87.d: crates/io/src/lib.rs crates/io/src/pfs.rs

/root/repo/target/debug/deps/ompi_io-6957f2742524bf87: crates/io/src/lib.rs crates/io/src/pfs.rs

crates/io/src/lib.rs:
crates/io/src/pfs.rs:
