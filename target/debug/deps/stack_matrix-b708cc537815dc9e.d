/root/repo/target/debug/deps/stack_matrix-b708cc537815dc9e.d: tests/stack_matrix.rs

/root/repo/target/debug/deps/stack_matrix-b708cc537815dc9e: tests/stack_matrix.rs

tests/stack_matrix.rs:
