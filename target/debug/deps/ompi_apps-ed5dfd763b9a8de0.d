/root/repo/target/debug/deps/ompi_apps-ed5dfd763b9a8de0.d: crates/apps/src/lib.rs crates/apps/src/cg.rs crates/apps/src/ep.rs crates/apps/src/samplesort.rs crates/apps/src/stencil.rs crates/apps/src/stencil2d.rs Cargo.toml

/root/repo/target/debug/deps/libompi_apps-ed5dfd763b9a8de0.rmeta: crates/apps/src/lib.rs crates/apps/src/cg.rs crates/apps/src/ep.rs crates/apps/src/samplesort.rs crates/apps/src/stencil.rs crates/apps/src/stencil2d.rs Cargo.toml

crates/apps/src/lib.rs:
crates/apps/src/cg.rs:
crates/apps/src/ep.rs:
crates/apps/src/samplesort.rs:
crates/apps/src/stencil.rs:
crates/apps/src/stencil2d.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
