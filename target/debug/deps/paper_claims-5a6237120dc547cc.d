/root/repo/target/debug/deps/paper_claims-5a6237120dc547cc.d: tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-5a6237120dc547cc: tests/paper_claims.rs

tests/paper_claims.rs:
