/root/repo/target/debug/deps/matching_oracle-dbded3d8d12d48b2.d: tests/matching_oracle.rs

/root/repo/target/debug/deps/matching_oracle-dbded3d8d12d48b2: tests/matching_oracle.rs

tests/matching_oracle.rs:
