/root/repo/target/debug/deps/ompi_rte-fa1746428b11101b.d: crates/rte/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libompi_rte-fa1746428b11101b.rmeta: crates/rte/src/lib.rs Cargo.toml

crates/rte/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
