/root/repo/target/debug/deps/ompi_datatype-771abb6d230fc3fd.d: crates/datatype/src/lib.rs crates/datatype/src/cost.rs crates/datatype/src/typemap.rs Cargo.toml

/root/repo/target/debug/deps/libompi_datatype-771abb6d230fc3fd.rmeta: crates/datatype/src/lib.rs crates/datatype/src/cost.rs crates/datatype/src/typemap.rs Cargo.toml

crates/datatype/src/lib.rs:
crates/datatype/src/cost.rs:
crates/datatype/src/typemap.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
