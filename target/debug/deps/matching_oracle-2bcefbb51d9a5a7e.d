/root/repo/target/debug/deps/matching_oracle-2bcefbb51d9a5a7e.d: tests/matching_oracle.rs Cargo.toml

/root/repo/target/debug/deps/libmatching_oracle-2bcefbb51d9a5a7e.rmeta: tests/matching_oracle.rs Cargo.toml

tests/matching_oracle.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
