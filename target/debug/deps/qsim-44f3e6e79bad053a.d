/root/repo/target/debug/deps/qsim-44f3e6e79bad053a.d: crates/qsim/src/lib.rs crates/qsim/src/handle.rs crates/qsim/src/kernel.rs crates/qsim/src/proc.rs crates/qsim/src/rng.rs crates/qsim/src/signal.rs crates/qsim/src/sync.rs crates/qsim/src/time.rs Cargo.toml

/root/repo/target/debug/deps/libqsim-44f3e6e79bad053a.rmeta: crates/qsim/src/lib.rs crates/qsim/src/handle.rs crates/qsim/src/kernel.rs crates/qsim/src/proc.rs crates/qsim/src/rng.rs crates/qsim/src/signal.rs crates/qsim/src/sync.rs crates/qsim/src/time.rs Cargo.toml

crates/qsim/src/lib.rs:
crates/qsim/src/handle.rs:
crates/qsim/src/kernel.rs:
crates/qsim/src/proc.rs:
crates/qsim/src/rng.rs:
crates/qsim/src/signal.rs:
crates/qsim/src/sync.rs:
crates/qsim/src/time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
