/root/repo/target/debug/deps/openmpi_core-758aeea99a5b523c.d: crates/core/src/lib.rs crates/core/src/coll.rs crates/core/src/comm.rs crates/core/src/config.rs crates/core/src/endpoint.rs crates/core/src/hdr.rs crates/core/src/metrics.rs crates/core/src/mpi.rs crates/core/src/peer.rs crates/core/src/proto.rs crates/core/src/ptl.rs crates/core/src/ptl_tcp.rs crates/core/src/rma.rs crates/core/src/state.rs crates/core/src/trace.rs crates/core/src/universe.rs crates/core/src/tests.rs

/root/repo/target/debug/deps/openmpi_core-758aeea99a5b523c: crates/core/src/lib.rs crates/core/src/coll.rs crates/core/src/comm.rs crates/core/src/config.rs crates/core/src/endpoint.rs crates/core/src/hdr.rs crates/core/src/metrics.rs crates/core/src/mpi.rs crates/core/src/peer.rs crates/core/src/proto.rs crates/core/src/ptl.rs crates/core/src/ptl_tcp.rs crates/core/src/rma.rs crates/core/src/state.rs crates/core/src/trace.rs crates/core/src/universe.rs crates/core/src/tests.rs

crates/core/src/lib.rs:
crates/core/src/coll.rs:
crates/core/src/comm.rs:
crates/core/src/config.rs:
crates/core/src/endpoint.rs:
crates/core/src/hdr.rs:
crates/core/src/metrics.rs:
crates/core/src/mpi.rs:
crates/core/src/peer.rs:
crates/core/src/proto.rs:
crates/core/src/ptl.rs:
crates/core/src/ptl_tcp.rs:
crates/core/src/rma.rs:
crates/core/src/state.rs:
crates/core/src/trace.rs:
crates/core/src/universe.rs:
crates/core/src/tests.rs:
