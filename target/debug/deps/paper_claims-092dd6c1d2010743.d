/root/repo/target/debug/deps/paper_claims-092dd6c1d2010743.d: tests/paper_claims.rs Cargo.toml

/root/repo/target/debug/deps/libpaper_claims-092dd6c1d2010743.rmeta: tests/paper_claims.rs Cargo.toml

tests/paper_claims.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
