/root/repo/target/debug/deps/openmpi_elan4_repro-d0898a04b5b7cc9f.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libopenmpi_elan4_repro-d0898a04b5b7cc9f.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
