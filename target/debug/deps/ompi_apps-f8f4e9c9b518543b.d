/root/repo/target/debug/deps/ompi_apps-f8f4e9c9b518543b.d: crates/apps/src/lib.rs crates/apps/src/cg.rs crates/apps/src/ep.rs crates/apps/src/samplesort.rs crates/apps/src/stencil.rs crates/apps/src/stencil2d.rs

/root/repo/target/debug/deps/ompi_apps-f8f4e9c9b518543b: crates/apps/src/lib.rs crates/apps/src/cg.rs crates/apps/src/ep.rs crates/apps/src/samplesort.rs crates/apps/src/stencil.rs crates/apps/src/stencil2d.rs

crates/apps/src/lib.rs:
crates/apps/src/cg.rs:
crates/apps/src/ep.rs:
crates/apps/src/samplesort.rs:
crates/apps/src/stencil.rs:
crates/apps/src/stencil2d.rs:
