/root/repo/target/debug/deps/telemetry-37c6a4dabca74ff0.d: tests/telemetry.rs

/root/repo/target/debug/deps/telemetry-37c6a4dabca74ff0: tests/telemetry.rs

tests/telemetry.rs:
