/root/repo/target/debug/deps/dynamics_and_faults-8eb9a7bf830d3760.d: tests/dynamics_and_faults.rs Cargo.toml

/root/repo/target/debug/deps/libdynamics_and_faults-8eb9a7bf830d3760.rmeta: tests/dynamics_and_faults.rs Cargo.toml

tests/dynamics_and_faults.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
