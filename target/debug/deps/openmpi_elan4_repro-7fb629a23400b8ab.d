/root/repo/target/debug/deps/openmpi_elan4_repro-7fb629a23400b8ab.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libopenmpi_elan4_repro-7fb629a23400b8ab.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
