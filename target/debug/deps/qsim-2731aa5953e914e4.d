/root/repo/target/debug/deps/qsim-2731aa5953e914e4.d: crates/qsim/src/lib.rs crates/qsim/src/handle.rs crates/qsim/src/kernel.rs crates/qsim/src/proc.rs crates/qsim/src/rng.rs crates/qsim/src/signal.rs crates/qsim/src/sync.rs crates/qsim/src/time.rs

/root/repo/target/debug/deps/qsim-2731aa5953e914e4: crates/qsim/src/lib.rs crates/qsim/src/handle.rs crates/qsim/src/kernel.rs crates/qsim/src/proc.rs crates/qsim/src/rng.rs crates/qsim/src/signal.rs crates/qsim/src/sync.rs crates/qsim/src/time.rs

crates/qsim/src/lib.rs:
crates/qsim/src/handle.rs:
crates/qsim/src/kernel.rs:
crates/qsim/src/proc.rs:
crates/qsim/src/rng.rs:
crates/qsim/src/signal.rs:
crates/qsim/src/sync.rs:
crates/qsim/src/time.rs:
