/root/repo/target/debug/deps/ompi_io-239dd0e3664ca63e.d: crates/io/src/lib.rs crates/io/src/pfs.rs Cargo.toml

/root/repo/target/debug/deps/libompi_io-239dd0e3664ca63e.rmeta: crates/io/src/lib.rs crates/io/src/pfs.rs Cargo.toml

crates/io/src/lib.rs:
crates/io/src/pfs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
