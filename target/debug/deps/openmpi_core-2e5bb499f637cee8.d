/root/repo/target/debug/deps/openmpi_core-2e5bb499f637cee8.d: crates/core/src/lib.rs crates/core/src/coll.rs crates/core/src/comm.rs crates/core/src/config.rs crates/core/src/endpoint.rs crates/core/src/hdr.rs crates/core/src/metrics.rs crates/core/src/mpi.rs crates/core/src/peer.rs crates/core/src/proto.rs crates/core/src/ptl.rs crates/core/src/ptl_tcp.rs crates/core/src/rma.rs crates/core/src/state.rs crates/core/src/trace.rs crates/core/src/universe.rs crates/core/src/tests.rs Cargo.toml

/root/repo/target/debug/deps/libopenmpi_core-2e5bb499f637cee8.rmeta: crates/core/src/lib.rs crates/core/src/coll.rs crates/core/src/comm.rs crates/core/src/config.rs crates/core/src/endpoint.rs crates/core/src/hdr.rs crates/core/src/metrics.rs crates/core/src/mpi.rs crates/core/src/peer.rs crates/core/src/proto.rs crates/core/src/ptl.rs crates/core/src/ptl_tcp.rs crates/core/src/rma.rs crates/core/src/state.rs crates/core/src/trace.rs crates/core/src/universe.rs crates/core/src/tests.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/coll.rs:
crates/core/src/comm.rs:
crates/core/src/config.rs:
crates/core/src/endpoint.rs:
crates/core/src/hdr.rs:
crates/core/src/metrics.rs:
crates/core/src/mpi.rs:
crates/core/src/peer.rs:
crates/core/src/proto.rs:
crates/core/src/ptl.rs:
crates/core/src/ptl_tcp.rs:
crates/core/src/rma.rs:
crates/core/src/state.rs:
crates/core/src/trace.rs:
crates/core/src/universe.rs:
crates/core/src/tests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
