/root/repo/target/debug/deps/elan4-bf5578e858f09471.d: crates/elan4/src/lib.rs crates/elan4/src/alloc.rs crates/elan4/src/cluster.rs crates/elan4/src/config.rs crates/elan4/src/ctx.rs crates/elan4/src/mmu.rs crates/elan4/src/tport.rs crates/elan4/src/types.rs

/root/repo/target/debug/deps/libelan4-bf5578e858f09471.rlib: crates/elan4/src/lib.rs crates/elan4/src/alloc.rs crates/elan4/src/cluster.rs crates/elan4/src/config.rs crates/elan4/src/ctx.rs crates/elan4/src/mmu.rs crates/elan4/src/tport.rs crates/elan4/src/types.rs

/root/repo/target/debug/deps/libelan4-bf5578e858f09471.rmeta: crates/elan4/src/lib.rs crates/elan4/src/alloc.rs crates/elan4/src/cluster.rs crates/elan4/src/config.rs crates/elan4/src/ctx.rs crates/elan4/src/mmu.rs crates/elan4/src/tport.rs crates/elan4/src/types.rs

crates/elan4/src/lib.rs:
crates/elan4/src/alloc.rs:
crates/elan4/src/cluster.rs:
crates/elan4/src/config.rs:
crates/elan4/src/ctx.rs:
crates/elan4/src/mmu.rs:
crates/elan4/src/tport.rs:
crates/elan4/src/types.rs:
