/root/repo/target/debug/deps/ompi_datatype-f34eaa898a1b0d76.d: crates/datatype/src/lib.rs crates/datatype/src/cost.rs crates/datatype/src/typemap.rs Cargo.toml

/root/repo/target/debug/deps/libompi_datatype-f34eaa898a1b0d76.rmeta: crates/datatype/src/lib.rs crates/datatype/src/cost.rs crates/datatype/src/typemap.rs Cargo.toml

crates/datatype/src/lib.rs:
crates/datatype/src/cost.rs:
crates/datatype/src/typemap.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
