/root/repo/target/debug/deps/harness-0d225c2dda6de42e.d: crates/bench/src/bin/harness.rs

/root/repo/target/debug/deps/harness-0d225c2dda6de42e: crates/bench/src/bin/harness.rs

crates/bench/src/bin/harness.rs:
