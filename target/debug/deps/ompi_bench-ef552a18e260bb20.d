/root/repo/target/debug/deps/ompi_bench-ef552a18e260bb20.d: crates/bench/src/lib.rs crates/bench/src/compare.rs crates/bench/src/experiments.rs crates/bench/src/measure.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/ompi_bench-ef552a18e260bb20: crates/bench/src/lib.rs crates/bench/src/compare.rs crates/bench/src/experiments.rs crates/bench/src/measure.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/compare.rs:
crates/bench/src/experiments.rs:
crates/bench/src/measure.rs:
crates/bench/src/report.rs:
