/root/repo/target/debug/deps/qsim-cd5857ce883d093b.d: crates/qsim/src/lib.rs crates/qsim/src/handle.rs crates/qsim/src/kernel.rs crates/qsim/src/proc.rs crates/qsim/src/rng.rs crates/qsim/src/signal.rs crates/qsim/src/sync.rs crates/qsim/src/time.rs

/root/repo/target/debug/deps/libqsim-cd5857ce883d093b.rlib: crates/qsim/src/lib.rs crates/qsim/src/handle.rs crates/qsim/src/kernel.rs crates/qsim/src/proc.rs crates/qsim/src/rng.rs crates/qsim/src/signal.rs crates/qsim/src/sync.rs crates/qsim/src/time.rs

/root/repo/target/debug/deps/libqsim-cd5857ce883d093b.rmeta: crates/qsim/src/lib.rs crates/qsim/src/handle.rs crates/qsim/src/kernel.rs crates/qsim/src/proc.rs crates/qsim/src/rng.rs crates/qsim/src/signal.rs crates/qsim/src/sync.rs crates/qsim/src/time.rs

crates/qsim/src/lib.rs:
crates/qsim/src/handle.rs:
crates/qsim/src/kernel.rs:
crates/qsim/src/proc.rs:
crates/qsim/src/rng.rs:
crates/qsim/src/signal.rs:
crates/qsim/src/sync.rs:
crates/qsim/src/time.rs:
