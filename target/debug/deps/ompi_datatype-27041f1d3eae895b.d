/root/repo/target/debug/deps/ompi_datatype-27041f1d3eae895b.d: crates/datatype/src/lib.rs crates/datatype/src/cost.rs crates/datatype/src/typemap.rs

/root/repo/target/debug/deps/ompi_datatype-27041f1d3eae895b: crates/datatype/src/lib.rs crates/datatype/src/cost.rs crates/datatype/src/typemap.rs

crates/datatype/src/lib.rs:
crates/datatype/src/cost.rs:
crates/datatype/src/typemap.rs:
