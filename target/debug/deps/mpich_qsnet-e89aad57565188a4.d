/root/repo/target/debug/deps/mpich_qsnet-e89aad57565188a4.d: crates/mpich-qsnet/src/lib.rs

/root/repo/target/debug/deps/mpich_qsnet-e89aad57565188a4: crates/mpich-qsnet/src/lib.rs

crates/mpich-qsnet/src/lib.rs:
