/root/repo/target/debug/deps/elan4-698e4e6bc5100a93.d: crates/elan4/src/lib.rs crates/elan4/src/alloc.rs crates/elan4/src/cluster.rs crates/elan4/src/config.rs crates/elan4/src/ctx.rs crates/elan4/src/mmu.rs crates/elan4/src/tport.rs crates/elan4/src/types.rs crates/elan4/src/tests.rs Cargo.toml

/root/repo/target/debug/deps/libelan4-698e4e6bc5100a93.rmeta: crates/elan4/src/lib.rs crates/elan4/src/alloc.rs crates/elan4/src/cluster.rs crates/elan4/src/config.rs crates/elan4/src/ctx.rs crates/elan4/src/mmu.rs crates/elan4/src/tport.rs crates/elan4/src/types.rs crates/elan4/src/tests.rs Cargo.toml

crates/elan4/src/lib.rs:
crates/elan4/src/alloc.rs:
crates/elan4/src/cluster.rs:
crates/elan4/src/config.rs:
crates/elan4/src/ctx.rs:
crates/elan4/src/mmu.rs:
crates/elan4/src/tport.rs:
crates/elan4/src/types.rs:
crates/elan4/src/tests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
