/root/repo/target/debug/deps/qsnet-b149812493f3c4c2.d: crates/qsnet/src/lib.rs crates/qsnet/src/fabric.rs crates/qsnet/src/topology.rs Cargo.toml

/root/repo/target/debug/deps/libqsnet-b149812493f3c4c2.rmeta: crates/qsnet/src/lib.rs crates/qsnet/src/fabric.rs crates/qsnet/src/topology.rs Cargo.toml

crates/qsnet/src/lib.rs:
crates/qsnet/src/fabric.rs:
crates/qsnet/src/topology.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
