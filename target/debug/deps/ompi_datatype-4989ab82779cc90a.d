/root/repo/target/debug/deps/ompi_datatype-4989ab82779cc90a.d: crates/datatype/src/lib.rs crates/datatype/src/cost.rs crates/datatype/src/typemap.rs

/root/repo/target/debug/deps/libompi_datatype-4989ab82779cc90a.rlib: crates/datatype/src/lib.rs crates/datatype/src/cost.rs crates/datatype/src/typemap.rs

/root/repo/target/debug/deps/libompi_datatype-4989ab82779cc90a.rmeta: crates/datatype/src/lib.rs crates/datatype/src/cost.rs crates/datatype/src/typemap.rs

crates/datatype/src/lib.rs:
crates/datatype/src/cost.rs:
crates/datatype/src/typemap.rs:
