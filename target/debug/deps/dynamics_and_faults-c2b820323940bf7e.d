/root/repo/target/debug/deps/dynamics_and_faults-c2b820323940bf7e.d: tests/dynamics_and_faults.rs

/root/repo/target/debug/deps/dynamics_and_faults-c2b820323940bf7e: tests/dynamics_and_faults.rs

tests/dynamics_and_faults.rs:
