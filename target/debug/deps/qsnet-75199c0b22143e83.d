/root/repo/target/debug/deps/qsnet-75199c0b22143e83.d: crates/qsnet/src/lib.rs crates/qsnet/src/fabric.rs crates/qsnet/src/topology.rs

/root/repo/target/debug/deps/libqsnet-75199c0b22143e83.rlib: crates/qsnet/src/lib.rs crates/qsnet/src/fabric.rs crates/qsnet/src/topology.rs

/root/repo/target/debug/deps/libqsnet-75199c0b22143e83.rmeta: crates/qsnet/src/lib.rs crates/qsnet/src/fabric.rs crates/qsnet/src/topology.rs

crates/qsnet/src/lib.rs:
crates/qsnet/src/fabric.rs:
crates/qsnet/src/topology.rs:
