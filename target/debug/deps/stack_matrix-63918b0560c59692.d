/root/repo/target/debug/deps/stack_matrix-63918b0560c59692.d: tests/stack_matrix.rs Cargo.toml

/root/repo/target/debug/deps/libstack_matrix-63918b0560c59692.rmeta: tests/stack_matrix.rs Cargo.toml

tests/stack_matrix.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
