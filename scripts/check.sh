#!/usr/bin/env bash
# Repo gate: formatting, lints, and the tier-1 suite. Run before pushing.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy (workspace, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1: build + root test suite"
cargo build --release
cargo test -q

echo "== fault injection: reliability + dynamics/faults test groups"
cargo test -q --test reliability --test dynamics_and_faults

echo "== bench smoke: registration-cache before/after"
# Exits nonzero unless the cached run is strictly faster with nonzero hits.
cargo run --release -q -p ompi-bench --bin harness -- \
    --reg-bench --bench-out BENCH_regcache.json

echo "== bench smoke: pipelined-rendezvous bandwidth curve"
# Exits nonzero unless the pipelined path is strictly faster than the
# monolithic path at 256 KiB and 1 MiB (registration costs on the
# critical path: cache off, window 1).
cargo run --release -q -p ompi-bench --bin harness -- \
    --bw-curve --bench-out BENCH_pipeline.json

echo "== bench smoke: end-to-end flow control"
# Incast / all-to-all / unexpected-flood with credit-based flow control
# off and on. Exits nonzero unless flow-on beats flow-off on incast
# completion time, bounds the victim's ejection-queue peak below the
# flow-off run, and keeps the uncongested ping-pong within 5%.
cargo run --release -q -p ompi-bench --bin harness -- \
    --flow-bench --bench-out BENCH_flow.json

echo "== bench smoke: simulator self-profile"
# Events/s on a fixed reference workload — the baseline CI tracks for
# kernel regressions. Exits nonzero if the profile comes up empty, if the
# schedule fingerprint diverges across repeat runs or between the calendar
# and reference BTree queues, or if throughput falls below the floor
# (4x the pre-rewrite 148,370 events/s baseline).
cargo run --release -q -p ompi-bench --bin harness -- \
    --sim-bench --sim-floor 593480 --bench-out BENCH_sim.json

echo "== bench smoke: wall-clock-budgeted 1024-rank collective sweep"
# Barrier rounds at 64/256/1024 ranks; exits nonzero if any point comes up
# empty, the whole sweep blows its wall-clock budget, or any point falls
# below the per-point events/s floor (the 1024-rank point is the binding
# one: 150,000 against a 216,983 baseline).
cargo run --release -q -p ompi-bench --bin harness -- \
    --rank-sweep --sweep-budget-ms 60000 --sweep-floor 150000 \
    --bench-out BENCH_sweep.json

echo "== bench smoke: NIC-offloaded collective latency curve"
# Barrier / bcast / allreduce at 64/256/1024 ranks, host-driven trees vs
# the NIC-resident chained event programs. Exits nonzero unless the
# offloaded path strictly beats the host path for every collective at 256
# and 1024 ranks.
cargo run --release -q -p ompi-bench --bin harness -- \
    --coll-curve --bench-out BENCH_coll.json

echo "== observability demo: incast congestion report"
# 8-rank incast; exits nonzero if the per-link table comes up empty.
cargo run --release -q -p ompi-bench --bin harness -- \
    --congestion-report --metrics-out congestion.json > /dev/null

echo "== observability demo: forced stall + flight-recorder dump"
# Exits nonzero unless the watchdog abort produces a flight dump.
cargo run --release -q -p ompi-bench --bin harness -- \
    --stall-demo --flight-out flight_dump.json > /dev/null 2>stall_demo.log \
    || { cat stall_demo.log; exit 1; }

echo "== observability demo: cross-rank critical-path report"
# 1 MiB pipelined rendezvous; exits nonzero unless the per-message stage
# decomposition reconciles with the measured total and the merged Chrome
# trace carries cross-rank flow events.
cargo run --release -q -p ompi-bench --bin harness -- \
    --critpath --critpath-out critpath.json > /dev/null
test -s critpath.json

echo "== observability demo: incast timeline (periodic pvar sampler)"
# 8-rank incast with the time-series sampler on; exits nonzero unless the
# victim's ejection-queue ramp is visible in the samples.
cargo run --release -q -p ompi-bench --bin harness -- \
    --timeline --timeline-out timeline.json > /dev/null
test -s timeline.json

echo "== introspection registry dump"
# Exits nonzero if the cvar/pvar registry comes up empty.
cargo run --release -q -p ompi-bench --bin harness -- \
    --list-introspect > /dev/null

echo "All checks passed."
