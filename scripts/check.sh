#!/usr/bin/env bash
# Repo gate: formatting, lints, and the tier-1 suite. Run before pushing.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy (workspace, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1: build + root test suite"
cargo build --release
cargo test -q

echo "== fault injection: reliability + dynamics/faults test groups"
cargo test -q --test reliability --test dynamics_and_faults

echo "== bench smoke: registration-cache before/after"
# Exits nonzero unless the cached run is strictly faster with nonzero hits.
cargo run --release -q -p ompi-bench --bin harness -- \
    --reg-bench --bench-out BENCH_regcache.json

echo "== bench smoke: pipelined-rendezvous bandwidth curve"
# Exits nonzero unless the pipelined path is strictly faster than the
# monolithic path at 256 KiB and 1 MiB (registration costs on the
# critical path: cache off, window 1).
cargo run --release -q -p ompi-bench --bin harness -- \
    --bw-curve --bench-out BENCH_pipeline.json

echo "All checks passed."
