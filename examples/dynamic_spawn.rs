//! MPI-2 dynamic process management — the paper's headline capability
//! (§4.1): Quadrics `libelan` only supports a static pool of processes, but
//! this stack decouples MPI rank from the Elan4 VPID and lets processes
//! claim contexts from the system-wide capability at any time.
//!
//! A 2-rank world starts; rank 0 then spawns a gang of workers *mid-run*,
//! farms task chunks to them over the merged communicator, and the workers
//! finalize and disjoin (releasing their NIC contexts) while the original
//! world keeps running.
//!
//! ```text
//! cargo run --release --example dynamic_spawn
//! ```

use openmpi_core::{Placement, StackConfig, Universe, ANY_SOURCE};

fn main() {
    let universe = Universe::paper_testbed(StackConfig::best());
    let uni2 = universe.clone();
    universe.run_world(2, Placement::RoundRobin, move |mpi| {
        let world = mpi.world();
        if mpi.rank() == 0 {
            println!(
                "[{}] world of {} up; spawning 3 workers dynamically...",
                mpi.now(),
                mpi.size()
            );
            let inter = mpi.spawn(3, &[4, 5, 6], |worker| {
                let parent = worker.parent_comm().expect("spawned with a parent");
                println!(
                    "    [{}] worker {} joined (job {:?}, dynamic Elan4 ctx)",
                    worker.now(),
                    worker.rank(),
                    worker.job()
                );
                let buf = worker.alloc(8);
                // Receive a task, square it, return it.
                worker.recv(&parent, 0, 1, &buf, 8);
                let x = u64::from_le_bytes(worker.read(&buf, 0, 8).try_into().unwrap());
                worker.write(&buf, 0, &(x * x).to_le_bytes());
                worker.send(&parent, 0, 2, &buf, 8);
                worker.free(buf);
                // Worker finalizes here (drop), releasing its context.
            });

            // Farm tasks 10, 20, 30 to the three workers.
            let buf = mpi.alloc(8);
            for w in 1..=3usize {
                mpi.write(&buf, 0, &((w as u64) * 10).to_le_bytes());
                mpi.send(&inter, w, 1, &buf, 8);
            }
            let mut sum = 0u64;
            for _ in 0..3 {
                let st = mpi.recv(&inter, ANY_SOURCE, 2, &buf, 8);
                let v = u64::from_le_bytes(mpi.read(&buf, 0, 8).try_into().unwrap());
                println!("[{}] result {v} from worker {}", mpi.now(), st.source);
                sum += v;
            }
            assert_eq!(sum, 100 + 400 + 900);
            println!("[{}] all results in: {sum}", mpi.now());
            mpi.free(buf);
        }
        // The original world is still fully functional afterwards.
        mpi.barrier(&world);
        if mpi.rank() == 1 {
            println!("[{}] rank 1 never noticed the membership change", mpi.now());
        }
    });

    // After the run every context has been released back to the capability.
    for node in 0..8 {
        assert_eq!(uni2.cluster.mem_in_use(node), 0);
    }
    println!("all Elan4 contexts and memory released — dynamic disjoin clean");
}
