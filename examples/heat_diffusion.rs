//! Domain decomposition with halo exchange: explicit 1-D heat diffusion
//! across all 8 nodes of the simulated cluster — the kind of tightly
//! coupled workload the paper's introduction motivates.
//!
//! Each rank owns a slab of the rod, exchanges one-cell halos with its
//! neighbours every step (`sendrecv`), and the residual is reduced with
//! `allreduce`. Virtual time shows how communication scales with slab size.
//!
//! ```text
//! cargo run --release --example heat_diffusion
//! ```

use openmpi_core::{Placement, ReduceOp, StackConfig, Universe};

const CELLS_PER_RANK: usize = 4096;
const STEPS: usize = 50;
const ALPHA: f64 = 0.25;

fn main() {
    let universe = Universe::paper_testbed(StackConfig::best());
    universe.run_world(8, Placement::RoundRobin, |mpi| {
        let world = mpi.world();
        let me = mpi.rank();
        let n = mpi.size();

        // Local slab with two ghost cells; a hot spike in the middle rank.
        let mut u = vec![0.0f64; CELLS_PER_RANK + 2];
        if me == n / 2 {
            u[CELLS_PER_RANK / 2] = 1000.0;
        }

        let halo_l = mpi.alloc(8);
        let halo_r = mpi.alloc(8);
        let ghost_l = mpi.alloc(8);
        let ghost_r = mpi.alloc(8);
        let res_buf = mpi.alloc(8);

        let t0 = mpi.now();
        for step in 0..STEPS {
            // Exchange halos with both neighbours (non-periodic rod).
            if me > 0 {
                mpi.write(&halo_l, 0, &u[1].to_le_bytes());
                mpi.sendrecv(
                    &world,
                    me - 1,
                    10,
                    &halo_l,
                    8,
                    (me - 1) as i32,
                    11,
                    &ghost_l,
                    8,
                );
                u[0] = f64::from_le_bytes(mpi.read(&ghost_l, 0, 8).try_into().unwrap());
            }
            if me < n - 1 {
                mpi.write(&halo_r, 0, &u[CELLS_PER_RANK].to_le_bytes());
                mpi.sendrecv(
                    &world,
                    me + 1,
                    11,
                    &halo_r,
                    8,
                    (me + 1) as i32,
                    10,
                    &ghost_r,
                    8,
                );
                u[CELLS_PER_RANK + 1] =
                    f64::from_le_bytes(mpi.read(&ghost_r, 0, 8).try_into().unwrap());
            }

            // Explicit update + model the compute time (3 flops/cell).
            let mut next = u.clone();
            let mut residual = 0.0f64;
            for i in 1..=CELLS_PER_RANK {
                next[i] = u[i] + ALPHA * (u[i - 1] - 2.0 * u[i] + u[i + 1]);
                residual += (next[i] - u[i]).abs();
            }
            u = next;
            mpi.compute(qsim::Dur::from_ns(3 * CELLS_PER_RANK as u64));

            // Global residual via allreduce.
            mpi.write(&res_buf, 0, &residual.to_le_bytes());
            mpi.allreduce(&world, ReduceOp::SumF64, &res_buf, 8);
            let global = f64::from_le_bytes(mpi.read(&res_buf, 0, 8).try_into().unwrap());
            if me == 0 && step % 10 == 0 {
                println!("step {step:>3}: residual {global:>12.4}   t={}", mpi.now());
            }
        }

        // Total heat is conserved (no-flux interior; spike spreads).
        let local: f64 = u[1..=CELLS_PER_RANK].iter().sum();
        mpi.write(&res_buf, 0, &local.to_le_bytes());
        mpi.allreduce(&world, ReduceOp::SumF64, &res_buf, 8);
        let total = f64::from_le_bytes(mpi.read(&res_buf, 0, 8).try_into().unwrap());
        if me == 0 {
            let elapsed = mpi.now() - t0;
            println!("total heat after {STEPS} steps: {total:.3} (expect ~1000)");
            println!("virtual time for {STEPS} coupled steps on 8 ranks: {elapsed}");
            assert!((total - 1000.0).abs() < 1.0, "heat not conserved");
        }
    });
}
