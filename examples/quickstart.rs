//! Quickstart: bring up a 4-rank MPI world on the simulated 8-node
//! QsNetII/Elan4 testbed, exchange messages, and print the measured
//! virtual-time latencies.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use openmpi_core::{Placement, StackConfig, Universe};

fn main() {
    // The paper's machine: 8 nodes on a quaternary fat tree (QS-8A),
    // one Elan4 rail, with the best protocol options from §6.5.
    let universe = Universe::paper_testbed(StackConfig::best());

    let report = universe.run_world(4, Placement::RoundRobin, |mpi| {
        let world = mpi.world();
        let me = mpi.rank();
        let n = mpi.size();

        // Say hello through rank 0.
        let line = format!("hello from rank {me} (vpid-decoupled, dynamic ctx)");
        let buf = mpi.alloc(96);
        mpi.write(&buf, 0, line.as_bytes());
        if me == 0 {
            println!("rank 0 gathering greetings from {n} ranks:");
            let rbuf = mpi.alloc(96);
            for _ in 1..n {
                let st = mpi.recv(&world, openmpi_core::ANY_SOURCE, 1, &rbuf, 96);
                let text = mpi.read(&rbuf, 0, st.len);
                println!(
                    "  [{:>9}] {}",
                    format!("{}", mpi.now()),
                    String::from_utf8(text).unwrap()
                );
            }
        } else {
            mpi.send(&world, 0, 1, &buf, line.len());
        }
        mpi.barrier(&world);

        // A quick ping-pong between ranks 0 and 1.
        if me < 2 {
            for len in [0usize, 64, 1024, 4096, 65536] {
                let s = mpi.alloc(len.max(1));
                let r = mpi.alloc(len.max(1));
                let iters = 10;
                mpi.barrier(&world);
                let t0 = mpi.now();
                for _ in 0..iters {
                    if me == 0 {
                        mpi.send(&world, 1, 2, &s, len);
                        mpi.recv(&world, 1, 2, &r, len);
                    } else {
                        mpi.recv(&world, 0, 2, &r, len);
                        mpi.send(&world, 0, 2, &s, len);
                    }
                }
                if me == 0 {
                    let half_rtt = (mpi.now() - t0).as_us() / (2.0 * iters as f64);
                    println!("ping-pong {len:>6} B : {half_rtt:>8.3} us");
                }
            }
        } else {
            // Other ranks still participate in the barriers above.
            for _ in 0..5 {
                mpi.barrier(&world);
            }
        }
        mpi.barrier(&world);
    });

    println!(
        "simulation finished at virtual t={} after {} events",
        report.end_time, report.events_processed
    );
}
