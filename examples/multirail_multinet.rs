//! Concurrent communication over multiple interfaces — the paper's §8
//! future work, built on the PML's ability to stripe one message across
//! PTL modules:
//!
//! 1. **Multi-rail**: two Elan4 rails (each in its own PCI-X slot) carry
//!    halves of every bulk transfer.
//! 2. **Multi-network**: an Elan4 rail and the TCP/IP PTL carry
//!    bandwidth-weighted shares of the same message.
//!
//! ```text
//! cargo run --release --example multirail_multinet
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use elan4::NicConfig;
use openmpi_core::{Placement, RdmaScheme, StackConfig, Transports, Universe};
use qsnet::FabricConfig;

fn bandwidth(rails: usize, tcp: bool, len: usize) -> f64 {
    let fabric = FabricConfig {
        rails: 2,
        ..Default::default()
    };
    let mut stack = StackConfig::best();
    // The write scheme covers push transports, so mixed Elan+TCP works.
    stack.scheme = RdmaScheme::Write;
    let uni = Universe::new(
        NicConfig::default(),
        fabric,
        stack,
        Transports {
            elan_rails: rails,
            tcp,
        },
    );
    let out = Arc::new(AtomicU64::new(0));
    let o2 = out.clone();
    uni.run_world(2, Placement::RoundRobin, move |mpi| {
        let w = mpi.world();
        let buf = mpi.alloc(len);
        let ack = mpi.alloc(1);
        mpi.barrier(&w);
        let t0 = mpi.now();
        let reps = 4;
        for _ in 0..reps {
            if mpi.rank() == 0 {
                mpi.send(&w, 1, 0, &buf, len);
                mpi.recv(&w, 1, 1, &ack, 0);
            } else {
                mpi.recv(&w, 0, 0, &buf, len);
                mpi.send(&w, 0, 1, &ack, 0);
            }
        }
        if mpi.rank() == 0 {
            let ns = (mpi.now() - t0).as_ns();
            o2.store(
                ((len * reps) as f64 / (ns as f64 / 1e9) / 1e6) as u64,
                Ordering::SeqCst,
            );
        }
    });
    out.load(Ordering::SeqCst) as f64
}

fn main() {
    let len = 1 << 20;
    println!("1 MB transfer bandwidth on the simulated testbed:\n");
    let one = bandwidth(1, false, len);
    println!("  one Elan4 rail          : {one:>7.0} MB/s");
    let two = bandwidth(2, false, len);
    println!(
        "  two Elan4 rails         : {two:>7.0} MB/s  ({:.2}x)",
        two / one
    );
    let tcp = bandwidth(0, true, len);
    println!("  TCP/IP alone            : {tcp:>7.0} MB/s");
    let both = bandwidth(1, true, len);
    println!(
        "  Elan4 + TCP concurrently: {both:>7.0} MB/s  (+{:.0} over Elan alone)",
        both - one
    );

    assert!(two > one * 1.3, "multirail should scale");
    assert!(both > one, "adding TCP should add bandwidth");
    println!("\nPML striping schedules each message across every available PTL,");
    println!("exactly as the paper's §2.1 scheduling heuristics describe.");
}
