//! MPI-2 one-sided communication over Elan4 RDMA: a distributed histogram
//! built with `put`-free remote accumulation and direct `get`s — no
//! receiver-side MPI calls at all during the access epoch.
//!
//! Each rank owns one shard of a global histogram inside an RMA window.
//! Ranks classify local data, then add their counts into the owning shards
//! with fence-synchronized epochs; finally everyone `get`s the full
//! histogram for verification.
//!
//! ```text
//! cargo run --release --example onesided
//! ```

use openmpi_core::{Placement, StackConfig, Universe};

const BINS_PER_RANK: usize = 8;
const SAMPLES: usize = 4096;

fn main() {
    let universe = Universe::paper_testbed(StackConfig::best());
    universe.run_world(4, Placement::RoundRobin, |mpi| {
        let world = mpi.world();
        let me = mpi.rank();
        let n = mpi.size();
        let total_bins = BINS_PER_RANK * n;

        // Window: this rank's shard of the histogram (f64 counters).
        let shard = mpi.alloc(BINS_PER_RANK * 8);
        mpi.write(&shard, 0, &[0u8; BINS_PER_RANK * 8]);
        let mut win = mpi.win_create(&world, shard);

        // Deterministic "samples": every rank classifies its own slice.
        let mut local = vec![0f64; total_bins];
        for s in 0..SAMPLES {
            let v = (s * 31 + me * 17) % total_bins;
            local[v] += 1.0;
        }
        mpi.compute(qsim::Dur::from_ns(SAMPLES as u64));

        // Serialized accumulate epochs (fence discipline: one origin per
        // target region per epoch).
        let contrib = mpi.alloc(BINS_PER_RANK * 8);
        for turn in 0..n {
            if me == turn {
                for owner in 0..n {
                    let bytes: Vec<u8> = local[owner * BINS_PER_RANK..(owner + 1) * BINS_PER_RANK]
                        .iter()
                        .flat_map(|v| v.to_le_bytes())
                        .collect();
                    mpi.write(&contrib, 0, &bytes);
                    mpi.accumulate_sum_f64(&mut win, owner, 0, &contrib, 0, BINS_PER_RANK * 8);
                }
            }
            mpi.win_fence(&mut win);
        }

        // Everyone pulls the whole histogram one-sidedly.
        let full = mpi.alloc(total_bins * 8);
        for owner in 0..n {
            mpi.get(
                &mut win,
                owner,
                0,
                &full,
                owner * BINS_PER_RANK * 8,
                BINS_PER_RANK * 8,
            );
        }
        mpi.win_fence(&mut win);

        // Verify: every bin was hit the same number of times in total.
        let bytes = mpi.read(&full, 0, total_bins * 8);
        let hist: Vec<f64> = bytes
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
            .collect();
        let total: f64 = hist.iter().sum();
        assert_eq!(total as usize, SAMPLES * n, "histogram lost samples");
        if me == 0 {
            println!(
                "global histogram over {total_bins} bins, {} samples:",
                SAMPLES * n
            );
            println!(
                "  min bin {}, max bin {}, total {}",
                hist.iter().cloned().fold(f64::MAX, f64::min),
                hist.iter().cloned().fold(0.0, f64::max),
                total
            );
            println!("  virtual time: {}", mpi.now());
        }

        mpi.win_free(win);
        mpi.free(contrib);
        mpi.free(full);
        mpi.free(shard);
    });
    println!("one-sided histogram complete — receivers never called recv()");
}
