//! Protocol tracing: watch one rendezvous unfold.
//!
//! Enables `StackConfig::trace` and prints the receiver's and sender's
//! protocol event timelines for a single 8 KB message — the virtual-time
//! version of the paper's Fig. 4 (rendezvous with RDMA read + FIN_ACK).
//!
//! ```text
//! cargo run --release --example trace_protocol
//! ```

use std::sync::Arc;

use openmpi_core::{Placement, StackConfig, Universe};
use qsim::Mutex;

fn main() {
    let mut cfg = StackConfig::best();
    cfg.trace = true;
    #[allow(clippy::type_complexity)]
    let traces: Arc<Mutex<Vec<(usize, Vec<String>)>>> = Arc::new(Mutex::new(Vec::new()));
    let t2 = traces.clone();

    let universe = Universe::paper_testbed(cfg);
    universe.run_world(2, Placement::RoundRobin, move |mpi| {
        let world = mpi.world();
        let buf = mpi.alloc(8192);
        if mpi.rank() == 0 {
            mpi.write(&buf, 0, &[0x42u8; 8192]);
            mpi.send(&world, 1, 7, &buf, 8192);
        } else {
            mpi.recv(&world, 0, 7, &buf, 8192);
            assert_eq!(mpi.read(&buf, 0, 8), vec![0x42u8; 8]);
        }
        t2.lock()
            .push((mpi.rank(), mpi.endpoint().trace.lock().dump()));
    });

    let mut traces = traces.lock().clone();
    traces.sort_by_key(|(r, _)| *r);
    for (rank, lines) in traces {
        let role = if rank == 0 { "sender" } else { "receiver" };
        println!("\n=== rank {rank} ({role}) ===");
        for l in lines {
            println!("  {l}");
        }
    }
    println!("\nRead the receiver timeline against the paper's Fig. 4:");
    println!("  Matched -> RdmaIssued(read) -> DmaDone -> Completed,");
    println!("with the FIN_ACK chained to the final RDMA by the NIC.");
}
