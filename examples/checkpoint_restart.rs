//! Checkpoint/restart — the paper's fault-tolerance motif, end to end.
//!
//! Open MPI's dynamic process management exists so jobs can checkpoint,
//! die, and restart (paper §3/§4.1). This example runs a distributed heat
//! stencil halfway, collectively checkpoints every rank's block to the
//! parallel file system, tears the whole world down (every Elan4 context
//! is released), then launches a **new** world — fresh processes, fresh
//! dynamically claimed contexts — which restores the checkpoint and
//! finishes the computation. The result matches an uninterrupted run
//! exactly.
//!
//! ```text
//! cargo run --release --example checkpoint_restart
//! ```

use std::sync::Arc;

use ompi_apps::stencil::{self, StencilConfig};
use ompi_io::{File, Pfs, PfsConfig};
use openmpi_core::{Placement, StackConfig, Universe};
use qsim::Mutex;

const RANKS: usize = 4;

fn main() {
    let cfg = StencilConfig {
        rows: 64,
        cols: 32,
        steps: 30,
        ..Default::default()
    };
    // Reference: one uninterrupted 30-step run.
    let reference = stencil::serial_reference(&cfg);

    let universe = Universe::paper_testbed(StackConfig::best());
    let pfs = Pfs::new(PfsConfig::default());

    // ---- Phase 1: run the first 15 steps, checkpoint, and exit. ----
    let phase1 = StencilConfig {
        steps: 15,
        ..cfg.clone()
    };
    let p1 = pfs.clone();
    universe.run_world(RANKS, Placement::RoundRobin, move |mpi| {
        let world = mpi.world();
        let result = stencil::run(&mpi, &world, &phase1);
        // Collective checkpoint: every rank deposits its rows.
        let f = File::open(&mpi, &p1, &world, "stencil.ckpt");
        let bytes: Vec<u8> = result.block.iter().flat_map(|v| v.to_le_bytes()).collect();
        let buf = mpi.alloc(bytes.len());
        mpi.write(&buf, 0, &bytes);
        f.write_all(&mpi, 0, &buf, bytes.len());
        if mpi.rank() == 0 {
            println!(
                "[{}] phase 1 checkpointed {} bytes after 15 steps; world exits",
                mpi.now(),
                f.len()
            );
        }
        f.close(&mpi);
        mpi.free(buf);
        // The Mpi handle drops here: finalize + context disjoin.
    });
    // The first world is completely gone; its contexts are back in the
    // capability.
    for node in 0..8 {
        assert_eq!(universe.cluster.mem_in_use(node), 0);
    }

    // ---- Phase 2: a brand-new world restores and finishes. ----
    let phase2 = StencilConfig {
        steps: 15,
        ..cfg.clone()
    };
    #[allow(clippy::type_complexity)]
    let blocks: Arc<Mutex<Vec<(usize, Vec<f64>)>>> = Arc::new(Mutex::new(Vec::new()));
    let b2 = blocks.clone();
    let p2 = pfs.clone();
    universe.run_world(RANKS, Placement::RoundRobin, move |mpi| {
        let world = mpi.world();
        let me = mpi.rank();
        let (_start, rows_here) = stencil::rows_of(&phase2, me, RANKS);
        let block_bytes = rows_here * phase2.cols * 8;

        // Restore this rank's block from the checkpoint.
        let f = File::open(&mpi, &p2, &world, "stencil.ckpt");
        let buf = mpi.alloc(block_bytes);
        let got = f.read_all(&mpi, 0, &buf, block_bytes);
        assert_eq!(got, block_bytes, "checkpoint truncated");
        let restored: Vec<f64> = mpi
            .read(&buf, 0, block_bytes)
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
            .collect();
        if me == 0 {
            println!(
                "[{}] phase 2 restored the checkpoint in a fresh world",
                mpi.now()
            );
        }

        // Continue the remaining 15 steps from the restored state.
        let result = stencil::run_from(&mpi, &world, &phase2, restored);
        b2.lock().push((me, result.block));
        f.close(&mpi);
        mpi.free(buf);
    });

    // Verify against the uninterrupted reference.
    let mut blocks = Arc::try_unwrap(blocks).unwrap().into_inner();
    blocks.sort_by_key(|(r, _)| *r);
    let assembled: Vec<f64> = blocks.into_iter().flat_map(|(_, b)| b).collect();
    assert_eq!(assembled.len(), reference.len());
    for (i, (a, b)) in assembled.iter().zip(&reference).enumerate() {
        assert!(
            (a - b).abs() < 1e-12,
            "cell {i}: restarted {a} vs uninterrupted {b}"
        );
    }
    println!("restart matches the uninterrupted 30-step run bit for bit ✓");
}
