//! Cross-crate correctness matrix: random payloads through every protocol
//! configuration, many ranks, mixed traffic patterns.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use openmpi_core::{
    CompletionMode, Placement, ProgressMode, RdmaScheme, StackConfig, Universe, ANY_SOURCE,
};
use qsim::Pcg32;

fn random_payload(rng: &mut Pcg32, len: usize) -> Vec<u8> {
    rng.bytes(len)
}

/// Every (scheme × inline × chained × completion) combination moves random
/// payloads of awkward sizes correctly under polling progress.
#[test]
fn protocol_matrix_random_payloads() {
    let mut rng = Pcg32::new(0xE1A4);
    for scheme in [RdmaScheme::Read, RdmaScheme::Write] {
        for inline in [false, true] {
            for completion in [
                CompletionMode::PollEvent,
                CompletionMode::SharedQueueCombined,
            ] {
                let mut cfg = StackConfig::best();
                cfg.scheme = scheme;
                cfg.inline_first_frag = inline;
                cfg.completion = completion;
                // Sizes straddling every protocol boundary.
                let sizes = [0usize, 1, 63, 1984, 1985, 2048, 4095, 16384, 1 << 17];
                let payloads: Vec<Vec<u8>> =
                    sizes.iter().map(|&l| random_payload(&mut rng, l)).collect();
                let p0 = payloads.clone();
                let p1 = payloads;
                let uni = Universe::paper_testbed(cfg);
                uni.run_world(2, Placement::RoundRobin, move |mpi| {
                    let w = mpi.world();
                    if mpi.rank() == 0 {
                        for (i, p) in p0.iter().enumerate() {
                            let b = mpi.alloc(p.len().max(1));
                            mpi.write(&b, 0, p);
                            mpi.send(&w, 1, i as i32, &b, p.len());
                            mpi.free(b);
                        }
                    } else {
                        for (i, p) in p1.iter().enumerate() {
                            let b = mpi.alloc(p.len().max(1));
                            mpi.recv(&w, 0, i as i32, &b, p.len());
                            assert_eq!(
                                &mpi.read(&b, 0, p.len()),
                                p,
                                "{scheme:?}/inline={inline}/{completion:?} size {} corrupt",
                                p.len()
                            );
                            mpi.free(b);
                        }
                    }
                });
            }
        }
    }
}

/// Thread-based progress moves the same random traffic correctly.
#[test]
fn thread_progress_random_payloads() {
    let mut rng = Pcg32::new(7);
    for (progress, completion) in [
        (ProgressMode::Interrupt, CompletionMode::PollEvent),
        (ProgressMode::OneThread, CompletionMode::SharedQueueCombined),
        (
            ProgressMode::TwoThreads,
            CompletionMode::SharedQueueSeparate,
        ),
    ] {
        let mut cfg = StackConfig::best();
        cfg.progress = progress;
        cfg.completion = completion;
        let sizes = [0usize, 100, 1984, 8192, 1 << 16];
        let payloads: Vec<Vec<u8>> = sizes.iter().map(|&l| random_payload(&mut rng, l)).collect();
        let p0 = payloads.clone();
        let p1 = payloads;
        let uni = Universe::paper_testbed(cfg);
        uni.run_world(2, Placement::RoundRobin, move |mpi| {
            let w = mpi.world();
            if mpi.rank() == 0 {
                for (i, p) in p0.iter().enumerate() {
                    let b = mpi.alloc(p.len().max(1));
                    mpi.write(&b, 0, p);
                    mpi.send(&w, 1, i as i32, &b, p.len());
                }
            } else {
                for (i, p) in p1.iter().enumerate() {
                    let b = mpi.alloc(p.len().max(1));
                    mpi.recv(&w, 0, i as i32, &b, p.len());
                    assert_eq!(&mpi.read(&b, 0, p.len()), p, "{progress:?} corrupt");
                }
            }
        });
    }
}

/// All-pairs traffic on the full 8-node testbed: every rank sends a
/// distinct payload to every other rank; wildcards drain them.
#[test]
fn eight_rank_all_pairs() {
    let uni = Universe::paper_testbed(StackConfig::best());
    let received = Arc::new(AtomicUsize::new(0));
    let r2 = received.clone();
    uni.run_world(8, Placement::RoundRobin, move |mpi| {
        let w = mpi.world();
        let n = mpi.size();
        let me = mpi.rank();
        let len = 3000; // rendezvous-sized
        let sbuf = mpi.alloc(len);
        // Payload identifies the (src, dst) pair.
        let reqs: Vec<_> = (0..n)
            .filter(|&d| d != me)
            .map(|d| {
                let b = mpi.alloc(len);
                let val = (me * 16 + d) as u8;
                mpi.write(&b, 0, &vec![val; len]);
                mpi.isend(&w, d, 77, &b, len)
            })
            .collect();
        let mut got = vec![false; n];
        let rbuf = mpi.alloc(len);
        for _ in 0..n - 1 {
            let st = mpi.recv(&w, ANY_SOURCE, 77, &rbuf, len);
            let data = mpi.read(&rbuf, 0, len);
            assert!(data.iter().all(|&b| b == (st.source * 16 + me) as u8));
            assert!(!got[st.source], "duplicate from {}", st.source);
            got[st.source] = true;
            r2.fetch_add(1, Ordering::SeqCst);
        }
        mpi.waitall(reqs);
        let _ = sbuf;
    });
    assert_eq!(received.load(Ordering::SeqCst), 8 * 7);
}

/// Typed (non-contiguous) data across the rendezvous path with both
/// schemes.
#[test]
fn strided_datatype_both_schemes() {
    use ompi_datatype::{Convertor, Datatype};
    for scheme in [RdmaScheme::Read, RdmaScheme::Write] {
        let mut cfg = StackConfig::best();
        cfg.scheme = scheme;
        let dt = Datatype::vector(512, 8, 24, Datatype::u8());
        let conv = Convertor::new(dt, 1);
        assert!(conv.packed_len() > 1984);
        let span = conv.span();
        let c0 = conv.clone();
        let c1 = conv;
        let uni = Universe::paper_testbed(cfg);
        uni.run_world(2, Placement::RoundRobin, move |mpi| {
            let w = mpi.world();
            let buf = mpi.alloc(span);
            if mpi.rank() == 0 {
                let data: Vec<u8> = (0..span).map(|i| (i % 241) as u8).collect();
                mpi.write(&buf, 0, &data);
                let r = mpi.isend_typed(&w, 1, 0, &buf, c0.clone());
                mpi.wait(r);
            } else {
                let r = mpi.irecv_typed(&w, 0, 0, &buf, c1.clone());
                mpi.wait(r);
                let got = mpi.read(&buf, 0, span);
                for (off, len) in c1.segments() {
                    for k in 0..len {
                        assert_eq!(got[off + k], ((off + k) % 241) as u8);
                    }
                }
            }
        });
    }
}

/// Sends posted before the receiver even enters MPI calls are buffered as
/// unexpected messages and drained in matching order.
#[test]
fn unexpected_flood_then_drain() {
    let uni = Universe::paper_testbed(StackConfig::best());
    uni.run_world(2, Placement::RoundRobin, |mpi| {
        let w = mpi.world();
        let count = 40;
        if mpi.rank() == 0 {
            let reqs: Vec<_> = (0..count)
                .map(|i| {
                    let b = mpi.alloc(256);
                    mpi.write(&b, 0, &[i as u8; 256]);
                    mpi.isend(&w, 1, 9, &b, 256)
                })
                .collect();
            mpi.waitall(reqs);
        } else {
            mpi.compute(qsim::Dur::from_us(300));
            let b = mpi.alloc(256);
            for i in 0..count {
                mpi.recv(&w, 0, 9, &b, 256);
                assert_eq!(mpi.read(&b, 0, 1)[0], i as u8, "drain out of order");
            }
        }
    });
}

/// Collectives on 8 ranks under every progress engine.
#[test]
fn collectives_under_all_progress_modes() {
    for (progress, completion) in [
        (ProgressMode::Polling, CompletionMode::PollEvent),
        (ProgressMode::Interrupt, CompletionMode::PollEvent),
        (ProgressMode::OneThread, CompletionMode::SharedQueueCombined),
        (
            ProgressMode::TwoThreads,
            CompletionMode::SharedQueueSeparate,
        ),
    ] {
        let mut cfg = StackConfig::best();
        cfg.progress = progress;
        cfg.completion = completion;
        let uni = Universe::paper_testbed(cfg);
        uni.run_world(8, Placement::RoundRobin, move |mpi| {
            let w = mpi.world();
            let me = mpi.rank();
            let n = mpi.size();
            mpi.barrier(&w);
            // Rendezvous-sized bcast exercises the RDMA path per mode.
            let b = mpi.alloc(8192);
            if me == 0 {
                mpi.write(&b, 0, &random_payload(&mut Pcg32::new(1), 8192));
            }
            mpi.bcast(&w, 0, &b, 8192);
            let expect = random_payload(&mut Pcg32::new(1), 8192);
            assert_eq!(mpi.read(&b, 0, 8192), expect, "{progress:?}");
            // Allreduce over all ranks.
            let acc = mpi.alloc(8);
            mpi.write(&acc, 0, &(me as f64).to_le_bytes());
            mpi.allreduce(&w, openmpi_core::ReduceOp::SumF64, &acc, 8);
            let v = f64::from_le_bytes(mpi.read(&acc, 0, 8).try_into().unwrap());
            assert_eq!(v as usize, n * (n - 1) / 2, "{progress:?}");
        });
    }
}

/// The CG application converges under thread-based progress too (the mode
/// interplays with every blocking wait in the dot products).
#[test]
fn cg_under_one_thread_progress() {
    use ompi_apps::cg::{run, CgConfig};
    let mut cfg = StackConfig::best();
    cfg.progress = ProgressMode::OneThread;
    cfg.completion = CompletionMode::SharedQueueCombined;
    let uni = Universe::paper_testbed(cfg);
    uni.run_world(4, Placement::RoundRobin, |mpi| {
        let w = mpi.world();
        let r = run(
            &mpi,
            &w,
            &CgConfig {
                n: 128,
                max_iters: 150,
                tol: 1e-10,
            },
        );
        assert!(r.rr <= 1e-10, "rank {} rr={}", mpi.rank(), r.rr);
        for v in r.x {
            assert!((v - 1.0).abs() < 1e-4);
        }
    });
}

/// Mixed traffic: RMA epochs interleaved with two-sided messages and a
/// collective, all on the same ranks.
#[test]
fn rma_and_two_sided_interleave() {
    let uni = Universe::paper_testbed(StackConfig::best());
    uni.run_world(4, Placement::RoundRobin, |mpi| {
        let w = mpi.world();
        let me = mpi.rank();
        let n = mpi.size();
        let wbuf = mpi.alloc(256);
        let mut win = mpi.win_create(&w, wbuf);
        for round in 0..3u8 {
            // Two-sided ring exchange...
            let s = mpi.alloc(128);
            let r = mpi.alloc(128);
            mpi.write(&s, 0, &[round.wrapping_mul(me as u8 + 1); 128]);
            mpi.sendrecv(
                &w,
                (me + 1) % n,
                40,
                &s,
                128,
                ((me + n - 1) % n) as i32,
                40,
                &r,
                128,
            );
            // ...then an RMA epoch writing into the left neighbour...
            let src = mpi.alloc(64);
            mpi.write(&src, 0, &[round ^ 0xA5; 64]);
            mpi.put(&mut win, (me + n - 1) % n, 0, &src, 0, 64);
            mpi.win_fence(&mut win);
            assert_eq!(mpi.read(&wbuf, 0, 64), vec![round ^ 0xA5; 64]);
            // ...then a collective.
            mpi.barrier(&w);
            mpi.free(s);
            mpi.free(r);
            mpi.free(src);
        }
        mpi.win_free(win);
        mpi.free(wbuf);
    });
}
