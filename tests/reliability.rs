//! The TCP PTL reliability layer under injected faults: exhausted
//! retransmissions surface as MPI error classes instead of aborts,
//! redelivered control frames are suppressed idempotently, corrupt headers
//! are counted and dropped, and unroutable peers fail the request rather
//! than the rank.

use std::sync::Arc;

use openmpi_core::{MpiErrClass, Placement, StackConfig, Universe};

fn tcp_only_universe(stack: StackConfig) -> Arc<Universe> {
    Universe::new(
        elan4::NicConfig::default(),
        qsnet::FabricConfig::default(),
        stack,
        openmpi_core::Transports {
            elan_rails: 0,
            tcp: true,
        },
    )
}

/// Every FIN_ACK (original and retransmits) vanishes: the receiver exhausts
/// its retries, declares the sender failed, and nacks the stranded send —
/// which completes with `MPI_ERR_PROC_FAILED` on the sender instead of
/// wedging or panicking. Both ranks finalize cleanly.
#[test]
fn exhausted_retries_fail_the_request_instead_of_panicking() {
    let stack = StackConfig {
        inline_first_frag: true,
        metrics: true,
        tcp_retransmit_timeout: qsim::Dur::from_us(100),
        tcp_retransmit_backoff: 2,
        tcp_max_retries: 2,
        ..StackConfig::best()
    };
    let uni = tcp_only_universe(stack);
    // Swallow the FIN_ACK and every retransmission of it.
    uni.tcp_net
        .inject_drop(openmpi_core::hdr::HdrType::FinAck, 99);

    type Captured = Vec<(u32, Arc<openmpi_core::Endpoint>)>;
    let eps: Arc<qsim::Mutex<Captured>> = Arc::new(qsim::Mutex::new(Vec::new()));
    let e2 = eps.clone();
    let errs: Arc<qsim::Mutex<Vec<Result<(), MpiErrClass>>>> =
        Arc::new(qsim::Mutex::new(Vec::new()));
    let errs2 = errs.clone();
    uni.run_world(2, Placement::RoundRobin, move |mpi| {
        e2.lock().push((mpi.rank() as u32, mpi.endpoint().clone()));
        let w = mpi.world();
        let len = 64 << 10;
        let buf = mpi.alloc(len);
        if mpi.rank() == 0 {
            let r = mpi.isend(&w, 1, 7, &buf, len);
            errs2.lock().push(mpi.wait_result(r));
        } else {
            // The receiver pulled the payload before losing its FIN_ACK:
            // its receive completes normally.
            let r = mpi.irecv(&w, 0, 7, &buf, len);
            assert_eq!(mpi.wait_result(r), Ok(()));
        }
        mpi.free(buf);
    });

    assert_eq!(*errs.lock(), vec![Err(MpiErrClass::ProcFailed)]);
    let eps = eps.lock();
    for (rank, ep) in eps.iter() {
        let pv = openmpi_core::pvar_snapshot(ep);
        if *rank == 1 {
            assert_eq!(pv.get("rel.retransmits"), Some(2), "both retries spent");
            assert_eq!(pv.get("rel.gave_up"), Some(1));
            assert_eq!(pv.get("queues.failed_peers"), Some(1));
        } else {
            assert_eq!(pv.get("rel.reqs_failed"), Some(1), "send nacked");
        }
        assert_eq!(pv.get("queues.ctl_inflight"), Some(0), "buffers drained");
        assert_eq!(ep.mapping_count(), 0, "failed request leaked a mapping");
    }
}

/// A control frame delivered twice must be acknowledged twice but acted on
/// once: no double completion, no double flow-control credit, metrics
/// counted exactly once.
#[test]
fn duplicate_control_frames_are_suppressed() {
    let stack = StackConfig {
        inline_first_frag: true,
        metrics: true,
        ..StackConfig::best()
    };
    let uni = tcp_only_universe(stack);
    uni.tcp_net
        .inject_dup(openmpi_core::hdr::HdrType::FinAck, 1);

    type Captured = Vec<(u32, Arc<openmpi_core::Endpoint>)>;
    let eps: Arc<qsim::Mutex<Captured>> = Arc::new(qsim::Mutex::new(Vec::new()));
    let e2 = eps.clone();
    uni.run_world(2, Placement::RoundRobin, move |mpi| {
        e2.lock().push((mpi.rank() as u32, mpi.endpoint().clone()));
        let w = mpi.world();
        let len = 64 << 10;
        let buf = mpi.alloc(len);
        if mpi.rank() == 0 {
            mpi.write(&buf, 0, &vec![0x5Au8; len]);
            mpi.send(&w, 1, 3, &buf, len);
        } else {
            mpi.recv(&w, 0, 3, &buf, len);
            assert_eq!(mpi.read(&buf, 0, len), vec![0x5Au8; len]);
        }
        mpi.free(buf);
    });

    assert_eq!(uni.tcp_net.stats().frames_duplicated, 1);
    let eps = eps.lock();
    for (rank, ep) in eps.iter() {
        let pv = openmpi_core::pvar_snapshot(ep);
        if *rank == 0 {
            // The sender saw the FIN_ACK twice and suppressed the replay.
            assert_eq!(pv.get("rel.dup_suppressed"), Some(1));
        }
        assert_eq!(pv.get("rel.retransmits"), Some(0), "no loss, no resend");
        assert_eq!(pv.get("rel.gave_up"), Some(0));
        assert_eq!(
            pv.get("rel.reqs_failed"),
            Some(0),
            "nothing double-completed"
        );
        assert_eq!(pv.get("queues.ctl_inflight"), Some(0));
    }
}

/// Garbage on the wire is counted and dropped, never a panic: feed the
/// dispatcher a frame of pure noise and keep communicating afterwards.
#[test]
fn corrupt_header_is_counted_and_dropped() {
    let stack = StackConfig {
        metrics: true,
        ..StackConfig::best()
    };
    let uni = tcp_only_universe(stack);
    uni.run_world(2, Placement::RoundRobin, move |mpi| {
        let w = mpi.world();
        // A frame of pure noise arrives (line corruption below the framing
        // layer); the decoder rejects it and the stack moves on.
        openmpi_core::proto::dispatch(mpi.proc(), mpi.endpoint(), vec![0xAB; 80]);
        let pv = openmpi_core::pvar_snapshot(mpi.endpoint());
        assert_eq!(pv.get("rel.corrupt_frames"), Some(1));
        // The rank still communicates normally afterwards.
        let buf = mpi.alloc(256);
        if mpi.rank() == 0 {
            mpi.write(&buf, 0, &[7u8; 256]);
            mpi.send(&w, 1, 1, &buf, 256);
        } else {
            mpi.recv(&w, 0, 1, &buf, 256);
            assert_eq!(mpi.read(&buf, 0, 256), vec![7u8; 256]);
        }
        mpi.free(buf);
    });
}

/// No transport configured at all: a send fails with
/// `MPI_ERR_UNREACHABLE` at post time instead of panicking the rank, and
/// finalize still completes (the runtime barrier is out-of-band).
#[test]
fn unroutable_peer_fails_the_request_instead_of_panicking() {
    let stack = StackConfig {
        metrics: true,
        ..StackConfig::best()
    };
    let uni = Universe::new(
        elan4::NicConfig::default(),
        qsnet::FabricConfig::default(),
        stack,
        openmpi_core::Transports {
            elan_rails: 0,
            tcp: false,
        },
    );
    let errs: Arc<qsim::Mutex<Vec<Result<(), MpiErrClass>>>> =
        Arc::new(qsim::Mutex::new(Vec::new()));
    let errs2 = errs.clone();
    uni.run_world(2, Placement::RoundRobin, move |mpi| {
        if mpi.rank() == 0 {
            let w = mpi.world();
            let buf = mpi.alloc(1024);
            let r = mpi.isend(&w, 1, 0, &buf, 1024);
            errs2.lock().push(mpi.wait_result(r));
            let pv = openmpi_core::pvar_snapshot(mpi.endpoint());
            assert_eq!(pv.get("rel.reqs_failed"), Some(1));
            mpi.free(buf);
        }
    });
    assert_eq!(*errs.lock(), vec![Err(MpiErrClass::NoTransport)]);
}
