//! Dynamic process management (the paper's §4.1 capability) and fault
//! behaviour: spawn cascades, disjoin/rejoin of contexts, capability
//! exhaustion, link-fault transparency.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use openmpi_core::{Placement, StackConfig, Universe};

/// A parent spawns workers which themselves spawn grandchildren: contexts
/// are claimed and released at three different times during the run.
#[test]
fn nested_dynamic_spawn() {
    let uni = Universe::paper_testbed(StackConfig::best());
    let grandchildren = Arc::new(AtomicUsize::new(0));
    let g2 = grandchildren.clone();
    uni.run_world(1, Placement::RoundRobin, move |mpi| {
        let g3 = g2.clone();
        let inter = mpi.spawn(1, &[2], move |child| {
            let g4 = g3.clone();
            let pc = child.parent_comm().unwrap();
            // Child spawns its own child.
            let gc = child.spawn(1, &[3], move |grand| {
                let gpc = grand.parent_comm().unwrap();
                let buf = grand.alloc(8);
                grand.recv(&gpc, 0, 0, &buf, 8);
                let v = u64::from_le_bytes(grand.read(&buf, 0, 8).try_into().unwrap());
                grand.write(&buf, 0, &(v + 1).to_le_bytes());
                grand.send(&gpc, 0, 1, &buf, 8);
                grand.free(buf);
                g4.fetch_add(1, Ordering::SeqCst);
            });
            let buf = child.alloc(8);
            // Relay: parent -> child -> grandchild -> child -> parent.
            child.recv(&pc, 0, 0, &buf, 8);
            child.send(&gc, 1, 0, &buf, 8);
            child.recv(&gc, 1, 1, &buf, 8);
            child.send(&pc, 0, 1, &buf, 8);
            child.free(buf);
        });
        let buf = mpi.alloc(8);
        mpi.write(&buf, 0, &41u64.to_le_bytes());
        mpi.send(&inter, 1, 0, &buf, 8);
        mpi.recv(&inter, 1, 1, &buf, 8);
        let v = u64::from_le_bytes(mpi.read(&buf, 0, 8).try_into().unwrap());
        assert_eq!(v, 42);
        mpi.free(buf);
    });
    assert_eq!(grandchildren.load(Ordering::SeqCst), 1);
}

/// Contexts released by finished jobs are reusable: run several generations
/// of spawned workers on the same node with a deliberately tiny capability.
#[test]
fn context_recycling_across_generations() {
    let nic = elan4::NicConfig {
        ctxs_per_node: 3, // tiny: forces reuse across generations
        ..Default::default()
    };
    let uni = Universe::new(
        nic,
        qsnet::FabricConfig::default(),
        StackConfig::best(),
        openmpi_core::Transports::default(),
    );
    let done = Arc::new(AtomicUsize::new(0));
    let d2 = done.clone();
    uni.run_world(1, Placement::Nodes(vec![0]), move |mpi| {
        for gen in 0..4 {
            let d3 = d2.clone();
            // Each generation spawns 2 workers on nodes 1 and 2; they
            // finalize (disjoining) before the next generation starts.
            let inter = mpi.spawn(2, &[1, 2], move |worker| {
                let pc = worker.parent_comm().unwrap();
                let buf = worker.alloc(8);
                worker.recv(&pc, 0, 3, &buf, 8);
                worker.send(&pc, 0, 4, &buf, 8);
                worker.free(buf);
                d3.fetch_add(1, Ordering::SeqCst);
            });
            let buf = mpi.alloc(8);
            for w in 1..=2 {
                mpi.write(&buf, 0, &(gen as u64).to_le_bytes());
                mpi.send(&inter, w, 3, &buf, 8);
            }
            for _ in 0..2 {
                mpi.recv(&inter, openmpi_core::ANY_SOURCE, 4, &buf, 8);
            }
            mpi.free(buf);
            // Wait (in virtual time) for the workers to finalize so their
            // contexts return to the capability before the next spawn.
            mpi.compute(qsim::Dur::from_us(200));
        }
    });
    assert_eq!(done.load(Ordering::SeqCst), 8);
}

/// Capability exhaustion is a clean, diagnosable failure.
#[test]
fn capability_exhaustion_panics_cleanly() {
    let nic = elan4::NicConfig {
        ctxs_per_node: 1,
        ..Default::default()
    };
    let cluster = elan4::Cluster::new(nic, qsnet::FabricConfig::default());
    let a = elan4::ElanCtx::attach(&cluster, 0).unwrap();
    assert!(elan4::ElanCtx::attach(&cluster, 0).is_none());
    a.detach();
    assert!(elan4::ElanCtx::attach(&cluster, 0).is_some());
}

/// Hardware-level retransmission keeps MPI traffic correct under injected
/// link faults, for both eager and rendezvous messages and under striping.
#[test]
fn link_faults_are_transparent_to_mpi() {
    let fabric = qsnet::FabricConfig {
        rails: 2,
        ..Default::default()
    };
    let uni = Universe::new(
        elan4::NicConfig::default(),
        fabric,
        StackConfig::best(),
        openmpi_core::Transports {
            elan_rails: 2,
            tcp: false,
        },
    );
    // Fault traffic in both directions between the ranks' nodes.
    uni.cluster.fabric().inject_drops(0, 1, 5);
    uni.cluster.fabric().inject_drops(1, 0, 5);
    uni.run_world(2, Placement::RoundRobin, |mpi| {
        let w = mpi.world();
        let len = 1 << 17;
        let buf = mpi.alloc(len);
        let data: Vec<u8> = (0..len).map(|i| (i % 249) as u8).collect();
        if mpi.rank() == 0 {
            mpi.write(&buf, 0, &data);
            mpi.send(&w, 1, 0, &buf, len);
            mpi.recv(&w, 1, 1, &buf, 64);
        } else {
            mpi.recv(&w, 0, 0, &buf, len);
            assert_eq!(mpi.read(&buf, 0, len), data);
            mpi.send(&w, 0, 1, &buf, 64);
        }
        mpi.free(buf);
    });
    // All of the forward-direction drops and most of the reverse ones are
    // consumed (the reverse path carries only a handful of control packets).
    assert!(uni.cluster.fabric().stats().retries >= 8);
}

/// A lost delivery-confirmation control frame no longer strands the sender:
/// the TCP PTL's reliability layer retransmits the FIN_ACK after its timeout
/// and the transfer completes with no watchdog abort (the watchdog stays
/// armed throughout to prove it never fires).
#[test]
fn retransmission_heals_dropped_fin_ack() {
    let stack = StackConfig {
        inline_first_frag: true,
        metrics: true,
        watchdog_interval: 8,
        watchdog_grace: 4,
        ..StackConfig::best()
    };
    let uni = Universe::new(
        elan4::NicConfig::default(),
        qsnet::FabricConfig::default(),
        stack,
        openmpi_core::Transports {
            elan_rails: 0,
            tcp: true,
        },
    );
    // Swallow the single FIN_ACK of the one rendezvous message below.
    uni.tcp_net
        .inject_drop(openmpi_core::hdr::HdrType::FinAck, 1);

    type Captured = Vec<(u32, Arc<openmpi_core::Endpoint>)>;
    let eps: Arc<qsim::Mutex<Captured>> = Arc::new(qsim::Mutex::new(Vec::new()));
    let e2 = eps.clone();
    uni.run_world(2, Placement::RoundRobin, move |mpi| {
        e2.lock().push((mpi.rank() as u32, mpi.endpoint().clone()));
        let w = mpi.world();
        let len = 64 << 10;
        let buf = mpi.alloc(len);
        if mpi.rank() == 0 {
            mpi.write(&buf, 0, &vec![0xC3u8; len]);
            mpi.send(&w, 1, 7, &buf, len);
        } else {
            mpi.recv(&w, 0, 7, &buf, len);
            assert_eq!(mpi.read(&buf, 0, len), vec![0xC3u8; len]);
        }
        mpi.free(buf);
    });

    let eps = eps.lock();
    for (rank, ep) in eps.iter() {
        // No rank stalled: the retransmit healed the loss long before the
        // watchdog's grace period elapsed.
        assert_eq!(ep.introspect.lock().stalls_detected, 0, "rank {rank}");
        let pv = openmpi_core::pvar_snapshot(ep);
        if *rank == 1 {
            // The receiver owns the FIN_ACK: exactly one resend healed it.
            assert_eq!(pv.get("rel.retransmits"), Some(1), "rank 1 resends once");
            assert_eq!(pv.get("rel.gave_up"), Some(0));
        } else {
            assert_eq!(pv.get("rel.retransmits"), Some(0), "sender had no loss");
        }
        // All retransmit buffers drained before finalize.
        assert_eq!(pv.get("queues.ctl_inflight"), Some(0));
        assert_eq!(pv.get("queues.failed_peers"), Some(0));
    }
    // Exactly the one injected frame vanished.
    assert_eq!(uni.tcp_net.stats().frames_injected, 1);
}

/// With the reliability layer disabled, a lost delivery-confirmation control
/// frame leaves the sender stranded mid-rendezvous; the progress watchdog
/// must detect it deterministically and name the protocol phase and peer in
/// its diagnostic (the last-resort path the retransmit layer normally
/// preempts).
#[test]
fn watchdog_diagnoses_dropped_fin_ack() {
    let stack = StackConfig {
        // Inline first fragments self-credit the TCP share, so dropping the
        // lone FIN_ACK strands the sender exactly one fragment short.
        inline_first_frag: true,
        tcp_reliability: false,
        watchdog_interval: 8,
        watchdog_grace: 4,
        ..StackConfig::best()
    };
    let uni = Universe::new(
        elan4::NicConfig::default(),
        qsnet::FabricConfig::default(),
        stack,
        openmpi_core::Transports {
            elan_rails: 0,
            tcp: true,
        },
    );
    // Swallow the single FIN_ACK of the one rendezvous message below.
    uni.tcp_net
        .inject_drop(openmpi_core::hdr::HdrType::FinAck, 1);

    type Captured = Vec<(u32, Arc<openmpi_core::Endpoint>)>;
    let eps: Arc<qsim::Mutex<Captured>> = Arc::new(qsim::Mutex::new(Vec::new()));
    let e2 = eps.clone();
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        uni.run_world(2, Placement::RoundRobin, move |mpi| {
            e2.lock().push((mpi.rank() as u32, mpi.endpoint().clone()));
            let w = mpi.world();
            let len = 64 << 10;
            let buf = mpi.alloc(len);
            if mpi.rank() == 0 {
                mpi.send(&w, 1, 7, &buf, len);
            } else {
                mpi.recv(&w, 0, 7, &buf, len);
            }
            mpi.free(buf);
        });
    }));

    // The stalled rank aborts the simulation through a watchdog panic whose
    // message is the structured diagnostic.
    let payload = result.expect_err("watchdog must fire");
    let msg = payload
        .downcast_ref::<String>()
        .expect("panic carries a rendered message")
        .clone();
    assert!(
        msg.contains("progress watchdog"),
        "diagnostic header: {msg}"
    );
    assert!(
        msg.contains("rdma-read+fin_ack"),
        "names the protocol phase: {msg}"
    );
    assert!(
        msg.contains("handshake done, awaiting delivery confirmation"),
        "phase detail: {msg}"
    );
    assert!(msg.contains("peer rank 1"), "names the peer: {msg}");

    // The diagnostic is also recorded on the stalled endpoint, and only
    // there: the receiver finished its transfer and parks in finalize.
    let eps = eps.lock();
    for (rank, ep) in eps.iter() {
        let ins = ep.introspect.lock();
        if *rank == 0 {
            assert_eq!(ins.stalls_detected, 1, "sender stalls once");
            assert_eq!(ins.diagnostics.len(), 1);
            let d = &ins.diagnostics[0];
            assert_eq!(d.rank, 0);
            assert_eq!(d.stuck.len(), 1);
            assert_eq!(d.stuck[0].peer, "rank 1");
            assert_eq!(d.stuck[0].tag, "7");
            assert_eq!(d.stuck[0].kind, "send");
            assert_eq!(d.stuck[0].bytes_total, 64 << 10);
            assert!(
                d.stuck[0].bytes_done < d.stuck[0].bytes_total,
                "payload incomplete"
            );
            let json = d.to_json();
            assert!(json.contains("\"kind\":\"send\""), "json: {json}");
            assert!(json.contains("\"peer\":\"rank 1\""), "json: {json}");
        } else {
            assert_eq!(ins.stalls_detected, 0, "receiver completed cleanly");
        }
    }
    // Exactly the one injected frame vanished.
    assert_eq!(uni.tcp_net.stats().frames_injected, 1);
}

/// The same job re-run after another job used the cluster sees a clean
/// machine (no cross-run interference through the shared fabric state).
#[test]
fn sequential_jobs_share_the_machine() {
    let uni = Universe::paper_testbed(StackConfig::best());
    for round in 0..3u8 {
        uni.run_world(4, Placement::RoundRobin, move |mpi| {
            let w = mpi.world();
            let b = mpi.alloc(128);
            if mpi.rank() == 0 {
                mpi.write(&b, 0, &[round; 128]);
            }
            mpi.bcast(&w, 0, &b, 128);
            assert_eq!(mpi.read(&b, 0, 128), vec![round; 128]);
            mpi.free(b);
        });
    }
    for node in 0..8 {
        assert_eq!(uni.cluster.mem_in_use(node), 0);
    }
}
