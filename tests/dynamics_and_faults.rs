//! Dynamic process management (the paper's §4.1 capability) and fault
//! behaviour: spawn cascades, disjoin/rejoin of contexts, capability
//! exhaustion, link-fault transparency.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use openmpi_core::{Placement, StackConfig, Universe};

/// A parent spawns workers which themselves spawn grandchildren: contexts
/// are claimed and released at three different times during the run.
#[test]
fn nested_dynamic_spawn() {
    let uni = Universe::paper_testbed(StackConfig::best());
    let grandchildren = Arc::new(AtomicUsize::new(0));
    let g2 = grandchildren.clone();
    uni.run_world(1, Placement::RoundRobin, move |mpi| {
        let g3 = g2.clone();
        let inter = mpi.spawn(1, &[2], move |child| {
            let g4 = g3.clone();
            let pc = child.parent_comm().unwrap();
            // Child spawns its own child.
            let gc = child.spawn(1, &[3], move |grand| {
                let gpc = grand.parent_comm().unwrap();
                let buf = grand.alloc(8);
                grand.recv(&gpc, 0, 0, &buf, 8);
                let v = u64::from_le_bytes(grand.read(&buf, 0, 8).try_into().unwrap());
                grand.write(&buf, 0, &(v + 1).to_le_bytes());
                grand.send(&gpc, 0, 1, &buf, 8);
                grand.free(buf);
                g4.fetch_add(1, Ordering::SeqCst);
            });
            let buf = child.alloc(8);
            // Relay: parent -> child -> grandchild -> child -> parent.
            child.recv(&pc, 0, 0, &buf, 8);
            child.send(&gc, 1, 0, &buf, 8);
            child.recv(&gc, 1, 1, &buf, 8);
            child.send(&pc, 0, 1, &buf, 8);
            child.free(buf);
        });
        let buf = mpi.alloc(8);
        mpi.write(&buf, 0, &41u64.to_le_bytes());
        mpi.send(&inter, 1, 0, &buf, 8);
        mpi.recv(&inter, 1, 1, &buf, 8);
        let v = u64::from_le_bytes(mpi.read(&buf, 0, 8).try_into().unwrap());
        assert_eq!(v, 42);
        mpi.free(buf);
    });
    assert_eq!(grandchildren.load(Ordering::SeqCst), 1);
}

/// Contexts released by finished jobs are reusable: run several generations
/// of spawned workers on the same node with a deliberately tiny capability.
#[test]
fn context_recycling_across_generations() {
    let nic = elan4::NicConfig {
        ctxs_per_node: 3, // tiny: forces reuse across generations
        ..Default::default()
    };
    let uni = Universe::new(
        nic,
        qsnet::FabricConfig::default(),
        StackConfig::best(),
        openmpi_core::Transports::default(),
    );
    let done = Arc::new(AtomicUsize::new(0));
    let d2 = done.clone();
    uni.run_world(1, Placement::Nodes(vec![0]), move |mpi| {
        for gen in 0..4 {
            let d3 = d2.clone();
            // Each generation spawns 2 workers on nodes 1 and 2; they
            // finalize (disjoining) before the next generation starts.
            let inter = mpi.spawn(2, &[1, 2], move |worker| {
                let pc = worker.parent_comm().unwrap();
                let buf = worker.alloc(8);
                worker.recv(&pc, 0, 3, &buf, 8);
                worker.send(&pc, 0, 4, &buf, 8);
                worker.free(buf);
                d3.fetch_add(1, Ordering::SeqCst);
            });
            let buf = mpi.alloc(8);
            for w in 1..=2 {
                mpi.write(&buf, 0, &(gen as u64).to_le_bytes());
                mpi.send(&inter, w, 3, &buf, 8);
            }
            for _ in 0..2 {
                mpi.recv(&inter, openmpi_core::ANY_SOURCE, 4, &buf, 8);
            }
            mpi.free(buf);
            // Wait (in virtual time) for the workers to finalize so their
            // contexts return to the capability before the next spawn.
            mpi.compute(qsim::Dur::from_us(200));
        }
    });
    assert_eq!(done.load(Ordering::SeqCst), 8);
}

/// Capability exhaustion is a clean, diagnosable failure.
#[test]
fn capability_exhaustion_panics_cleanly() {
    let nic = elan4::NicConfig {
        ctxs_per_node: 1,
        ..Default::default()
    };
    let cluster = elan4::Cluster::new(nic, qsnet::FabricConfig::default());
    let a = elan4::ElanCtx::attach(&cluster, 0).unwrap();
    assert!(elan4::ElanCtx::attach(&cluster, 0).is_none());
    a.detach();
    assert!(elan4::ElanCtx::attach(&cluster, 0).is_some());
}

/// Hardware-level retransmission keeps MPI traffic correct under injected
/// link faults, for both eager and rendezvous messages and under striping.
#[test]
fn link_faults_are_transparent_to_mpi() {
    let fabric = qsnet::FabricConfig {
        rails: 2,
        ..Default::default()
    };
    let uni = Universe::new(
        elan4::NicConfig::default(),
        fabric,
        StackConfig::best(),
        openmpi_core::Transports {
            elan_rails: 2,
            tcp: false,
        },
    );
    // Fault traffic in both directions between the ranks' nodes.
    uni.cluster.fabric().inject_drops(0, 1, 5);
    uni.cluster.fabric().inject_drops(1, 0, 5);
    uni.run_world(2, Placement::RoundRobin, |mpi| {
        let w = mpi.world();
        let len = 1 << 17;
        let buf = mpi.alloc(len);
        let data: Vec<u8> = (0..len).map(|i| (i % 249) as u8).collect();
        if mpi.rank() == 0 {
            mpi.write(&buf, 0, &data);
            mpi.send(&w, 1, 0, &buf, len);
            mpi.recv(&w, 1, 1, &buf, 64);
        } else {
            mpi.recv(&w, 0, 0, &buf, len);
            assert_eq!(mpi.read(&buf, 0, len), data);
            mpi.send(&w, 0, 1, &buf, 64);
        }
        mpi.free(buf);
    });
    // All of the forward-direction drops and most of the reverse ones are
    // consumed (the reverse path carries only a handful of control packets).
    assert!(uni.cluster.fabric().stats().retries >= 8);
}

/// The same job re-run after another job used the cluster sees a clean
/// machine (no cross-run interference through the shared fabric state).
#[test]
fn sequential_jobs_share_the_machine() {
    let uni = Universe::paper_testbed(StackConfig::best());
    for round in 0..3u8 {
        uni.run_world(4, Placement::RoundRobin, move |mpi| {
            let w = mpi.world();
            let b = mpi.alloc(128);
            if mpi.rank() == 0 {
                mpi.write(&b, 0, &[round; 128]);
            }
            mpi.bcast(&w, 0, &b, 128);
            assert_eq!(mpi.read(&b, 0, 128), vec![round; 128]);
            mpi.free(b);
        });
    }
    for node in 0..8 {
        assert_eq!(uni.cluster.mem_in_use(node), 0);
    }
}
