//! The registration (pin-down) cache end to end: repeated buffers hit,
//! capacity pressure evicts LRU mappings, disabling the cache unmaps per
//! request, and failed requests release their registrations instead of
//! leaking them. Every scenario also proves MMU hygiene: after finalize
//! (which asserts `mapping_count() == 0` itself) the endpoints report no
//! live mappings and no cached bytes.

use std::sync::Arc;

use openmpi_core::{MpiErrClass, Placement, StackConfig, Transports, Universe};

type Captured = Vec<(u32, Arc<openmpi_core::Endpoint>)>;

fn elan_universe(stack: StackConfig) -> Arc<Universe> {
    Universe::new(
        elan4::NicConfig::default(),
        qsnet::FabricConfig::default(),
        stack,
        Transports::default(),
    )
}

fn captured() -> (Arc<qsim::Mutex<Captured>>, Arc<qsim::Mutex<Captured>>) {
    let eps: Arc<qsim::Mutex<Captured>> = Arc::new(qsim::Mutex::new(Vec::new()));
    (eps.clone(), eps)
}

fn assert_hygiene(eps: &qsim::Mutex<Captured>) {
    for (rank, ep) in eps.lock().iter() {
        assert_eq!(ep.mapping_count(), 0, "rank {rank} leaked MMU mappings");
        let s = ep.reg_stats();
        assert_eq!(s.entries, 0, "rank {rank} kept cache entries past drain");
        assert_eq!(s.mapped_bytes, 0, "rank {rank} kept cached bytes");
    }
}

/// A rendezvous ping-pong reusing the same buffers: each rank registers its
/// send and receive buffer once (two misses) and every later iteration
/// hits, with the `reg.*` pvars agreeing with the cache's own stats.
#[test]
fn repeated_buffers_hit_the_cache() {
    let (e2, eps) = captured();
    let iters = 8usize;
    let len = 64 << 10;
    elan_universe(StackConfig::best()).run_world(2, Placement::RoundRobin, move |mpi| {
        e2.lock().push((mpi.rank() as u32, mpi.endpoint().clone()));
        let w = mpi.world();
        let sbuf = mpi.alloc(len);
        let rbuf = mpi.alloc(len);
        for _ in 0..iters {
            if mpi.rank() == 0 {
                mpi.send(&w, 1, 0, &sbuf, len);
                mpi.recv(&w, 1, 0, &rbuf, len);
            } else {
                mpi.recv(&w, 0, 0, &rbuf, len);
                mpi.send(&w, 0, 0, &sbuf, len);
            }
        }
        let s = mpi.endpoint().reg_stats();
        assert_eq!(s.misses, 2, "one registration per buffer");
        assert_eq!(s.hits, 2 * (iters as u64 - 1), "every reuse must hit");
        assert_eq!(s.evictions, 0, "well under capacity");
        let pv = openmpi_core::pvar_snapshot(mpi.endpoint());
        assert_eq!(pv.get("reg.hits"), Some(s.hits));
        assert_eq!(pv.get("reg.misses"), Some(s.misses));
        mpi.free(sbuf);
        mpi.free(rbuf);
    });
    assert_hygiene(&eps);
}

/// With `reg.cache` off every rendezvous maps and unmaps directly: the
/// cache counts nothing and nothing survives any request.
#[test]
fn disabled_cache_unmaps_per_request_and_counts_nothing() {
    let stack = StackConfig {
        reg_cache: false,
        ..StackConfig::best()
    };
    let (e2, eps) = captured();
    let len = 64 << 10;
    elan_universe(stack).run_world(2, Placement::RoundRobin, move |mpi| {
        e2.lock().push((mpi.rank() as u32, mpi.endpoint().clone()));
        let w = mpi.world();
        let buf = mpi.alloc(len);
        for _ in 0..4 {
            if mpi.rank() == 0 {
                mpi.send(&w, 1, 0, &buf, len);
            } else {
                mpi.recv(&w, 0, 0, &buf, len);
            }
        }
        // Blocking calls completed, so even mid-run nothing stays mapped.
        assert_eq!(mpi.endpoint().mapping_count(), 0);
        assert_eq!(mpi.endpoint().reg_stats(), Default::default());
        mpi.free(buf);
    });
    assert_hygiene(&eps);
}

/// A one-entry cache cycling through distinct buffers must evict the LRU
/// mapping on every new registration instead of growing without bound.
#[test]
fn capacity_pressure_evicts_lru_mappings() {
    let stack = StackConfig {
        reg_cache_entries: 1,
        ..StackConfig::best()
    };
    let (e2, eps) = captured();
    let len = 16 << 10;
    elan_universe(stack).run_world(2, Placement::RoundRobin, move |mpi| {
        e2.lock().push((mpi.rank() as u32, mpi.endpoint().clone()));
        let w = mpi.world();
        let bufs: Vec<_> = (0..3).map(|_| mpi.alloc(len)).collect();
        for round in 0..6 {
            let b = &bufs[round % bufs.len()];
            if mpi.rank() == 0 {
                mpi.send(&w, 1, 0, b, len);
            } else {
                mpi.recv(&w, 0, 0, b, len);
            }
        }
        let s = mpi.endpoint().reg_stats();
        assert!(s.evictions > 0, "rotating buffers must evict, got {s:?}");
        assert!(s.entries <= 1, "capacity is one entry, got {s:?}");
        for b in bufs {
            mpi.free(b);
        }
    });
    assert_hygiene(&eps);
}

/// Exhausted retransmissions fail the stranded send; the failed request
/// must release its registration (leak-safety through `fail_request`), the
/// error must be surfaced — `waitany_result` for the sender, an
/// error-carrying `Status` from `wait_status` for a receive stranded on
/// the failed peer — and `rel.errs_surfaced` must account for both.
#[test]
fn failed_requests_release_registrations_and_surface_errors() {
    let stack = StackConfig {
        inline_first_frag: true,
        metrics: true,
        tcp_retransmit_timeout: qsim::Dur::from_us(100),
        tcp_retransmit_backoff: 2,
        tcp_max_retries: 2,
        ..StackConfig::best()
    };
    let uni = Universe::new(
        elan4::NicConfig::default(),
        qsnet::FabricConfig::default(),
        stack,
        Transports {
            elan_rails: 0,
            tcp: true,
        },
    );
    // Swallow the FIN_ACK and every retransmission of it.
    uni.tcp_net
        .inject_drop(openmpi_core::hdr::HdrType::FinAck, 99);

    let (e2, eps) = captured();
    uni.run_world(2, Placement::RoundRobin, move |mpi| {
        e2.lock().push((mpi.rank() as u32, mpi.endpoint().clone()));
        let w = mpi.world();
        let len = 64 << 10;
        let buf = mpi.alloc(len);
        if mpi.rank() == 0 {
            let r = mpi.isend(&w, 1, 7, &buf, len);
            let (idx, res) = mpi.waitany_result(&[r]);
            assert_eq!(idx, 0);
            assert_eq!(res, Err(MpiErrClass::ProcFailed));
        } else {
            // This receive pulls its payload before the FIN_ACK loss: fine.
            let r1 = mpi.irecv(&w, 0, 7, &buf, len);
            // This one can only be satisfied by the peer we are about to
            // declare failed: it completes with an error status instead.
            let spare = mpi.alloc(len);
            let r2 = mpi.irecv(&w, 0, 9, &spare, len);
            assert_eq!(mpi.wait_result(r1), Ok(()));
            let st = mpi.wait_status(r2);
            assert_eq!(st.error, Some(MpiErrClass::ProcFailed));
            assert_eq!(st.source, 0, "selector survives into the status");
            assert_eq!(st.tag, 9);
            mpi.free(spare);
        }
        let pv = openmpi_core::pvar_snapshot(mpi.endpoint());
        assert_eq!(pv.get("rel.reqs_failed"), Some(1));
        assert_eq!(
            pv.get("rel.errs_surfaced"),
            Some(1),
            "the app saw the error it was handed"
        );
        mpi.free(buf);
    });
    assert_hygiene(&eps);
}

/// `waitall_result` reports per-request error classes in posting order
/// (MPI_ERR_IN_STATUS), while plain `waitall` keeps its ignore-errors
/// contract; `test()` reaps completed requests so they cannot leak.
#[test]
fn waitall_result_surfaces_every_error_in_order() {
    let stack = StackConfig {
        metrics: true,
        ..StackConfig::best()
    };
    let uni = Universe::new(
        elan4::NicConfig::default(),
        qsnet::FabricConfig::default(),
        stack,
        Transports {
            elan_rails: 0,
            tcp: false,
        },
    );
    let (e2, eps) = captured();
    uni.run_world(2, Placement::RoundRobin, move |mpi| {
        e2.lock().push((mpi.rank() as u32, mpi.endpoint().clone()));
        if mpi.rank() == 0 {
            let w = mpi.world();
            let buf = mpi.alloc(2048);
            let r1 = mpi.isend(&w, 1, 0, &buf, 2048);
            let r2 = mpi.isend(&w, 1, 1, &buf, 2048);
            assert_eq!(
                mpi.waitall_result([r1, r2]),
                Err(vec![
                    Some(MpiErrClass::NoTransport),
                    Some(MpiErrClass::NoTransport)
                ])
            );
            // A completed (failed) request: test() reaps it on first sight.
            let r3 = mpi.isend(&w, 1, 2, &buf, 2048);
            assert!(mpi.test(r3), "failed request is done");
            assert!(mpi.test(r3), "reaped request stays done, not leaked");
            let pv = openmpi_core::pvar_snapshot(mpi.endpoint());
            assert_eq!(pv.get("rel.reqs_failed"), Some(3));
            assert_eq!(pv.get("rel.errs_surfaced"), Some(2), "waitall_result");
            assert_eq!(pv.get("queues.send_reqs_live"), Some(0));
            mpi.free(buf);
        }
    });
    assert_hygiene(&eps);
}
