//! End-to-end telemetry: counters flip with the protocol threshold,
//! histograms fill during real traffic, the trace ring stays bounded, and
//! the Chrome trace export is well-formed with per-rank monotone time.

use std::sync::Arc;

use openmpi_core::{chrome_trace_json, Metrics, Placement, StackConfig, TraceLog, Universe};
use qsim::Mutex;

/// Two-rank ping-pong of `iters` round trips of `len`-byte messages under
/// `cfg`; returns each rank's metrics and trace ring plus the sim report.
fn pingpong(
    cfg: StackConfig,
    len: usize,
    iters: usize,
) -> (Vec<Metrics>, Vec<TraceLog>, qsim::Report) {
    let rows: Arc<Mutex<Vec<(u32, Metrics, TraceLog)>>> = Arc::new(Mutex::new(Vec::new()));
    let r2 = rows.clone();
    let report = Universe::paper_testbed(cfg).run_world(2, Placement::RoundRobin, move |mpi| {
        let w = mpi.world();
        let sbuf = mpi.alloc(len.max(1));
        let rbuf = mpi.alloc(len.max(1));
        for _ in 0..iters {
            if mpi.rank() == 0 {
                mpi.send(&w, 1, 0, &sbuf, len);
                mpi.recv(&w, 1, 0, &rbuf, len);
            } else {
                mpi.recv(&w, 0, 0, &rbuf, len);
                mpi.send(&w, 0, 0, &sbuf, len);
            }
        }
        let ep = mpi.endpoint();
        r2.lock().push((
            mpi.rank() as u32,
            ep.metrics_snapshot(),
            ep.trace.lock().clone(),
        ));
    });
    let mut rows = std::mem::take(&mut *rows.lock());
    rows.sort_by_key(|(r, ..)| *r);
    let metrics = rows.iter().map(|(_, m, _)| m.clone()).collect();
    let traces = rows.into_iter().map(|(_, _, t)| t).collect();
    (metrics, traces, report)
}

fn telemetry_cfg() -> StackConfig {
    StackConfig {
        metrics: true,
        trace: true,
        ..StackConfig::default()
    }
}

#[test]
fn eager_vs_rendezvous_counters_flip_across_threshold() {
    let cfg = telemetry_cfg();
    let small = cfg.eager_limit; // right at the limit: still eager
    let large = cfg.eager_limit + 1;

    let (m, _, _) = pingpong(cfg.clone(), small, 5);
    for (rank, m) in m.iter().enumerate() {
        assert_eq!(m.counters.eager_sent, 5, "rank {rank} eager sends");
        assert_eq!(m.counters.rndv_sent, 0, "rank {rank} below threshold");
        assert_eq!(m.counters.rdma_descriptors, 0, "eager path never RDMAs");
    }

    let (m, _, _) = pingpong(cfg, large, 5);
    for (rank, m) in m.iter().enumerate() {
        assert_eq!(m.counters.eager_sent, 0, "rank {rank} above threshold");
        assert_eq!(m.counters.rndv_sent, 5, "rank {rank} rendezvous sends");
        assert!(m.counters.rdma_descriptors > 0, "rank {rank} issued RDMA");
        assert!(
            m.counters.rdma_bytes >= 5 * large as u64,
            "rank {rank} RDMA bytes"
        );
    }
}

#[test]
fn histograms_fill_during_pingpong() {
    let cfg = telemetry_cfg();
    let large = cfg.eager_limit + 1;
    let (m, _, _) = pingpong(cfg, large, 6);
    for (rank, m) in m.iter().enumerate() {
        // Every request completes, and completion time is recorded for each:
        // sends (eager + rendezvous) plus every posted receive.
        let expect = m.counters.eager_sent + m.counters.rndv_sent + m.counters.recvs_posted;
        assert_eq!(
            m.completion_time.count(),
            expect,
            "rank {rank} completion samples"
        );
        assert_eq!(
            m.match_time.count(),
            m.counters.matches,
            "rank {rank} match samples"
        );
        assert_eq!(
            m.rndv_handshake.count(),
            m.counters.rndv_sent,
            "rank {rank} one handshake per rendezvous send"
        );
        assert!(
            m.completion_time.sum_ns() > 0,
            "rank {rank} nonzero latency"
        );
        assert!(m.completion_time.mean_ns().unwrap() > 0.0);
        assert!(
            m.rndv_handshake.min_ns().unwrap() > 0,
            "handshake takes time"
        );
        // The JSON snapshot carries the same totals.
        let json = m.to_json();
        assert!(
            json.contains(&format!("\"count\":{expect}")),
            "rank {rank} json"
        );
    }
}

#[test]
fn metrics_off_means_all_zero() {
    let (m, traces, _) = pingpong(StackConfig::default(), 4096, 4);
    for (rank, m) in m.iter().enumerate() {
        assert_eq!(m.counters.eager_sent, 0, "rank {rank} gated off");
        assert_eq!(m.counters.rndv_sent, 0);
        assert_eq!(m.counters.progress_iterations, 0);
        assert_eq!(m.completion_time.count(), 0);
        assert_eq!(m.match_time.count(), 0);
    }
    for t in &traces {
        assert!(t.is_empty(), "tracing off records nothing");
    }
}

#[test]
fn trace_ring_stays_bounded_and_counts_drops() {
    let mut cfg = telemetry_cfg();
    cfg.trace_capacity = 16;
    let (_, traces, _) = pingpong(cfg, 4096, 20);
    for (rank, t) in traces.iter().enumerate() {
        assert!(t.len() <= 16, "rank {rank} ring bounded");
        assert!(t.dropped() > 0, "rank {rank} long run must evict");
        assert_eq!(t.capacity(), 16);
    }
}

#[test]
fn sim_report_profiles_the_run() {
    let (_, _, report) = pingpong(telemetry_cfg(), 8192, 4);
    assert!(report.events_processed > 0);
    assert!(report.max_queue_depth > 0);
    assert!(report.end_time.as_ns() > 0);
    assert_eq!(report.procs_spawned, 2);
}

/// Minimal JSON syntax checker (handles backslash escapes inside strings).
fn check_json(s: &str) {
    fn skip_ws(b: &[u8], mut i: usize) -> usize {
        while i < b.len() && (b[i] as char).is_ascii_whitespace() {
            i += 1;
        }
        i
    }
    fn value(b: &[u8], i: usize) -> Result<usize, String> {
        let i = skip_ws(b, i);
        match b.get(i) {
            Some(b'{') => {
                let mut i = skip_ws(b, i + 1);
                if b.get(i) == Some(&b'}') {
                    return Ok(i + 1);
                }
                loop {
                    i = string(b, skip_ws(b, i))?;
                    i = skip_ws(b, i);
                    if b.get(i) != Some(&b':') {
                        return Err(format!("expected ':' at {i}"));
                    }
                    i = value(b, i + 1)?;
                    i = skip_ws(b, i);
                    match b.get(i) {
                        Some(b',') => i += 1,
                        Some(b'}') => return Ok(i + 1),
                        _ => return Err(format!("bad object at {i}")),
                    }
                }
            }
            Some(b'[') => {
                let mut i = skip_ws(b, i + 1);
                if b.get(i) == Some(&b']') {
                    return Ok(i + 1);
                }
                loop {
                    i = value(b, i)?;
                    i = skip_ws(b, i);
                    match b.get(i) {
                        Some(b',') => i += 1,
                        Some(b']') => return Ok(i + 1),
                        _ => return Err(format!("bad array at {i}")),
                    }
                }
            }
            Some(b'"') => string(b, i),
            Some(b't') if b[i..].starts_with(b"true") => Ok(i + 4),
            Some(b'f') if b[i..].starts_with(b"false") => Ok(i + 5),
            Some(b'n') if b[i..].starts_with(b"null") => Ok(i + 4),
            Some(c) if c.is_ascii_digit() || *c == b'-' => {
                let mut i = i + 1;
                while i < b.len()
                    && (b[i].is_ascii_digit() || matches!(b[i], b'.' | b'e' | b'E' | b'+' | b'-'))
                {
                    i += 1;
                }
                Ok(i)
            }
            _ => Err(format!("bad value at {i}")),
        }
    }
    fn string(b: &[u8], i: usize) -> Result<usize, String> {
        if b.get(i) != Some(&b'"') {
            return Err(format!("expected string at {i}"));
        }
        let mut i = i + 1;
        while i < b.len() && b[i] != b'"' {
            if b[i] == b'\\' {
                i += 1;
            }
            i += 1;
        }
        if i < b.len() {
            Ok(i + 1)
        } else {
            Err("unterminated string".into())
        }
    }
    let b = s.as_bytes();
    let end = value(b, 0).unwrap_or_else(|e| panic!("invalid JSON: {e}"));
    assert_eq!(skip_ws(b, end), b.len(), "trailing garbage after JSON");
}

/// The file the harness writes with `--trace-out` must parse as JSON when
/// read back — including every escape the exporter emits.
#[test]
fn chrome_trace_file_round_trips_as_valid_json() {
    let (_, traces, _) = pingpong(telemetry_cfg(), 16384, 3);
    let logs: Vec<(u32, &TraceLog)> = traces
        .iter()
        .enumerate()
        .map(|(r, t)| (r as u32, t))
        .collect();
    let path = std::env::temp_dir().join(format!("ompi-trace-{}.json", std::process::id()));
    std::fs::write(&path, chrome_trace_json(&logs)).unwrap();
    let back = std::fs::read_to_string(&path).unwrap();
    std::fs::remove_file(&path).unwrap();
    check_json(&back);
    assert!(back.contains("\"traceEvents\""));
    assert!(back.contains("\"pid\":"), "per-rank process ids");
}

#[test]
fn chrome_export_is_valid_json_with_monotone_per_rank_time() {
    let (_, traces, _) = pingpong(telemetry_cfg(), 16384, 5);
    let logs: Vec<(u32, &TraceLog)> = traces
        .iter()
        .enumerate()
        .map(|(r, t)| (r as u32, t))
        .collect();
    let json = chrome_trace_json(&logs);
    check_json(&json);
    assert!(json.contains("\"traceEvents\""));
    assert!(json.contains("\"ph\":\"b\""), "spans open");
    assert!(json.contains("\"ph\":\"e\""), "spans close");

    // Each rank's timeline must be non-decreasing, and every span that
    // begins must end at or after its begin.
    for (rank, t) in traces.iter().enumerate() {
        let mut last = 0u64;
        let mut open = std::collections::HashMap::new();
        for (time, ev) in t.events() {
            let ns = time.as_ns();
            assert!(ns >= last, "rank {rank} time went backwards");
            last = ns;
            match ev {
                openmpi_core::TraceEvent::SpanBegin { id, cat, .. } => {
                    open.insert((*cat, *id), ns);
                }
                openmpi_core::TraceEvent::SpanEnd { id, cat, .. } => {
                    let begin = open
                        .remove(&(*cat, *id))
                        .unwrap_or_else(|| panic!("rank {rank} span {cat}/{id} ends unopened"));
                    assert!(ns >= begin, "rank {rank} span {cat}/{id} negative length");
                }
                _ => {}
            }
        }
        assert!(open.is_empty(), "rank {rank} spans left open: {open:?}");
    }
}
