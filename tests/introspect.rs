//! MPI_T-style introspection: the cvar registry (read, validated write,
//! runtime effect), the pvar snapshot/aggregation plane, and a clean
//! watchdog-armed run producing zero stalls with pvar totals that agree
//! with the metrics plane.

use std::sync::Arc;

use openmpi_core::{CvarValue, Placement, StackConfig, Universe};

/// Every registry entry is readable, defaults mirror the config, and bad
/// writes (unknown name, read-only target, type mismatch, invalid value)
/// fail with a diagnostic instead of corrupting the stack.
#[test]
fn cvar_registry_reads_defaults_and_validates_writes() {
    let cfg = StackConfig::best();
    let eager = cfg.eager_limit as u64;
    let uni = Universe::paper_testbed(cfg);
    uni.run_world(1, Placement::RoundRobin, move |mpi| {
        let ep = mpi.endpoint();

        let json = openmpi_core::cvars_json(ep);
        for name in [
            "pml.eager_limit",
            "pml.rdma_scheme",
            "ptl.completion_mode",
            "telemetry.metrics",
            "watchdog.interval",
            "watchdog.grace",
        ] {
            assert!(json.contains(&format!("\"{name}\"")), "{name} in {json}");
        }

        assert_eq!(
            openmpi_core::cvar_read(ep, "pml.eager_limit"),
            Some(CvarValue::U64(eager))
        );
        assert_eq!(
            openmpi_core::cvar_read(ep, "telemetry.metrics"),
            Some(CvarValue::Bool(false))
        );
        assert_eq!(openmpi_core::cvar_read(ep, "no.such.var"), None);

        // Unknown variable.
        assert!(openmpi_core::cvar_write(ep, "no.such.var", CvarValue::U64(1)).is_err());
        // Read-only variable.
        assert!(
            openmpi_core::cvar_write(ep, "pml.rdma_scheme", CvarValue::Str("write".into()))
                .is_err()
        );
        // Type mismatch on a writable variable.
        assert!(openmpi_core::cvar_write(ep, "pml.eager_limit", CvarValue::Bool(true)).is_err());
        // Out-of-range value.
        assert!(openmpi_core::cvar_write(ep, "pml.eager_limit", CvarValue::U64(1 << 30)).is_err());
        assert!(openmpi_core::cvar_write(ep, "watchdog.grace", CvarValue::U64(0)).is_err());

        // A valid write takes effect immediately and reads back.
        openmpi_core::cvar_write(ep, "watchdog.grace", CvarValue::U64(9)).unwrap();
        assert_eq!(
            openmpi_core::cvar_read(ep, "watchdog.grace"),
            Some(CvarValue::U64(9))
        );
        openmpi_core::cvar_write(ep, "telemetry.metrics", CvarValue::Bool(true)).unwrap();
        assert_eq!(
            openmpi_core::cvar_read(ep, "telemetry.metrics"),
            Some(CvarValue::Bool(true))
        );
    });
}

/// Writing `pml.eager_limit` mid-run changes protocol selection for the
/// very next send: the same message length goes eager before the write and
/// rendezvous after it.
#[test]
fn eager_limit_write_flips_protocol_at_runtime() {
    let stack = StackConfig {
        metrics: true,
        ..StackConfig::best()
    };
    let uni = Universe::paper_testbed(stack);
    let metrics: Arc<qsim::Mutex<Vec<openmpi_core::Metrics>>> =
        Arc::new(qsim::Mutex::new(Vec::new()));
    let m2 = metrics.clone();
    uni.run_world(2, Placement::RoundRobin, move |mpi| {
        let w = mpi.world();
        let len = 1024; // below the default eager limit
        let buf = mpi.alloc(len);
        if mpi.rank() == 0 {
            mpi.send(&w, 1, 0, &buf, len);
            openmpi_core::cvar_write(mpi.endpoint(), "pml.eager_limit", CvarValue::U64(0)).unwrap();
            mpi.send(&w, 1, 1, &buf, len);
            m2.lock().push(mpi.endpoint().metrics_snapshot());
        } else {
            mpi.recv(&w, 0, 0, &buf, len);
            mpi.recv(&w, 0, 1, &buf, len);
        }
        mpi.free(buf);
    });
    let m = metrics.lock();
    assert_eq!(m.len(), 1);
    assert_eq!(m[0].counters.eager_sent, 1, "first send below the limit");
    assert_eq!(m[0].counters.rndv_sent, 1, "second send after limit drop");
}

/// A clean watchdog-armed run: no stalls, and the cluster-wide pvar
/// aggregation agrees exactly with the per-rank metrics totals from the
/// same run.
#[test]
fn clean_run_zero_stalls_and_pvar_totals_match_metrics() {
    use ompi_bench::measure::{introspect_pingpong, Setup};

    let setup = Setup::paper(StackConfig::default());
    let (telemetry, report) = introspect_pingpong(&setup, 4, 16 << 10, 6, 32);

    assert_eq!(report.stalls, 0, "clean run must not stall");
    assert!(report.diagnostics.is_empty());
    assert_eq!(report.cluster.ranks, 4);
    assert_eq!(report.snapshots.len(), 4);

    // The aggregation and the metrics plane come from the same run: sums
    // must agree counter for counter.
    type Counter = fn(&openmpi_core::Metrics) -> u64;
    let checks: [(&str, Counter); 5] = [
        ("pml.eager_sent", |m| m.counters.eager_sent),
        ("pml.rndv_sent", |m| m.counters.rndv_sent),
        ("pml.recvs_posted", |m| m.counters.recvs_posted),
        ("rdma.bytes", |m| m.counters.rdma_bytes),
        ("progress.iterations", |m| m.counters.progress_iterations),
    ];
    for (pvar, counter) in checks {
        let agg = report.cluster.get(pvar).unwrap_or_else(|| {
            panic!("{pvar} aggregated");
        });
        let expect: u64 = telemetry.per_rank.iter().map(counter).sum();
        assert_eq!(agg.sum, expect, "{pvar} cluster sum");
        let max: u64 = telemetry.per_rank.iter().map(counter).max().unwrap();
        let min: u64 = telemetry.per_rank.iter().map(counter).min().unwrap();
        assert_eq!(agg.max, max, "{pvar} cluster max");
        assert_eq!(agg.min, min, "{pvar} cluster min");
    }

    // Per-rank snapshots match the per-rank metrics too.
    for (rank, snap) in report.snapshots.iter().enumerate() {
        assert_eq!(snap.rank, rank);
        assert_eq!(
            snap.get("pml.rndv_sent").unwrap(),
            telemetry.per_rank[rank].counters.rndv_sent,
            "rank {rank} snapshot"
        );
        assert_eq!(snap.get("watchdog.stalls_detected"), Some(0));
        assert!(snap.get("watchdog.scans").unwrap() > 0, "watchdog armed");
    }

    // Rank 0 drives three peers in this ping-pong; it must surface as the
    // straggler of the aggregation.
    assert_eq!(report.cluster.straggler, Some(0));

    // The emitted JSON document carries the headline numbers.
    let json = report.to_json();
    assert!(json.contains("\"stalls\":0"));
    assert!(json.contains("\"straggler\":0"));
}
