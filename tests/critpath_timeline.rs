//! Cross-rank critical-path analysis and time-series telemetry: the merged
//! trace decomposes a pipelined rendezvous into named stages that reconcile
//! with the measured total, and the periodic pvar sampler captures the
//! victim's queue ramp under an incast.

use ompi_bench::measure::{critpath_pingpong, introspect_registry, timeline_incast, Setup};
use openmpi_core::StackConfig;

/// A 1 MiB pipelined rendezvous ping-pong: every message's critical path
/// decomposes into at least four named stages whose sum equals the
/// measured end-to-end latency exactly, and the wire stage reconciles
/// against the receiver's recorded ejection-link busy windows.
#[test]
fn pipelined_rendezvous_stages_reconcile_with_the_total() {
    let cap = critpath_pingpong(&Setup::paper(StackConfig::default()), 1 << 20, 4);
    let big: Vec<_> = cap
        .report
        .msgs
        .iter()
        .filter(|m| !m.eager && m.len == 1 << 20)
        .collect();
    assert!(
        big.len() >= 8,
        "expected both directions of 4 round trips, got {}",
        big.len()
    );
    for m in &big {
        assert_eq!(
            m.stage_sum_ns(),
            m.total_ns,
            "stages must partition the total exactly: {:?}",
            m.stages
        );
        let nonzero = m.stages.iter().filter(|(_, ns)| *ns > 0).count();
        assert!(
            nonzero >= 4,
            "gid {:#x} decomposed into only {nonzero} nonzero stages: {:?}",
            m.gid,
            m.stages
        );
        // The bulk dominates a 1 MiB transfer, and the cross-check against
        // the fabric's busy intervals prices most of it as real wire time.
        assert!(
            m.stage_ns("wire") > m.total_ns / 2,
            "stages: {:?}",
            m.stages
        );
        assert!(
            m.queue_overlap_ns > 0,
            "recorded ejection busy windows never overlapped the wire stage"
        );
        // Sender and receiver alternate by direction, so both ranks appear.
        assert_ne!(m.sender, m.receiver);
    }
    // The per-size aggregation files every 1 MiB message in one bucket.
    let bucket = cap
        .report
        .buckets
        .iter()
        .find(|b| b.lo == 1 << 20)
        .expect("1 MiB bucket exists");
    assert_eq!(bucket.msgs, big.len());
    assert_eq!(bucket.total_ns, big.iter().map(|m| m.total_ns).sum::<u64>());

    // The merged Chrome trace carries cross-rank flow arrows binding the
    // sender's span to the receiver's completion span.
    let chrome = cap.chrome_trace();
    assert!(chrome.contains("\"ph\":\"s\""), "flow start events missing");
    assert!(
        chrome.contains("\"ph\":\"f\""),
        "flow finish events missing"
    );
}

/// An 8-rank eager incast with the timeline sampler on: the victim's
/// ejection-queue series starts shallow and ramps as every sender's
/// packets converge on its one ejection link.
#[test]
fn incast_timeline_shows_the_victims_ejection_queue_ramp() {
    let cap = timeline_incast(&Setup::paper(StackConfig::default()), 8, 1 << 10, 32);
    let victim = cap.victim_samples();
    assert!(!victim.is_empty(), "sampler produced no samples");
    let peak = cap.victim_max_ej_queue();
    assert!(peak >= 2, "no congestion visible: peak ej queue {peak}");
    // The ramp: sampling starts before the flood piles up, so the first
    // sample sits below the peak, and busy time grows monotonically.
    assert!(victim[0].ej_queue < peak);
    for w in victim.windows(2) {
        assert!(w[1].t_ns > w[0].t_ns, "samples must advance in time");
        assert!(w[1].ej_busy_ns >= w[0].ej_busy_ns);
    }
    // Senders stay uncongested: their ejection links only carry control
    // traffic, so no sender's queue ever rivals the victim's.
    for (rank, _, samples) in cap.ranks.iter().skip(1) {
        let m = samples.iter().map(|s| s.ej_queue).max().unwrap_or(0);
        assert!(m < peak, "rank {rank} ej queue {m} rivals the victim");
    }
}

/// The registry dump lists every cvar with name/type/default/writability
/// and every pvar with its live value — the MPI_T discovery surface.
#[test]
fn registry_dump_lists_cvars_and_pvars() {
    let json = introspect_registry(&Setup::paper(StackConfig::default()));
    for needle in [
        "\"cvars\":[{",
        "\"pvars\":[{",
        "\"name\":\"pml.eager_limit\"",
        "\"name\":\"timeline.interval_ns\"",
        "\"writable\":true",
        "\"writable\":false",
        "\"default\":",
    ] {
        assert!(json.contains(needle), "registry dump missing {needle}");
    }
}
