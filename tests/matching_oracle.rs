//! Randomized check of MPI matching semantics, end to end through the
//! simulated stack: random tag sequences and receive selectors must match
//! exactly as the MPI-standard oracle predicts (FIFO over posted receives,
//! send order per peer), both when receives are pre-posted and when every
//! message lands in the unexpected queue first.

use std::sync::Arc;

use openmpi_core::{Placement, StackConfig, Universe, ANY_TAG};
use qsim::{Mutex, Pcg32};

/// `None` = MPI_ANY_TAG selector.
type Selector = Option<u8>;

/// The MPI matching oracle: messages arrive in send order; each matches the
/// first (in post order) unmatched receive whose selector accepts it.
/// Returns `recv index -> msg index`, or `None` if any message or receive
/// goes unmatched (such cases would block and are discarded).
fn oracle(msgs: &[u8], recvs: &[Selector]) -> Option<Vec<usize>> {
    let mut assignment = vec![usize::MAX; recvs.len()];
    let mut taken = vec![false; recvs.len()];
    for (mi, tag) in msgs.iter().enumerate() {
        let slot = recvs
            .iter()
            .enumerate()
            .find(|(ri, sel)| !taken[*ri] && sel.map(|s| s == *tag).unwrap_or(true));
        match slot {
            Some((ri, _)) => {
                taken[ri] = true;
                assignment[ri] = mi;
            }
            None => return None,
        }
    }
    if taken.iter().all(|t| *t) {
        Some(assignment)
    } else {
        None
    }
}

/// Run the same scenario on the simulated stack; returns `recv index ->
/// msg index` recovered from unique payloads.
fn simulate(msgs: Vec<u8>, recvs: Vec<Selector>, preposted: bool) -> Vec<usize> {
    let uni = Universe::paper_testbed(StackConfig::best());
    let out: Arc<Mutex<Vec<usize>>> = Arc::new(Mutex::new(Vec::new()));
    let o2 = out.clone();
    let msgs2 = msgs.clone();
    let recvs2 = recvs.clone();
    uni.run_world(2, Placement::RoundRobin, move |mpi| {
        let w = mpi.world();
        if mpi.rank() == 0 {
            if !preposted {
                // Let every message land unexpected first.
                mpi.compute(qsim::Dur::from_us(5));
            }
            let bufs: Vec<_> = msgs2
                .iter()
                .enumerate()
                .map(|(mi, tag)| {
                    let b = mpi.alloc(8);
                    mpi.write(&b, 0, &(mi as u64).to_le_bytes());
                    (b, *tag)
                })
                .collect();
            let reqs: Vec<_> = bufs
                .iter()
                .map(|(b, tag)| mpi.isend(&w, 1, *tag as i32, b, 8))
                .collect();
            mpi.waitall(reqs);
        } else {
            if !preposted {
                mpi.compute(qsim::Dur::from_us(400));
            }
            let bufs: Vec<_> = recvs2.iter().map(|_| mpi.alloc(8)).collect();
            let reqs: Vec<_> = recvs2
                .iter()
                .zip(&bufs)
                .map(|(sel, b)| {
                    let tag = sel.map(|t| t as i32).unwrap_or(ANY_TAG);
                    mpi.irecv(&w, 0, tag, b, 8)
                })
                .collect();
            mpi.waitall(reqs);
            let got: Vec<usize> = bufs
                .iter()
                .map(|b| u64::from_le_bytes(mpi.read(b, 0, 8).try_into().unwrap()) as usize)
                .collect();
            *o2.lock() = got;
        }
    });
    let v = out.lock().clone();
    v
}

/// 24 random scenarios (each runs two full simulations), generated from a
/// fixed seed so every run exercises the identical case set.
#[test]
fn matching_follows_the_mpi_oracle() {
    let mut rng = Pcg32::new(0xE1A4_0A7C);
    let mut cases = 0;
    while cases < 24 {
        let msgs: Vec<u8> = (0..rng.range(1, 7)).map(|_| rng.below(4) as u8).collect();
        // Build receives that exactly cover the messages: one receive per
        // message, some wildcarded, in a shuffled post order.
        let mut recvs: Vec<Selector> = msgs
            .iter()
            .map(|t| if rng.chance(0.5) { None } else { Some(*t) })
            .collect();
        rng.shuffle(&mut recvs);
        let Some(expected) = oracle(&msgs, &recvs) else {
            // Would block: not a valid MPI program; skip.
            continue;
        };
        cases += 1;
        let pre = simulate(msgs.clone(), recvs.clone(), true);
        assert_eq!(
            pre, expected,
            "pre-posted receives diverged from oracle: msgs={msgs:?} recvs={recvs:?}"
        );
        let late = simulate(msgs, recvs.clone(), false);
        assert_eq!(
            late, expected,
            "unexpected-queue path diverged from oracle: recvs={recvs:?}"
        );
    }
}

#[test]
fn oracle_sanity() {
    // msgs a,b with recvs [ANY, exact-a] deadlocks per MPI semantics.
    assert_eq!(oracle(&[0, 1], &[None, Some(0)]), None);
    // msgs a,b with recvs [exact-b, ANY]: a->ANY(1), b->exact(0).
    assert_eq!(oracle(&[0, 1], &[Some(1), None]), Some(vec![1, 0]));
    // FIFO among equal wildcards.
    assert_eq!(oracle(&[5, 5], &[None, None]), Some(vec![0, 1]));
}
