//! The pipelined chunked-RDMA rendezvous end to end: odd message sizes
//! chunk and reassemble intact, the degenerate depth-1 pipeline keeps
//! monolithic control semantics (one chained FIN/FIN_ACK per transfer),
//! the per-chunk registrations flow through the pin-down cache when it is
//! on and unmap eagerly when it is off, striping spreads chunks across
//! rails, and a request failed mid-pipeline releases every chunk mapping.
//! Every scenario also proves MMU hygiene after finalize.

use std::sync::Arc;

use openmpi_core::{
    cvar_write, pvar_snapshot, CvarValue, MpiErrClass, Placement, StackConfig, Transports, Universe,
};

type Captured = Vec<(u32, Arc<openmpi_core::Endpoint>)>;

fn elan_universe(stack: StackConfig) -> Arc<Universe> {
    Universe::new(
        elan4::NicConfig::default(),
        qsnet::FabricConfig::default(),
        stack,
        Transports::default(),
    )
}

fn captured() -> (Arc<qsim::Mutex<Captured>>, Arc<qsim::Mutex<Captured>>) {
    let eps: Arc<qsim::Mutex<Captured>> = Arc::new(qsim::Mutex::new(Vec::new()));
    (eps.clone(), eps)
}

fn assert_hygiene(eps: &qsim::Mutex<Captured>) {
    for (rank, ep) in eps.lock().iter() {
        assert_eq!(ep.mapping_count(), 0, "rank {rank} leaked MMU mappings");
        let s = ep.reg_stats();
        assert_eq!(s.entries, 0, "rank {rank} kept cache entries past drain");
        assert_eq!(s.mapped_bytes, 0, "rank {rank} kept cached bytes");
    }
}

fn pattern(len: usize) -> Vec<u8> {
    (0..len).map(|i| (i * 31 + len) as u8).collect()
}

/// Message lengths with no relation to the chunk size — a prime-ish chunk
/// set at runtime through the `pipe.*` cvars — must still arrive intact:
/// every mid chunk, the clamped chunk before the held-back tail, and the
/// sub-chunk FIN tail itself reassemble to the exact source bytes.
#[test]
fn odd_sizes_chunk_and_reassemble_intact() {
    let stack = StackConfig {
        metrics: true,
        ..StackConfig::best()
    };
    let (e2, eps) = captured();
    let sizes = [131_075usize, 200_001, 262_147, 524_289];
    elan_universe(stack).run_world(2, Placement::RoundRobin, move |mpi| {
        e2.lock().push((mpi.rank() as u32, mpi.endpoint().clone()));
        // Runtime-tunable engine: an awkward chunk size and a low cutoff
        // so every test length takes the pipelined path.
        cvar_write(mpi.endpoint(), "pipe.chunk", CvarValue::U64(20_000)).unwrap();
        cvar_write(mpi.endpoint(), "pipe.min_len", CvarValue::U64(64 << 10)).unwrap();
        let w = mpi.world();
        for &len in &sizes {
            let buf = mpi.alloc(len);
            if mpi.rank() == 0 {
                mpi.write(&buf, 0, &pattern(len));
                mpi.send(&w, 1, 0, &buf, len);
            } else {
                mpi.recv(&w, 0, 0, &buf, len);
                assert_eq!(mpi.read(&buf, 0, len), pattern(len), "len {len}");
            }
            mpi.free(buf);
        }
        if mpi.rank() == 1 {
            // The receiver pulls in the read scheme, so it owns the engine.
            let pv = pvar_snapshot(mpi.endpoint());
            assert_eq!(pv.get("pipe.started"), Some(sizes.len() as u64));
            let issued = pv.get("pipe.chunks_issued").unwrap();
            assert_eq!(pv.get("pipe.chunks_landed"), Some(issued));
            assert!(issued > sizes.len() as u64, "multiple chunks per message");
            let hwm = pv.get("pipe.depth_hwm").unwrap();
            assert!((2..=4).contains(&hwm), "window filled, bounded: {hwm}");
            assert!(pv.get("pipe.reg_overlap_ns").unwrap() > 0, "overlap won");
        }
    });
    assert_hygiene(&eps);
}

/// `pipe.depth = 1` is the degenerate pipeline: one chunk in flight at a
/// time. It must deliver the same bytes with the same control-message
/// count as the monolithic path — the FIN/FIN_ACK still chains to exactly
/// one completion per transfer.
#[test]
fn depth_one_matches_monolithic_semantics() {
    let len = 512 << 10;
    let run = |stack: StackConfig| -> Vec<(u32, u64, u64)> {
        let (e2, eps) = captured();
        elan_universe(stack).run_world(2, Placement::RoundRobin, move |mpi| {
            e2.lock().push((mpi.rank() as u32, mpi.endpoint().clone()));
            let w = mpi.world();
            let buf = mpi.alloc(len);
            if mpi.rank() == 0 {
                mpi.write(&buf, 0, &pattern(len));
                mpi.send(&w, 1, 0, &buf, len);
            } else {
                mpi.recv(&w, 0, 0, &buf, len);
                assert_eq!(mpi.read(&buf, 0, len), pattern(len));
            }
            mpi.free(buf);
        });
        let out: Vec<(u32, u64, u64)> = eps
            .lock()
            .iter()
            .map(|(rank, ep)| {
                let pv = pvar_snapshot(ep);
                (
                    *rank,
                    pv.get("control.fin").unwrap(),
                    pv.get("control.fin_ack").unwrap(),
                )
            })
            .collect();
        assert_hygiene(&eps);
        out
    };

    let mono = run(StackConfig {
        metrics: true,
        pipeline_enable: false,
        ..StackConfig::best()
    });
    let (e2, eps) = captured();
    elan_universe(StackConfig {
        metrics: true,
        pipeline_depth: 1,
        ..StackConfig::best()
    })
    .run_world(2, Placement::RoundRobin, move |mpi| {
        e2.lock().push((mpi.rank() as u32, mpi.endpoint().clone()));
        let w = mpi.world();
        let buf = mpi.alloc(len);
        if mpi.rank() == 0 {
            mpi.write(&buf, 0, &pattern(len));
            mpi.send(&w, 1, 0, &buf, len);
        } else {
            mpi.recv(&w, 0, 0, &buf, len);
            assert_eq!(mpi.read(&buf, 0, len), pattern(len));
            let pv = pvar_snapshot(mpi.endpoint());
            assert_eq!(pv.get("pipe.started"), Some(1));
            assert_eq!(pv.get("pipe.depth_hwm"), Some(1), "strictly serial");
            let issued = pv.get("pipe.chunks_issued").unwrap();
            assert!(issued > 1, "still chunked, just one at a time");
            assert_eq!(pv.get("pipe.chunks_landed"), Some(issued));
        }
        mpi.free(buf);
    });
    let depth1: Vec<(u32, u64, u64)> = eps
        .lock()
        .iter()
        .map(|(rank, ep)| {
            let pv = pvar_snapshot(ep);
            (
                *rank,
                pv.get("control.fin").unwrap(),
                pv.get("control.fin_ack").unwrap(),
            )
        })
        .collect();
    assert_hygiene(&eps);

    let total = |v: &[(u32, u64, u64)]| {
        v.iter()
            .fold((0u64, 0u64), |(f, fa), (_, a, b)| (f + a, fa + b))
    };
    assert_eq!(
        total(&mono),
        total(&depth1),
        "chunking must not multiply control traffic"
    );
}

/// Per-chunk registrations go through the pin-down cache: a repeated
/// pipelined ping-pong misses only on the first pass over each chunk and
/// hits on every reuse. With the cache off the same traffic leaves nothing
/// mapped between blocking calls and counts nothing.
#[test]
fn pipeline_chunks_use_the_regcache_when_enabled() {
    let len = 384 << 10;
    let iters = 4usize;

    // Cache on: chunk sub-regions are stable across iterations, so the
    // second and later passes hit for every chunk registration.
    let (e2, eps) = captured();
    let stack = StackConfig {
        metrics: true,
        ..StackConfig::best()
    };
    elan_universe(stack).run_world(2, Placement::RoundRobin, move |mpi| {
        e2.lock().push((mpi.rank() as u32, mpi.endpoint().clone()));
        let w = mpi.world();
        let sbuf = mpi.alloc(len);
        let rbuf = mpi.alloc(len);
        let mut misses_after_first = 0;
        for it in 0..iters {
            if mpi.rank() == 0 {
                mpi.send(&w, 1, 0, &sbuf, len);
                mpi.recv(&w, 1, 0, &rbuf, len);
            } else {
                mpi.recv(&w, 0, 0, &rbuf, len);
                mpi.send(&w, 0, 0, &sbuf, len);
            }
            if it == 0 {
                misses_after_first = mpi.endpoint().reg_stats().misses;
            }
        }
        let s = mpi.endpoint().reg_stats();
        assert!(s.misses > 0, "first pass registers every chunk");
        assert_eq!(
            s.misses, misses_after_first,
            "later passes must never miss: every chunk registration hits"
        );
        assert!(s.hits >= (iters as u64 - 1) * 2, "reuse hit per direction");
        assert_eq!(s.evictions, 0, "well under capacity");
        let pv = pvar_snapshot(mpi.endpoint());
        assert_eq!(pv.get("pipe.started"), Some(iters as u64));
        mpi.free(sbuf);
        mpi.free(rbuf);
    });
    assert_hygiene(&eps);

    // Cache off: the pipeline maps and unmaps per chunk, so nothing stays
    // mapped once the blocking calls return and the cache counts nothing.
    let (e2, eps) = captured();
    let stack = StackConfig {
        metrics: true,
        reg_cache: false,
        ..StackConfig::best()
    };
    elan_universe(stack).run_world(2, Placement::RoundRobin, move |mpi| {
        e2.lock().push((mpi.rank() as u32, mpi.endpoint().clone()));
        let w = mpi.world();
        let buf = mpi.alloc(len);
        for _ in 0..iters {
            if mpi.rank() == 0 {
                mpi.send(&w, 1, 0, &buf, len);
            } else {
                mpi.recv(&w, 0, 0, &buf, len);
            }
        }
        assert_eq!(mpi.endpoint().mapping_count(), 0);
        assert_eq!(mpi.endpoint().reg_stats(), Default::default());
        if mpi.rank() == 1 {
            let pv = pvar_snapshot(mpi.endpoint());
            assert_eq!(pv.get("pipe.started"), Some(iters as u64));
        }
        mpi.free(buf);
    });
    assert_hygiene(&eps);
}

/// Pipelined chunks stripe across rails: on a two-rail fabric the engine
/// keeps up to `pipe.depth` chunks in flight per rail and the message
/// still reassembles intact.
#[test]
fn pipeline_stripes_across_rails() {
    let len = 1 << 20;
    let stack = StackConfig {
        metrics: true,
        ..StackConfig::best()
    };
    let uni = Universe::new(
        elan4::NicConfig::default(),
        qsnet::FabricConfig {
            rails: 2,
            ..Default::default()
        },
        stack,
        Transports {
            elan_rails: 2,
            tcp: false,
        },
    );
    let (e2, eps) = captured();
    uni.run_world(2, Placement::RoundRobin, move |mpi| {
        e2.lock().push((mpi.rank() as u32, mpi.endpoint().clone()));
        let w = mpi.world();
        let buf = mpi.alloc(len);
        if mpi.rank() == 0 {
            mpi.write(&buf, 0, &pattern(len));
            mpi.send(&w, 1, 0, &buf, len);
        } else {
            mpi.recv(&w, 0, 0, &buf, len);
            assert_eq!(mpi.read(&buf, 0, len), pattern(len));
            let pv = pvar_snapshot(mpi.endpoint());
            assert_eq!(pv.get("pipe.started"), Some(1));
            let issued = pv.get("pipe.chunks_issued").unwrap();
            assert_eq!(pv.get("pipe.chunks_landed"), Some(issued));
            assert!(issued >= 4, "1 MiB in 32 KiB chunks fans wide");
            let hwm = pv.get("pipe.depth_hwm").unwrap();
            assert!(
                hwm > 4,
                "two rails must carry more in flight than one rail's depth, got {hwm}"
            );
        }
        mpi.free(buf);
    });
    assert_hygiene(&eps);
}

/// A request failed while its pipeline is mid-flight must tear the engine
/// down completely: in-flight chunk completions are forgotten, every chunk
/// mapping (and the staged final registration) is released, and
/// `mapping_count()` drops to zero on both ends. Late DMA completions
/// against the freed doorbell events are ignored.
#[test]
fn failed_mid_pipeline_releases_every_chunk_mapping() {
    let len = 4 << 20;
    let stack = StackConfig {
        metrics: true,
        ..StackConfig::best()
    };
    let (e2, eps) = captured();
    elan_universe(stack).run_world(2, Placement::RoundRobin, move |mpi| {
        e2.lock().push((mpi.rank() as u32, mpi.endpoint().clone()));
        let w = mpi.world();
        let buf = mpi.alloc(len);
        if mpi.rank() == 0 {
            let r = mpi.isend(&w, 1, 0, &buf, len);
            // The receiver kills its pull within microseconds; any reads it
            // already issued resolved their translations at issue time, so
            // dropping the send (and its mapping) afterwards is safe.
            mpi.compute(qsim::Dur::from_us(2000));
            mpi.abort_request(r, MpiErrClass::Internal);
            assert_eq!(mpi.wait_result(r), Err(MpiErrClass::Internal));
        } else {
            let r = mpi.irecv(&w, 0, 0, &buf, len);
            // Poll (progress runs inside `test`) until the pipeline is
            // observably mid-flight: 4 MiB takes milliseconds on the wire,
            // so it cannot finish between two 5us polls.
            while pvar_snapshot(mpi.endpoint()).get("queues.pipelines_live") != Some(1) {
                assert!(!mpi.test(r), "must still be in flight when aborted");
                mpi.compute(qsim::Dur::from_us(5));
            }
            assert!(
                pvar_snapshot(mpi.endpoint())
                    .get("pipe.chunks_issued")
                    .unwrap()
                    > 0
            );
            mpi.abort_request(r, MpiErrClass::Internal);
            assert_eq!(mpi.wait_result(r), Err(MpiErrClass::Internal));
            let pv = pvar_snapshot(mpi.endpoint());
            assert_eq!(pv.get("queues.pipelines_live"), Some(0));
        }
        let pv = pvar_snapshot(mpi.endpoint());
        assert_eq!(pv.get("rel.reqs_failed"), Some(1));
        assert_eq!(pv.get("rel.errs_surfaced"), Some(1));
        mpi.free(buf);
    });
    assert_hygiene(&eps);
}
