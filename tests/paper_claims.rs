//! The paper's qualitative claims, asserted against regenerated (reduced)
//! experiment data. These are the "shape" checks EXPERIMENTS.md documents:
//! who wins, by roughly what factor, and where the crossovers fall.

use ompi_bench::measure::{
    layer_decomposition, mpich_bandwidth, mpich_latency, ompi_bandwidth, ompi_latency,
    qdma_native_latency, Setup,
};
use openmpi_core::{CompletionMode, ProgressMode, RdmaScheme, StackConfig};

fn rndv(scheme: RdmaScheme, inline: bool, dtp: bool) -> StackConfig {
    let mut c = StackConfig::best();
    c.scheme = scheme;
    c.inline_first_frag = inline;
    c.use_datatype_engine = dtp;
    c.force_rendezvous = true;
    c
}

/// §6.1 / Fig. 7: "RDMA read is able to deliver better performance compared
/// to RDMA write ... the RDMA read-based scheme essentially saves a control
/// packet".
#[test]
fn fig7_read_beats_write() {
    for len in [1024usize, 4096] {
        let r = ompi_latency(&Setup::paper(rndv(RdmaScheme::Read, false, false)), len);
        let w = ompi_latency(&Setup::paper(rndv(RdmaScheme::Write, false, false)), len);
        assert!(r < w, "len={len}: read {r:.2}us !< write {w:.2}us");
        // "saves a control packet": the gap is on the order of one to two
        // small-message crossings, not 10x.
        assert!(w - r < 6.0, "len={len}: gap {:.2}us too large", w - r);
    }
}

/// §6.1 / Fig. 7: the datatype component costs ~0.4 µs per request.
#[test]
fn fig7_dtp_overhead_near_04us() {
    let base = ompi_latency(&Setup::paper(rndv(RdmaScheme::Read, true, false)), 256);
    let dtp = ompi_latency(&Setup::paper(rndv(RdmaScheme::Read, true, true)), 256);
    let delta = dtp - base;
    assert!(
        (0.3..0.6).contains(&delta),
        "DTP overhead {delta:.3}us, paper says ~0.4us"
    );
}

/// §6.1: rendezvous without inlined data wins wherever the rendezvous path
/// operates (above the 1984-byte threshold).
#[test]
fn fig7_no_inline_wins_above_threshold() {
    for len in [2048usize, 4096] {
        let mut inline = StackConfig::best();
        inline.inline_first_frag = true;
        let ni = ompi_latency(&Setup::paper(StackConfig::best()), len);
        let il = ompi_latency(&Setup::paper(inline), len);
        assert!(ni < il, "len={len}: no-inline {ni:.2} !< inline {il:.2}");
    }
}

/// §6.2 / Fig. 8: chained FIN is a marginal win; the shared completion
/// queue costs extra (an additional QDMA per RDMA); one-queue and two-queue
/// polling costs are about the same.
#[test]
fn fig8_completion_strategies() {
    let base = rndv(RdmaScheme::Read, false, false);
    let mut nochain = base.clone();
    nochain.chained_fin = false;
    let mut oneq = base.clone();
    oneq.completion = CompletionMode::SharedQueueCombined;
    let mut twoq = base.clone();
    twoq.completion = CompletionMode::SharedQueueSeparate;

    let len = 4096;
    let b = ompi_latency(&Setup::paper(base), len);
    let nc = ompi_latency(&Setup::paper(nochain), len);
    let q1 = ompi_latency(&Setup::paper(oneq), len);
    let q2 = ompi_latency(&Setup::paper(twoq), len);

    assert!(b < nc, "chained {b:.2} !< no-chain {nc:.2}");
    assert!(
        nc - b < 1.0,
        "chaining should be marginal, got {:.2}",
        nc - b
    );
    assert!(
        q1 > b + 0.5,
        "one-queue {q1:.2} should cost over basic {b:.2}"
    );
    assert!(
        (q1 - q2).abs() < 0.3,
        "polling one-queue {q1:.2} vs two-queue {q2:.2} should be ~equal"
    );
}

/// §6.3 / Fig. 9: the PML layer and above costs ≈ 0.5 µs, and the PTL
/// delivers performance comparable to native QDMA of a (64+N)-byte message.
#[test]
fn fig9_layer_decomposition() {
    let setup = Setup::paper(StackConfig::best());
    let nic = elan4::NicConfig::default();
    let fabric = qsnet::FabricConfig::default();
    for len in [0usize, 64, 512] {
        let (_total, pml, ptl) = layer_decomposition(&setup, len);
        assert!(
            (0.3..1.2).contains(&pml),
            "len={len}: PML cost {pml:.2}us not ~0.5us"
        );
        let qdma = qdma_native_latency(&nic, &fabric, len + 64);
        let ratio = ptl / qdma;
        assert!(
            (0.8..1.6).contains(&ratio),
            "len={len}: PTL {ptl:.2}us vs QDMA {qdma:.2}us (ratio {ratio:.2}) not comparable"
        );
    }
}

/// Table 1: Basic < Interrupt < One Thread < Two Threads, with roughly the
/// paper's deltas (≈ +10 µs interrupt, ≈ +8 µs threading, a few more for
/// the second thread).
#[test]
fn table1_progress_modes() {
    let basic = rndv(RdmaScheme::Read, false, false);
    let mut irq = basic.clone();
    irq.progress = ProgressMode::Interrupt;
    let mut one = basic.clone();
    one.progress = ProgressMode::OneThread;
    one.completion = CompletionMode::SharedQueueCombined;
    let mut two = basic.clone();
    two.progress = ProgressMode::TwoThreads;
    two.completion = CompletionMode::SharedQueueSeparate;

    for len in [4usize, 4096] {
        let b = ompi_latency(&Setup::paper(basic.clone()), len);
        let i = ompi_latency(&Setup::paper(irq.clone()), len);
        let o = ompi_latency(&Setup::paper(one.clone()), len);
        let t = ompi_latency(&Setup::paper(two.clone()), len);
        assert!(
            b < i && i < o && o < t,
            "len={len}: expected {b:.2} < {i:.2} < {o:.2} < {t:.2}"
        );
        assert!(
            (i - b) > 6.0 && (i - b) < 16.0,
            "interrupt delta {:.2}",
            i - b
        );
        assert!(
            (o - i) > 3.0 && (o - i) < 12.0,
            "one-thread delta {:.2}",
            o - i
        );
        assert!(
            (t - o) > 1.0 && (t - o) < 16.0,
            "two-thread delta {:.2}",
            t - o
        );
    }
}

/// §6.5 / Fig. 10(a): Open MPI latency is slightly higher than
/// MPICH-QsNetII for small messages (64-byte header + host-side matching vs
/// 32-byte header + NIC matching) but comparable: within a couple of µs.
#[test]
fn fig10_small_message_latency_gap() {
    let nic = elan4::NicConfig::default();
    let fabric = qsnet::FabricConfig::default();
    for len in [0usize, 64, 512] {
        let m = mpich_latency(&nic, &fabric, len);
        let o = ompi_latency(&Setup::paper(StackConfig::best()), len);
        assert!(
            o > m,
            "len={len}: Open MPI {o:.2} should trail MPICH {m:.2}"
        );
        assert!(
            o - m < 3.0,
            "len={len}: gap {:.2}us not 'comparable'",
            o - m
        );
    }
}

/// §6.5 / Fig. 10(d): MPICH's Tport pipelining wins the middle range of
/// message sizes, and the curves converge for very large messages.
#[test]
fn fig10_bandwidth_midrange_crossover() {
    let nic = elan4::NicConfig::default();
    let fabric = qsnet::FabricConfig::default();
    let setup = Setup::paper(StackConfig::best());

    // Middle range: MPICH clearly ahead.
    let m_mid = mpich_bandwidth(&nic, &fabric, 8192, 16, 2);
    let o_mid = ompi_bandwidth(&setup, 8192, 16, 2);
    assert!(
        m_mid > o_mid * 1.05,
        "mid-range: MPICH {m_mid:.0} should beat Open MPI {o_mid:.0}"
    );

    // 1 MB: within a few percent of each other, both near the PCI-X bound.
    let m_big = mpich_bandwidth(&nic, &fabric, 1 << 20, 4, 2);
    let o_big = ompi_bandwidth(&setup, 1 << 20, 4, 2);
    let ratio = o_big / m_big;
    assert!(
        (0.95..1.05).contains(&ratio),
        "1MB: Open MPI {o_big:.0} vs MPICH {m_big:.0} should converge"
    );
    assert!(
        (800.0..1000.0).contains(&o_big),
        "peak bandwidth {o_big:.0} MB/s out of the PCI-X band"
    );
}

/// Deterministic reproduction: regenerating an experiment yields identical
/// virtual-time numbers.
#[test]
fn experiments_are_deterministic() {
    let a = ompi_latency(&Setup::paper(StackConfig::best()), 4096);
    let b = ompi_latency(&Setup::paper(StackConfig::best()), 4096);
    assert_eq!(a, b);
    let nic = elan4::NicConfig::default();
    let fabric = qsnet::FabricConfig::default();
    assert_eq!(
        mpich_latency(&nic, &fabric, 64),
        mpich_latency(&nic, &fabric, 64)
    );
}

/// §3's motivation for asynchronous progress: with a progress thread, a
/// rendezvous write-scheme transfer overlaps host computation; with polling
/// it serializes behind it.
#[test]
fn async_progress_enables_overlap() {
    use openmpi_core::{Placement, Universe};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    fn total_us(progress: ProgressMode, compute_us: u64) -> f64 {
        let mut cfg = StackConfig::best();
        cfg.scheme = RdmaScheme::Write;
        cfg.progress = progress;
        if progress == ProgressMode::OneThread {
            cfg.completion = CompletionMode::SharedQueueCombined;
        }
        let uni = Universe::paper_testbed(cfg);
        let t = Arc::new(AtomicU64::new(0));
        let t2 = t.clone();
        uni.run_world(2, Placement::RoundRobin, move |mpi| {
            let w = mpi.world();
            let len = 256 << 10;
            let buf = mpi.alloc(len);
            mpi.barrier(&w);
            if mpi.rank() == 0 {
                let t0 = mpi.now();
                let req = mpi.isend(&w, 1, 0, &buf, len);
                mpi.compute(qsim::Dur::from_us(compute_us));
                mpi.wait(req);
                t2.store((mpi.now() - t0).as_ns(), Ordering::SeqCst);
            } else {
                mpi.recv(&w, 0, 0, &buf, len);
            }
        });
        t.load(Ordering::SeqCst) as f64 / 1_000.0
    }

    // Latency-only (no compute): the thread overhead makes OneThread lose.
    let poll_0 = total_us(ProgressMode::Polling, 0);
    let thread_0 = total_us(ProgressMode::OneThread, 0);
    assert!(poll_0 < thread_0, "no compute: polling {poll_0} should win");

    // With 300us of computation the transfer hides behind it only with the
    // progress thread.
    let poll_300 = total_us(ProgressMode::Polling, 300);
    let thread_300 = total_us(ProgressMode::OneThread, 300);
    assert!(
        thread_300 < poll_300 * 0.7,
        "overlap missing: thread {thread_300} vs polling {poll_300}"
    );
    // Polling serializes: total ≈ transfer + compute.
    assert!(poll_300 > poll_0 + 280.0);
    // The thread overlaps: total ≈ max(transfer, compute) + overhead.
    assert!(thread_300 < thread_0 + 60.0);
}
