//! Fabric-level observability: per-link occupancy accounting under an
//! N-to-1 incast, the congestion report naming the victim's ejection link,
//! and the post-mortem flight recorder dumping on watchdog stalls and
//! failed requests.

use std::sync::Arc;

use ompi_bench::measure::{incast_congestion, stall_flight_demo, Setup};
use openmpi_core::{MpiErrClass, Placement, StackConfig, Universe};
use qsnet::LinkKind;

/// An 8-rank incast: every sender's traffic funnels into rank 0's ejection
/// link, so that link's busy time is ~(N-1)× any single source injection
/// link, the congestion report names it hottest, and the byte totals
/// reconcile across the pvar and fabric planes.
#[test]
fn incast_concentrates_occupancy_on_the_victims_ejection_link() {
    let ranks = 8;
    let (len, iters) = (1 << 10, 32);
    let cap = incast_congestion(&Setup::paper(StackConfig::default()), ranks, len, iters, 64);

    // The fabric report names the victim's ejection link as hottest.
    assert_eq!(cap.hot_rank, 0, "rank 0 is the incast victim");
    assert_eq!(cap.hot_link().as_deref(), Some("r0.ej.n0"));
    let hot = cap.congestion.hottest().expect("links are active");
    assert_eq!(hot.kind, LinkKind::Ejection);
    assert!(
        hot.queue_peak >= (ranks - 1) as u64,
        "incast queue depth peaked at {} < fan-in {}",
        hot.queue_peak,
        ranks - 1
    );

    // Occupancy concentration: the victim's ejection link burned several
    // times the busy time of any single source injection link. Each sender
    // contributes ~1/(N-1) of the victim's traffic, so the ratio is ~N-1;
    // barrier/finalize chatter erodes it slightly.
    let src_inj_max = cap
        .congestion
        .links
        .iter()
        .filter(|l| l.kind == LinkKind::Injection && l.index != 0)
        .map(|l| l.busy_ns)
        .max()
        .expect("source injection links are active");
    assert!(
        hot.busy_ns >= 5 * src_inj_max,
        "ejection busy {}ns not ~{}x source injection busy {}ns",
        hot.busy_ns,
        ranks - 1,
        src_inj_max
    );

    // The victim's ejection link carried at least the application payload.
    let app_bytes = ((ranks - 1) * len * iters) as u64;
    assert!(
        hot.payload_bytes >= app_bytes,
        "ejection payload {} < application payload {}",
        hot.payload_bytes,
        app_bytes
    );

    // Byte reconciliation, fabric plane: everything injected was ejected
    // (single rail, no drops), summed over the full link table.
    let fab_sum = |kind: LinkKind| -> u64 {
        cap.congestion
            .links
            .iter()
            .filter(|l| l.kind == kind)
            .map(|l| l.payload_bytes)
            .sum()
    };
    assert_eq!(fab_sum(LinkKind::Injection), fab_sum(LinkKind::Ejection));

    // Byte reconciliation, pvar plane: the cluster aggregation of each
    // rank's `fab.*` pvars matches the fabric's own link table exactly —
    // the introspection plane is a view of the same accounting, not a
    // second tally.
    let agg = |name: &str| cap.cluster.get(name).expect(name).sum;
    assert_eq!(agg("fab.inj.payload_bytes"), fab_sum(LinkKind::Injection));
    assert_eq!(agg("fab.ej.payload_bytes"), fab_sum(LinkKind::Ejection));
    assert_eq!(
        cap.cluster.get("fab.ej.busy_ns").expect("aggregated").max,
        hot.busy_ns,
        "hottest link's busy time surfaces as the pvar max"
    );
    assert_eq!(
        cap.cluster
            .get("fab.ej.busy_ns")
            .expect("aggregated")
            .max_rank,
        0,
        "the pvar plane names the victim rank"
    );

    // Per-stage utilization is present and the endpoint stages carried all
    // payload traffic.
    assert!(cap.congestion.stages.iter().any(|s| s.stage == "ej"));
    assert!(cap.congestion.stages.iter().any(|s| s.stage == "up.l1"));
}

/// A forced rendezvous stall (dropped FIN_ACK, reliability off): the
/// watchdog aborts the run and the flight recorder's ring — dumped
/// automatically at detection — contains the protocol events leading up to
/// the wedge, embedded in both the stall diagnostic and the standalone
/// dump.
#[test]
fn watchdog_stall_dumps_the_flight_recorder() {
    let demo = stall_flight_demo();
    assert!(
        demo.panic_msg.contains("progress watchdog"),
        "watchdog fired: {}",
        demo.panic_msg
    );
    assert_eq!(demo.flight_dumps.len(), 1, "one dump from the stalled rank");
    let dump = &demo.flight_dumps[0];
    assert!(dump.contains("\"reason\":\"watchdog stall\""), "{dump}");
    assert!(
        dump.contains("\"ev\":\"send\""),
        "the rendezvous send that wedged is in the ring: {dump}"
    );
    assert!(
        dump.contains("\"ev\":\"stall\""),
        "the stall event closes the ring: {dump}"
    );
    // The structured diagnostic embeds the same ring.
    assert_eq!(demo.diagnostics.len(), 1);
    assert!(
        demo.diagnostics[0].contains("\"flight\":[{"),
        "diagnostic embeds flight events: {}",
        demo.diagnostics[0]
    );
}

/// A request failing with an MPI error class (unroutable peer) freezes the
/// flight recorder too: the dump names the failure and ends with the
/// `req_failed` event.
#[test]
fn failed_request_dumps_the_flight_recorder() {
    let uni = Universe::new(
        elan4::NicConfig::default(),
        qsnet::FabricConfig::default(),
        StackConfig::best(),
        openmpi_core::Transports {
            elan_rails: 0,
            tcp: false,
        },
    );
    let dumps: Arc<qsim::Mutex<Vec<String>>> = Arc::new(qsim::Mutex::new(Vec::new()));
    let d2 = dumps.clone();
    uni.run_world(2, Placement::RoundRobin, move |mpi| {
        if mpi.rank() == 0 {
            let w = mpi.world();
            let buf = mpi.alloc(1024);
            let r = mpi.isend(&w, 1, 0, &buf, 1024);
            assert_eq!(mpi.wait_result(r), Err(MpiErrClass::NoTransport));
            let ep = mpi.endpoint();
            let pv = openmpi_core::pvar_snapshot(ep);
            assert_eq!(pv.get("flight.dumps"), Some(1));
            d2.lock()
                .extend(ep.introspect.lock().flight_dumps.iter().cloned());
            mpi.free(buf);
        }
    });
    let dumps = dumps.lock();
    assert_eq!(dumps.len(), 1);
    assert!(
        dumps[0].contains("\"reason\":\"request failed: MPI_ERR_UNREACHABLE\""),
        "{}",
        dumps[0]
    );
    assert!(
        dumps[0].contains("\"ev\":\"req_failed\""),
        "the failure event closes the ring: {}",
        dumps[0]
    );
}

/// Turning `flight.enable` off at runtime stops recording; the ring keeps
/// what it already holds and failure dumps still render (with the stale
/// tail), but no new events are added.
#[test]
fn flight_recorder_cvar_gates_recording() {
    let uni = Universe::paper_testbed(StackConfig::best());
    uni.run_world(2, Placement::RoundRobin, move |mpi| {
        let w = mpi.world();
        let buf = mpi.alloc(256);
        if mpi.rank() == 0 {
            mpi.send(&w, 1, 0, &buf, 256);
            let ep = mpi.endpoint();
            let before = ep.flight.lock().len();
            assert!(before > 0, "flight recorder is on by default");
            openmpi_core::cvar_write(ep, "flight.enable", openmpi_core::CvarValue::Bool(false))
                .unwrap();
            mpi.send(&w, 1, 1, &buf, 256);
            assert_eq!(ep.flight.lock().len(), before, "gated off: no new events");
        } else {
            mpi.recv(&w, 0, 0, &buf, 256);
            mpi.recv(&w, 0, 1, &buf, 256);
        }
        mpi.free(buf);
    });
}
