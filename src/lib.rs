//! # openmpi-elan4-repro
//!
//! Umbrella crate for the reproduction of *"Design and Implementation of
//! Open MPI over Quadrics/Elan4"* (Yu, Woodall, Graham, Panda; 2004/2005).
//!
//! The stack, bottom up:
//!
//! - [`qsim`] — deterministic discrete-event simulation kernel (virtual time).
//! - [`qsnet`] — QsNetII fabric model: quaternary fat tree, Elite4 switches,
//!   link bandwidth/occupancy.
//! - [`elan4`] — Elan4 NIC model: capabilities/VPIDs, MMU + E4 addresses,
//!   command queues, QDMA, RDMA read/write, counted + chained events,
//!   interrupts, and the Tport NIC-side tag-matching engine.
//! - [`ompi_rte`] — run-time environment: job launch, out-of-band channel,
//!   modex, dynamic process management support.
//! - [`ompi_datatype`] — MPI datatype engine (typemaps + pack/unpack
//!   convertor).
//! - [`openmpi_core`] — the paper's contribution: the PML message-management
//!   layer, the PTL transport framework, the PTL/Elan4 transport (QDMA eager,
//!   RDMA read/write rendezvous schemes, chained-event completion, shared
//!   completion queue, asynchronous progress), a TCP/IP reference PTL, and an
//!   MPI-2-flavoured user API.
//! - [`mpich_qsnet`] — the MPICH-QsNetII comparator (NIC tag matching via
//!   Tport, 32-byte headers, NIC-side pipelining).
//! - [`ompi_apps`] — mini-applications (stencils, conjugate gradient,
//!   parallel sample sort) verified against serial references.
//! - [`ompi_io`] — MPI-IO-style parallel I/O over a simulated striped file
//!   system (the "scalable I/O" goal from the paper's introduction).
//!
//! ## Example
//!
//! ```
//! use openmpi_core::{Placement, StackConfig, Universe};
//!
//! // The paper's testbed: 8 nodes, quaternary fat tree, Elan4 NICs.
//! let universe = Universe::paper_testbed(StackConfig::best());
//! universe.run_world(2, Placement::RoundRobin, |mpi| {
//!     let world = mpi.world();
//!     let buf = mpi.alloc(1024);
//!     if mpi.rank() == 0 {
//!         mpi.write(&buf, 0, &[42u8; 1024]);
//!         mpi.send(&world, 1, 0, &buf, 1024);
//!     } else {
//!         mpi.recv(&world, 0, 0, &buf, 1024);
//!         assert_eq!(mpi.read(&buf, 0, 1024), vec![42u8; 1024]);
//!     }
//! });
//! ```
//!
//! See `DESIGN.md` for the system inventory and the per-experiment index and
//! `EXPERIMENTS.md` for paper-vs-measured results.

#![warn(missing_docs)]

pub use elan4;
pub use mpich_qsnet;
pub use ompi_apps;
pub use ompi_datatype;
pub use ompi_io;
pub use ompi_rte;
pub use openmpi_core;
pub use qsim;
pub use qsnet;
