//! # ompi-rte — run-time environment
//!
//! The Open MPI Run-Time Environment (ORTE) pieces the paper leans on:
//! process naming, the out-of-band *modex* (module exchange) through which
//! PTL modules publish their network addresses at `MPI_Init` time, job-wide
//! barriers, and the bookkeeping for MPI-2 dynamic process management
//! (`MPI_Comm_spawn`): "Open MPI Run-Time Environment (RTE) can help the
//! newly created processes to establish connections with the existing
//! processes" (paper §4.1).
//!
//! The out-of-band channel is modelled as a management network separate
//! from the Quadrics fabric: each operation costs [`RteConfig::oob_latency`]
//! of virtual time, which only affects startup/spawn paths, never the
//! data-path benchmarks.

#![warn(missing_docs)]

pub mod pvar;

pub use pvar::{ClusterReport, PvarAgg};

use std::collections::HashMap;
use std::sync::Arc;

use qsim::Mutex;
use qsim::{Dur, Proc, Signal};

/// Identifies a launched job (an `MPI_COMM_WORLD` or a spawned child world).
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct JobId(pub u32);

/// A process name: job + rank within the job.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ProcName {
    /// The job this process belongs to.
    pub job: JobId,
    /// Rank within the job.
    pub rank: usize,
}

/// RTE timing model.
#[derive(Clone, Debug)]
pub struct RteConfig {
    /// One out-of-band operation (publish, lookup, barrier message) over the
    /// management network.
    pub oob_latency: Dur,
}

impl Default for RteConfig {
    fn default() -> Self {
        RteConfig {
            oob_latency: Dur::from_us(30),
        }
    }
}

struct BarrierState {
    generation: u64,
    arrived: usize,
    waiters: Vec<Signal>,
}

struct JobState {
    size: usize,
    parent: Option<ProcName>,
    modex: HashMap<(usize, String), Vec<u8>>,
    modex_waiters: Vec<Signal>,
    barrier: BarrierState,
    finalized: usize,
}

struct RteInner {
    jobs: HashMap<JobId, JobState>,
    next_job: u32,
}

/// The shared runtime-environment service.
pub struct Rte {
    cfg: RteConfig,
    inner: Mutex<RteInner>,
}

impl Rte {
    /// A fresh runtime-environment service with no jobs.
    pub fn new(cfg: RteConfig) -> Arc<Rte> {
        Arc::new(Rte {
            cfg,
            inner: Mutex::new(RteInner {
                jobs: HashMap::new(),
                next_job: 0,
            }),
        })
    }

    /// The timing model in use.
    pub fn cfg(&self) -> &RteConfig {
        &self.cfg
    }

    /// Register a new job of `size` ranks; returns its id. `parent` links a
    /// dynamically spawned child world to the spawning process.
    pub fn create_job(&self, size: usize, parent: Option<ProcName>) -> JobId {
        let mut inner = self.inner.lock();
        let id = JobId(inner.next_job);
        inner.next_job += 1;
        inner.jobs.insert(
            id,
            JobState {
                size,
                parent,
                modex: HashMap::new(),
                modex_waiters: Vec::new(),
                barrier: BarrierState {
                    generation: 0,
                    arrived: 0,
                    waiters: Vec::new(),
                },
                finalized: 0,
            },
        );
        id
    }

    /// Number of ranks in `job`.
    pub fn job_size(&self, job: JobId) -> usize {
        self.inner.lock().jobs[&job].size
    }

    /// The spawning process, for dynamically created jobs.
    pub fn job_parent(&self, job: JobId) -> Option<ProcName> {
        self.inner.lock().jobs[&job].parent
    }

    /// Publish `(key, value)` for `who` (one OOB message).
    pub fn modex_put(&self, proc: &Proc, who: ProcName, key: &str, value: Vec<u8>) {
        proc.advance(self.cfg.oob_latency);
        let mut inner = self.inner.lock();
        let job = inner.jobs.get_mut(&who.job).expect("unknown job");
        job.modex.insert((who.rank, key.to_string()), value);
        let waiters = std::mem::take(&mut job.modex_waiters);
        drop(inner);
        let sim = proc.sim();
        for w in waiters {
            w.notify(&sim);
        }
    }

    /// Non-blocking lookup.
    pub fn modex_try_get(&self, who: ProcName, key: &str) -> Option<Vec<u8>> {
        let inner = self.inner.lock();
        inner
            .jobs
            .get(&who.job)?
            .modex
            .get(&(who.rank, key.to_string()))
            .cloned()
    }

    /// Blocking lookup: waits (in virtual time) until the peer publishes.
    pub fn modex_get(&self, proc: &Proc, who: ProcName, key: &str) -> Vec<u8> {
        proc.advance(self.cfg.oob_latency);
        loop {
            {
                let mut inner = self.inner.lock();
                let job = inner.jobs.get_mut(&who.job).expect("unknown job");
                if let Some(v) = job.modex.get(&(who.rank, key.to_string())) {
                    return v.clone();
                }
                let sig = proc.signal();
                job.modex_waiters.push(sig.clone());
                drop(inner);
                proc.wait(&sig).expect_signaled();
            }
        }
    }

    /// Job-wide barrier over the OOB network (used during `MPI_Init` /
    /// finalize, matching the paper's collective connection setup).
    pub fn barrier(&self, proc: &Proc, job: JobId) {
        proc.advance(self.cfg.oob_latency);
        let sig = proc.signal();
        let release = {
            let mut inner = self.inner.lock();
            let st = inner.jobs.get_mut(&job).expect("unknown job");
            st.barrier.arrived += 1;
            if st.barrier.arrived == st.size {
                st.barrier.arrived = 0;
                st.barrier.generation += 1;
                Some(std::mem::take(&mut st.barrier.waiters))
            } else {
                st.barrier.waiters.push(sig.clone());
                None
            }
        };
        match release {
            Some(waiters) => {
                let sim = proc.sim();
                for w in waiters {
                    w.notify(&sim);
                }
            }
            None => proc.wait(&sig).expect_signaled(),
        }
    }

    /// Record one rank's finalization; returns true when the whole job has
    /// finalized (the last one out can tear shared state down).
    pub fn finalize_rank(&self, proc: &Proc, job: JobId) -> bool {
        proc.advance(self.cfg.oob_latency);
        let mut inner = self.inner.lock();
        let st = inner.jobs.get_mut(&job).expect("unknown job");
        st.finalized += 1;
        st.finalized == st.size
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsim::Simulation;
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

    #[test]
    fn modex_put_get_across_processes() {
        let sim = Simulation::new();
        let rte = Rte::new(RteConfig::default());
        let job = rte.create_job(2, None);
        let got = Arc::new(Mutex::new(Vec::new()));

        {
            let rte = rte.clone();
            let got = got.clone();
            sim.spawn("r0", move |p| {
                // Get blocks until r1 publishes.
                let v = rte.modex_get(&p, ProcName { job, rank: 1 }, "addr");
                *got.lock() = v;
            });
        }
        {
            let rte = rte.clone();
            sim.spawn("r1", move |p| {
                p.advance(Dur::from_us(100));
                rte.modex_put(&p, ProcName { job, rank: 1 }, "addr", vec![42, 43]);
            });
        }
        sim.run().unwrap();
        assert_eq!(*got.lock(), vec![42, 43]);
    }

    #[test]
    fn barrier_releases_all_at_last_arrival() {
        let sim = Simulation::new();
        let rte = Rte::new(RteConfig::default());
        let job = rte.create_job(3, None);
        let max_t = Arc::new(AtomicU64::new(0));
        let min_t = Arc::new(AtomicU64::new(u64::MAX));
        for r in 0..3usize {
            let rte = rte.clone();
            let max_t = max_t.clone();
            let min_t = min_t.clone();
            sim.spawn(&format!("r{r}"), move |p| {
                p.advance(Dur::from_us(10 * r as u64));
                rte.barrier(&p, job);
                let t = p.now().as_ns();
                max_t.fetch_max(t, Ordering::SeqCst);
                min_t.fetch_min(t, Ordering::SeqCst);
            });
        }
        sim.run().unwrap();
        // Everyone leaves at the same virtual instant.
        assert_eq!(max_t.load(Ordering::SeqCst), min_t.load(Ordering::SeqCst));
        // Which is no earlier than the last arrival (20us + oob).
        assert!(max_t.load(Ordering::SeqCst) >= 20_000 + 30_000);
    }

    #[test]
    fn barrier_is_reusable() {
        let sim = Simulation::new();
        let rte = Rte::new(RteConfig::default());
        let job = rte.create_job(2, None);
        let count = Arc::new(AtomicUsize::new(0));
        for r in 0..2usize {
            let rte = rte.clone();
            let count = count.clone();
            sim.spawn(&format!("r{r}"), move |p| {
                for _ in 0..5 {
                    p.advance(Dur::from_us(1 + r as u64));
                    rte.barrier(&p, job);
                    count.fetch_add(1, Ordering::SeqCst);
                }
            });
        }
        sim.run().unwrap();
        assert_eq!(count.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn spawned_job_records_parent() {
        let rte = Rte::new(RteConfig::default());
        let world = rte.create_job(4, None);
        let parent = ProcName {
            job: world,
            rank: 2,
        };
        let child = rte.create_job(2, Some(parent));
        assert_ne!(world, child);
        assert_eq!(rte.job_parent(child), Some(parent));
        assert_eq!(rte.job_parent(world), None);
        assert_eq!(rte.job_size(child), 2);
    }

    #[test]
    fn finalize_counts_to_job_size() {
        let sim = Simulation::new();
        let rte = Rte::new(RteConfig::default());
        let job = rte.create_job(3, None);
        let last = Arc::new(AtomicUsize::new(usize::MAX));
        for r in 0..3usize {
            let rte = rte.clone();
            let last = last.clone();
            sim.spawn(&format!("r{r}"), move |p| {
                p.advance(Dur::from_us(r as u64));
                if rte.finalize_rank(&p, job) {
                    last.store(r, Ordering::SeqCst);
                }
            });
        }
        sim.run().unwrap();
        assert_eq!(last.load(Ordering::SeqCst), 2);
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use qsim::{Dur, Simulation};

    #[test]
    fn modex_try_get_is_nonblocking() {
        let rte = Rte::new(RteConfig::default());
        let job = rte.create_job(1, None);
        let who = ProcName { job, rank: 0 };
        assert!(rte.modex_try_get(who, "missing").is_none());
        let sim = Simulation::new();
        {
            let rte = rte.clone();
            sim.spawn("p", move |p| {
                rte.modex_put(&p, who, "k", vec![9]);
            });
        }
        sim.run().unwrap();
        assert_eq!(rte.modex_try_get(who, "k"), Some(vec![9]));
        assert!(rte.modex_try_get(who, "other").is_none());
    }

    #[test]
    fn jobs_are_isolated() {
        let sim = Simulation::new();
        let rte = Rte::new(RteConfig::default());
        let a = rte.create_job(2, None);
        let b = rte.create_job(2, None);
        assert_ne!(a, b);
        // Barriers on different jobs do not release each other.
        for (job, delay) in [(a, 0u64), (a, 5), (b, 10), (b, 15)] {
            let rte = rte.clone();
            sim.spawn(&format!("{job:?}-{delay}"), move |p| {
                p.advance(Dur::from_us(delay));
                rte.barrier(&p, job);
            });
        }
        sim.run().unwrap();
        // Keys are namespaced by job.
        let sim2 = Simulation::new();
        {
            let rte = rte.clone();
            sim2.spawn("p", move |p| {
                rte.modex_put(&p, ProcName { job: a, rank: 0 }, "x", vec![1]);
                rte.modex_put(&p, ProcName { job: b, rank: 0 }, "x", vec![2]);
            });
        }
        sim2.run().unwrap();
        assert_eq!(
            rte.modex_try_get(ProcName { job: a, rank: 0 }, "x"),
            Some(vec![1])
        );
        assert_eq!(
            rte.modex_try_get(ProcName { job: b, rank: 0 }, "x"),
            Some(vec![2])
        );
    }

    #[test]
    fn oob_operations_cost_virtual_time() {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;
        let sim = Simulation::new();
        let rte = Rte::new(RteConfig::default());
        let job = rte.create_job(1, None);
        let t = Arc::new(AtomicU64::new(0));
        {
            let (rte, t) = (rte.clone(), t.clone());
            sim.spawn("p", move |p| {
                rte.modex_put(&p, ProcName { job, rank: 0 }, "k", vec![]);
                t.store(p.now().as_ns(), Ordering::SeqCst);
            });
        }
        sim.run().unwrap();
        assert_eq!(t.load(Ordering::SeqCst), 30_000, "one OOB hop = 30us");
    }
}
