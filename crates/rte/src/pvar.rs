//! Cluster-wide performance-variable aggregation.
//!
//! Each rank publishes a flat `(name, value)` pvar snapshot through the
//! modex (the same out-of-band channel PTL modules use for addressing), and
//! any process can then gather the whole job's snapshots and reduce them
//! into a [`ClusterReport`]: per-variable min/max/sum with the owning ranks,
//! plus a straggler guess — the rank that most often holds the maximum of a
//! variable that actually spreads across the job.
//!
//! The rows are deliberately generic (`String` name, `u64` value) so this
//! crate needs no knowledge of the MPI stack's metric set; the stack side
//! lives in `openmpi-core::introspect`.

use qsim::Proc;

use crate::{JobId, ProcName, Rte};

/// Modex key under which a rank's pvar snapshot is published.
pub const PVAR_KEY: &str = "pvar";

/// Serialize pvar rows as `name value` lines (names never contain spaces).
pub fn encode_rows(rows: &[(String, u64)]) -> Vec<u8> {
    let mut out = String::new();
    for (name, value) in rows {
        debug_assert!(!name.contains([' ', '\n']), "pvar name {name:?}");
        out.push_str(name);
        out.push(' ');
        out.push_str(&value.to_string());
        out.push('\n');
    }
    out.into_bytes()
}

/// Parse rows serialized by [`encode_rows`]. Panics on malformed input —
/// the bytes only ever come from `encode_rows` on another rank.
pub fn decode_rows(bytes: &[u8]) -> Vec<(String, u64)> {
    let text = std::str::from_utf8(bytes).expect("pvar rows are UTF-8");
    text.lines()
        .map(|line| {
            let (name, value) = line.split_once(' ').expect("pvar row has two fields");
            (name.to_string(), value.parse().expect("pvar value is u64"))
        })
        .collect()
}

/// One variable reduced across the job.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PvarAgg {
    /// Variable name.
    pub name: String,
    /// Smallest value and a rank holding it.
    pub min: u64,
    /// Rank holding the minimum (lowest such rank).
    pub min_rank: usize,
    /// Largest value and a rank holding it.
    pub max: u64,
    /// Rank holding the maximum (lowest such rank).
    pub max_rank: usize,
    /// Sum over all ranks.
    pub sum: u64,
}

/// The job-wide aggregate of every rank's pvar snapshot.
#[derive(Clone, Debug)]
pub struct ClusterReport {
    /// Number of ranks aggregated.
    pub ranks: usize,
    /// Per-variable reductions, in first-seen variable order.
    pub vars: Vec<PvarAgg>,
    /// The rank that most often holds the maximum among variables whose
    /// values actually differ across ranks; `None` when nothing spreads.
    pub straggler: Option<usize>,
}

impl ClusterReport {
    /// Reduce per-rank rows into the cluster report. A variable missing on
    /// some rank counts as 0 there.
    pub fn build(per_rank: &[(usize, Vec<(String, u64)>)]) -> ClusterReport {
        let mut order: Vec<String> = Vec::new();
        for (_, rows) in per_rank {
            for (name, _) in rows {
                if !order.contains(name) {
                    order.push(name.clone());
                }
            }
        }
        let value_of = |rows: &[(String, u64)], name: &str| {
            rows.iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .unwrap_or(0)
        };
        let mut vars = Vec::with_capacity(order.len());
        let mut max_hits: std::collections::HashMap<usize, usize> = Default::default();
        for name in &order {
            let mut agg: Option<PvarAgg> = None;
            for (rank, rows) in per_rank {
                let v = value_of(rows, name);
                match &mut agg {
                    None => {
                        agg = Some(PvarAgg {
                            name: name.clone(),
                            min: v,
                            min_rank: *rank,
                            max: v,
                            max_rank: *rank,
                            sum: v,
                        })
                    }
                    Some(a) => {
                        if v < a.min {
                            a.min = v;
                            a.min_rank = *rank;
                        }
                        if v > a.max {
                            a.max = v;
                            a.max_rank = *rank;
                        }
                        a.sum += v;
                    }
                }
            }
            let a = agg.expect("at least one rank");
            if a.max > a.min {
                *max_hits.entry(a.max_rank).or_default() += 1;
            }
            vars.push(a);
        }
        // Most frequent argmax; ties go to the lowest rank for determinism.
        let straggler = max_hits
            .into_iter()
            .max_by_key(|(rank, hits)| (*hits, std::cmp::Reverse(*rank)))
            .map(|(rank, _)| rank);
        ClusterReport {
            ranks: per_rank.len(),
            vars,
            straggler,
        }
    }

    /// Aggregate for one variable, by name.
    pub fn get(&self, name: &str) -> Option<&PvarAgg> {
        self.vars.iter().find(|a| a.name == name)
    }

    /// JSON rendering of the report.
    pub fn to_json(&self) -> String {
        let vars: Vec<String> = self
            .vars
            .iter()
            .map(|a| {
                format!(
                    "{{\"name\":\"{}\",\"min\":{},\"min_rank\":{},\"max\":{},\
                     \"max_rank\":{},\"sum\":{}}}",
                    a.name, a.min, a.min_rank, a.max, a.max_rank, a.sum
                )
            })
            .collect();
        let straggler = match self.straggler {
            Some(r) => r.to_string(),
            None => "null".to_string(),
        };
        format!(
            "{{\"ranks\":{},\"straggler\":{},\"vars\":[{}]}}",
            self.ranks,
            straggler,
            vars.join(",")
        )
    }
}

impl Rte {
    /// Publish `who`'s pvar snapshot (one OOB message).
    pub fn pvar_publish(&self, proc: &Proc, who: ProcName, rows: &[(String, u64)]) {
        self.modex_put(proc, who, PVAR_KEY, encode_rows(rows));
    }

    /// Gather every rank's published snapshot, blocking (in virtual time)
    /// until all of them have published.
    pub fn pvar_collect(&self, proc: &Proc, job: JobId) -> Vec<(usize, Vec<(String, u64)>)> {
        let size = self.job_size(job);
        (0..size)
            .map(|rank| {
                let raw = self.modex_get(proc, ProcName { job, rank }, PVAR_KEY);
                (rank, decode_rows(&raw))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RteConfig;
    use qsim::{Mutex, Simulation};
    use std::sync::Arc;

    #[test]
    fn rows_roundtrip() {
        let rows = vec![
            ("pml.eager_sent".to_string(), 42u64),
            ("hist.match_time.p99_ns".to_string(), u64::MAX),
            ("queues.posted_depth".to_string(), 0),
            // Reliability-plane names travel the same generic channel.
            ("rel.retransmits".to_string(), 3),
            ("queues.ctl_inflight".to_string(), 1),
        ];
        assert_eq!(decode_rows(&encode_rows(&rows)), rows);
        assert!(decode_rows(&[]).is_empty());
    }

    #[test]
    fn reliability_pvars_aggregate_like_any_other() {
        // A rank that keeps retransmitting stands out as the straggler.
        let per_rank = vec![
            (0usize, vec![("rel.retransmits".to_string(), 0u64)]),
            (1, vec![("rel.retransmits".to_string(), 4)]),
            (2, vec![("rel.retransmits".to_string(), 0)]),
        ];
        let rep = ClusterReport::build(&per_rank);
        let r = rep.get("rel.retransmits").unwrap();
        assert_eq!((r.min, r.max, r.max_rank, r.sum), (0, 4, 1, 4));
        assert_eq!(rep.straggler, Some(1));
    }

    #[test]
    fn report_reduces_min_max_sum_and_names_straggler() {
        let per_rank = vec![
            (0usize, vec![("a".to_string(), 10u64), ("b".to_string(), 5)]),
            (1, vec![("a".to_string(), 30), ("b".to_string(), 9)]),
            (2, vec![("a".to_string(), 20), ("b".to_string(), 9)]),
        ];
        let rep = ClusterReport::build(&per_rank);
        assert_eq!(rep.ranks, 3);
        let a = rep.get("a").unwrap();
        assert_eq!(
            (a.min, a.min_rank, a.max, a.max_rank, a.sum),
            (10, 0, 30, 1, 60)
        );
        // "b" maxes at rank 1 too (ties broken to the lowest rank), so rank 1
        // holds the argmax for both spreading variables.
        assert_eq!(rep.straggler, Some(1));
        let json = rep.to_json();
        assert!(json.contains("\"straggler\":1"));
        assert!(json.contains("\"name\":\"a\""));
    }

    #[test]
    fn uniform_values_have_no_straggler() {
        let per_rank = vec![
            (0usize, vec![("a".to_string(), 7u64)]),
            (1, vec![("a".to_string(), 7)]),
        ];
        let rep = ClusterReport::build(&per_rank);
        assert_eq!(rep.straggler, None);
        assert!(rep.to_json().contains("\"straggler\":null"));
    }

    #[test]
    fn missing_variable_counts_as_zero() {
        let per_rank = vec![(0usize, vec![("a".to_string(), 4u64)]), (1, vec![])];
        let rep = ClusterReport::build(&per_rank);
        let a = rep.get("a").unwrap();
        assert_eq!((a.min, a.min_rank, a.sum), (0, 1, 4));
    }

    #[test]
    fn publish_collect_across_processes() {
        let sim = Simulation::new();
        let rte = Rte::new(RteConfig::default());
        let job = rte.create_job(2, None);
        let out = Arc::new(Mutex::new(None));
        for rank in 0..2usize {
            let rte = rte.clone();
            let out = out.clone();
            sim.spawn(&format!("r{rank}"), move |p| {
                let rows = vec![("x".to_string(), rank as u64 * 100)];
                rte.pvar_publish(&p, ProcName { job, rank }, &rows);
                if rank == 0 {
                    let per_rank = rte.pvar_collect(&p, job);
                    *out.lock() = Some(ClusterReport::build(&per_rank));
                }
            });
        }
        sim.run().unwrap();
        let rep = out.lock().take().unwrap();
        let x = rep.get("x").unwrap();
        assert_eq!((x.min, x.max, x.max_rank, x.sum), (0, 100, 1, 100));
        assert_eq!(rep.straggler, Some(1));
    }
}
