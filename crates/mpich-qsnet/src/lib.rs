//! # mpich-qsnet — the MPICH-QsNetII comparator
//!
//! The baseline the paper measures against (§6.5): MPICH layered on the
//! Quadrics Tport interface. Its distinguishing properties, all modelled:
//!
//! - **NIC-based tag matching** — posted receives live in the NIC; a
//!   matched eager message lands in the user buffer without a host round
//!   trip (the Open MPI PTL deliberately forgoes this to share request
//!   queues across networks).
//! - **32-byte headers** — half of Open MPI's 64-byte match header.
//! - **NIC-side pipelining** — large messages are pulled by the receiving
//!   NIC in streamed chunks as soon as the envelope matches, giving the
//!   strong mid-range bandwidth of Fig. 10(d).
//! - **Static process pool** — all contexts are claimed before the ranks
//!   start, and the rank ↔ VPID binding is fixed (exactly the property
//!   that keeps MPICH-QsNet from supporting MPI-2 dynamic processes,
//!   paper §3.2).

#![warn(missing_docs)]

use std::sync::Arc;

use elan4::{Cluster, ElanCtx, HostBuf, Tport, TportRecv, TportSend, Vpid};
use qsim::{Dur, Proc, Simulation};

/// Host-library overhead per MPI call (thin MPICH layer above Tport).
#[derive(Clone, Debug)]
pub struct MpichConfig {
    /// Host time per MPI call above the Tport.
    pub call_overhead: Dur,
}

impl Default for MpichConfig {
    fn default() -> Self {
        MpichConfig {
            call_overhead: Dur::from_ns(450),
        }
    }
}

/// Source wildcard for receives.
pub const MPICH_ANY_SOURCE: i32 = -1;
/// Tag wildcard for receives.
pub const MPICH_ANY_TAG: i64 = elan4::TPORT_ANY_TAG;

/// One rank of an MPICH-QsNet job.
pub struct MpichRank {
    proc: Proc,
    ctx: Arc<ElanCtx>,
    tport: Tport,
    rank: usize,
    vpids: Arc<Vec<Vpid>>,
    cfg: MpichConfig,
}

/// A pending nonblocking operation.
pub enum MpichReq {
    /// A pending send.
    Send(TportSend),
    /// A pending receive.
    Recv(TportRecv),
}

impl MpichRank {
    /// This process's rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Ranks in the job.
    pub fn size(&self) -> usize {
        self.vpids.len()
    }

    /// The underlying simulated process.
    pub fn proc(&self) -> &Proc {
        &self.proc
    }

    /// Current virtual time.
    pub fn now(&self) -> qsim::Time {
        self.proc.now()
    }

    /// Allocate host memory on this rank's node.
    pub fn alloc(&self, len: usize) -> HostBuf {
        self.ctx.alloc(len)
    }

    /// Free a buffer.
    pub fn free(&self, buf: HostBuf) {
        self.ctx.free(buf);
    }

    /// Untimed host store into a buffer.
    pub fn write(&self, buf: &HostBuf, off: usize, data: &[u8]) {
        self.ctx.write(buf, off, data);
    }

    /// Untimed host load from a buffer.
    pub fn read(&self, buf: &HostBuf, off: usize, len: usize) -> Vec<u8> {
        self.ctx.read(buf, off, len)
    }

    /// Nonblocking tagged send of `len` bytes.
    pub fn isend(&self, dst: usize, tag: i64, buf: &HostBuf, len: usize) -> MpichReq {
        self.proc.advance(self.cfg.call_overhead);
        MpichReq::Send(
            self.tport
                .isend(&self.proc, self.vpids[dst], tag, *buf, len),
        )
    }

    /// Nonblocking tagged receive into `buf` (NIC-side matching).
    pub fn irecv(&self, src: i32, tag: i64, buf: HostBuf) -> MpichReq {
        self.proc.advance(self.cfg.call_overhead);
        let src_sel = if src == MPICH_ANY_SOURCE {
            elan4::TPORT_ANY_SRC
        } else {
            self.vpids[src as usize].raw()
        };
        MpichReq::Recv(self.tport.irecv(&self.proc, src_sel, tag, buf))
    }

    /// Block until the operation completes.
    pub fn wait(&self, req: &MpichReq) {
        match req {
            MpichReq::Send(s) => self.tport.wait_send(&self.proc, s),
            MpichReq::Recv(r) => {
                self.tport.wait_recv(&self.proc, r);
            }
        }
    }

    /// Blocking send.
    pub fn send(&self, dst: usize, tag: i64, buf: &HostBuf, len: usize) {
        let r = self.isend(dst, tag, buf, len);
        self.wait(&r);
    }

    /// Blocking receive.
    pub fn recv(&self, src: i32, tag: i64, buf: &HostBuf) {
        let r = self.irecv(src, tag, *buf);
        self.wait(&r);
    }

    /// Simple dissemination barrier over tport messages.
    pub fn barrier(&self) {
        let n = self.size();
        if n <= 1 {
            return;
        }
        let me = self.rank;
        let buf = self.alloc(1);
        let mut k = 1;
        let mut round = 0i64;
        while k < n {
            let to = (me + k) % n;
            let from = (me + n - k) % n;
            let tag = -(1000 + round); // reserved negative tag space
            let r = self.irecv(from as i32, tag, buf);
            self.send(to, tag, &buf, 1);
            self.wait(&r);
            k <<= 1;
            round += 1;
        }
        self.free(buf);
    }
}

/// Launch an `n`-rank MPICH-QsNet job on `cluster` and run it to
/// completion. Contexts are claimed up front (static pool) with rank `r`
/// placed on node `r % nodes`.
pub fn run_mpich(
    cluster: &Arc<Cluster>,
    n: usize,
    cfg: MpichConfig,
    entry: impl Fn(MpichRank) + Send + Sync + 'static,
) {
    let sim = Simulation::new();
    launch_mpich(&sim, cluster, n, cfg, entry);
    if let Err(e) = sim.run() {
        panic!("mpich simulation failed: {e}");
    }
}

/// Like [`run_mpich`] but on an existing simulation.
pub fn launch_mpich(
    sim: &Simulation,
    cluster: &Arc<Cluster>,
    n: usize,
    cfg: MpichConfig,
    entry: impl Fn(MpichRank) + Send + Sync + 'static,
) {
    let nodes = cluster.nodes();
    // Static pool: claim every context before any rank runs.
    let ctxs: Vec<Arc<ElanCtx>> = (0..n)
        .map(|r| Arc::new(ElanCtx::attach(cluster, r % nodes).expect("capability exhausted")))
        .collect();
    let vpids = Arc::new(ctxs.iter().map(|c| c.vpid()).collect::<Vec<_>>());
    let entry = Arc::new(entry);
    for (rank, ctx) in ctxs.into_iter().enumerate() {
        let vpids = vpids.clone();
        let entry = entry.clone();
        let cfg = cfg.clone();
        sim.spawn(&format!("mpich{rank}"), move |p| {
            let tport = Tport::new(ctx.clone(), 0);
            entry(MpichRank {
                proc: p,
                ctx,
                tport,
                rank,
                vpids,
                cfg,
            });
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elan4::NicConfig;
    use qsnet::FabricConfig;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn pattern(n: usize, seed: u8) -> Vec<u8> {
        (0..n)
            .map(|i| ((i * 13 + seed as usize) % 251) as u8)
            .collect()
    }

    fn cluster() -> Arc<Cluster> {
        Cluster::new(NicConfig::default(), FabricConfig::default())
    }

    fn pingpong(len: usize, iters: usize) -> u64 {
        let cl = cluster();
        let lat = Arc::new(AtomicU64::new(0));
        let l2 = lat.clone();
        run_mpich(&cl, 2, MpichConfig::default(), move |r| {
            let sbuf = r.alloc(len.max(1));
            let rbuf = r.alloc(len.max(1));
            r.write(&sbuf, 0, &pattern(len, r.rank() as u8));
            r.barrier();
            let t0 = r.now();
            for _ in 0..iters {
                if r.rank() == 0 {
                    r.send(1, 0, &sbuf, len);
                    r.recv(1, 0, &rbuf);
                } else {
                    r.recv(0, 0, &rbuf);
                    r.send(0, 0, &sbuf, len);
                }
            }
            if r.rank() == 0 {
                l2.store(
                    (r.now() - t0).as_ns() / (2 * iters as u64),
                    Ordering::SeqCst,
                );
                assert_eq!(r.read(&rbuf, 0, len), pattern(len, 1));
            }
        });
        lat.load(Ordering::SeqCst)
    }

    #[test]
    fn small_message_latency_band() {
        let l0 = pingpong(0, 20);
        // MPICH-QsNetII small-message latency ≈ 3 µs in the paper.
        assert!(l0 > 1_800 && l0 < 4_000, "mpich 0B latency {l0}ns");
    }

    #[test]
    fn large_message_bandwidth_band() {
        let len = 1 << 20;
        let ns = pingpong(len, 2);
        let mbps = len as f64 / (ns as f64 / 1e9) / 1e6;
        // Peak ≈ 900 MB/s (PCI-X bound).
        assert!(mbps > 700.0 && mbps < 1100.0, "mpich bandwidth {mbps} MB/s");
    }

    #[test]
    fn wildcard_recv_and_tags() {
        let cl = cluster();
        run_mpich(&cl, 3, MpichConfig::default(), |r| {
            if r.rank() == 0 {
                let buf = r.alloc(16);
                for _ in 0..2 {
                    r.recv(MPICH_ANY_SOURCE, MPICH_ANY_TAG, &buf);
                }
            } else {
                let buf = r.alloc(16);
                r.write(&buf, 0, &[r.rank() as u8; 16]);
                r.send(0, r.rank() as i64, &buf, 16);
            }
        });
    }

    #[test]
    fn eight_rank_ring() {
        let cl = cluster();
        run_mpich(&cl, 8, MpichConfig::default(), |r| {
            let n = r.size();
            let me = r.rank();
            let sbuf = r.alloc(512);
            let rbuf = r.alloc(512);
            r.write(&sbuf, 0, &pattern(512, me as u8));
            let rr = r.irecv(((me + n - 1) % n) as i32, 5, rbuf);
            r.send((me + 1) % n, 5, &sbuf, 512);
            r.wait(&rr);
            assert_eq!(
                r.read(&rbuf, 0, 512),
                pattern(512, ((me + n - 1) % n) as u8)
            );
        });
    }
}
