//! The wire: per-rail, per-node link occupancy and packet timing.
//!
//! A message handed to [`Fabric::send`] is cut into MTU-sized packets. Each
//! packet serializes on the source injection link, crosses
//! [`FatTree::switch_hops`] switch stages, and serializes again into the
//! destination node; consecutive packets pipeline. QsNetII performs
//! link-level retransmission in hardware, so injected faults delay packets
//! (and bump a retry counter) rather than losing them.

use std::sync::Arc;

use qsim::Mutex;
use qsim::{Dur, SimHandle, Time};

use crate::topology::{FatTree, NodeId};

/// Fabric timing and shape parameters.
#[derive(Clone, Debug)]
pub struct FabricConfig {
    /// Switch down-degree (4 = quaternary / Elite4).
    pub radix: usize,
    /// Number of hosts.
    pub nodes: usize,
    /// Independent rails (the paper's future-work multi-rail setup).
    pub rails: usize,
    /// Link bandwidth in bytes per microsecond (1300 = 1.3 GB/s QsNetII).
    pub link_bytes_per_us: u64,
    /// Latency through one Elite4 switch stage.
    pub hop_latency: Dur,
    /// Maximum packet payload on the wire.
    pub mtu: usize,
    /// Per-packet wire overhead (routing flits, CRC) in bytes.
    pub packet_overhead: usize,
    /// Delay before the hardware retransmits a faulted packet.
    pub retry_delay: Dur,
}

impl Default for FabricConfig {
    fn default() -> Self {
        FabricConfig {
            radix: 4,
            nodes: 8,
            rails: 1,
            link_bytes_per_us: 1300,
            hop_latency: Dur::from_ns(40),
            mtu: 2048,
            packet_overhead: 16,
            retry_delay: Dur::from_us(2),
        }
    }
}

/// Running counters, readable at any time.
#[derive(Clone, Debug, Default)]
pub struct FabricStats {
    /// Packets scheduled onto the wire (including broadcast replicas).
    pub packets: u64,
    /// Application payload carried.
    pub payload_bytes: u64,
    /// Payload plus per-packet wire overhead (and retransmissions).
    pub wire_bytes: u64,
    /// Hardware retransmissions triggered by injected faults.
    pub retries: u64,
}

struct RailState {
    /// Virtual time at which each node's injection link frees up.
    tx_free: Vec<Time>,
    /// Virtual time at which each node's reception link frees up.
    rx_free: Vec<Time>,
}

#[derive(Default)]
struct FaultState {
    /// (src, dst) -> number of upcoming packets to fault once each.
    drops: Vec<(NodeId, NodeId, u64)>,
}

impl FaultState {
    fn take_drop(&mut self, src: NodeId, dst: NodeId) -> bool {
        for entry in &mut self.drops {
            if entry.0 == src && entry.1 == dst && entry.2 > 0 {
                entry.2 -= 1;
                return true;
            }
        }
        false
    }
}

struct FabricState {
    rails: Vec<RailState>,
    stats: FabricStats,
    faults: FaultState,
}

/// The simulated QsNetII fabric shared by every NIC in the cluster.
pub struct Fabric {
    config: FabricConfig,
    topo: FatTree,
    state: Mutex<FabricState>,
}

impl Fabric {
    /// Build the fabric for `config` (topology + per-rail link state).
    pub fn new(config: FabricConfig) -> Arc<Fabric> {
        assert!(config.rails >= 1, "at least one rail");
        assert!(config.mtu > 0, "mtu must be positive");
        let topo = FatTree::new(config.radix, config.nodes);
        let rails = (0..config.rails)
            .map(|_| RailState {
                tx_free: vec![Time::ZERO; config.nodes],
                rx_free: vec![Time::ZERO; config.nodes],
            })
            .collect();
        Arc::new(Fabric {
            config,
            topo,
            state: Mutex::new(FabricState {
                rails,
                stats: FabricStats::default(),
                faults: FaultState::default(),
            }),
        })
    }

    /// The timing/shape parameters this fabric was built with.
    pub fn config(&self) -> &FabricConfig {
        &self.config
    }

    /// The fat-tree topology.
    pub fn topology(&self) -> &FatTree {
        &self.topo
    }

    /// Snapshot of the running counters.
    pub fn stats(&self) -> FabricStats {
        self.state.lock().stats.clone()
    }

    /// Arrange for the next `count` packets from `src` to `dst` to be
    /// faulted once each (each costs one hardware retransmission).
    pub fn inject_drops(&self, src: NodeId, dst: NodeId, count: u64) {
        self.state.lock().faults.drops.push((src, dst, count));
    }

    /// Transmit `len` payload bytes from `src` to `dst` on `rail`; run
    /// `done` when the final byte arrives. Returns the scheduled delivery
    /// time.
    ///
    /// # Panics
    /// If `rail`, `src` or `dst` are out of range.
    pub fn send(
        self: &Arc<Self>,
        sim: &SimHandle,
        rail: usize,
        src: NodeId,
        dst: NodeId,
        len: usize,
        done: impl FnOnce(&SimHandle) + Send + 'static,
    ) -> Time {
        let delivered = self.schedule_packets(sim, rail, src, dst, len);
        sim.call_at(delivered, done);
        delivered
    }

    /// Like [`Fabric::send`] but without a completion callback (used when the
    /// caller chains its own events off the returned time).
    pub fn schedule_packets(
        self: &Arc<Self>,
        sim: &SimHandle,
        rail: usize,
        src: NodeId,
        dst: NodeId,
        len: usize,
    ) -> Time {
        let now = sim.now();
        let n_packets = len.div_ceil(self.config.mtu).max(1);
        let mut remaining = len;
        let mut delivered = now;
        for _ in 0..n_packets {
            let payload = remaining.min(self.config.mtu);
            remaining -= payload;
            delivered = self.packet_delivery(rail, src, dst, payload, now);
        }
        delivered
    }

    /// Schedule one packet of `payload` bytes, not entering the wire before
    /// `not_before` (e.g. because the host bus is still feeding the NIC).
    /// Returns the time the packet's tail reaches the destination NIC. This
    /// is the building block NIC DMA engines use to pipeline MTU chunks.
    ///
    /// # Panics
    /// If `rail`, `src` or `dst` are out of range, or `payload > mtu`.
    pub fn packet_delivery(
        &self,
        rail: usize,
        src: NodeId,
        dst: NodeId,
        payload: usize,
        not_before: Time,
    ) -> Time {
        assert!(rail < self.config.rails, "rail out of range");
        assert!(payload <= self.config.mtu, "packet exceeds MTU");
        let hops = self.topo.switch_hops(src, dst);
        let route_latency = self.config.hop_latency * hops as u64;
        let wire_len = payload + self.config.packet_overhead;
        let ser = Dur::for_bytes(wire_len, self.config.link_bytes_per_us);

        let mut st = self.state.lock();
        let faulted = st.faults.take_drop(src, dst);
        let rs = &mut st.rails[rail];
        let mut start = not_before.max(rs.tx_free[src]);
        if faulted {
            // Hardware-level retransmission: the packet occupies the link,
            // is NAKed, and goes again after the retry delay.
            start = start + ser + self.config.retry_delay;
        }
        // Cut-through routing: the head flit arrives after the route
        // latency while the tail is still serializing.
        let head_arrival = start + route_latency;
        let rx_start = head_arrival.max(rs.rx_free[dst]);
        let pkt_delivered = rx_start + ser;
        rs.tx_free[src] = start + ser;
        rs.rx_free[dst] = pkt_delivered;

        st.stats.packets += 1;
        st.stats.payload_bytes += payload as u64;
        st.stats.wire_bytes += wire_len as u64;
        if faulted {
            st.stats.retries += 1;
            st.stats.wire_bytes += wire_len as u64;
        }
        pkt_delivered
    }
}

impl Fabric {
    /// Hardware broadcast: one injection from `src` is replicated by the
    /// Elite switches to every destination. The source link is occupied
    /// once; each destination pays its own route latency and reception
    /// serialization. Returns per-destination delivery times (same order
    /// as `dsts`). Quadrics supports this only across a contiguous,
    /// synchronously-created address space — the caller enforces that
    /// (paper §4.1).
    pub fn bcast_delivery(
        &self,
        rail: usize,
        src: NodeId,
        dsts: &[NodeId],
        payload: usize,
        not_before: Time,
    ) -> Vec<Time> {
        assert!(rail < self.config.rails, "rail out of range");
        assert!(payload <= self.config.mtu, "packet exceeds MTU");
        let wire_len = payload + self.config.packet_overhead;
        let ser = Dur::for_bytes(wire_len, self.config.link_bytes_per_us);

        let mut st = self.state.lock();
        let start = not_before.max(st.rails[rail].tx_free[src]);
        st.rails[rail].tx_free[src] = start + ser;
        let mut out = Vec::with_capacity(dsts.len());
        for &dst in dsts {
            let hops = self.topo.switch_hops(src, dst);
            let head_arrival = start + self.config.hop_latency * hops as u64;
            let rx_start = head_arrival.max(st.rails[rail].rx_free[dst]);
            let delivered = rx_start + ser;
            st.rails[rail].rx_free[dst] = delivered;
            out.push(delivered);
            st.stats.packets += 1;
            st.stats.payload_bytes += payload as u64;
            st.stats.wire_bytes += wire_len as u64;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsim::Simulation;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn fabric() -> Arc<Fabric> {
        Fabric::new(FabricConfig::default())
    }

    fn one_send(f: &Arc<Fabric>, src: usize, dst: usize, len: usize) -> u64 {
        let sim = Simulation::new();
        let t = Arc::new(AtomicU64::new(0));
        let t2 = t.clone();
        let f = f.clone();
        sim.spawn("tx", move |p| {
            let sig = p.signal();
            let sig2 = sig.clone();
            f.send(&p.sim(), 0, src, dst, len, move |s| sig2.notify(s));
            p.wait(&sig).expect_signaled();
            t2.store(p.now().as_ns(), Ordering::SeqCst);
        });
        sim.run().unwrap();
        t.load(Ordering::SeqCst)
    }

    #[test]
    fn same_leaf_is_faster_than_cross_leaf() {
        let f = fabric();
        let near = one_send(&f, 0, 1, 1024); // 1 switch hop
        let f = fabric();
        let far = one_send(&f, 0, 4, 1024); // 3 switch hops
        assert!(far > near);
        assert_eq!(far - near, 2 * 40); // two extra hops
    }

    #[test]
    fn zero_byte_message_still_takes_a_packet() {
        let f = fabric();
        let t = one_send(&f, 0, 1, 0);
        assert!(t > 0);
        assert_eq!(f.stats().packets, 1);
        assert_eq!(f.stats().payload_bytes, 0);
    }

    #[test]
    fn large_message_bandwidth_approaches_link_rate() {
        let f = fabric();
        let len = 1 << 20; // 1 MB
        let ns = one_send(&f, 0, 1, len);
        let mb_per_s = len as f64 / (ns as f64 / 1e9) / 1e6;
        // MTU overhead (16B per 2048B) costs < 1%; route latency is small.
        assert!(mb_per_s > 1200.0 && mb_per_s < 1300.0, "got {mb_per_s}");
    }

    #[test]
    fn packets_pipeline_not_accumulate_hop_latency() {
        // With k packets, total time should be ~k*ser + const, not k*(ser+hops).
        let f = fabric();
        let t1 = one_send(&f, 0, 4, 2048);
        let f = fabric();
        let t8 = one_send(&f, 0, 4, 8 * 2048);
        let ser = Dur::for_bytes(2048 + 16, 1300).as_ns();
        assert!(t8 < t1 + 8 * ser, "t8={t8} t1={t1} ser={ser}");
    }

    #[test]
    fn injected_drop_delays_and_counts_retry() {
        let f = fabric();
        let clean = one_send(&f, 0, 1, 512);
        let f = fabric();
        f.inject_drops(0, 1, 1);
        let faulted = one_send(&f, 0, 1, 512);
        assert!(faulted > clean + 2_000); // at least the retry delay
        assert_eq!(f.stats().retries, 1);
    }

    #[test]
    fn concurrent_senders_to_one_destination_serialize() {
        let f = fabric();
        let sim = Simulation::new();
        let done = Arc::new(AtomicU64::new(0));
        for src in [0usize, 1, 2] {
            let f = f.clone();
            let done = done.clone();
            sim.spawn(&format!("tx{src}"), move |p| {
                let sig = p.signal();
                let sig2 = sig.clone();
                f.send(&p.sim(), 0, src, 3, 2048, move |s| sig2.notify(s));
                p.wait(&sig).expect_signaled();
                done.fetch_max(p.now().as_ns(), Ordering::SeqCst);
            });
        }
        sim.run().unwrap();
        let ser = Dur::for_bytes(2048 + 16, 1300).as_ns();
        // Three packets into one rx link: last delivery >= 3 serializations.
        assert!(done.load(Ordering::SeqCst) >= 3 * ser);
    }

    #[test]
    fn rails_are_independent() {
        let cfg = FabricConfig {
            rails: 2,
            ..Default::default()
        };
        let f = Fabric::new(cfg);
        let sim = Simulation::new();
        let done = Arc::new(AtomicU64::new(0));
        for rail in [0usize, 1] {
            let f = f.clone();
            let done = done.clone();
            sim.spawn(&format!("rail{rail}"), move |p| {
                let sig = p.signal();
                let sig2 = sig.clone();
                f.send(&p.sim(), rail, 0, 1, 1 << 20, move |s| sig2.notify(s));
                p.wait(&sig).expect_signaled();
                done.fetch_max(p.now().as_ns(), Ordering::SeqCst);
            });
        }
        sim.run().unwrap();
        // Both 1MB transfers overlap fully on separate rails: finish in the
        // time of one (plus epsilon), not two.
        let one_rail_ns = Dur::for_bytes((1 << 20) + 16 * 512, 1300).as_ns();
        assert!(done.load(Ordering::SeqCst) < one_rail_ns * 3 / 2);
    }
}

#[cfg(test)]
mod bcast_tests {
    use super::*;
    use qsim::Simulation;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn bcast_occupies_source_link_once() {
        let f = Fabric::new(FabricConfig::default());
        let sim = Simulation::new();
        let done = Arc::new(AtomicU64::new(0));
        {
            let f = f.clone();
            let done = done.clone();
            sim.spawn("tx", move |p| {
                let deliveries = f.bcast_delivery(0, 0, &[1, 2, 3, 4, 5, 6, 7], 1024, p.now());
                let last = deliveries.iter().max().unwrap().as_ns();
                // Compare with 7 sequential unicasts of the same payload.
                let f2 = Fabric::new(FabricConfig::default());
                let mut uni_last = 0;
                for d in 1..8usize {
                    let t = f2.packet_delivery(0, 0, d, 1024, p.now());
                    uni_last = uni_last.max(t.as_ns());
                }
                assert!(
                    last < uni_last,
                    "bcast last delivery {last} should beat serialized unicast {uni_last}"
                );
                done.store(last, Ordering::SeqCst);
            });
        }
        sim.run().unwrap();
        assert!(done.load(Ordering::SeqCst) > 0);
        // One source serialization, seven receptions accounted.
        assert_eq!(f.stats().packets, 7);
    }

    #[test]
    fn bcast_respects_receiver_occupancy() {
        let f = Fabric::new(FabricConfig::default());
        // Busy up node 3's reception link first.
        let t0 = Time::ZERO;
        let busy_until = f.packet_delivery(0, 5, 3, 2048, t0);
        let deliveries = f.bcast_delivery(0, 0, &[1, 3], 512, t0);
        // Node 1 is free; node 3 must wait for the earlier packet.
        assert!(deliveries[1] > deliveries[0]);
        assert!(deliveries[1] >= busy_until);
    }

    #[test]
    fn bcast_to_near_and_far_nodes_reflects_hops() {
        let f = Fabric::new(FabricConfig::default());
        let d = f.bcast_delivery(0, 0, &[1, 4], 64, Time::ZERO);
        // Node 1 shares the leaf switch (1 hop); node 4 crosses the top
        // (3 hops): 2 extra hops at 40ns each.
        assert_eq!(d[1].as_ns() - d[0].as_ns(), 80);
    }
}

#[cfg(all(test, feature = "proptest"))]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Delivery never precedes injection + route latency, and the same
        /// link never carries two packets at once (tx occupancy is
        /// monotone).
        #[test]
        fn packet_timing_invariants(
            sizes in proptest::collection::vec(0usize..2048, 1..20),
            src in 0usize..8,
            dst in 0usize..8,
        ) {
            prop_assume!(src != dst);
            let f = Fabric::new(FabricConfig::default());
            let cfg = f.config().clone();
            let hops = f.topology().switch_hops(src, dst) as u64;
            let mut last_delivery = Time::ZERO;
            let mut clock = Time::ZERO;
            for (i, len) in sizes.iter().enumerate() {
                // Interleave immediate and delayed injections.
                if i % 3 == 0 {
                    clock += Dur::from_ns(500);
                }
                let d = f.packet_delivery(0, src, dst, *len, clock);
                let ser = Dur::for_bytes(len + cfg.packet_overhead, cfg.link_bytes_per_us);
                // Lower bound: not-before + route + serialization.
                prop_assert!(
                    d >= clock + cfg.hop_latency * hops + ser,
                    "packet {i} delivered too early"
                );
                // Receiver-side FIFO: in-order delivery per (src, dst).
                prop_assert!(d >= last_delivery, "packet {i} reordered");
                last_delivery = d;
            }
        }

        /// Total wire time of a message stream is conserved: the sum of
        /// payloads matches the payload stats, and wire bytes include the
        /// per-packet overhead exactly once per packet.
        #[test]
        fn stats_account_every_byte(
            sizes in proptest::collection::vec(0usize..6000, 1..12),
        ) {
            let f = Fabric::new(FabricConfig::default());
            let cfg = f.config().clone();
            let mut expect_payload = 0u64;
            let mut expect_packets = 0u64;
            for len in &sizes {
                expect_payload += *len as u64;
                expect_packets += len.div_ceil(cfg.mtu).max(1) as u64;
                // Packetize the way the NIC's DMA engine does.
                let mut remaining = *len;
                loop {
                    let pkt = remaining.min(cfg.mtu);
                    f.packet_delivery(0, 0, 1, pkt, Time::ZERO);
                    if remaining <= cfg.mtu {
                        break;
                    }
                    remaining -= pkt;
                }
            }
            let stats = f.stats();
            prop_assert_eq!(stats.payload_bytes, expect_payload);
            prop_assert_eq!(stats.packets, expect_packets);
            prop_assert_eq!(
                stats.wire_bytes,
                expect_payload + expect_packets * cfg.packet_overhead as u64
            );
        }
    }
}
