//! The wire: per-rail, per-node link occupancy and packet timing.
//!
//! A message handed to [`Fabric::send`] is cut into MTU-sized packets. Each
//! packet serializes on the source injection link, crosses
//! [`FatTree::switch_hops`] switch stages, and serializes again into the
//! destination node; consecutive packets pipeline. QsNetII performs
//! link-level retransmission in hardware, so injected faults delay packets
//! (and bump a retry counter) rather than losing them.

use std::collections::VecDeque;
use std::sync::Arc;

use qsim::Mutex;
use qsim::{Dur, SimHandle, Time};

use crate::topology::{FatTree, NodeId};

/// Fabric timing and shape parameters.
#[derive(Clone, Debug)]
pub struct FabricConfig {
    /// Switch down-degree (4 = quaternary / Elite4).
    pub radix: usize,
    /// Number of hosts.
    pub nodes: usize,
    /// Independent rails (the paper's future-work multi-rail setup).
    pub rails: usize,
    /// Link bandwidth in bytes per microsecond (1300 = 1.3 GB/s QsNetII).
    pub link_bytes_per_us: u64,
    /// Latency through one Elite4 switch stage.
    pub hop_latency: Dur,
    /// Maximum packet payload on the wire.
    pub mtu: usize,
    /// Per-packet wire overhead (routing flits, CRC) in bytes.
    pub packet_overhead: usize,
    /// Delay before the hardware retransmits a faulted packet.
    pub retry_delay: Dur,
}

impl Default for FabricConfig {
    fn default() -> Self {
        FabricConfig {
            radix: 4,
            nodes: 8,
            rails: 1,
            link_bytes_per_us: 1300,
            hop_latency: Dur::from_ns(40),
            mtu: 2048,
            packet_overhead: 16,
            retry_delay: Dur::from_us(2),
        }
    }
}

/// Running counters, readable at any time.
#[derive(Clone, Debug, Default)]
pub struct FabricStats {
    /// Packets scheduled onto the wire (including broadcast replicas).
    pub packets: u64,
    /// Application payload carried.
    pub payload_bytes: u64,
    /// Payload plus per-packet wire overhead (and retransmissions).
    pub wire_bytes: u64,
    /// Hardware retransmissions triggered by injected faults.
    pub retries: u64,
}

struct RailState {
    /// Virtual time at which each node's injection link frees up.
    tx_free: Vec<Time>,
    /// Virtual time at which each node's reception link frees up.
    rx_free: Vec<Time>,
}

/// Which stage of a route a link belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum LinkKind {
    /// Host NIC → leaf switch.
    Injection,
    /// Level-k switch → level-(k+1) switch (towards the tree root).
    Up,
    /// Level-(k+1) switch → level-k switch (towards the hosts).
    Down,
    /// Leaf switch → host NIC.
    Ejection,
}

impl LinkKind {
    /// Short wire name used in link labels and JSON.
    pub fn label(self) -> &'static str {
        match self {
            LinkKind::Injection => "inj",
            LinkKind::Up => "up",
            LinkKind::Down => "down",
            LinkKind::Ejection => "ej",
        }
    }
}

/// Per-link running counters.
#[derive(Default)]
struct LinkAcct {
    /// Nanoseconds the link spent serializing bytes (including retries).
    busy_ns: u64,
    payload_bytes: u64,
    wire_bytes: u64,
    packets: u64,
    retries: u64,
    /// High-water mark of packets simultaneously holding or waiting for
    /// the link. Tracked only for endpoint links (the timing model has no
    /// switch-internal queues: cut-through contention resolves at the
    /// endpoints).
    queue_peak: u64,
    /// End times of busy intervals still in the future, for queue depth.
    inflight: VecDeque<Time>,
}

impl LinkAcct {
    fn charge(&mut self, busy_ns: u64, payload: u64, wire: u64) {
        self.busy_ns += busy_ns;
        self.payload_bytes += payload;
        self.wire_bytes += wire;
        self.packets += 1;
    }

    /// Record a packet asking for the link at `arrival` and releasing it at
    /// `end`; returns the depth it observed (itself included).
    fn enqueue(&mut self, arrival: Time, end: Time) -> u64 {
        while self.inflight.front().is_some_and(|&e| e <= arrival) {
            self.inflight.pop_front();
        }
        self.inflight.push_back(end);
        let depth = self.inflight.len() as u64;
        self.queue_peak = self.queue_peak.max(depth);
        depth
    }

    /// Packets still holding or waiting for the link at `now`.
    fn queue_now(&mut self, now: Time) -> u64 {
        while self.inflight.front().is_some_and(|&e| e <= now) {
            self.inflight.pop_front();
        }
        self.inflight.len() as u64
    }
}

/// Per-rail link accounting: one record per injection/ejection link (per
/// node) and per inter-switch link (per level, per switch).
struct RailAcct {
    inj: Vec<LinkAcct>,
    ej: Vec<LinkAcct>,
    /// `up[k-1][s]`: the uplink of level-k switch `s`, k in `1..levels`.
    up: Vec<Vec<LinkAcct>>,
    /// `down[k-1][s]`: the downlink into level-k switch `s`.
    down: Vec<Vec<LinkAcct>>,
}

impl RailAcct {
    fn new(topo: &FatTree) -> RailAcct {
        let nodes = topo.nodes();
        let mk = |n: usize| (0..n).map(|_| LinkAcct::default()).collect::<Vec<_>>();
        let stages = (1..topo.levels())
            .map(|k| mk(topo.switches_at(k)))
            .collect::<Vec<_>>();
        RailAcct {
            inj: mk(nodes),
            ej: mk(nodes),
            up: stages.iter().map(|s| mk(s.len())).collect(),
            down: stages,
        }
    }
}

/// Identity plus counters for one accounted link, as captured by
/// [`Fabric::link_snapshot`].
#[derive(Clone, Debug)]
pub struct LinkSnapshot {
    /// Rail the link belongs to.
    pub rail: usize,
    /// Route stage.
    pub kind: LinkKind,
    /// Switch level for `Up`/`Down` links (1 = leaf switch); 0 for
    /// endpoint links.
    pub level: u32,
    /// Node id for `Injection`/`Ejection`; switch index within the level
    /// for `Up`/`Down`.
    pub index: usize,
    /// Nanoseconds spent serializing bytes (including retransmissions).
    pub busy_ns: u64,
    /// Application payload carried.
    pub payload_bytes: u64,
    /// Payload plus per-packet overhead and retransmitted bytes.
    pub wire_bytes: u64,
    /// Packets carried.
    pub packets: u64,
    /// Hardware retransmissions on this link.
    pub retries: u64,
    /// Peak simultaneous holders/waiters (endpoint links only).
    pub queue_peak: u64,
    /// Holders/waiters at snapshot time (endpoint links only).
    pub queue_now: u64,
}

impl LinkSnapshot {
    /// Stable display name, e.g. `r0.inj.n3`, `r0.up.l1.s0`, `r0.ej.n0`.
    pub fn name(&self) -> String {
        match self.kind {
            LinkKind::Injection | LinkKind::Ejection => {
                format!("r{}.{}.n{}", self.rail, self.kind.label(), self.index)
            }
            LinkKind::Up | LinkKind::Down => format!(
                "r{}.{}.l{}.s{}",
                self.rail,
                self.kind.label(),
                self.level,
                self.index
            ),
        }
    }

    /// Fraction of `elapsed_ns` the link spent busy.
    pub fn occupancy(&self, elapsed_ns: u64) -> f64 {
        if elapsed_ns == 0 {
            0.0
        } else {
            self.busy_ns as f64 / elapsed_ns as f64
        }
    }

    fn to_json(&self, elapsed_ns: u64) -> String {
        format!(
            "{{\"link\":\"{}\",\"rail\":{},\"kind\":\"{}\",\"level\":{},\
             \"index\":{},\"busy_ns\":{},\"payload_bytes\":{},\
             \"wire_bytes\":{},\"packets\":{},\"retries\":{},\
             \"queue_peak\":{},\"queue_now\":{},\"occupancy\":{:.6}}}",
            self.name(),
            self.rail,
            self.kind.label(),
            self.level,
            self.index,
            self.busy_ns,
            self.payload_bytes,
            self.wire_bytes,
            self.packets,
            self.retries,
            self.queue_peak,
            self.queue_now,
            self.occupancy(elapsed_ns),
        )
    }
}

/// One endpoint-facing link's counters summed across rails, for the pvar
/// plane (`fab.inj.*` / `fab.ej.*`).
#[derive(Clone, Debug, Default)]
pub struct LinkTotals {
    /// Nanoseconds busy.
    pub busy_ns: u64,
    /// Application payload carried.
    pub payload_bytes: u64,
    /// Payload plus overhead and retransmissions.
    pub wire_bytes: u64,
    /// Packets carried.
    pub packets: u64,
    /// Hardware retransmissions.
    pub retries: u64,
    /// Peak queue depth.
    pub queue_peak: u64,
}

impl LinkTotals {
    fn add(&mut self, a: &LinkAcct) {
        self.busy_ns += a.busy_ns;
        self.payload_bytes += a.payload_bytes;
        self.wire_bytes += a.wire_bytes;
        self.packets += a.packets;
        self.retries += a.retries;
        self.queue_peak = self.queue_peak.max(a.queue_peak);
    }
}

/// Aggregate utilization of one route stage (all links of one kind/level).
#[derive(Clone, Debug)]
pub struct StageUtil {
    /// Stage label: `inj`, `ej`, `up.l1`, `down.l2`, …
    pub stage: String,
    /// Links of this stage that carried at least one packet.
    pub links_active: usize,
    /// Total busy nanoseconds across the stage's active links.
    pub busy_ns: u64,
    /// Mean occupancy of the active links over the report window.
    pub occupancy: f64,
}

/// Top-N hottest links plus per-stage utilization over `[0, at_ns]`.
#[derive(Clone, Debug)]
pub struct CongestionReport {
    /// Virtual time the report was taken at (window is `[0, at_ns]`).
    pub at_ns: u64,
    /// Total links that carried at least one packet.
    pub links_active: usize,
    /// Hottest links, sorted by busy time descending, truncated to top-N.
    pub links: Vec<LinkSnapshot>,
    /// Per-stage utilization over every active link (not just top-N).
    pub stages: Vec<StageUtil>,
}

impl CongestionReport {
    /// The single busiest link, if any traffic flowed at all.
    pub fn hottest(&self) -> Option<&LinkSnapshot> {
        self.links.first()
    }

    /// JSON rendering of the report.
    pub fn to_json(&self) -> String {
        let links: Vec<String> = self.links.iter().map(|l| l.to_json(self.at_ns)).collect();
        let stages: Vec<String> = self
            .stages
            .iter()
            .map(|s| {
                format!(
                    "{{\"stage\":\"{}\",\"links_active\":{},\"busy_ns\":{},\
                     \"occupancy\":{:.6}}}",
                    s.stage, s.links_active, s.busy_ns, s.occupancy
                )
            })
            .collect();
        format!(
            "{{\"at_ns\":{},\"links_active\":{},\"stages\":[{}],\"links\":[{}]}}",
            self.at_ns,
            self.links_active,
            stages.join(","),
            links.join(",")
        )
    }

    /// Human-readable table for terminal output.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "congestion report at t={}ns ({} active links)\n",
            self.at_ns, self.links_active
        ));
        out.push_str("  stage     links  busy_ns      occupancy\n");
        for s in &self.stages {
            out.push_str(&format!(
                "  {:<9} {:<6} {:<12} {:.1}%\n",
                s.stage,
                s.links_active,
                s.busy_ns,
                s.occupancy * 100.0
            ));
        }
        out.push_str("  link            busy_ns      occ%   KiB      pkts  qpeak qnow retry\n");
        for l in &self.links {
            out.push_str(&format!(
                "  {:<15} {:<12} {:<6.1} {:<8} {:<5} {:<5} {:<4} {}\n",
                l.name(),
                l.busy_ns,
                l.occupancy(self.at_ns) * 100.0,
                l.wire_bytes >> 10,
                l.packets,
                l.queue_peak,
                l.queue_now,
                l.retries
            ));
        }
        out
    }
}

/// A list of link busy windows as `(start_ns, end_ns)` pairs.
pub type BusyWindows = Vec<(u64, u64)>;

/// Optional per-node busy-interval log for endpoint links, merged across
/// rails. Off by default (the hot path only pays an `Option` check); the
/// critical-path analyzer turns it on to cross-check per-message queueing
/// time against actual link occupancy windows.
struct IntervalLog {
    capacity: usize,
    /// Per-node injection-link busy windows `(start_ns, end_ns)`.
    inj: Vec<VecDeque<(u64, u64)>>,
    /// Per-node ejection-link busy windows `(start_ns, end_ns)`.
    ej: Vec<VecDeque<(u64, u64)>>,
}

impl IntervalLog {
    fn new(nodes: usize, capacity: usize) -> IntervalLog {
        IntervalLog {
            capacity: capacity.max(1),
            inj: vec![VecDeque::new(); nodes],
            ej: vec![VecDeque::new(); nodes],
        }
    }

    fn push(ring: &mut VecDeque<(u64, u64)>, capacity: usize, iv: (u64, u64)) {
        if ring.len() == capacity {
            ring.pop_front();
        }
        ring.push_back(iv);
    }

    fn record_inj(&mut self, node: NodeId, start: Time, end: Time) {
        Self::push(
            &mut self.inj[node],
            self.capacity,
            (start.as_ns(), end.as_ns()),
        );
    }

    fn record_ej(&mut self, node: NodeId, start: Time, end: Time) {
        Self::push(
            &mut self.ej[node],
            self.capacity,
            (start.as_ns(), end.as_ns()),
        );
    }
}

#[derive(Default)]
struct FaultState {
    /// (src, dst) -> number of upcoming packets to fault once each.
    drops: Vec<(NodeId, NodeId, u64)>,
}

impl FaultState {
    fn take_drop(&mut self, src: NodeId, dst: NodeId) -> bool {
        for entry in &mut self.drops {
            if entry.0 == src && entry.1 == dst && entry.2 > 0 {
                entry.2 -= 1;
                return true;
            }
        }
        false
    }
}

struct FabricState {
    rails: Vec<RailState>,
    acct: Vec<RailAcct>,
    stats: FabricStats,
    faults: FaultState,
    intervals: Option<IntervalLog>,
}

/// The simulated QsNetII fabric shared by every NIC in the cluster.
pub struct Fabric {
    config: FabricConfig,
    topo: FatTree,
    state: Mutex<FabricState>,
}

impl Fabric {
    /// Build the fabric for `config` (topology + per-rail link state).
    pub fn new(config: FabricConfig) -> Arc<Fabric> {
        assert!(config.rails >= 1, "at least one rail");
        assert!(config.mtu > 0, "mtu must be positive");
        let topo = FatTree::new(config.radix, config.nodes);
        let rails = (0..config.rails)
            .map(|_| RailState {
                tx_free: vec![Time::ZERO; config.nodes],
                rx_free: vec![Time::ZERO; config.nodes],
            })
            .collect();
        let acct = (0..config.rails).map(|_| RailAcct::new(&topo)).collect();
        Arc::new(Fabric {
            config,
            topo,
            state: Mutex::new(FabricState {
                rails,
                acct,
                stats: FabricStats::default(),
                faults: FaultState::default(),
                intervals: None,
            }),
        })
    }

    /// The timing/shape parameters this fabric was built with.
    pub fn config(&self) -> &FabricConfig {
        &self.config
    }

    /// The fat-tree topology.
    pub fn topology(&self) -> &FatTree {
        &self.topo
    }

    /// Snapshot of the running counters.
    pub fn stats(&self) -> FabricStats {
        self.state.lock().stats.clone()
    }

    /// Arrange for the next `count` packets from `src` to `dst` to be
    /// faulted once each (each costs one hardware retransmission).
    pub fn inject_drops(&self, src: NodeId, dst: NodeId, count: u64) {
        self.state.lock().faults.drops.push((src, dst, count));
    }

    /// Transmit `len` payload bytes from `src` to `dst` on `rail`; run
    /// `done` when the final byte arrives. Returns the scheduled delivery
    /// time.
    ///
    /// # Panics
    /// If `rail`, `src` or `dst` are out of range.
    pub fn send(
        self: &Arc<Self>,
        sim: &SimHandle,
        rail: usize,
        src: NodeId,
        dst: NodeId,
        len: usize,
        done: impl FnOnce(&SimHandle) + Send + 'static,
    ) -> Time {
        let delivered = self.schedule_packets(sim, rail, src, dst, len);
        sim.call_at(delivered, done);
        delivered
    }

    /// Like [`Fabric::send`] but without a completion callback (used when the
    /// caller chains its own events off the returned time).
    pub fn schedule_packets(
        self: &Arc<Self>,
        sim: &SimHandle,
        rail: usize,
        src: NodeId,
        dst: NodeId,
        len: usize,
    ) -> Time {
        let now = sim.now();
        let n_packets = len.div_ceil(self.config.mtu).max(1);
        let mut remaining = len;
        let mut delivered = now;
        for _ in 0..n_packets {
            let payload = remaining.min(self.config.mtu);
            remaining -= payload;
            delivered = self.packet_delivery(rail, src, dst, payload, now);
        }
        delivered
    }

    /// Schedule one packet of `payload` bytes, not entering the wire before
    /// `not_before` (e.g. because the host bus is still feeding the NIC).
    /// Returns the time the packet's tail reaches the destination NIC. This
    /// is the building block NIC DMA engines use to pipeline MTU chunks.
    ///
    /// # Panics
    /// If `rail`, `src` or `dst` are out of range, or `payload > mtu`.
    pub fn packet_delivery(
        &self,
        rail: usize,
        src: NodeId,
        dst: NodeId,
        payload: usize,
        not_before: Time,
    ) -> Time {
        assert!(rail < self.config.rails, "rail out of range");
        assert!(payload <= self.config.mtu, "packet exceeds MTU");
        let hops = self.topo.switch_hops(src, dst);
        let route_latency = self.config.hop_latency * hops as u64;
        let wire_len = payload + self.config.packet_overhead;
        let ser = Dur::for_bytes(wire_len, self.config.link_bytes_per_us);

        let mut st = self.state.lock();
        let faulted = st.faults.take_drop(src, dst);
        let rs = &mut st.rails[rail];
        let tx_start = not_before.max(rs.tx_free[src]);
        let mut start = tx_start;
        if faulted {
            // Hardware-level retransmission: the packet occupies the link,
            // is NAKed, and goes again after the retry delay.
            start = start + ser + self.config.retry_delay;
        }
        // Cut-through routing: the head flit arrives after the route
        // latency while the tail is still serializing.
        let head_arrival = start + route_latency;
        let rx_start = head_arrival.max(rs.rx_free[dst]);
        let pkt_delivered = rx_start + ser;
        rs.tx_free[src] = start + ser;
        rs.rx_free[dst] = pkt_delivered;
        let tx_free = rs.tx_free[src];

        st.stats.packets += 1;
        st.stats.payload_bytes += payload as u64;
        st.stats.wire_bytes += wire_len as u64;
        if faulted {
            st.stats.retries += 1;
            st.stats.wire_bytes += wire_len as u64;
        }

        // Per-link accounting. A faulted packet crossed the injection link
        // twice (transmit, NAK, retransmit), so it is charged double there;
        // the switches and the ejection link only ever see the good copy.
        let ser_ns = ser.as_ns();
        let (payload, wire) = (payload as u64, wire_len as u64);
        let acct = &mut st.acct[rail];
        let inj = &mut acct.inj[src];
        if faulted {
            inj.charge(2 * ser_ns, payload, 2 * wire);
            inj.retries += 1;
        } else {
            inj.charge(ser_ns, payload, wire);
        }
        inj.enqueue(not_before, tx_free);
        for k in 1..self.topo.nca_level(src, dst) {
            acct.up[(k - 1) as usize][self.topo.subtree(src, k)].charge(ser_ns, payload, wire);
            acct.down[(k - 1) as usize][self.topo.subtree(dst, k)].charge(ser_ns, payload, wire);
        }
        let ej = &mut acct.ej[dst];
        ej.charge(ser_ns, payload, wire);
        ej.enqueue(head_arrival, pkt_delivered);

        if let Some(log) = st.intervals.as_mut() {
            log.record_inj(src, tx_start, tx_free);
            log.record_ej(dst, rx_start, pkt_delivered);
        }

        pkt_delivered
    }
}

impl Fabric {
    /// Hardware broadcast: one injection from `src` is replicated by the
    /// Elite switches to every destination. The source link is occupied
    /// once; each destination pays its own route latency and reception
    /// serialization. Returns per-destination delivery times (same order
    /// as `dsts`). Quadrics supports this only across a contiguous,
    /// synchronously-created address space — the caller enforces that
    /// (paper §4.1).
    pub fn bcast_delivery(
        &self,
        rail: usize,
        src: NodeId,
        dsts: &[NodeId],
        payload: usize,
        not_before: Time,
    ) -> Vec<Time> {
        assert!(rail < self.config.rails, "rail out of range");
        assert!(payload <= self.config.mtu, "packet exceeds MTU");
        let wire_len = payload + self.config.packet_overhead;
        let ser = Dur::for_bytes(wire_len, self.config.link_bytes_per_us);

        let mut st = self.state.lock();
        let start = not_before.max(st.rails[rail].tx_free[src]);
        st.rails[rail].tx_free[src] = start + ser;
        let tx_free = st.rails[rail].tx_free[src];
        let ser_ns = ser.as_ns();
        let (payload_u, wire) = (payload as u64, wire_len as u64);
        let mut out = Vec::with_capacity(dsts.len());
        // The source injects once; the Elite switches replicate at the
        // nearest common ancestor, so uplinks are charged once (to the
        // highest level any destination needs) and downlinks per branch.
        let mut max_nca = 0;
        let mut down_seen: Vec<(u32, usize)> = Vec::new();
        for &dst in dsts {
            let hops = self.topo.switch_hops(src, dst);
            let nca = self.topo.nca_level(src, dst);
            max_nca = max_nca.max(nca);
            let head_arrival = start + self.config.hop_latency * hops as u64;
            let rx_start = head_arrival.max(st.rails[rail].rx_free[dst]);
            let delivered = rx_start + ser;
            st.rails[rail].rx_free[dst] = delivered;
            out.push(delivered);
            st.stats.packets += 1;
            st.stats.payload_bytes += payload as u64;
            st.stats.wire_bytes += wire_len as u64;
            let acct = &mut st.acct[rail];
            // Destinations sharing a subtree share the downlink into it:
            // the switches replicate below it, so charge it once.
            for k in 1..nca {
                let s = self.topo.subtree(dst, k);
                if !down_seen.contains(&(k, s)) {
                    down_seen.push((k, s));
                    acct.down[(k - 1) as usize][s].charge(ser_ns, payload_u, wire);
                }
            }
            let ej = &mut acct.ej[dst];
            ej.charge(ser_ns, payload_u, wire);
            ej.enqueue(head_arrival, delivered);
        }
        let acct = &mut st.acct[rail];
        let inj = &mut acct.inj[src];
        inj.charge(ser_ns, payload_u, wire);
        inj.enqueue(not_before, tx_free);
        for k in 1..max_nca {
            acct.up[(k - 1) as usize][self.topo.subtree(src, k)].charge(ser_ns, payload_u, wire);
        }
        if let Some(log) = st.intervals.as_mut() {
            log.record_inj(src, start, tx_free);
            for (&dst, &delivered) in dsts.iter().zip(out.iter()) {
                log.record_ej(dst, Time::from_ns(delivered.as_ns() - ser_ns), delivered);
            }
        }
        out
    }
}

impl Fabric {
    /// Counters for every link that carried at least one packet, ordered
    /// by rail, then stage (injection, up, down, ejection), then index.
    /// `now` bounds the report window and prices current queue depth.
    pub fn link_snapshot(&self, now: Time) -> Vec<LinkSnapshot> {
        let mut st = self.state.lock();
        let mut out = Vec::new();
        for rail in 0..self.config.rails {
            let acct = &mut st.acct[rail];
            let push = |kind: LinkKind,
                        level: u32,
                        index: usize,
                        a: &mut LinkAcct,
                        out: &mut Vec<LinkSnapshot>| {
                if a.packets == 0 {
                    return;
                }
                let queue_now = a.queue_now(now);
                out.push(LinkSnapshot {
                    rail,
                    kind,
                    level,
                    index,
                    busy_ns: a.busy_ns,
                    payload_bytes: a.payload_bytes,
                    wire_bytes: a.wire_bytes,
                    packets: a.packets,
                    retries: a.retries,
                    queue_peak: a.queue_peak,
                    queue_now,
                });
            };
            for (n, a) in acct.inj.iter_mut().enumerate() {
                push(LinkKind::Injection, 0, n, a, &mut out);
            }
            for (k, stage) in acct.up.iter_mut().enumerate() {
                for (s, a) in stage.iter_mut().enumerate() {
                    push(LinkKind::Up, k as u32 + 1, s, a, &mut out);
                }
            }
            for (k, stage) in acct.down.iter_mut().enumerate() {
                for (s, a) in stage.iter_mut().enumerate() {
                    push(LinkKind::Down, k as u32 + 1, s, a, &mut out);
                }
            }
            for (n, a) in acct.ej.iter_mut().enumerate() {
                push(LinkKind::Ejection, 0, n, a, &mut out);
            }
        }
        out
    }

    /// One node's injection and ejection link totals summed across rails —
    /// the numbers each endpoint exports as `fab.inj.*` / `fab.ej.*` pvars.
    pub fn node_link_totals(&self, node: NodeId) -> (LinkTotals, LinkTotals) {
        assert!(node < self.config.nodes, "node out of range");
        let st = self.state.lock();
        let mut inj = LinkTotals::default();
        let mut ej = LinkTotals::default();
        for acct in &st.acct {
            inj.add(&acct.inj[node]);
            ej.add(&acct.ej[node]);
        }
        (inj, ej)
    }

    /// Packets currently holding or waiting for one node's endpoint links
    /// at `now`, summed across rails: `(injection, ejection)`. This is the
    /// instantaneous queue depth the timeline sampler plots — on an incast
    /// victim the ejection number ramps while the burst drains.
    pub fn node_queue_now(&self, node: NodeId, now: Time) -> (u64, u64) {
        assert!(node < self.config.nodes, "node out of range");
        let mut st = self.state.lock();
        let (mut inj, mut ej) = (0, 0);
        for acct in &mut st.acct {
            inj += acct.inj[node].queue_now(now);
            ej += acct.ej[node].queue_now(now);
        }
        (inj, ej)
    }

    /// Packets currently holding or waiting for one node's *ejection* links
    /// at `now`, summed across rails. Cheaper than [`Fabric::node_queue_now`]
    /// when the caller only needs the receive side — the flow-control pump
    /// polls this every progress pass to defer credit grants while the
    /// victim's ejection queue is backed up.
    pub fn node_ej_queue_now(&self, node: NodeId, now: Time) -> u64 {
        assert!(node < self.config.nodes, "node out of range");
        let mut st = self.state.lock();
        st.acct
            .iter_mut()
            .map(|acct| acct.ej[node].queue_now(now))
            .sum()
    }

    /// Start recording per-node endpoint-link busy intervals (merged across
    /// rails), keeping at most `capacity` windows per link. Idempotent;
    /// re-enabling with a new capacity clears the recorded windows.
    pub fn record_intervals(&self, capacity: usize) {
        let mut st = self.state.lock();
        st.intervals = Some(IntervalLog::new(self.config.nodes, capacity));
    }

    /// One node's recorded endpoint-link busy windows as
    /// `(injection, ejection)` lists of `(start_ns, end_ns)`, each sorted by
    /// start time. Empty unless [`Fabric::record_intervals`] was called.
    pub fn node_busy_intervals(&self, node: NodeId) -> (BusyWindows, BusyWindows) {
        assert!(node < self.config.nodes, "node out of range");
        let st = self.state.lock();
        match &st.intervals {
            Some(log) => {
                let mut inj: BusyWindows = log.inj[node].iter().copied().collect();
                let mut ej: BusyWindows = log.ej[node].iter().copied().collect();
                inj.sort_unstable();
                ej.sort_unstable();
                (inj, ej)
            }
            None => (Vec::new(), Vec::new()),
        }
    }

    /// Build the congestion report over `[0, now]`: the `top_n` hottest
    /// links by busy time plus per-stage utilization.
    pub fn congestion_report(&self, now: Time, top_n: usize) -> CongestionReport {
        let links = self.link_snapshot(now);
        let at_ns = now.as_ns();
        let mut stages: Vec<StageUtil> = Vec::new();
        for l in &links {
            let stage = match l.kind {
                LinkKind::Injection | LinkKind::Ejection => l.kind.label().to_string(),
                LinkKind::Up | LinkKind::Down => format!("{}.l{}", l.kind.label(), l.level),
            };
            match stages.iter_mut().find(|s| s.stage == stage) {
                Some(s) => {
                    s.links_active += 1;
                    s.busy_ns += l.busy_ns;
                }
                None => stages.push(StageUtil {
                    stage,
                    links_active: 1,
                    busy_ns: l.busy_ns,
                    occupancy: 0.0,
                }),
            }
        }
        for s in &mut stages {
            if at_ns > 0 && s.links_active > 0 {
                s.occupancy = s.busy_ns as f64 / (at_ns * s.links_active as u64) as f64;
            }
        }
        let links_active = links.len();
        let mut sorted = links;
        sorted.sort_by(|a, b| b.busy_ns.cmp(&a.busy_ns).then(a.name().cmp(&b.name())));
        sorted.truncate(top_n);
        CongestionReport {
            at_ns,
            links_active,
            links: sorted,
            stages,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsim::Simulation;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn fabric() -> Arc<Fabric> {
        Fabric::new(FabricConfig::default())
    }

    fn one_send(f: &Arc<Fabric>, src: usize, dst: usize, len: usize) -> u64 {
        let sim = Simulation::new();
        let t = Arc::new(AtomicU64::new(0));
        let t2 = t.clone();
        let f = f.clone();
        sim.spawn("tx", move |p| {
            let sig = p.signal();
            let sig2 = sig.clone();
            f.send(&p.sim(), 0, src, dst, len, move |s| sig2.notify(s));
            p.wait(&sig).expect_signaled();
            t2.store(p.now().as_ns(), Ordering::SeqCst);
        });
        sim.run().unwrap();
        t.load(Ordering::SeqCst)
    }

    #[test]
    fn same_leaf_is_faster_than_cross_leaf() {
        let f = fabric();
        let near = one_send(&f, 0, 1, 1024); // 1 switch hop
        let f = fabric();
        let far = one_send(&f, 0, 4, 1024); // 3 switch hops
        assert!(far > near);
        assert_eq!(far - near, 2 * 40); // two extra hops
    }

    #[test]
    fn zero_byte_message_still_takes_a_packet() {
        let f = fabric();
        let t = one_send(&f, 0, 1, 0);
        assert!(t > 0);
        assert_eq!(f.stats().packets, 1);
        assert_eq!(f.stats().payload_bytes, 0);
    }

    #[test]
    fn large_message_bandwidth_approaches_link_rate() {
        let f = fabric();
        let len = 1 << 20; // 1 MB
        let ns = one_send(&f, 0, 1, len);
        let mb_per_s = len as f64 / (ns as f64 / 1e9) / 1e6;
        // MTU overhead (16B per 2048B) costs < 1%; route latency is small.
        assert!(mb_per_s > 1200.0 && mb_per_s < 1300.0, "got {mb_per_s}");
    }

    #[test]
    fn packets_pipeline_not_accumulate_hop_latency() {
        // With k packets, total time should be ~k*ser + const, not k*(ser+hops).
        let f = fabric();
        let t1 = one_send(&f, 0, 4, 2048);
        let f = fabric();
        let t8 = one_send(&f, 0, 4, 8 * 2048);
        let ser = Dur::for_bytes(2048 + 16, 1300).as_ns();
        assert!(t8 < t1 + 8 * ser, "t8={t8} t1={t1} ser={ser}");
    }

    #[test]
    fn injected_drop_delays_and_counts_retry() {
        let f = fabric();
        let clean = one_send(&f, 0, 1, 512);
        let f = fabric();
        f.inject_drops(0, 1, 1);
        let faulted = one_send(&f, 0, 1, 512);
        assert!(faulted > clean + 2_000); // at least the retry delay
        assert_eq!(f.stats().retries, 1);
    }

    #[test]
    fn concurrent_senders_to_one_destination_serialize() {
        let f = fabric();
        let sim = Simulation::new();
        let done = Arc::new(AtomicU64::new(0));
        for src in [0usize, 1, 2] {
            let f = f.clone();
            let done = done.clone();
            sim.spawn(&format!("tx{src}"), move |p| {
                let sig = p.signal();
                let sig2 = sig.clone();
                f.send(&p.sim(), 0, src, 3, 2048, move |s| sig2.notify(s));
                p.wait(&sig).expect_signaled();
                done.fetch_max(p.now().as_ns(), Ordering::SeqCst);
            });
        }
        sim.run().unwrap();
        let ser = Dur::for_bytes(2048 + 16, 1300).as_ns();
        // Three packets into one rx link: last delivery >= 3 serializations.
        assert!(done.load(Ordering::SeqCst) >= 3 * ser);
    }

    #[test]
    fn rails_are_independent() {
        let cfg = FabricConfig {
            rails: 2,
            ..Default::default()
        };
        let f = Fabric::new(cfg);
        let sim = Simulation::new();
        let done = Arc::new(AtomicU64::new(0));
        for rail in [0usize, 1] {
            let f = f.clone();
            let done = done.clone();
            sim.spawn(&format!("rail{rail}"), move |p| {
                let sig = p.signal();
                let sig2 = sig.clone();
                f.send(&p.sim(), rail, 0, 1, 1 << 20, move |s| sig2.notify(s));
                p.wait(&sig).expect_signaled();
                done.fetch_max(p.now().as_ns(), Ordering::SeqCst);
            });
        }
        sim.run().unwrap();
        // Both 1MB transfers overlap fully on separate rails: finish in the
        // time of one (plus epsilon), not two.
        let one_rail_ns = Dur::for_bytes((1 << 20) + 16 * 512, 1300).as_ns();
        assert!(done.load(Ordering::SeqCst) < one_rail_ns * 3 / 2);
    }
}

#[cfg(test)]
mod bcast_tests {
    use super::*;
    use qsim::Simulation;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn bcast_occupies_source_link_once() {
        let f = Fabric::new(FabricConfig::default());
        let sim = Simulation::new();
        let done = Arc::new(AtomicU64::new(0));
        {
            let f = f.clone();
            let done = done.clone();
            sim.spawn("tx", move |p| {
                let deliveries = f.bcast_delivery(0, 0, &[1, 2, 3, 4, 5, 6, 7], 1024, p.now());
                let last = deliveries.iter().max().unwrap().as_ns();
                // Compare with 7 sequential unicasts of the same payload.
                let f2 = Fabric::new(FabricConfig::default());
                let mut uni_last = 0;
                for d in 1..8usize {
                    let t = f2.packet_delivery(0, 0, d, 1024, p.now());
                    uni_last = uni_last.max(t.as_ns());
                }
                assert!(
                    last < uni_last,
                    "bcast last delivery {last} should beat serialized unicast {uni_last}"
                );
                done.store(last, Ordering::SeqCst);
            });
        }
        sim.run().unwrap();
        assert!(done.load(Ordering::SeqCst) > 0);
        // One source serialization, seven receptions accounted.
        assert_eq!(f.stats().packets, 7);
    }

    #[test]
    fn bcast_respects_receiver_occupancy() {
        let f = Fabric::new(FabricConfig::default());
        // Busy up node 3's reception link first.
        let t0 = Time::ZERO;
        let busy_until = f.packet_delivery(0, 5, 3, 2048, t0);
        let deliveries = f.bcast_delivery(0, 0, &[1, 3], 512, t0);
        // Node 1 is free; node 3 must wait for the earlier packet.
        assert!(deliveries[1] > deliveries[0]);
        assert!(deliveries[1] >= busy_until);
    }

    #[test]
    fn bcast_to_near_and_far_nodes_reflects_hops() {
        let f = Fabric::new(FabricConfig::default());
        let d = f.bcast_delivery(0, 0, &[1, 4], 64, Time::ZERO);
        // Node 1 shares the leaf switch (1 hop); node 4 crosses the top
        // (3 hops): 2 extra hops at 40ns each.
        assert_eq!(d[1].as_ns() - d[0].as_ns(), 80);
    }
}

#[cfg(test)]
mod link_tests {
    use super::*;

    const FAR: Time = Time::from_ns(1 << 40);

    #[test]
    fn incast_concentrates_busy_time_on_the_ejection_link() {
        let f = Fabric::new(FabricConfig::default());
        // 7 sources each push 4 MTU packets at node 0 simultaneously.
        for src in 1..8usize {
            for _ in 0..4 {
                f.packet_delivery(0, src, 0, 2048, Time::ZERO);
            }
        }
        let links = f.link_snapshot(FAR);
        let busy = |kind: LinkKind, index: usize| {
            links
                .iter()
                .find(|l| l.kind == kind && l.index == index)
                .map(|l| l.busy_ns)
                .unwrap_or(0)
        };
        let ej0 = busy(LinkKind::Ejection, 0);
        for src in 1..8usize {
            assert_eq!(ej0, 7 * busy(LinkKind::Injection, src), "src {src}");
        }
        // The victim's receive FIFO backs up; every source injects freely.
        let ej = links
            .iter()
            .find(|l| l.kind == LinkKind::Ejection && l.index == 0)
            .unwrap();
        assert!(ej.queue_peak >= 7, "queue_peak {}", ej.queue_peak);
        assert_eq!(ej.queue_now, 0, "drained by the time of the snapshot");
        let rep = f.congestion_report(FAR, 3);
        assert_eq!(rep.hottest().unwrap().name(), "r0.ej.n0");
    }

    #[test]
    fn link_bytes_reconcile_with_fabric_stats() {
        let f = Fabric::new(FabricConfig::default());
        for (src, dst, len) in [
            (0usize, 1usize, 100usize),
            (2, 7, 2048),
            (5, 4, 1),
            (3, 0, 999),
        ] {
            f.packet_delivery(0, src, dst, len, Time::ZERO);
        }
        let stats = f.stats();
        let links = f.link_snapshot(FAR);
        let sum = |kind: LinkKind, field: fn(&LinkSnapshot) -> u64| {
            links
                .iter()
                .filter(|l| l.kind == kind)
                .map(field)
                .sum::<u64>()
        };
        assert_eq!(
            sum(LinkKind::Injection, |l| l.payload_bytes),
            stats.payload_bytes
        );
        assert_eq!(
            sum(LinkKind::Ejection, |l| l.payload_bytes),
            stats.payload_bytes
        );
        assert_eq!(sum(LinkKind::Injection, |l| l.wire_bytes), stats.wire_bytes);
        assert_eq!(sum(LinkKind::Injection, |l| l.packets), stats.packets);
    }

    #[test]
    fn switch_links_charged_only_on_cross_leaf_routes() {
        let f = Fabric::new(FabricConfig::default());
        f.packet_delivery(0, 0, 1, 512, Time::ZERO); // same leaf: no switch links
        let links = f.link_snapshot(FAR);
        assert!(links.iter().all(|l| l.kind != LinkKind::Up));

        f.packet_delivery(0, 0, 4, 512, Time::ZERO); // crosses the spine
        let links = f.link_snapshot(FAR);
        let up = links.iter().find(|l| l.kind == LinkKind::Up).unwrap();
        assert_eq!((up.level, up.index, up.packets), (1, 0, 1));
        assert_eq!(up.name(), "r0.up.l1.s0");
        let down = links.iter().find(|l| l.kind == LinkKind::Down).unwrap();
        assert_eq!((down.level, down.index, down.packets), (1, 1, 1));
    }

    #[test]
    fn faulted_packet_doubles_injection_charges_only() {
        let f = Fabric::new(FabricConfig::default());
        f.inject_drops(0, 1, 1);
        f.packet_delivery(0, 0, 1, 512, Time::ZERO);
        let links = f.link_snapshot(FAR);
        let inj = links
            .iter()
            .find(|l| l.kind == LinkKind::Injection)
            .unwrap();
        let ej = links.iter().find(|l| l.kind == LinkKind::Ejection).unwrap();
        assert_eq!(inj.retries, 1);
        assert_eq!(inj.busy_ns, 2 * ej.busy_ns);
        assert_eq!(inj.wire_bytes, 2 * ej.wire_bytes);
        assert_eq!(ej.retries, 0);
        let (inj_tot, ej_tot) = f.node_link_totals(0);
        assert_eq!(inj_tot.retries, 1);
        assert_eq!(inj_tot.busy_ns, inj.busy_ns);
        assert_eq!(ej_tot.packets, 0, "node 0 received nothing");
    }

    #[test]
    fn bcast_charges_source_once_and_each_branch() {
        let f = Fabric::new(FabricConfig::default());
        f.bcast_delivery(0, 0, &[1, 2, 4, 5], 1024, Time::ZERO);
        let links = f.link_snapshot(FAR);
        let find = |kind: LinkKind, index: usize| {
            links
                .iter()
                .find(|l| l.kind == kind && l.index == index)
                .unwrap()
        };
        assert_eq!(find(LinkKind::Injection, 0).packets, 1);
        for dst in [1usize, 2, 4, 5] {
            assert_eq!(find(LinkKind::Ejection, dst).packets, 1);
        }
        // Replication happens at the spine: one uplink transit, one
        // downlink transit into the far leaf switch.
        assert_eq!(find(LinkKind::Up, 0).packets, 1);
        assert_eq!(find(LinkKind::Down, 1).packets, 1);
    }

    #[test]
    fn congestion_report_renders_stages_and_json() {
        let f = Fabric::new(FabricConfig::default());
        for src in 1..4usize {
            f.packet_delivery(0, src, 0, 2048, Time::ZERO);
        }
        let rep = f.congestion_report(Time::from_ns(10_000), 8);
        let json = rep.to_json();
        assert!(json.contains("\"link\":\"r0.ej.n0\""), "{json}");
        assert!(json.contains("\"stage\":\"inj\""), "{json}");
        assert!(json.contains("\"occupancy\":"), "{json}");
        let text = rep.render();
        assert!(text.contains("r0.ej.n0"), "{text}");
        let hottest = rep.hottest().unwrap();
        assert!(hottest.occupancy(rep.at_ns) > 0.0);
        assert!(hottest.occupancy(rep.at_ns) <= 1.0);
    }

    #[test]
    fn busy_intervals_and_queue_now_track_the_ejection_link() {
        let f = Fabric::new(FabricConfig::default());
        f.record_intervals(64);
        let mut last = Time::ZERO;
        for src in 1..4usize {
            last = last.max(f.packet_delivery(0, src, 0, 2048, Time::ZERO));
        }
        // Mid-drain the victim's ejection queue is non-empty; after the
        // last delivery it is empty again.
        let ser = Dur::for_bytes(2048 + 16, 1300);
        let (_, ej_mid) = f.node_queue_now(0, Time::from_ns(ser.as_ns() / 2));
        assert!(ej_mid >= 2, "ej queue mid-drain: {ej_mid}");
        let (inj_end, ej_end) = f.node_queue_now(0, last);
        assert_eq!((inj_end, ej_end), (0, 0));
        // Three recorded ejection windows, back to back, none overlapping.
        let (inj_iv, ej_iv) = f.node_busy_intervals(0);
        assert!(inj_iv.is_empty(), "node 0 injected nothing");
        assert_eq!(ej_iv.len(), 3);
        for w in ej_iv.windows(2) {
            assert!(w[0].1 <= w[1].0, "ejection windows overlap: {w:?}");
        }
        assert_eq!(ej_iv.last().unwrap().1, last.as_ns());
        // Senders recorded their injection windows.
        let (src_inj, _) = f.node_busy_intervals(1);
        assert_eq!(src_inj.len(), 1);
        // Without recording enabled, nothing is retained.
        let f2 = Fabric::new(FabricConfig::default());
        f2.packet_delivery(0, 1, 0, 512, Time::ZERO);
        assert_eq!(f2.node_busy_intervals(0), (Vec::new(), Vec::new()));
    }

    #[test]
    fn empty_fabric_reports_no_links() {
        let f = Fabric::new(FabricConfig::default());
        assert!(f.link_snapshot(FAR).is_empty());
        let rep = f.congestion_report(Time::ZERO, 5);
        assert!(rep.hottest().is_none());
        assert_eq!(rep.links_active, 0);
        assert!(rep.to_json().contains("\"links\":[]"));
    }
}

#[cfg(all(test, feature = "proptest"))]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Delivery never precedes injection + route latency, and the same
        /// link never carries two packets at once (tx occupancy is
        /// monotone).
        #[test]
        fn packet_timing_invariants(
            sizes in proptest::collection::vec(0usize..2048, 1..20),
            src in 0usize..8,
            dst in 0usize..8,
        ) {
            prop_assume!(src != dst);
            let f = Fabric::new(FabricConfig::default());
            let cfg = f.config().clone();
            let hops = f.topology().switch_hops(src, dst) as u64;
            let mut last_delivery = Time::ZERO;
            let mut clock = Time::ZERO;
            for (i, len) in sizes.iter().enumerate() {
                // Interleave immediate and delayed injections.
                if i % 3 == 0 {
                    clock += Dur::from_ns(500);
                }
                let d = f.packet_delivery(0, src, dst, *len, clock);
                let ser = Dur::for_bytes(len + cfg.packet_overhead, cfg.link_bytes_per_us);
                // Lower bound: not-before + route + serialization.
                prop_assert!(
                    d >= clock + cfg.hop_latency * hops + ser,
                    "packet {i} delivered too early"
                );
                // Receiver-side FIFO: in-order delivery per (src, dst).
                prop_assert!(d >= last_delivery, "packet {i} reordered");
                last_delivery = d;
            }
        }

        /// Total wire time of a message stream is conserved: the sum of
        /// payloads matches the payload stats, and wire bytes include the
        /// per-packet overhead exactly once per packet.
        #[test]
        fn stats_account_every_byte(
            sizes in proptest::collection::vec(0usize..6000, 1..12),
        ) {
            let f = Fabric::new(FabricConfig::default());
            let cfg = f.config().clone();
            let mut expect_payload = 0u64;
            let mut expect_packets = 0u64;
            for len in &sizes {
                expect_payload += *len as u64;
                expect_packets += len.div_ceil(cfg.mtu).max(1) as u64;
                // Packetize the way the NIC's DMA engine does.
                let mut remaining = *len;
                loop {
                    let pkt = remaining.min(cfg.mtu);
                    f.packet_delivery(0, 0, 1, pkt, Time::ZERO);
                    if remaining <= cfg.mtu {
                        break;
                    }
                    remaining -= pkt;
                }
            }
            let stats = f.stats();
            prop_assert_eq!(stats.payload_bytes, expect_payload);
            prop_assert_eq!(stats.packets, expect_packets);
            prop_assert_eq!(
                stats.wire_bytes,
                expect_payload + expect_packets * cfg.packet_overhead as u64
            );
        }
    }
}
