//! Quaternary fat-tree topology, as built from Elite4 switches.
//!
//! QsNetII machines are wired as k-ary n-trees (the paper's testbed is an
//! 8-node "dimension one quaternary fat tree" QS-8A). We model the topology
//! only as far as timing needs it: how many switch stages a message crosses
//! between two nodes, which is `2*l - 1` where `l` is the lowest tree level
//! at which the two nodes share a subtree.

/// A node (host) position in the fabric.
pub type NodeId = usize;

/// A k-ary fat tree over `nodes` hosts with the given switch radix.
#[derive(Clone, Debug)]
pub struct FatTree {
    radix: usize,
    nodes: usize,
    levels: u32,
}

impl FatTree {
    /// Build a fat tree. `radix` is the down-degree of each switch (4 for
    /// Elite4 quaternary trees); `nodes` is the host count.
    ///
    /// # Panics
    /// If `radix < 2` or `nodes == 0`.
    pub fn new(radix: usize, nodes: usize) -> Self {
        assert!(radix >= 2, "fat-tree radix must be >= 2");
        assert!(nodes > 0, "fat tree needs at least one node");
        let mut levels = 1u32;
        let mut span = radix;
        while span < nodes {
            span *= radix;
            levels += 1;
        }
        FatTree {
            radix,
            nodes,
            levels,
        }
    }

    /// The paper's testbed: eight nodes on a quaternary tree (QS-8A).
    pub fn qs8a() -> Self {
        FatTree::new(4, 8)
    }

    /// Host count.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Switch down-degree.
    pub fn radix(&self) -> usize {
        self.radix
    }

    /// Number of switch levels in the tree.
    pub fn levels(&self) -> u32 {
        self.levels
    }

    /// Lowest level at which `a` and `b` share a subtree (1 = same leaf
    /// switch). Returns 0 when `a == b`.
    pub fn nca_level(&self, a: NodeId, b: NodeId) -> u32 {
        assert!(a < self.nodes && b < self.nodes, "node out of range");
        if a == b {
            return 0;
        }
        let mut level = 1;
        let mut div = self.radix;
        while a / div != b / div {
            div *= self.radix;
            level += 1;
        }
        level
    }

    /// Switch stages a packet crosses from `a` to `b` (up to the nearest
    /// common ancestor and back down): `2*l - 1`. Zero for self-sends,
    /// which never leave the NIC.
    pub fn switch_hops(&self, a: NodeId, b: NodeId) -> u32 {
        match self.nca_level(a, b) {
            0 => 0,
            l => 2 * l - 1,
        }
    }

    /// Index of the level-`level` subtree (switch) containing `node`.
    /// Level 1 is the leaf switch; each level divides the node space by
    /// another factor of the radix.
    ///
    /// # Panics
    /// If `node` is out of range or `level == 0`.
    pub fn subtree(&self, node: NodeId, level: u32) -> usize {
        assert!(node < self.nodes, "node out of range");
        assert!(level >= 1, "subtree level starts at 1");
        node / self.radix.pow(level)
    }

    /// Number of switches at `level` (1 = leaf switches).
    pub fn switches_at(&self, level: u32) -> usize {
        assert!(level >= 1, "subtree level starts at 1");
        self.nodes.div_ceil(self.radix.pow(level))
    }

    /// Worst-case switch hops in this tree (diameter).
    pub fn diameter(&self) -> u32 {
        if self.nodes == 1 {
            0
        } else {
            2 * self.levels - 1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    #[cfg(feature = "proptest")]
    use proptest::prelude::*;

    #[test]
    fn qs8a_shape() {
        let t = FatTree::qs8a();
        assert_eq!(t.nodes(), 8);
        assert_eq!(t.levels(), 2);
        // same leaf switch
        assert_eq!(t.switch_hops(0, 3), 1);
        // across the top stage
        assert_eq!(t.switch_hops(0, 4), 3);
        assert_eq!(t.switch_hops(7, 1), 3);
        assert_eq!(t.switch_hops(5, 5), 0);
        assert_eq!(t.diameter(), 3);
    }

    #[test]
    fn subtree_indexing() {
        let t = FatTree::qs8a();
        assert_eq!(t.switches_at(1), 2);
        assert_eq!(t.subtree(0, 1), 0);
        assert_eq!(t.subtree(3, 1), 0);
        assert_eq!(t.subtree(4, 1), 1);
        assert_eq!(t.subtree(7, 1), 1);
        let t = FatTree::new(4, 64);
        assert_eq!(t.switches_at(1), 16);
        assert_eq!(t.switches_at(2), 4);
        assert_eq!(t.subtree(63, 2), 3);
        assert_eq!(t.subtree(17, 1), 4);
    }

    #[test]
    fn single_switch_tree() {
        let t = FatTree::new(4, 4);
        assert_eq!(t.levels(), 1);
        for a in 0..4 {
            for b in 0..4 {
                let expect = if a == b { 0 } else { 1 };
                assert_eq!(t.switch_hops(a, b), expect);
            }
        }
    }

    #[test]
    fn three_level_tree() {
        let t = FatTree::new(4, 64);
        assert_eq!(t.levels(), 3);
        assert_eq!(t.switch_hops(0, 1), 1);
        assert_eq!(t.switch_hops(0, 5), 3);
        assert_eq!(t.switch_hops(0, 63), 5);
    }

    #[test]
    #[should_panic(expected = "node out of range")]
    fn out_of_range_panics() {
        FatTree::qs8a().switch_hops(0, 8);
    }

    #[cfg(feature = "proptest")]
    proptest! {
        #[test]
        fn hops_symmetric_and_bounded(
            radix in 2usize..6,
            nodes in 1usize..100,
            seed in any::<u64>(),
        ) {
            let t = FatTree::new(radix, nodes);
            let a = (seed as usize) % nodes;
            let b = (seed as usize / 7919) % nodes;
            let h = t.switch_hops(a, b);
            prop_assert_eq!(h, t.switch_hops(b, a));
            prop_assert!(h <= t.diameter());
            prop_assert_eq!(h == 0, a == b);
            // hop counts are always odd for distinct nodes (up then down)
            if a != b {
                prop_assert_eq!(h % 2, 1);
            }
        }
    }
}
