//! # qsnet — QsNetII fabric model
//!
//! The network substrate under the simulated Elan4 NICs: a quaternary
//! fat-tree topology of Elite4 switches ([`FatTree`]) and a timing model of
//! the links ([`Fabric`]) with per-node injection/reception occupancy,
//! cut-through routing, MTU packetization, multi-rail support, and
//! hardware-style retransmission for injected faults.
//!
//! The Elan4 NIC model (`elan4` crate) owns the host-side costs (PIO,
//! PCI-X bus, event firing); this crate only models the wire.

#![warn(missing_docs)]

mod fabric;
mod topology;

pub use fabric::{
    CongestionReport, Fabric, FabricConfig, FabricStats, LinkKind, LinkSnapshot, LinkTotals,
    StageUtil,
};
pub use topology::{FatTree, NodeId};
