//! Stack-wide telemetry: cheap per-endpoint counters and log-bucketed
//! latency histograms.
//!
//! Everything here is plain data guarded by the endpoint's metrics lock and
//! is only touched when [`crate::StackConfig::metrics`] is set, so the
//! default fast path stays free of the bookkeeping. Snapshots serialize to
//! JSON by hand (the repository carries no serde), shaped for the bench
//! harness's `--emit-metrics` output.

use qsim::Dur;

/// Collective operations tallied per endpoint.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
#[allow(missing_docs)]
pub enum CollOp {
    Barrier,
    Bcast,
    BcastHw,
    Scatter,
    Reduce,
    Allreduce,
    Gather,
    Allgather,
    Alltoall,
    Scan,
    ReduceScatter,
    Gatherv,
    Alltoallv,
}

/// All collective kinds, in counter order.
pub const COLL_OPS: [CollOp; 13] = [
    CollOp::Barrier,
    CollOp::Bcast,
    CollOp::BcastHw,
    CollOp::Scatter,
    CollOp::Reduce,
    CollOp::Allreduce,
    CollOp::Gather,
    CollOp::Allgather,
    CollOp::Alltoall,
    CollOp::Scan,
    CollOp::ReduceScatter,
    CollOp::Gatherv,
    CollOp::Alltoallv,
];

impl CollOp {
    /// Stable name used in JSON output.
    pub fn name(&self) -> &'static str {
        match self {
            CollOp::Barrier => "barrier",
            CollOp::Bcast => "bcast",
            CollOp::BcastHw => "bcast_hw",
            CollOp::Scatter => "scatter",
            CollOp::Reduce => "reduce",
            CollOp::Allreduce => "allreduce",
            CollOp::Gather => "gather",
            CollOp::Allgather => "allgather",
            CollOp::Alltoall => "alltoall",
            CollOp::Scan => "scan",
            CollOp::ReduceScatter => "reduce_scatter",
            CollOp::Gatherv => "gatherv",
            CollOp::Alltoallv => "alltoallv",
        }
    }
}

/// Control-message kinds tallied by [`Counters::control_sent`].
pub const CONTROL_KINDS: [&str; 5] = ["ack", "fin", "fin_ack", "completion", "credit"];

/// Behavioural counters for one endpoint.
#[derive(Clone, Debug, Default)]
pub struct Counters {
    /// Sends that took the eager path.
    pub eager_sent: u64,
    /// Sends that took the rendezvous path.
    pub rndv_sent: u64,
    /// Receives posted.
    pub recvs_posted: u64,
    /// First fragments matched to a posted receive.
    pub matches: u64,
    /// First fragments that landed in the unexpected queue.
    pub unexpected_total: u64,
    /// High-water mark of any communicator's unexpected-queue depth.
    pub unexpected_hwm: u64,
    /// RDMA descriptors handed to the NIC.
    pub rdma_descriptors: u64,
    /// Bytes covered by those descriptors.
    pub rdma_bytes: u64,
    /// RDMA read batches issued (read scheme: one per matched pull).
    pub rdma_read_batches: u64,
    /// RDMA write batches issued (write scheme: one per ACK handled).
    pub rdma_write_batches: u64,
    /// Push fragments sent over non-RDMA transports (the TCP PTL).
    pub frags_sent: u64,
    /// Chained-QDMA completion tokens observed on the shared queue.
    pub chained_completions: u64,
    /// Control messages by kind: `[ack, fin, fin_ack, completion, credit]`,
    /// indexed as [`CONTROL_KINDS`]. Includes NIC-fired chained messages.
    pub control_sent: [u64; 5],
    /// Progress-engine sweeps (polling passes and progress-thread loops).
    pub progress_iterations: u64,
    /// Control frames retransmitted after a reliability timeout.
    pub retransmits: u64,
    /// Redelivered control frames suppressed as duplicates.
    pub dup_suppressed: u64,
    /// Control frames abandoned after exhausting retransmission retries
    /// (each marks its peer failed).
    pub gave_up: u64,
    /// Incoming frames dropped because their header failed to decode.
    pub corrupt_frames: u64,
    /// Reliability receipts (CTL_ACK) sent back for sequence-stamped
    /// control frames.
    pub ctl_acks_sent: u64,
    /// Requests completed with an error status instead of a payload
    /// (failed peer, no transport).
    pub reqs_failed: u64,
    /// Request errors actually surfaced to the application through
    /// `wait_result` / `waitany_result` / `waitall_result` / an
    /// error-carrying `Status`. Bounded by [`Counters::reqs_failed`]; a
    /// persistent gap means errors are being dropped on the floor.
    pub errs_surfaced: u64,
    /// Registration-cache hits (mapping reused). Maintained by
    /// [`crate::regcache`] and merged into snapshots; always counted,
    /// independent of the metrics gate.
    pub reg_hits: u64,
    /// Registration-cache misses (new mapping charged).
    pub reg_misses: u64,
    /// Idle cached mappings torn down by capacity pressure.
    pub reg_evictions: u64,
    /// Bytes currently covered by cached mappings.
    pub reg_mapped_bytes: u64,
    /// Rendezvous bulk transfers that went through the pipelined chunk
    /// engine.
    pub pipe_started: u64,
    /// Rendezvous bulk transfers eligible by scheme but kept monolithic
    /// (pipelining disabled, or the share below `pipe.min_len`).
    pub pipe_fallback: u64,
    /// Pipeline chunks handed to the NIC.
    pub pipe_chunks_issued: u64,
    /// Pipeline chunk completions observed.
    pub pipe_chunks_landed: u64,
    /// Deepest any one pipeline's in-flight chunk count ever got.
    pub pipe_depth_hwm: u64,
    /// Registration time charged while at least one chunk of the same
    /// pipeline was in flight — pin-down latency hidden behind the wire.
    pub pipe_reg_overlap_ns: u64,
    /// Eager sends parked locally because the peer was out of credits.
    pub flow_sends_queued: u64,
    /// Total virtual time sends spent parked in flow queues.
    pub flow_queued_ns: u64,
    /// Credits consumed by local eager sends.
    pub flow_credits_consumed: u64,
    /// Credits received back from peers (piggybacked + explicit).
    pub flow_credits_returned: u64,
    /// Explicit CREDIT_RETURN frames sent (the starvation escape hatch).
    pub flow_credit_frames: u64,
    /// Credits that rode along on ACK/FIN_ACK frames at zero wire cost.
    pub flow_piggybacked: u64,
    /// Credit grants deferred because the local ejection-link queue was
    /// above `flow.ej_backoff` (fabric feedback into the credit loop).
    pub flow_grant_deferrals: u64,
    /// Sends that blocked on the endpoint-wide outstanding-DMA cap.
    pub flow_dma_waits: u64,
    /// Unexpected payloads staged in a preallocated bounce-pool slot.
    pub flow_pool_hits: u64,
    /// Unexpected payloads that fell back to a charged per-message
    /// allocation because the pool was dry (or the region oversize).
    pub flow_pool_fallbacks: u64,
    /// Collective operations entered, indexed as [`COLL_OPS`].
    pub coll: [u64; 13],
    /// NIC-resident collective event programs compiled and armed (one per
    /// distinct communicator/shape, reused across calls).
    pub coll_nic_programs: u64,
    /// Collectives that ran on a NIC-resident chained-event program.
    pub coll_nic_offloaded: u64,
    /// Collectives that wanted NIC offload but fell back to the host-driven
    /// path (TCP-only routes, unsupported op, oversize payload, ...).
    pub coll_nic_fallbacks: u64,
    /// Broadcasts sent over the hardware broadcast rail.
    pub coll_hw_bcasts: u64,
}

impl Counters {
    /// Add one control message by header-kind name index.
    pub fn control(&mut self, idx: usize) {
        self.control_sent[idx] += 1;
    }

    /// Raise the unexpected-queue high-water mark to `depth`.
    pub fn unexpected_depth(&mut self, depth: usize) {
        self.unexpected_hwm = self.unexpected_hwm.max(depth as u64);
    }

    /// Raise the pipeline in-flight high-water mark to `depth`.
    pub fn pipe_depth(&mut self, depth: usize) {
        self.pipe_depth_hwm = self.pipe_depth_hwm.max(depth as u64);
    }
}

/// Number of log2 buckets: enough for any u64 nanosecond value.
const BUCKETS: usize = 64;

/// A log2-bucketed latency histogram over nanoseconds.
///
/// Bucket `0` holds exact zeros; bucket `i > 0` holds durations in
/// `[2^(i-1), 2^i)` ns. Recording is a handful of integer ops, cheap enough
/// to leave on for every request when metrics are enabled.
#[derive(Clone, Debug)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum_ns: u64,
    min_ns: u64,
    max_ns: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
        }
    }
}

impl Histogram {
    fn bucket_of(ns: u64) -> usize {
        if ns == 0 {
            0
        } else {
            BUCKETS - ns.leading_zeros() as usize
        }
        .min(BUCKETS - 1)
    }

    /// Record one duration.
    pub fn record(&mut self, d: Dur) {
        self.record_ns(d.as_ns());
    }

    /// Record one sample in nanoseconds.
    pub fn record_ns(&mut self, ns: u64) {
        self.buckets[Self::bucket_of(ns)] += 1;
        self.count += 1;
        self.sum_ns = self.sum_ns.saturating_add(ns);
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples, in nanoseconds.
    pub fn sum_ns(&self) -> u64 {
        self.sum_ns
    }

    /// Smallest sample, or `None` when empty.
    pub fn min_ns(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min_ns)
    }

    /// Largest sample, or `None` when empty.
    pub fn max_ns(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max_ns)
    }

    /// Mean sample in nanoseconds, or `None` when empty.
    pub fn mean_ns(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum_ns as f64 / self.count as f64)
    }

    /// Non-empty buckets as `(lower_ns, upper_ns, count)`, lower inclusive,
    /// upper exclusive.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, c)| **c > 0)
            .map(|(i, c)| {
                let (lo, hi) = if i == 0 {
                    (0, 1)
                } else {
                    (
                        1u64 << (i - 1),
                        1u64.checked_shl(i as u32).unwrap_or(u64::MAX),
                    )
                };
                (lo, hi, *c)
            })
            .collect()
    }

    /// Upper bound of the bucket holding quantile `q` (0..=1), or `None`
    /// when empty. Bucketed, so accurate to a factor of two.
    pub fn quantile_ns(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let target = ((self.count as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(if i == 0 {
                    0
                } else if i == BUCKETS - 1 {
                    // The top bucket also absorbs samples >= 2^63, so its
                    // nominal upper bound can undershoot; saturate to the
                    // observed maximum (which must live in this bucket).
                    (1u64 << (BUCKETS - 1)).max(self.max_ns)
                } else {
                    1u64 << i
                });
            }
        }
        Some(self.max_ns)
    }

    fn to_json(&self) -> String {
        let buckets: Vec<String> = self
            .nonzero_buckets()
            .iter()
            .map(|(lo, hi, c)| format!("[{lo},{hi},{c}]"))
            .collect();
        format!(
            "{{\"count\":{},\"sum_ns\":{},\"min_ns\":{},\"max_ns\":{},\"buckets\":[{}]}}",
            self.count,
            self.sum_ns,
            self.min_ns().unwrap_or(0),
            self.max_ns().unwrap_or(0),
            buckets.join(",")
        )
    }
}

/// Per-endpoint telemetry: counters plus the three latency histograms the
/// paper's figures motivate.
#[derive(Clone, Debug, Default)]
pub struct Metrics {
    /// Event counters.
    pub counters: Counters,
    /// Match latency: from the later of {receive posted, fragment arrived}
    /// to the match, so it covers both the posted-queue walk and the time a
    /// message waits in the unexpected queue.
    pub match_time: Histogram,
    /// Rendezvous handshake: from posting the rendezvous fragment to the
    /// sender first hearing back (ACK or FIN_ACK).
    pub rndv_handshake: Histogram,
    /// Request completion: from posting to the request's done transition,
    /// sends and receives combined.
    pub completion_time: Histogram,
}

impl Metrics {
    /// Serialize everything as one JSON object.
    pub fn to_json(&self) -> String {
        let c = &self.counters;
        let control: Vec<String> = CONTROL_KINDS
            .iter()
            .zip(c.control_sent.iter())
            .map(|(k, v)| format!("\"{k}\":{v}"))
            .collect();
        let coll: Vec<String> = COLL_OPS
            .iter()
            .zip(c.coll.iter())
            .filter(|(_, v)| **v > 0)
            .map(|(k, v)| format!("\"{}\":{v}", k.name()))
            .collect();
        format!(
            "{{\"counters\":{{\"eager_sent\":{},\"rndv_sent\":{},\"recvs_posted\":{},\
             \"matches\":{},\"unexpected_total\":{},\"unexpected_hwm\":{},\
             \"rdma_descriptors\":{},\"rdma_bytes\":{},\"rdma_read_batches\":{},\
             \"rdma_write_batches\":{},\"frags_sent\":{},\"chained_completions\":{},\
             \"control_sent\":{{{}}},\"progress_iterations\":{},\
             \"retransmits\":{},\"dup_suppressed\":{},\"gave_up\":{},\
             \"corrupt_frames\":{},\"ctl_acks_sent\":{},\"reqs_failed\":{},\
             \"errs_surfaced\":{},\"reg_hits\":{},\"reg_misses\":{},\
             \"reg_evictions\":{},\"reg_mapped_bytes\":{},\
             \"pipe_started\":{},\"pipe_fallback\":{},\
             \"pipe_chunks_issued\":{},\"pipe_chunks_landed\":{},\
             \"pipe_depth_hwm\":{},\"pipe_reg_overlap_ns\":{},\
             \"flow_sends_queued\":{},\"flow_queued_ns\":{},\
             \"flow_credits_consumed\":{},\"flow_credits_returned\":{},\
             \"flow_credit_frames\":{},\"flow_piggybacked\":{},\
             \"flow_grant_deferrals\":{},\"flow_dma_waits\":{},\
             \"flow_pool_hits\":{},\"flow_pool_fallbacks\":{},\
             \"coll_nic_programs\":{},\"coll_nic_offloaded\":{},\
             \"coll_nic_fallbacks\":{},\"coll_hw_bcasts\":{},\
             \"coll\":{{{}}}}},\
             \"histograms\":{{\"match_time\":{},\"rndv_handshake\":{},\"completion_time\":{}}}}}",
            c.eager_sent,
            c.rndv_sent,
            c.recvs_posted,
            c.matches,
            c.unexpected_total,
            c.unexpected_hwm,
            c.rdma_descriptors,
            c.rdma_bytes,
            c.rdma_read_batches,
            c.rdma_write_batches,
            c.frags_sent,
            c.chained_completions,
            control.join(","),
            c.progress_iterations,
            c.retransmits,
            c.dup_suppressed,
            c.gave_up,
            c.corrupt_frames,
            c.ctl_acks_sent,
            c.reqs_failed,
            c.errs_surfaced,
            c.reg_hits,
            c.reg_misses,
            c.reg_evictions,
            c.reg_mapped_bytes,
            c.pipe_started,
            c.pipe_fallback,
            c.pipe_chunks_issued,
            c.pipe_chunks_landed,
            c.pipe_depth_hwm,
            c.pipe_reg_overlap_ns,
            c.flow_sends_queued,
            c.flow_queued_ns,
            c.flow_credits_consumed,
            c.flow_credits_returned,
            c.flow_credit_frames,
            c.flow_piggybacked,
            c.flow_grant_deferrals,
            c.flow_dma_waits,
            c.flow_pool_hits,
            c.flow_pool_fallbacks,
            c.coll_nic_programs,
            c.coll_nic_offloaded,
            c.coll_nic_fallbacks,
            c.coll_hw_bcasts,
            coll.join(","),
            self.match_time.to_json(),
            self.rndv_handshake.to_json(),
            self.completion_time.to_json(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_log2() {
        let mut h = Histogram::default();
        for ns in [0, 1, 2, 3, 4, 1000, 1024, u64::MAX] {
            h.record_ns(ns);
        }
        assert_eq!(h.count(), 8);
        assert_eq!(h.min_ns(), Some(0));
        assert_eq!(h.max_ns(), Some(u64::MAX));
        let b = h.nonzero_buckets();
        // 0 -> [0,1); 1 -> [1,2); 2,3 -> [2,4); 4 -> [4,8);
        // 1000 -> [512,1024); 1024 -> [1024,2048); MAX -> last bucket.
        assert_eq!(b[0], (0, 1, 1));
        assert_eq!(b[1], (1, 2, 1));
        assert_eq!(b[2], (2, 4, 2));
        assert_eq!(b[3], (4, 8, 1));
        assert_eq!(b[4], (512, 1024, 1));
        assert_eq!(b[5], (1024, 2048, 1));
        assert_eq!(b.iter().map(|(_, _, c)| c).sum::<u64>(), 8);
    }

    #[test]
    fn empty_histogram_reports_none() {
        let h = Histogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min_ns(), None);
        assert_eq!(h.max_ns(), None);
        assert_eq!(h.mean_ns(), None);
        assert_eq!(h.quantile_ns(0.5), None);
        assert!(h.nonzero_buckets().is_empty());
    }

    #[test]
    fn quantile_walks_buckets() {
        let mut h = Histogram::default();
        for _ in 0..99 {
            h.record(Dur::from_ns(100));
        }
        h.record(Dur::from_us(100));
        // Median lives in the [64,128) bucket; p999 in the big one.
        assert_eq!(h.quantile_ns(0.5), Some(128));
        assert!(h.quantile_ns(0.999).unwrap() >= 100_000);
    }

    #[test]
    fn quantile_empty_histogram_is_none_for_all_q() {
        let h = Histogram::default();
        for q in [0.0, 0.25, 0.5, 1.0] {
            assert_eq!(h.quantile_ns(q), None);
        }
    }

    #[test]
    fn quantile_single_sample_is_its_bucket_for_all_q() {
        let mut h = Histogram::default();
        h.record_ns(100); // bucket [64,128) -> upper bound 128
        for q in [0.0, 0.001, 0.5, 0.999, 1.0] {
            assert_eq!(h.quantile_ns(q), Some(128), "q={q}");
        }
        // A single zero sample sits in the exact-zero bucket.
        let mut z = Histogram::default();
        z.record_ns(0);
        assert_eq!(z.quantile_ns(0.0), Some(0));
        assert_eq!(z.quantile_ns(1.0), Some(0));
    }

    #[test]
    fn quantile_extremes_hit_first_and_last_occupied_buckets() {
        let mut h = Histogram::default();
        h.record_ns(0);
        for _ in 0..8 {
            h.record_ns(1000); // [512,1024)
        }
        h.record_ns((1 << 20) - 1); // [2^19, 2^20)
                                    // q=0 clamps to the first sample (the zero bucket).
        assert_eq!(h.quantile_ns(0.0), Some(0));
        // q=1 must reach the last occupied bucket, never beyond max.
        assert_eq!(h.quantile_ns(1.0), Some(1 << 20));
        assert!(h.quantile_ns(1.0).unwrap() >= h.max_ns().unwrap());
    }

    #[test]
    fn quantile_saturating_top_bucket_does_not_overflow() {
        let mut h = Histogram::default();
        h.record_ns(u64::MAX); // top bucket: upper bound saturates
        for q in [0.0, 0.5, 1.0] {
            let v = h.quantile_ns(q).unwrap();
            // 1u64 << 64 would overflow; the bound must saturate instead
            // and still dominate the recorded maximum's bucket lower bound.
            assert_eq!(v, u64::MAX, "q={q}");
        }
        // Mixed: the huge sample only surfaces at the top quantiles.
        let mut m = Histogram::default();
        for _ in 0..9 {
            m.record_ns(10);
        }
        m.record_ns(u64::MAX);
        assert_eq!(m.quantile_ns(0.5), Some(16));
        assert_eq!(m.quantile_ns(1.0), Some(u64::MAX));
    }

    #[test]
    fn json_shape_is_stable() {
        let mut m = Metrics::default();
        m.counters.eager_sent = 3;
        m.counters.control(0);
        m.counters.coll[CollOp::Bcast as usize] = 2;
        m.counters.retransmits = 1;
        m.counters.corrupt_frames = 4;
        m.counters.reg_hits = 7;
        m.counters.pipe_started = 2;
        m.counters.pipe_chunks_issued = 9;
        m.counters.pipe_depth(3);
        m.counters.control(4);
        m.counters.flow_sends_queued = 5;
        m.counters.flow_credits_consumed = 12;
        m.counters.flow_piggybacked = 6;
        m.counters.flow_pool_hits = 11;
        m.counters.coll_nic_programs = 1;
        m.counters.coll_nic_offloaded = 8;
        m.match_time.record(Dur::from_ns(300));
        let j = m.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"eager_sent\":3"));
        assert!(j.contains("\"ack\":1"));
        assert!(j.contains("\"bcast\":2"));
        assert!(j.contains("\"retransmits\":1"));
        assert!(j.contains("\"dup_suppressed\":0"));
        assert!(j.contains("\"gave_up\":0"));
        assert!(j.contains("\"corrupt_frames\":4"));
        assert!(j.contains("\"ctl_acks_sent\":0"));
        assert!(j.contains("\"reqs_failed\":0"));
        assert!(j.contains("\"errs_surfaced\":0"));
        assert!(j.contains("\"reg_hits\":7"));
        assert!(j.contains("\"reg_misses\":0"));
        assert!(j.contains("\"reg_evictions\":0"));
        assert!(j.contains("\"reg_mapped_bytes\":0"));
        assert!(j.contains("\"pipe_started\":2"));
        assert!(j.contains("\"pipe_fallback\":0"));
        assert!(j.contains("\"pipe_chunks_issued\":9"));
        assert!(j.contains("\"pipe_chunks_landed\":0"));
        assert!(j.contains("\"pipe_depth_hwm\":3"));
        assert!(j.contains("\"pipe_reg_overlap_ns\":0"));
        assert!(j.contains("\"credit\":1"));
        assert!(j.contains("\"flow_sends_queued\":5"));
        assert!(j.contains("\"flow_queued_ns\":0"));
        assert!(j.contains("\"flow_credits_consumed\":12"));
        assert!(j.contains("\"flow_credits_returned\":0"));
        assert!(j.contains("\"flow_credit_frames\":0"));
        assert!(j.contains("\"flow_piggybacked\":6"));
        assert!(j.contains("\"flow_grant_deferrals\":0"));
        assert!(j.contains("\"flow_dma_waits\":0"));
        assert!(j.contains("\"flow_pool_hits\":11"));
        assert!(j.contains("\"flow_pool_fallbacks\":0"));
        assert!(j.contains("\"coll_nic_programs\":1"));
        assert!(j.contains("\"coll_nic_offloaded\":8"));
        assert!(j.contains("\"coll_nic_fallbacks\":0"));
        assert!(j.contains("\"coll_hw_bcasts\":0"));
        assert!(j.contains("\"match_time\":{\"count\":1"));
    }
}
