//! Peer addressing published through the RTE modex at init time.
//!
//! Each rank publishes one `PeerInfo` describing how every PTL component can
//! reach it; serialization is a small hand-rolled byte format (the real
//! modex likewise ships opaque per-component blobs).

use elan4::{QueueId, Vpid};
use ompi_rte::ProcName;

/// Elan4 PTL addressing for one peer.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct ElanPeer {
    /// Network address of the peer's context.
    pub vpid: Vpid,
    /// Main receive queue.
    pub main_q: QueueId,
    /// Separate shared-completion queue (two-queue strategy), if created.
    pub comp_q: Option<QueueId>,
    /// Rails this peer listens on.
    pub rails: u8,
}

/// TCP PTL addressing (node id stands in for an IP address).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct TcpPeer {
    /// Node id (stands in for an IP address).
    pub node: u32,
}

/// How to reach one process over every transport it exposes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PeerInfo {
    /// The process this record describes.
    pub name: ProcName,
    /// Elan4 addressing, if it activated that PTL.
    pub elan: Option<ElanPeer>,
    /// TCP addressing, if it activated that PTL.
    pub tcp: Option<TcpPeer>,
}

impl PeerInfo {
    /// Serialize for the modex.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut v = Vec::with_capacity(32);
        v.extend_from_slice(&self.name.job.0.to_le_bytes());
        v.extend_from_slice(&(self.name.rank as u64).to_le_bytes());
        match &self.elan {
            Some(e) => {
                v.push(1);
                v.extend_from_slice(&e.vpid.raw().to_le_bytes());
                v.extend_from_slice(&e.main_q.0.to_le_bytes());
                match e.comp_q {
                    Some(q) => {
                        v.push(1);
                        v.extend_from_slice(&q.0.to_le_bytes());
                    }
                    None => {
                        v.push(0);
                        v.extend_from_slice(&0u16.to_le_bytes());
                    }
                }
                v.push(e.rails);
            }
            None => {
                v.push(0);
                v.extend_from_slice(&[0u8; 10]);
            }
        }
        match &self.tcp {
            Some(t) => {
                v.push(1);
                v.extend_from_slice(&t.node.to_le_bytes());
            }
            None => {
                v.push(0);
                v.extend_from_slice(&[0u8; 4]);
            }
        }
        v
    }

    /// Parse a modex blob.
    pub fn from_bytes(b: &[u8]) -> PeerInfo {
        let job = u32::from_le_bytes(b[0..4].try_into().unwrap());
        let rank = u64::from_le_bytes(b[4..12].try_into().unwrap()) as usize;
        let mut o = 12;
        let elan = if b[o] == 1 {
            let vpid = Vpid(u32::from_le_bytes(b[o + 1..o + 5].try_into().unwrap()));
            let main_q = QueueId(u16::from_le_bytes(b[o + 5..o + 7].try_into().unwrap()));
            let has_comp = b[o + 7] == 1;
            let comp = QueueId(u16::from_le_bytes(b[o + 8..o + 10].try_into().unwrap()));
            let rails = b[o + 10];
            Some(ElanPeer {
                vpid,
                main_q,
                comp_q: has_comp.then_some(comp),
                rails,
            })
        } else {
            None
        };
        o += 11;
        let tcp = if b[o] == 1 {
            Some(TcpPeer {
                node: u32::from_le_bytes(b[o + 1..o + 5].try_into().unwrap()),
            })
        } else {
            None
        };
        PeerInfo {
            name: ProcName {
                job: ompi_rte::JobId(job),
                rank,
            },
            elan,
            tcp,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_full() {
        let p = PeerInfo {
            name: ProcName {
                job: ompi_rte::JobId(3),
                rank: 17,
            },
            elan: Some(ElanPeer {
                vpid: Vpid(442),
                main_q: QueueId(0),
                comp_q: Some(QueueId(1)),
                rails: 2,
            }),
            tcp: Some(TcpPeer { node: 5 }),
        };
        assert_eq!(PeerInfo::from_bytes(&p.to_bytes()), p);
    }

    #[test]
    fn roundtrip_sparse() {
        let p = PeerInfo {
            name: ProcName {
                job: ompi_rte::JobId(0),
                rank: 0,
            },
            elan: Some(ElanPeer {
                vpid: Vpid(0),
                main_q: QueueId(0),
                comp_q: None,
                rails: 1,
            }),
            tcp: None,
        };
        assert_eq!(PeerInfo::from_bytes(&p.to_bytes()), p);
        let q = PeerInfo {
            name: ProcName {
                job: ompi_rte::JobId(9),
                rank: 1,
            },
            elan: None,
            tcp: Some(TcpPeer { node: 1 }),
        };
        assert_eq!(PeerInfo::from_bytes(&q.to_bytes()), q);
    }
}
