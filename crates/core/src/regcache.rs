//! Registration (pin-down) cache for Elan4 MMU mappings.
//!
//! Every rendezvous request expands its memory descriptor with an Elan4
//! mapping (paper §4.2), and [`elan4::ElanCtx::map`] charges real time for
//! it: pinning plus per-page MMU loads on map, a TLB shootdown on unmap.
//! Applications reuse communication buffers, so the classic optimization —
//! MPICH2-over-InfiniBand's registration cache — applies: keep mappings
//! alive after the request completes and reuse them when the same buffer
//! comes around again, unmapping only when capacity pressure evicts them.
//!
//! The cache is an LRU keyed by `(buffer base, len)` with both a byte and
//! an entry capacity (`reg.*` cvars). Entries are reference-counted:
//! in-flight requests hold a reference, so eviction only considers idle
//! entries and an active mapping can never be torn down under a DMA.
//! Releases of mappings the cache does not own (bounce buffers, cache
//! disabled at acquire time) fall through to a direct charged unmap, which
//! keeps the failure paths ([`crate::proto`]'s `fail_request`) leak-safe
//! without per-request bookkeeping.
//!
//! Locking: the cache lock is never held across `map`/`unmap` (both advance
//! virtual time). Lookups lock, decide, unlock; misses map outside the lock
//! and then publish, tolerating a concurrent insert of the same key by the
//! progress thread.

use elan4::{E4Addr, HostBuf};
use qsim::Proc;
use std::collections::HashMap;
use std::sync::Arc;

use crate::endpoint::Endpoint;

/// Live counters of one endpoint's registration cache. Always maintained
/// (independent of the `telemetry.metrics` gate) so `reg.*` pvars and the
/// bench harness read true totals.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct RegStats {
    /// Acquires served from a live mapping.
    pub hits: u64,
    /// Acquires that had to create a mapping.
    pub misses: u64,
    /// Idle mappings torn down by capacity pressure.
    pub evictions: u64,
    /// Bytes currently covered by cached mappings.
    pub mapped_bytes: u64,
    /// Cached mappings currently alive.
    pub entries: u64,
}

#[derive(Debug)]
struct Entry {
    e4: E4Addr,
    len: usize,
    /// In-flight requests holding this mapping; eviction needs 0.
    refs: u32,
    /// Monotonic LRU stamp (bumped on every touch).
    last_use: u64,
}

/// The pin-down cache proper: plain data behind the endpoint's `reg` lock.
#[derive(Debug)]
pub struct RegCache {
    enabled: bool,
    cap_bytes: usize,
    cap_entries: usize,
    /// Keyed by `(host base offset, len)`; the owning node is fixed per
    /// endpoint, so it is not part of the key.
    entries: HashMap<(usize, usize), Entry>,
    cur_bytes: usize,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl RegCache {
    /// An empty cache with the given capacities.
    pub fn new(enabled: bool, cap_bytes: usize, cap_entries: usize) -> RegCache {
        RegCache {
            enabled,
            cap_bytes,
            cap_entries,
            entries: HashMap::new(),
            cur_bytes: 0,
            tick: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Current counters.
    pub fn stats(&self) -> RegStats {
        RegStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            mapped_bytes: self.cur_bytes as u64,
            entries: self.entries.len() as u64,
        }
    }

    /// Is the cache accepting new entries?
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Byte capacity.
    pub fn cap_bytes(&self) -> usize {
        self.cap_bytes
    }

    /// Entry capacity.
    pub fn cap_entries(&self) -> usize {
        self.cap_entries
    }

    /// Turn the cache on or off. Existing entries stay owned by the cache
    /// (their releases still resolve here) but no new entries are admitted
    /// while off.
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    /// Resize the byte capacity; the next acquire/release evicts down to it.
    pub fn set_cap_bytes(&mut self, bytes: usize) {
        self.cap_bytes = bytes;
    }

    /// Resize the entry capacity; the next acquire/release evicts down to it.
    pub fn set_cap_entries(&mut self, n: usize) {
        self.cap_entries = n;
    }

    fn over_capacity(&self) -> bool {
        self.cur_bytes > self.cap_bytes || self.entries.len() > self.cap_entries
    }

    /// Pop LRU idle entries until within capacity; returns the mappings the
    /// caller must unmap (outside the cache lock).
    fn collect_victims(&mut self) -> Vec<E4Addr> {
        let mut victims = Vec::new();
        while self.over_capacity() {
            let Some((&key, _)) = self
                .entries
                .iter()
                .filter(|(_, e)| e.refs == 0)
                .min_by_key(|(_, e)| e.last_use)
            else {
                // Everything still referenced: stay over capacity for now.
                break;
            };
            let e = self.entries.remove(&key).unwrap();
            self.cur_bytes -= e.len;
            self.evictions += 1;
            victims.push(e.e4);
        }
        victims
    }
}

/// Map `region` for an RDMA, going through the endpoint's registration
/// cache. A hit reuses the live mapping (no charged time beyond the
/// lookup); a miss pays the full [`elan4::NicConfig::map_cost`] and inserts
/// the mapping, evicting idle LRU entries past capacity. With the cache
/// disabled this degenerates to a plain charged `map`.
pub fn acquire(proc: &Proc, ep: &Arc<Endpoint>, region: &HostBuf) -> E4Addr {
    let key = (region.addr.off, region.len);
    {
        let mut c = ep.reg.lock();
        if c.enabled {
            c.tick += 1;
            let tick = c.tick;
            if let Some(e) = c.entries.get_mut(&key) {
                e.refs += 1;
                e.last_use = tick;
                let out = e.e4;
                c.hits += 1;
                return out;
            }
            c.misses += 1;
        }
    }
    // Miss (or cache off): register outside the cache lock — mapping
    // advances virtual time.
    let e4 = ep.ectx.map(proc, region);
    let mut stale = Vec::new();
    let out = {
        let mut c = ep.reg.lock();
        if !c.enabled {
            e4
        } else if let Some(e) = c.entries.get_mut(&key) {
            // The progress thread inserted the same buffer while we were
            // mapping: share its entry and retire our fresh mapping.
            e.refs += 1;
            stale.push(e4);
            e.e4
        } else {
            c.tick += 1;
            let tick = c.tick;
            c.entries.insert(
                key,
                Entry {
                    e4,
                    len: region.len,
                    refs: 1,
                    last_use: tick,
                },
            );
            c.cur_bytes += region.len;
            stale = c.collect_victims();
            e4
        }
    };
    for v in stale {
        ep.ectx.unmap(proc, v);
    }
    out
}

/// Release the mapping a request held. If the cache owns `(region, e4)`,
/// the unmap is deferred: the entry just drops a reference and becomes
/// evictable (the common case costs nothing). Anything the cache does not
/// own — bounce-buffer mappings, mappings made while the cache was off —
/// is unmapped directly with the shootdown charged.
pub fn release(proc: &Proc, ep: &Arc<Endpoint>, region: &HostBuf, e4: E4Addr) {
    let key = (region.addr.off, region.len);
    let mut victims = Vec::new();
    let owned = {
        let mut c = ep.reg.lock();
        match c.entries.get_mut(&key) {
            Some(e) if e.e4 == e4 => {
                debug_assert!(e.refs > 0, "registration cache refcount underflow");
                e.refs = e.refs.saturating_sub(1);
                victims = c.collect_victims();
                true
            }
            _ => false,
        }
    };
    for v in victims {
        ep.ectx.unmap(proc, v);
    }
    if !owned {
        ep.ectx.unmap(proc, e4);
    }
}

/// Tear down every idle cache entry (finalize path), charging each unmap.
/// Entries still referenced are left alone — by finalize time there are
/// none, which [`crate::endpoint::Endpoint::finalize`] asserts via
/// `mapping_count()`.
pub fn drain(proc: &Proc, ep: &Arc<Endpoint>) {
    let victims: Vec<E4Addr> = {
        let mut c = ep.reg.lock();
        let keys: Vec<(usize, usize)> = c
            .entries
            .iter()
            .filter(|(_, e)| e.refs == 0)
            .map(|(k, _)| *k)
            .collect();
        keys.iter()
            .map(|k| {
                let e = c.entries.remove(k).unwrap();
                c.cur_bytes -= e.len;
                e.e4
            })
            .collect()
    };
    for v in victims {
        ep.ectx.unmap(proc, v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elan4::{HostAddr, Vpid};

    fn entry(va: u64, len: usize, refs: u32, last_use: u64) -> Entry {
        Entry {
            e4: E4Addr::from_raw(Vpid(0), va),
            len,
            refs,
            last_use,
        }
    }

    #[test]
    fn lru_evicts_oldest_idle_entry_first() {
        let mut c = RegCache::new(true, 100, 16);
        c.entries.insert((0, 40), entry(0x1000, 40, 0, 1));
        c.entries.insert((40, 40), entry(0x2000, 40, 0, 2));
        c.entries.insert((80, 40), entry(0x3000, 40, 0, 3));
        c.cur_bytes = 120;
        let victims = c.collect_victims();
        assert_eq!(victims, vec![E4Addr::from_raw(Vpid(0), 0x1000)]);
        assert_eq!(c.cur_bytes, 80);
        assert_eq!(c.evictions, 1);
    }

    #[test]
    fn referenced_entries_are_never_evicted() {
        let mut c = RegCache::new(true, 10, 16);
        c.entries.insert((0, 40), entry(0x1000, 40, 1, 1));
        c.cur_bytes = 40;
        assert!(c.collect_victims().is_empty());
        assert_eq!(c.entries.len(), 1);
    }

    #[test]
    fn entry_capacity_also_triggers_eviction() {
        let mut c = RegCache::new(true, usize::MAX, 1);
        c.entries.insert((0, 8), entry(0x1000, 8, 0, 1));
        c.entries.insert((8, 8), entry(0x2000, 8, 0, 2));
        c.cur_bytes = 16;
        let victims = c.collect_victims();
        assert_eq!(victims.len(), 1);
        assert_eq!(c.entries.len(), 1);
        assert!(c.entries.contains_key(&(8, 8)), "LRU entry must go first");
    }

    fn buf(off: usize, len: usize) -> HostBuf {
        HostBuf {
            addr: HostAddr { node: 0, off },
            len,
        }
    }

    #[test]
    fn stats_track_current_footprint() {
        let mut c = RegCache::new(true, 100, 4);
        c.entries.insert((0, 60), entry(0x1000, 60, 0, 1));
        c.cur_bytes = 60;
        c.hits = 5;
        c.misses = 2;
        let s = c.stats();
        assert_eq!(s.hits, 5);
        assert_eq!(s.misses, 2);
        assert_eq!(s.mapped_bytes, 60);
        assert_eq!(s.entries, 1);
        // Keys are (base, len): the same base with a different length is a
        // different registration.
        assert_ne!(
            (buf(0, 60).addr.off, buf(0, 60).len),
            (buf(0, 61).addr.off, buf(0, 61).len)
        );
    }
}
