//! The PTL component framework (paper §2.2).
//!
//! "A PTL component encapsulates the functionality of a particular network
//! transport that can be dynamically loaded at run-time; a PTL module
//! represents an instance of a communication endpoint. In order to join and
//! disjoin from the pool of available PTLs, a PTL has to go through five
//! major stages: opening, initializing, communicating, finalizing and
//! closing."
//!
//! This module is that lifecycle: a registry per endpoint tracks each
//! component's stage and exposes the scheduling attributes (latency rank,
//! bandwidth weight, RDMA capability) the PML's heuristics consume. The
//! transports themselves live in `proto`/`ptl_tcp`; this is the control
//! plane that decides which of them participate.

use std::fmt;

/// The five lifecycle stages of §2.2.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum PtlStage {
    /// Not part of the stack.
    Closed,
    /// Component and dependencies mapped in; sanity checks passed.
    Opened,
    /// Device initialized, memory/threads prepared (modules exist).
    Initialized,
    /// Inserted into the communication stack; the PML may schedule on it.
    Active,
    /// Pending communication drained; resources being released.
    Finalized,
}

/// Transport identity of a component.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum PtlKind {
    /// One Elan4 rail.
    Elan4 {
        /// The rail index.
        rail: usize,
    },
    /// The TCP/IP reference transport.
    Tcp,
}

/// Static attributes the PML scheduling heuristics consume (paper §2.1:
/// first fragment by latency, remainder by bandwidth weight).
#[derive(Copy, Clone, Debug)]
pub struct PtlInfo {
    /// Which transport this describes.
    pub kind: PtlKind,
    /// Lower = preferred for the first fragment.
    pub latency_rank: u32,
    /// Relative share of bulk data.
    pub bandwidth_weight: u64,
    /// Can move bulk data with RDMA (vs. push fragments).
    pub rdma_capable: bool,
    /// First-fragment payload capacity.
    pub max_inline: usize,
}

impl PtlInfo {
    /// Attributes of one Elan4 rail.
    pub fn elan4(rail: usize) -> PtlInfo {
        PtlInfo {
            kind: PtlKind::Elan4 { rail },
            latency_rank: 0,
            bandwidth_weight: 900,
            rdma_capable: true,
            max_inline: crate::hdr::MAX_INLINE,
        }
    }

    /// Attributes of the TCP transport.
    pub fn tcp() -> PtlInfo {
        PtlInfo {
            kind: PtlKind::Tcp,
            latency_rank: 10,
            bandwidth_weight: 110,
            rdma_capable: false,
            max_inline: (64 << 10) - crate::hdr::HDR_LEN,
        }
    }
}

struct Entry {
    info: PtlInfo,
    stage: PtlStage,
    sent_frames: u64,
    sent_bytes: u64,
}

/// Frames and bytes a component has carried (telemetry snapshot).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct PtlTraffic {
    /// Which transport.
    pub kind: PtlKind,
    /// Frames handed to it.
    pub sent_frames: u64,
    /// Total frame bytes (headers included).
    pub sent_bytes: u64,
}

/// Per-endpoint component registry.
pub struct PtlRegistry {
    entries: Vec<Entry>,
}

/// Lifecycle errors (illegal transitions).
#[derive(Debug, PartialEq, Eq)]
pub struct StageError {
    /// The component involved.
    pub kind: PtlKind,
    /// Its current stage.
    pub from: PtlStage,
    /// The attempted stage.
    pub to: PtlStage,
}

impl fmt::Display for StageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "illegal PTL transition {:?} -> {:?} for {:?}",
            self.from, self.to, self.kind
        )
    }
}

impl std::error::Error for StageError {}

impl Default for PtlRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl PtlRegistry {
    /// An empty registry.
    pub fn new() -> PtlRegistry {
        PtlRegistry {
            entries: Vec::new(),
        }
    }

    /// Stage 1: open a component (dependency/sanity checking done by the
    /// caller before this point).
    pub fn open(&mut self, info: PtlInfo) {
        assert!(
            !self.entries.iter().any(|e| e.info.kind == info.kind),
            "component {:?} opened twice",
            info.kind
        );
        self.entries.push(Entry {
            info,
            stage: PtlStage::Opened,
            sent_frames: 0,
            sent_bytes: 0,
        });
    }

    /// Account one outgoing frame of `bytes` against `kind` (telemetry; the
    /// PML calls this when metrics are enabled).
    pub fn charge(&mut self, kind: PtlKind, bytes: usize) {
        if let Some(e) = self.entries.iter_mut().find(|e| e.info.kind == kind) {
            e.sent_frames += 1;
            e.sent_bytes += bytes as u64;
        }
    }

    /// Per-component traffic totals.
    pub fn traffic(&self) -> Vec<PtlTraffic> {
        self.entries
            .iter()
            .map(|e| PtlTraffic {
                kind: e.info.kind,
                sent_frames: e.sent_frames,
                sent_bytes: e.sent_bytes,
            })
            .collect()
    }

    fn transition(
        &mut self,
        kind: PtlKind,
        expect: PtlStage,
        to: PtlStage,
    ) -> Result<(), StageError> {
        let e = self
            .entries
            .iter_mut()
            .find(|e| e.info.kind == kind)
            .unwrap_or_else(|| panic!("unknown component {kind:?}"));
        if e.stage != expect {
            return Err(StageError {
                kind,
                from: e.stage,
                to,
            });
        }
        e.stage = to;
        Ok(())
    }

    /// Stage 2: device initialized, modules created.
    pub fn init(&mut self, kind: PtlKind) -> Result<(), StageError> {
        self.transition(kind, PtlStage::Opened, PtlStage::Initialized)
    }

    /// Stage 3: insert into the communication stack.
    pub fn activate(&mut self, kind: PtlKind) -> Result<(), StageError> {
        self.transition(kind, PtlStage::Initialized, PtlStage::Active)
    }

    /// Stage 4: drain + release (the caller must have completed pending
    /// traffic synchronously first — paper §4.1).
    pub fn finalize(&mut self, kind: PtlKind) -> Result<(), StageError> {
        self.transition(kind, PtlStage::Active, PtlStage::Finalized)
    }

    /// Stage 5: fully closed and removed from the pool.
    pub fn close(&mut self, kind: PtlKind) -> Result<(), StageError> {
        self.transition(kind, PtlStage::Finalized, PtlStage::Closed)
    }

    /// Current stage of a component, if opened.
    pub fn stage(&self, kind: PtlKind) -> Option<PtlStage> {
        self.entries
            .iter()
            .find(|e| e.info.kind == kind)
            .map(|e| e.stage)
    }

    /// Components the PML may schedule on right now.
    pub fn active(&self) -> impl Iterator<Item = &PtlInfo> {
        self.entries
            .iter()
            .filter(|e| e.stage == PtlStage::Active)
            .map(|e| &e.info)
    }

    /// The active component with the lowest latency rank (first-fragment
    /// heuristic).
    pub fn first_frag(&self) -> Option<&PtlInfo> {
        self.active().min_by_key(|i| i.latency_rank)
    }

    /// Sum of active bandwidth weights (bulk-scheduling denominator).
    pub fn total_weight(&self) -> u64 {
        self.active().map(|i| i.bandwidth_weight).sum()
    }

    /// Active RDMA-capable weight (numerator for the RDMA share).
    pub fn rdma_weight(&self) -> u64 {
        self.active()
            .filter(|i| i.rdma_capable)
            .map(|i| i.bandwidth_weight)
            .sum()
    }

    /// Finalize and close every active component.
    pub fn shutdown(&mut self) {
        let kinds: Vec<PtlKind> = self
            .entries
            .iter()
            .filter(|e| e.stage == PtlStage::Active)
            .map(|e| e.info.kind)
            .collect();
        for k in kinds {
            self.finalize(k).expect("active component must finalize");
            self.close(k).expect("finalized component must close");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_stage_lifecycle() {
        let mut reg = PtlRegistry::new();
        reg.open(PtlInfo::elan4(0));
        assert_eq!(
            reg.stage(PtlKind::Elan4 { rail: 0 }),
            Some(PtlStage::Opened)
        );
        reg.init(PtlKind::Elan4 { rail: 0 }).unwrap();
        reg.activate(PtlKind::Elan4 { rail: 0 }).unwrap();
        assert_eq!(reg.active().count(), 1);
        reg.finalize(PtlKind::Elan4 { rail: 0 }).unwrap();
        assert_eq!(reg.active().count(), 0);
        reg.close(PtlKind::Elan4 { rail: 0 }).unwrap();
        assert_eq!(
            reg.stage(PtlKind::Elan4 { rail: 0 }),
            Some(PtlStage::Closed)
        );
    }

    #[test]
    fn illegal_transitions_rejected() {
        let mut reg = PtlRegistry::new();
        reg.open(PtlInfo::tcp());
        // Cannot activate before init.
        let err = reg.activate(PtlKind::Tcp).unwrap_err();
        assert_eq!(err.from, PtlStage::Opened);
        // Cannot finalize before active.
        assert!(reg.finalize(PtlKind::Tcp).is_err());
        reg.init(PtlKind::Tcp).unwrap();
        assert!(reg.init(PtlKind::Tcp).is_err(), "double init");
    }

    #[test]
    #[should_panic(expected = "opened twice")]
    fn double_open_panics() {
        let mut reg = PtlRegistry::new();
        reg.open(PtlInfo::elan4(1));
        reg.open(PtlInfo::elan4(1));
    }

    #[test]
    fn scheduling_attributes() {
        let mut reg = PtlRegistry::new();
        for info in [PtlInfo::elan4(0), PtlInfo::elan4(1), PtlInfo::tcp()] {
            let kind = info.kind;
            reg.open(info);
            reg.init(kind).unwrap();
            reg.activate(kind).unwrap();
        }
        assert_eq!(reg.total_weight(), 900 + 900 + 110);
        assert_eq!(reg.rdma_weight(), 1800);
        // The first-fragment pick is an Elan rail, not TCP.
        assert!(matches!(
            reg.first_frag().unwrap().kind,
            PtlKind::Elan4 { .. }
        ));
        reg.shutdown();
        assert_eq!(reg.active().count(), 0);
    }

    #[test]
    fn traffic_accounting() {
        let mut reg = PtlRegistry::new();
        reg.open(PtlInfo::tcp());
        reg.charge(PtlKind::Tcp, 128);
        reg.charge(PtlKind::Tcp, 64);
        // Charging an unopened component is ignored.
        reg.charge(PtlKind::Elan4 { rail: 0 }, 9);
        let t = reg.traffic();
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].sent_frames, 2);
        assert_eq!(t[0].sent_bytes, 192);
    }

    #[test]
    fn tcp_only_stack() {
        let mut reg = PtlRegistry::new();
        reg.open(PtlInfo::tcp());
        reg.init(PtlKind::Tcp).unwrap();
        reg.activate(PtlKind::Tcp).unwrap();
        assert_eq!(reg.rdma_weight(), 0);
        assert_eq!(reg.first_frag().unwrap().kind, PtlKind::Tcp);
    }
}
