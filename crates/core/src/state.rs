//! Per-rank PML state: requests, communicators, and the matching engine.
//!
//! Everything here is plain data manipulated under the endpoint lock; no
//! virtual time is consumed at this layer (costs are charged by the caller
//! from the [`crate::config::HostConfig`] model).

use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};

use elan4::E4Addr;
use ompi_datatype::Convertor;
use ompi_rte::ProcName;
use qsim::{Dur, Signal, Time};

use crate::hdr::{Hdr, HdrType};
use crate::peer::PeerInfo;

/// MPI_ANY_SOURCE.
pub const ANY_SOURCE: i32 = -1;
/// MPI_ANY_TAG.
pub const ANY_TAG: i32 = -0x7fff_fff0;

/// MPI-style error class a request completes with when the protocol gives
/// up on it instead of panicking the rank (graceful degradation).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum MpiErrClass {
    /// The peer stopped acknowledging control frames: retransmission retries
    /// were exhausted (or the peer was already marked failed).
    ProcFailed,
    /// No active transport can reach the peer (or carry its bulk data).
    NoTransport,
    /// A protocol invariant broke (e.g. an ACK describing a transfer range
    /// outside the message); the request is abandoned instead of panicking
    /// the rank.
    Internal,
}

impl MpiErrClass {
    /// The corresponding MPI error-class name.
    pub fn mpi_name(self) -> &'static str {
        match self {
            MpiErrClass::ProcFailed => "MPI_ERR_PROC_FAILED",
            MpiErrClass::NoTransport => "MPI_ERR_UNREACHABLE",
            MpiErrClass::Internal => "MPI_ERR_INTERN",
        }
    }
}

/// One sequence-stamped control frame awaiting its [`HdrType::CtlAck`]
/// receipt: the retransmit buffer entry of the TCP reliability layer.
pub struct InflightCtl {
    /// The peer the frame was sent to.
    pub peer: ProcName,
    /// Reliability sequence number stamped on the frame (per-peer, 1-based).
    pub rel_seq: u32,
    /// Control kind, for counters and diagnostics.
    pub kind: HdrType,
    /// The exact frame bytes, re-sent verbatim on timeout.
    pub frame: Vec<u8>,
    /// Retransmissions performed so far.
    pub attempts: u32,
    /// Current timeout (doubles — or whatever the backoff multiplier says —
    /// after each retransmission).
    pub timeout: Dur,
    /// Virtual time at which the entry times out next.
    pub deadline: Time,
}

/// A send request in flight.
pub struct SendReq {
    /// Request token (appears in wire headers).
    pub id: u64,
    /// Globally unique message id ([`crate::hdr::msg_gid`]); stamps every
    /// trace/flight event of this logical message on both ranks.
    pub gid: u64,
    /// Communicator context id.
    pub ctx: u32,
    /// Destination process.
    pub dst: ProcName,
    /// Destination rank within the communicator.
    pub dst_rank: u32,
    /// MPI tag.
    pub tag: i32,
    /// Ordering sequence number for this (comm, dst) pair.
    pub seq: u32,

    /// Total packed length of the message.
    pub msg_len: usize,
    /// Packed source region exposed for RDMA (message-base addressing).
    pub src_e4: Option<E4Addr>,
    /// Where the packed bytes live (the user buffer for contiguous sends,
    /// or the bounce buffer).
    pub src_region: elan4::HostBuf,
    /// Bounce buffer to free on completion (non-contiguous sends).
    pub bounce: Option<elan4::HostBuf>,
    /// Bytes whose delivery the protocol has confirmed.
    pub bytes_confirmed: usize,
    /// Completed (locally for eager, fully acknowledged for rendezvous).
    pub done: bool,
    /// Virtual time the request was posted (telemetry).
    pub posted_at: Time,
    /// Rendezvous only: the receiver has been heard from at least once
    /// (first ACK or FIN_ACK closes the handshake histogram sample).
    pub rndv_acked: bool,
    /// Error class the request completed with, if the protocol gave up on
    /// it (`done` is also set; the payload outcome is undefined).
    pub error: Option<MpiErrClass>,
}

/// A receive request.
pub struct RecvReq {
    /// Request token (appears in wire headers).
    pub id: u64,
    /// Communicator context id.
    pub ctx: u32,
    /// `None` = MPI_ANY_SOURCE, else the comm-rank we accept.
    pub src_sel: Option<u32>,
    /// `None` = MPI_ANY_TAG.
    pub tag_sel: Option<i32>,
    /// The user buffer.
    pub buf: elan4::HostBuf,
    /// Datatype convertor for the buffer.
    pub conv: Convertor,
    /// Match result (set once matched).
    pub matched: Option<MatchInfo>,
    /// Destination region exposed for RDMA (packed-stream base).
    pub dst_e4: Option<E4Addr>,
    /// Bounce buffer for non-contiguous receives.
    pub bounce: Option<elan4::HostBuf>,
    /// Packed bytes landed so far.
    pub bytes_received: usize,
    /// Fully received (and unpacked, for non-contiguous types).
    pub done: bool,
    /// Virtual time the request was posted (telemetry).
    pub posted_at: Time,
    /// Error class the request completed with, if the protocol gave up on
    /// it (`done` is also set; the payload outcome is undefined).
    pub error: Option<MpiErrClass>,
}

/// What a receive matched against.
#[derive(Clone, Debug)]
pub struct MatchInfo {
    /// Globally unique message id, reconstructed at match time from the
    /// sender's identity and request token ([`crate::hdr::msg_gid`]).
    pub gid: u64,
    /// Sender's rank within the communicator.
    pub src_rank: u32,
    /// Sender's process name.
    pub src: ProcName,
    /// Matched tag.
    pub tag: i32,
    /// Total packed message length.
    pub msg_len: usize,
    /// Sender-side request token.
    pub send_req: u64,
    /// Source E4 address value (read scheme).
    pub src_e4_va: u64,
    /// VPID owning the source mapping.
    pub src_e4_vpid: u32,
}

/// A fragment parked in the unexpected queue.
pub struct UnexpectedFrag {
    /// The fragment's header.
    pub hdr: Hdr,
    /// Inline payload bytes.
    pub payload: Vec<u8>,
    /// Bounce region backing the parked payload: a slot from the
    /// preallocated [`BouncePool`] (or a charged fallback allocation when
    /// the pool is dry). `None` for payload-free fragments. Released when
    /// the fragment is consumed by a match, purged for a failed peer, or
    /// drained at finalize.
    pub stage: Option<elan4::HostBuf>,
    /// Sending process.
    pub from: ProcName,
    /// Transport the fragment arrived on.
    pub ptl: usize,
    /// Arrival stamp for FIFO unexpected matching.
    pub arrival: u64,
    /// Virtual arrival time (telemetry: match-latency samples).
    pub arrived_at: Time,
}

/// An eager send parked locally because its peer is out of flow credits.
/// The header (including the ordering `seq`) was fully built at post time,
/// so draining the queue FIFO preserves MPI ordering.
pub struct QueuedSend {
    /// The owning send request.
    pub sid: u64,
    /// Globally unique message id (trace attribution).
    pub gid: u64,
    /// The wire header, ready to go.
    pub hdr: Hdr,
    /// Packed payload bytes.
    pub payload: Vec<u8>,
    /// Virtual time the send was parked (feeds `flow.queued_ns`).
    pub queued_at: Time,
}

/// Per-peer credit state of the end-to-end flow-control scheme. Both the
/// sender view (`credits`, `queued`) and the receiver view
/// (`pending_return`) live here — each side only touches its half.
pub struct FlowPeer {
    /// Sends we may still issue to this peer before blocking.
    pub credits: usize,
    /// Eager sends parked until credits return (FIFO).
    pub queued: VecDeque<QueuedSend>,
    /// Credits consumed by local sends to this peer (monotonic).
    pub consumed: u64,
    /// Credits returned by this peer (monotonic); the invariant
    /// `consumed == returned + (initial - credits)` holds at quiescence.
    pub returned: u64,
    /// Receiver side: credits owed back to this peer (its messages we
    /// have delivered but not yet re-granted). Piggybacked on the next
    /// ACK/FIN_ACK toward the peer, or flushed by an explicit
    /// CREDIT_RETURN frame when it piles up past half the window.
    pub pending_return: usize,
    /// Receiver side: messages from this peer delivered to their final
    /// buffer (monotonic, for invariant checks).
    pub delivered: u64,
}

impl FlowPeer {
    /// Fresh state with the initial credit grant.
    pub fn new(initial: usize) -> Self {
        FlowPeer {
            credits: initial,
            queued: VecDeque::new(),
            consumed: 0,
            returned: 0,
            pending_return: 0,
            delivered: 0,
        }
    }
}

/// Preallocated, fixed-slot bounce pool for unexpected-message payloads
/// and small request bounce buffers (the GASNet elan-conduit trick: pay
/// the allocation once at init, not per message). Slots are uniform
/// ([`crate::hdr::SLOT_LEN`] bytes); `acquire` hands out a slice of a free
/// slot and `release` recognizes pool slots by their base address, so
/// callers can treat pool slots and fallback allocations uniformly.
pub struct BouncePool {
    /// Free slots (full-length).
    free: Vec<elan4::HostBuf>,
    /// Uniform slot length.
    slot_len: usize,
    /// Base addresses of every pool slot (membership test for `release`).
    slots: HashSet<elan4::HostAddr>,
    /// Slots currently handed out.
    in_use: usize,
}

impl BouncePool {
    /// An empty (unseeded) pool; every acquire misses until `seed`.
    pub fn new() -> Self {
        BouncePool {
            free: Vec::new(),
            slot_len: 0,
            slots: HashSet::new(),
            in_use: 0,
        }
    }

    /// Install the preallocated slots (called once at endpoint init).
    pub fn seed(&mut self, bufs: Vec<elan4::HostBuf>, slot_len: usize) {
        self.slot_len = slot_len;
        for b in &bufs {
            self.slots.insert(b.addr);
        }
        self.free = bufs;
    }

    /// Hand out a `len`-byte slice of a free slot, or `None` when the pool
    /// is dry or `len` exceeds the slot size (caller falls back to a real
    /// allocation and is charged for it).
    pub fn acquire(&mut self, len: usize) -> Option<elan4::HostBuf> {
        if len > self.slot_len {
            return None;
        }
        let slot = self.free.pop()?;
        self.in_use += 1;
        Some(slot.slice(0, len.max(1)))
    }

    /// Return a region. `true` if it was a pool slot (now free again);
    /// `false` means it was a fallback allocation the caller must free.
    pub fn release(&mut self, buf: elan4::HostBuf) -> bool {
        if !self.slots.contains(&buf.addr) {
            return false;
        }
        self.in_use -= 1;
        self.free.push(elan4::HostBuf {
            addr: buf.addr,
            len: self.slot_len,
        });
        true
    }

    /// Slots currently handed out (must be 0 at finalize).
    pub fn in_use(&self) -> usize {
        self.in_use
    }

    /// Total pool slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Free slots right now.
    pub fn available(&self) -> usize {
        self.free.len()
    }

    /// Take every slot back for freeing at finalize.
    pub fn drain(&mut self) -> Vec<elan4::HostBuf> {
        assert_eq!(self.in_use, 0, "bounce pool drained with slots in use");
        self.slots.clear();
        std::mem::take(&mut self.free)
    }
}

impl Default for BouncePool {
    fn default() -> Self {
        Self::new()
    }
}

/// Matching and ordering state for one communicator.
pub struct CommState {
    /// Context id.
    pub ctx: u32,
    /// Members in rank order.
    pub group: Vec<ProcName>,
    /// This process's rank.
    pub my_rank: usize,
    /// Recv request ids in post order (MPI matching is FIFO over these).
    pub posted: Vec<u64>,
    /// Fragments that matched no posted receive yet.
    pub unexpected: Vec<UnexpectedFrag>,
    /// Next sequence number per destination rank.
    pub next_send_seq: HashMap<u32, u32>,
    /// Next expected sequence number per source rank.
    pub next_recv_seq: HashMap<u32, u32>,
    /// Match-class fragments that arrived ahead of their sequence number
    /// (possible with multi-rail striping).
    pub out_of_order: Vec<UnexpectedFrag>,
    arrival_counter: u64,
}

impl CommState {
    /// Fresh matching state for one communicator.
    pub fn new(ctx: u32, group: Vec<ProcName>, my_rank: usize) -> Self {
        CommState {
            ctx,
            group,
            my_rank,
            posted: Vec::new(),
            unexpected: Vec::new(),
            next_send_seq: HashMap::new(),
            next_recv_seq: HashMap::new(),
            out_of_order: Vec::new(),
            arrival_counter: 0,
        }
    }

    /// Allocate the next ordering sequence number toward `dst_rank`.
    pub fn alloc_send_seq(&mut self, dst_rank: u32) -> u32 {
        let e = self.next_send_seq.entry(dst_rank).or_insert(0);
        let s = *e;
        *e += 1;
        s
    }

    /// Is `hdr` the next in-order match fragment from its sender? If not,
    /// the caller must park it in `out_of_order`.
    pub fn is_in_order(&self, hdr: &Hdr) -> bool {
        let expected = self.next_recv_seq.get(&hdr.src_rank).copied().unwrap_or(0);
        hdr.seq == expected
    }

    /// Mark the current in-order fragment from `src_rank` as processed.
    pub fn advance_recv_seq(&mut self, src_rank: u32) {
        *self.next_recv_seq.entry(src_rank).or_insert(0) += 1;
    }

    /// Pop a parked fragment that has become in-order, if any.
    pub fn take_ready_out_of_order(&mut self) -> Option<UnexpectedFrag> {
        let pos = self.out_of_order.iter().position(|f| {
            self.next_recv_seq
                .get(&f.hdr.src_rank)
                .copied()
                .unwrap_or(0)
                == f.hdr.seq
        })?;
        Some(self.out_of_order.remove(pos))
    }

    /// Monotonic stamp for unexpected-queue FIFO ordering.
    pub fn next_arrival_stamp(&mut self) -> u64 {
        self.arrival_counter += 1;
        self.arrival_counter
    }
}

/// Does `(src_sel, tag_sel)` accept a fragment from `src_rank` with `tag`?
pub fn selector_matches(
    src_sel: Option<u32>,
    tag_sel: Option<i32>,
    src_rank: u32,
    tag: i32,
) -> bool {
    src_sel.map(|s| s == src_rank).unwrap_or(true) && tag_sel.map(|t| t == tag).unwrap_or(true)
}

/// Role of a pending local DMA descriptor.
#[derive(Clone, Debug)]
pub enum DmaRole {
    /// RDMA reads issued by the receiver (read scheme); on completion the
    /// receive gains `bytes` and the FIN_ACK must reach the sender.
    Read {
        /// The receive being filled.
        recv_req: u64,
        /// Bytes this descriptor moves.
        bytes: usize,
        /// FIN_ACK to send from the host if it was not chained.
        fin_ack: Option<(usize, ProcName, Hdr)>,
    },
    /// RDMA writes issued by the sender (write scheme).
    Write {
        /// The send being drained.
        send_req: u64,
        /// Bytes this descriptor moves.
        bytes: usize,
        /// FIN to send from the host if it was not chained.
        fin: Option<(usize, ProcName, Hdr)>,
    },
    /// One chunk of a pipelined bulk transfer; completion is routed to the
    /// chunk engine, which releases the chunk's mapping, credits the owning
    /// request, and refills the in-flight window.
    Chunk {
        /// The owning request (recv for reads, send for writes).
        req: u64,
        /// Bytes this chunk moves.
        bytes: usize,
        /// Receiver-side RDMA read vs sender-side RDMA write.
        is_read: bool,
    },
}

/// One pipeline chunk whose RDMA is in flight: the per-chunk mapping to
/// release when its completion lands (or when the request fails).
pub struct PipeChunk {
    /// Completion token of the chunk's descriptor.
    pub token: u64,
    /// The sub-buffer registered for this chunk.
    pub sub: elan4::HostBuf,
    /// Its Elan4 mapping.
    pub e4: E4Addr,
    /// Rail the chunk was issued on (per-rail depth accounting).
    pub rail: usize,
}

/// Per-request state of a pipelined rendezvous bulk transfer (the chunk
/// engine in [`crate::proto`]). Lives beside the request — request structs
/// stay untouched — keyed by request id in [`EpState::pipelines`].
pub struct PipeState {
    /// `true` for receiver-side RDMA reads (read scheme), `false` for
    /// sender-side RDMA writes (write scheme).
    pub is_read: bool,
    /// The local request being served (recv for reads, send for writes).
    pub req: u64,
    /// Globally unique message id of the message being piped (causal
    /// attribution of per-chunk events).
    pub gid: u64,
    /// The peer on the far side.
    pub peer: ProcName,
    /// Remote address of the first bulk byte (one contiguous mapping on the
    /// far side — only the local, DMA-issuing side is chunked).
    pub remote: E4Addr,
    /// The local packed region (user buffer or bounce buffer).
    pub region: elan4::HostBuf,
    /// Offset of the first bulk byte within `region` (inline bytes and any
    /// TCP-routed range come before/after the Elan share).
    pub base_off: usize,
    /// Bulk bytes this pipeline moves.
    pub total: usize,
    /// Chunk size (frozen from the `pipe.chunk` cvar at start).
    pub chunk: usize,
    /// Chunks allowed in flight per rail (frozen from `pipe.depth`).
    pub depth: usize,
    /// Rails to stripe chunks across.
    pub rails: usize,
    /// Register chunks through the regcache (user buffers) or map them
    /// directly (bounce buffers, which die with the request).
    pub cacheable: bool,
    /// Offset of the next chunk to issue, relative to the bulk start.
    pub next_off: usize,
    /// Bulk bytes whose completion landed.
    pub landed: usize,
    /// Chunks currently in flight.
    pub inflight: Vec<PipeChunk>,
    /// In-flight chunk count per rail.
    pub per_rail: Vec<usize>,
    /// The final chunk's mapping, registered ahead of time; its descriptor
    /// is only issued once every other chunk has landed, so the chained
    /// FIN/FIN_ACK cannot overtake an earlier chunk still in flight.
    pub staged_final: Option<(elan4::HostBuf, E4Addr)>,
    /// The FIN (write scheme) or FIN_ACK (read scheme) to attach to the
    /// final chunk — chained as a QDMA or sent from the host on completion.
    pub fin: Hdr,
    /// Round-robin rail pointer.
    pub next_rail: usize,
}

/// Upper bound on the control-carrying final chunk, in bytes. The final
/// chunk is *held back* until every other chunk has landed (so the chained
/// FIN/FIN_ACK cannot overtake data still in flight on another rail); that
/// hold-back serializes the final chunk's wire time behind the whole
/// transfer, so it is kept small — a few microseconds of tail, not a full
/// `pipe.chunk`.
pub const PIPE_FIN_TAIL: usize = 2048;

impl PipeState {
    /// Total chunks currently in flight (across rails).
    pub fn inflight_total(&self) -> usize {
        self.inflight.len()
    }

    /// Offset at which the held-back, control-carrying final chunk starts.
    /// Everything before it is streamed as ordinary pipelined chunks.
    pub fn final_off(&self) -> usize {
        let tail = self.chunk.min(PIPE_FIN_TAIL).min(self.total - 1).max(1);
        self.total - tail
    }
}

/// A paced TCP bulk push: the remainder of `handle_ack`'s TCP share that
/// has not been fragmented onto the wire yet. Draining is bounded to
/// `pipe.depth` fragments per progress pass so one large share cannot
/// monopolize the progress loop.
pub struct TcpPush {
    /// The send request whose bytes are being pushed.
    pub send_req: u64,
    /// Destination process.
    pub peer: ProcName,
    /// Where the packed bytes live (user buffer or bounce buffer).
    pub src_region: elan4::HostBuf,
    /// Fragment header template (`offset` is rewritten per fragment).
    pub frag_hdr: Hdr,
    /// Next packed offset to push.
    pub next_off: usize,
    /// One past the last packed offset of the share.
    pub end: usize,
}

/// A DMA whose completion the host still has to observe.
pub struct PendingDma {
    /// Token linking shared-completion-queue messages to this entry.
    pub token: u64,
    /// The counted completion event.
    pub event: std::sync::Arc<elan4::ElanEvent>,
    /// What to do when it fires.
    pub role: DmaRole,
}

/// The lock-guarded heart of one rank's PML.
pub struct EpState {
    /// Matching state per registered context id.
    pub comms: HashMap<u32, CommState>,
    /// Live send requests by id.
    pub send_reqs: HashMap<u64, SendReq>,
    /// Live receive requests by id.
    pub recv_reqs: HashMap<u64, RecvReq>,
    /// DMA descriptors whose completion the host has not yet observed.
    pub pending_dmas: Vec<PendingDma>,
    /// Resolved addressing for every known peer.
    pub peers: HashMap<ProcName, PeerInfo>,
    /// Next request id.
    pub next_req: u64,
    /// Next shared-completion-queue token.
    pub next_dma_token: u64,
    /// Set once finalize begins (drain mode).
    pub finalizing: bool,
    /// Application threads blocked in thread-progress mode; notified on any
    /// request completion.
    pub waiters: Vec<Signal>,
    /// Match-class frames that arrived for a communicator this rank has not
    /// registered yet; re-dispatched at registration.
    pub early_frames: Vec<(Hdr, Vec<u8>)>,
    /// Next reliability sequence number per peer (1-based; 0 on the wire
    /// means "not sequence-stamped").
    pub ctl_next_seq: HashMap<ProcName, u32>,
    /// Sequence-stamped control frames not yet receipted by their peer; the
    /// retransmit buffer. Scanned by `reliability_tick`.
    pub ctl_inflight: Vec<InflightCtl>,
    /// Reliability sequence numbers already processed, per origin peer:
    /// duplicate-suppression state making redelivered frames idempotent.
    pub ctl_seen: HashMap<ProcName, HashSet<u32>>,
    /// Peers declared failed after retransmission retries were exhausted.
    /// New sends to them error out immediately.
    pub failed_peers: HashSet<ProcName>,
    /// Active pipelined bulk transfers, keyed by the owning request id
    /// (request ids are unique across sends and receives).
    pub pipelines: HashMap<u64, PipeState>,
    /// TCP bulk pushes awaiting their next paced burst.
    pub tcp_pushes: Vec<TcpPush>,
    /// Per-peer credit/backpressure state (lazily created on first
    /// eager traffic with a peer).
    pub flow: BTreeMap<ProcName, FlowPeer>,
    /// Preallocated bounce slots for unexpected payloads and small
    /// bounce buffers.
    pub bounce_pool: BouncePool,
}

impl EpState {
    /// Empty PML state.
    pub fn new() -> Self {
        EpState {
            comms: HashMap::new(),
            send_reqs: HashMap::new(),
            recv_reqs: HashMap::new(),
            pending_dmas: Vec::new(),
            peers: HashMap::new(),
            next_req: 1,
            next_dma_token: 1,
            finalizing: false,
            waiters: Vec::new(),
            early_frames: Vec::new(),
            ctl_next_seq: HashMap::new(),
            ctl_inflight: Vec::new(),
            ctl_seen: HashMap::new(),
            failed_peers: HashSet::new(),
            pipelines: HashMap::new(),
            tcp_pushes: Vec::new(),
            flow: BTreeMap::new(),
            bounce_pool: BouncePool::new(),
        }
    }

    /// Per-peer flow state, created with `initial` credits on first use.
    pub fn flow_entry(&mut self, peer: ProcName, initial: usize) -> &mut FlowPeer {
        self.flow
            .entry(peer)
            .or_insert_with(|| FlowPeer::new(initial))
    }

    /// Eager sends parked across all peers (the `queues.flow_queued` pvar).
    pub fn flow_queued_total(&self) -> usize {
        self.flow.values().map(|f| f.queued.len()).sum()
    }

    /// Allocate a request id.
    pub fn alloc_req_id(&mut self) -> u64 {
        let id = self.next_req;
        self.next_req += 1;
        id
    }

    /// Allocate a completion-queue token.
    pub fn alloc_dma_token(&mut self) -> u64 {
        let t = self.next_dma_token;
        self.next_dma_token += 1;
        t
    }

    /// Find the first posted receive that matches `hdr` (FIFO order);
    /// removes and returns its id.
    pub fn match_posted(&mut self, ctx: u32, hdr: &Hdr) -> Option<u64> {
        let comm = self.comms.get_mut(&ctx)?;
        let mut hit = None;
        for (i, rid) in comm.posted.iter().enumerate() {
            let r = &self.recv_reqs[rid];
            if selector_matches(r.src_sel, r.tag_sel, hdr.src_rank, hdr.tag) {
                hit = Some(i);
                break;
            }
        }
        let i = hit?;
        Some(comm.posted.remove(i))
    }

    /// Find the earliest unexpected fragment matching a new receive.
    pub fn match_unexpected(
        &mut self,
        ctx: u32,
        src_sel: Option<u32>,
        tag_sel: Option<i32>,
    ) -> Option<UnexpectedFrag> {
        let comm = self.comms.get_mut(&ctx)?;
        let mut best: Option<usize> = None;
        for (i, f) in comm.unexpected.iter().enumerate() {
            if selector_matches(src_sel, tag_sel, f.hdr.src_rank, f.hdr.tag)
                && best
                    .map(|b| comm.unexpected[b].arrival > f.arrival)
                    .unwrap_or(true)
            {
                best = Some(i);
            }
        }
        best.map(|i| comm.unexpected.remove(i))
    }

    /// Non-destructive probe of the unexpected queue: earliest matching
    /// fragment's (src_rank, tag, msg_len).
    pub fn peek_unexpected(
        &self,
        ctx: u32,
        src_sel: Option<u32>,
        tag_sel: Option<i32>,
    ) -> Option<(u32, i32, usize)> {
        let comm = self.comms.get(&ctx)?;
        let mut best: Option<&UnexpectedFrag> = None;
        for f in &comm.unexpected {
            if selector_matches(src_sel, tag_sel, f.hdr.src_rank, f.hdr.tag)
                && best.map(|b| b.arrival > f.arrival).unwrap_or(true)
            {
                best = Some(f);
            }
        }
        best.map(|f| (f.hdr.src_rank, f.hdr.tag, f.hdr.msg_len as usize))
    }

    /// Are all live requests complete? (Finalize's drain condition.)
    pub fn all_requests_done(&self) -> bool {
        self.send_reqs.values().all(|r| r.done) && self.recv_reqs.values().all(|r| r.done)
    }
}

impl Default for EpState {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn name(rank: usize) -> ProcName {
        ProcName {
            job: ompi_rte::JobId(0),
            rank,
        }
    }

    fn mk_hdr(src: u32, tag: i32, seq: u32) -> Hdr {
        let mut h = Hdr::new(crate::hdr::HdrType::Eager);
        h.src_rank = src;
        h.tag = tag;
        h.seq = seq;
        h.ctx = 0;
        h
    }

    fn mk_state_with_comm() -> EpState {
        let mut st = EpState::new();
        st.comms
            .insert(0, CommState::new(0, vec![name(0), name(1)], 0));
        st
    }

    fn post_recv(st: &mut EpState, src: Option<u32>, tag: Option<i32>) -> u64 {
        let id = st.alloc_req_id();
        st.recv_reqs.insert(
            id,
            RecvReq {
                id,
                ctx: 0,
                src_sel: src,
                tag_sel: tag,
                buf: elan4::HostBuf {
                    addr: elan4::HostAddr { node: 0, off: 0 },
                    len: 0,
                },
                conv: Convertor::new(ompi_datatype::Datatype::bytes(0), 0),
                matched: None,
                dst_e4: None,
                bounce: None,
                bytes_received: 0,
                done: false,
                posted_at: Time::ZERO,
                error: None,
            },
        );
        st.comms.get_mut(&0).unwrap().posted.push(id);
        id
    }

    #[test]
    fn fifo_matching_of_posted_receives() {
        let mut st = mk_state_with_comm();
        let a = post_recv(&mut st, Some(1), Some(5));
        let b = post_recv(&mut st, Some(1), Some(5));
        let h = mk_hdr(1, 5, 0);
        assert_eq!(st.match_posted(0, &h), Some(a));
        assert_eq!(st.match_posted(0, &h), Some(b));
        assert_eq!(st.match_posted(0, &h), None);
    }

    #[test]
    fn wildcards_match_anything() {
        let mut st = mk_state_with_comm();
        let a = post_recv(&mut st, None, None);
        let h = mk_hdr(1, 12345, 0);
        assert_eq!(st.match_posted(0, &h), Some(a));
    }

    #[test]
    fn selective_receive_skips_nonmatching() {
        let mut st = mk_state_with_comm();
        let _a = post_recv(&mut st, Some(1), Some(7));
        let b = post_recv(&mut st, Some(1), Some(9));
        let h = mk_hdr(1, 9, 0);
        assert_eq!(st.match_posted(0, &h), Some(b));
        // The tag-7 receive is still posted.
        assert_eq!(st.comms[&0].posted.len(), 1);
    }

    #[test]
    fn unexpected_matched_in_arrival_order() {
        let mut st = mk_state_with_comm();
        for tag in [4, 5, 4] {
            let stamp = st.comms.get_mut(&0).unwrap().next_arrival_stamp();
            let f = UnexpectedFrag {
                hdr: mk_hdr(1, tag, 0),
                payload: vec![tag as u8],
                stage: None,
                from: name(1),
                ptl: 0,
                arrival: stamp,
                arrived_at: Time::ZERO,
            };
            st.comms.get_mut(&0).unwrap().unexpected.push(f);
        }
        let got = st.match_unexpected(0, Some(1), Some(4)).unwrap();
        assert_eq!(got.payload, vec![4]);
        let got2 = st.match_unexpected(0, None, None).unwrap();
        assert_eq!(got2.hdr.tag, 5, "earliest arrival wins for wildcards");
    }

    #[test]
    fn sequence_ordering_detects_gaps() {
        let mut st = mk_state_with_comm();
        let comm = st.comms.get_mut(&0).unwrap();
        assert!(comm.is_in_order(&mk_hdr(1, 0, 0)));
        assert!(!comm.is_in_order(&mk_hdr(1, 0, 1)));
        comm.advance_recv_seq(1);
        assert!(comm.is_in_order(&mk_hdr(1, 0, 1)));
        // Independent per source.
        assert!(comm.is_in_order(&mk_hdr(0, 0, 0)));
    }

    #[test]
    fn out_of_order_release() {
        let mut st = mk_state_with_comm();
        let comm = st.comms.get_mut(&0).unwrap();
        comm.out_of_order.push(UnexpectedFrag {
            hdr: mk_hdr(1, 0, 1),
            payload: vec![],
            stage: None,
            from: name(1),
            ptl: 0,
            arrival: 0,
            arrived_at: Time::ZERO,
        });
        assert!(comm.take_ready_out_of_order().is_none());
        comm.advance_recv_seq(1); // seq 0 processed
        let f = comm.take_ready_out_of_order().unwrap();
        assert_eq!(f.hdr.seq, 1);
    }

    #[test]
    fn bounce_pool_round_trips_slots_and_rejects_oversize() {
        let mut p = BouncePool::new();
        assert!(p.acquire(16).is_none(), "unseeded pool always misses");
        let slot = |off| elan4::HostBuf {
            addr: elan4::HostAddr { node: 0, off },
            len: 2048,
        };
        p.seed(vec![slot(0), slot(2048)], 2048);
        assert_eq!(p.capacity(), 2);
        assert!(p.acquire(4096).is_none(), "oversize goes to fallback");
        let a = p.acquire(100).unwrap();
        assert_eq!(a.len, 100);
        let b = p.acquire(0).unwrap();
        assert_eq!(b.len, 1, "zero-len acquire still reserves a slot");
        assert!(p.acquire(1).is_none(), "pool dry");
        assert_eq!(p.in_use(), 2);
        let foreign = elan4::HostBuf {
            addr: elan4::HostAddr {
                node: 0,
                off: 1 << 20,
            },
            len: 64,
        };
        assert!(!p.release(foreign), "fallback allocs are not pool slots");
        assert!(p.release(a));
        assert!(p.release(b));
        assert_eq!(p.in_use(), 0);
        let c = p.acquire(2048).unwrap();
        assert_eq!(c.len, 2048, "released slot regains full length");
        assert!(p.release(c));
        assert_eq!(p.drain().len(), 2);
    }

    #[test]
    fn flow_entry_seeds_initial_credits_once() {
        let mut st = EpState::new();
        st.flow_entry(name(1), 8).credits -= 3;
        assert_eq!(st.flow_entry(name(1), 8).credits, 5);
        assert_eq!(st.flow_queued_total(), 0);
    }

    #[test]
    fn send_seq_allocation_is_per_destination() {
        let mut st = mk_state_with_comm();
        let comm = st.comms.get_mut(&0).unwrap();
        assert_eq!(comm.alloc_send_seq(1), 0);
        assert_eq!(comm.alloc_send_seq(1), 1);
        assert_eq!(comm.alloc_send_seq(0), 0);
    }
}
