//! Protocol event tracing.
//!
//! When [`crate::StackConfig::trace`] is on, every protocol transition is
//! recorded with its virtual timestamp: request posting, matching,
//! unexpected arrivals, RDMA issue/completion, and control messages. The
//! trace is the tool for understanding *why* a latency number looks the way
//! it does — a per-rank, virtual-time view of Figs. 2–4 of the paper.

use qsim::Time;

/// One recorded protocol event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// A send request was posted (`eager` tells the path taken).
    SendPosted {
        /// Request id.
        req: u64,
        /// Destination rank.
        dst: u32,
        /// MPI tag.
        tag: i32,
        /// Packed length.
        len: usize,
        /// Eager (true) or rendezvous (false).
        eager: bool,
    },
    /// A receive request was posted.
    RecvPosted {
        /// Request id.
        req: u64,
    },
    /// An incoming first fragment matched a posted receive.
    Matched {
        /// The receive request.
        req: u64,
        /// Sender rank.
        src: u32,
        /// Matched tag.
        tag: i32,
        /// Total message length.
        len: usize,
    },
    /// A first fragment arrived with no matching receive posted.
    Unexpected {
        /// Sender rank.
        src: u32,
        /// Tag of the fragment.
        tag: i32,
    },
    /// RDMA descriptors were issued for a message's remainder.
    RdmaIssued {
        /// Read (receiver pulls) or write (sender pushes).
        read: bool,
        /// Bytes covered by the batch.
        bytes: usize,
    },
    /// A local DMA completion was observed by the host.
    DmaDone {
        /// Bytes credited.
        bytes: usize,
    },
    /// A control message was sent (ACK/FIN/FIN_ACK), by header kind name.
    ControlSent {
        /// `"Ack"`, `"Fin"` or `"FinAck"`.
        kind: &'static str,
    },
    /// A request completed.
    Completed {
        /// The request id.
        req: u64,
        /// Send (true) or receive (false).
        send: bool,
    },
}

/// A per-endpoint trace buffer.
#[derive(Default)]
pub struct TraceLog {
    events: Vec<(Time, TraceEvent)>,
}

impl TraceLog {
    /// Record one event at `now`.
    pub fn record(&mut self, now: Time, ev: TraceEvent) {
        self.events.push((now, ev));
    }

    /// All recorded events in order.
    pub fn events(&self) -> &[(Time, TraceEvent)] {
        &self.events
    }

    /// Number of events recorded.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Render the trace as aligned text lines.
    pub fn dump(&self) -> Vec<String> {
        self.events
            .iter()
            .map(|(t, e)| format!("{:>12} {:?}", format!("{t}"), e))
            .collect()
    }

    /// Count events matching a predicate.
    pub fn count(&self, f: impl Fn(&TraceEvent) -> bool) -> usize {
        self.events.iter().filter(|(_, e)| f(e)).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_dump() {
        let mut log = TraceLog::default();
        assert!(log.is_empty());
        log.record(
            Time::from_ns(1500),
            TraceEvent::SendPosted {
                req: 1,
                dst: 1,
                tag: 0,
                len: 64,
                eager: true,
            },
        );
        log.record(Time::from_ns(2500), TraceEvent::Completed { req: 1, send: true });
        assert_eq!(log.len(), 2);
        let lines = log.dump();
        assert!(lines[0].contains("SendPosted"));
        assert!(lines[0].contains("1.500us"));
        assert_eq!(
            log.count(|e| matches!(e, TraceEvent::Completed { .. })),
            1
        );
    }
}
