//! Protocol event tracing.
//!
//! When [`crate::StackConfig::trace`] is on, every protocol transition is
//! recorded with its virtual timestamp: request posting, matching,
//! unexpected arrivals, RDMA issue/completion, and control messages. The
//! trace is the tool for understanding *why* a latency number looks the way
//! it does — a per-rank, virtual-time view of Figs. 2–4 of the paper.
//!
//! Two additions serve the telemetry stack: multi-event *spans* (a
//! rendezvous handshake or an RDMA burst has a begin and an end, correlated
//! by id), and a [Chrome trace-event] exporter so a run's per-rank timeline
//! can be loaded straight into `chrome://tracing` or Perfetto.
//!
//! [Chrome trace-event]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use std::collections::VecDeque;

use qsim::Time;

/// Default ring capacity of a [`TraceLog`]; see
/// [`crate::StackConfig::trace_capacity`].
pub const DEFAULT_TRACE_CAPACITY: usize = 65_536;

/// One recorded protocol event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// A send request was posted (`eager` tells the path taken).
    SendPosted {
        /// Request id.
        req: u64,
        /// Global message id ([`crate::hdr::msg_gid`]).
        gid: u64,
        /// Enclosing collective-operation id on this rank; 0 when the send
        /// was posted outside any collective.
        coll: u64,
        /// Destination rank.
        dst: u32,
        /// MPI tag.
        tag: i32,
        /// Packed length.
        len: usize,
        /// Eager (true) or rendezvous (false).
        eager: bool,
    },
    /// A receive request was posted.
    RecvPosted {
        /// Request id.
        req: u64,
    },
    /// An incoming first fragment matched a posted receive.
    Matched {
        /// The receive request.
        req: u64,
        /// Global message id, computed from the fragment's origin.
        gid: u64,
        /// Sender rank.
        src: u32,
        /// Matched tag.
        tag: i32,
        /// Total message length.
        len: usize,
    },
    /// A first fragment arrived with no matching receive posted.
    Unexpected {
        /// Sender rank.
        src: u32,
        /// Tag of the fragment.
        tag: i32,
    },
    /// A buffer region was registered (pinned) for a message's transfer.
    Registered {
        /// Global message id the registration serves.
        gid: u64,
        /// Bytes covered by the mapping.
        bytes: usize,
        /// Virtual nanoseconds the registration cost (0 on a cache hit);
        /// the pin occupied `[t - cost_ns, t]`.
        cost_ns: u64,
    },
    /// RDMA descriptors were issued for a message's remainder.
    RdmaIssued {
        /// Global message id the batch serves.
        gid: u64,
        /// Read (receiver pulls) or write (sender pushes).
        read: bool,
        /// Bytes covered by the batch.
        bytes: usize,
    },
    /// A local DMA completion was observed by the host.
    DmaDone {
        /// Global message id the descriptor served.
        gid: u64,
        /// Bytes credited.
        bytes: usize,
    },
    /// A pipelined-rendezvous chunk was handed to the NIC.
    PipeChunk {
        /// The request the pipeline serves.
        req: u64,
        /// Global message id the pipeline serves.
        gid: u64,
        /// Chunk offset within the bulk share.
        off: usize,
        /// Chunk length in bytes.
        len: usize,
        /// The final chunk (carries the FIN/FIN_ACK).
        last: bool,
    },
    /// A control message was sent (ACK/FIN/FIN_ACK), by header kind name.
    ControlSent {
        /// Global message id the control frame belongs to; 0 when the
        /// frame serves no single message.
        gid: u64,
        /// `"Ack"`, `"Fin"` or `"FinAck"`.
        kind: &'static str,
    },
    /// A request completed.
    Completed {
        /// The request id.
        req: u64,
        /// Global message id.
        gid: u64,
        /// Send (true) or receive (false).
        send: bool,
    },
    /// The reliability layer re-sent an unacknowledged control frame.
    CtlRetransmit {
        /// Control kind name (`"Ack"`, `"Fin"`, `"FinAck"`, `"Completion"`).
        kind: &'static str,
        /// Reliability sequence number of the frame.
        rel_seq: u32,
        /// Retransmission attempt number (1 = first re-send).
        attempt: u32,
    },
    /// A redelivered control frame was suppressed as a duplicate.
    CtlDuplicate {
        /// Control kind name.
        kind: &'static str,
        /// Reliability sequence number of the duplicate.
        rel_seq: u32,
    },
    /// Retransmission retries were exhausted; the peer is now marked failed.
    CtlGaveUp {
        /// Control kind name.
        kind: &'static str,
        /// Reliability sequence number of the abandoned frame.
        rel_seq: u32,
    },
    /// A request completed with an error status instead of a payload.
    ReqFailed {
        /// The request id.
        req: u64,
        /// Send (true) or receive (false).
        send: bool,
        /// MPI error-class name.
        err: &'static str,
    },
    /// An incoming frame was dropped because its header failed to decode.
    CorruptFrame {
        /// Raw frame length in bytes.
        len: usize,
    },
    /// An eager send parked in the flow-control queue: the peer's credit
    /// window was exhausted (or older sends were already waiting).
    FlowQueued {
        /// The send request id.
        req: u64,
        /// Global message id.
        gid: u64,
    },
    /// A previously parked send went on the wire after credits returned.
    FlowSent {
        /// The send request id.
        req: u64,
        /// Global message id.
        gid: u64,
    },
    /// A NIC-resident collective event program was compiled and armed on
    /// this rank (chained counted events + QDMAs; see docs/COLLECTIVES.md).
    NicProgArmed {
        /// Program id, unique per endpoint.
        prog: u64,
        /// `"barrier"`, `"bcast"` or `"allreduce"`.
        kind: &'static str,
        /// Tree fan-out the program was compiled with.
        radix: usize,
        /// Communicator size the program spans.
        members: usize,
    },
    /// A collective completed on a NIC-resident program: the single host
    /// wakeup of this rank for the whole operation.
    NicCollComplete {
        /// Program id from the matching [`TraceEvent::NicProgArmed`].
        prog: u64,
        /// Collective-operation id on this rank (pairs with the `coll`
        /// field of [`TraceEvent::SendPosted`]).
        coll: u64,
        /// `"barrier"`, `"bcast"` or `"allreduce"`.
        kind: &'static str,
    },
    /// A multi-event interval opened (rendezvous handshake, RDMA burst).
    SpanBegin {
        /// Correlates with the matching [`TraceEvent::SpanEnd`]. Unique per
        /// (cat, id) among concurrently open spans.
        id: u64,
        /// Span category, e.g. `"rndv"` or `"rdma"`.
        cat: &'static str,
        /// Human-readable span name.
        name: &'static str,
    },
    /// The matching interval closed.
    SpanEnd {
        /// Id from the corresponding [`TraceEvent::SpanBegin`].
        id: u64,
        /// Category from the begin event.
        cat: &'static str,
        /// Name from the begin event.
        name: &'static str,
    },
}

impl TraceEvent {
    /// Short display name for timeline views.
    pub fn name(&self) -> &'static str {
        match self {
            TraceEvent::SendPosted { .. } => "send_posted",
            TraceEvent::RecvPosted { .. } => "recv_posted",
            TraceEvent::Matched { .. } => "matched",
            TraceEvent::Unexpected { .. } => "unexpected",
            TraceEvent::Registered { .. } => "registered",
            TraceEvent::RdmaIssued { .. } => "rdma_issued",
            TraceEvent::DmaDone { .. } => "dma_done",
            TraceEvent::PipeChunk { .. } => "pipe_chunk",
            TraceEvent::ControlSent { .. } => "control_sent",
            TraceEvent::Completed { .. } => "completed",
            TraceEvent::CtlRetransmit { .. } => "ctl_retransmit",
            TraceEvent::CtlDuplicate { .. } => "ctl_duplicate",
            TraceEvent::CtlGaveUp { .. } => "ctl_gave_up",
            TraceEvent::ReqFailed { .. } => "req_failed",
            TraceEvent::CorruptFrame { .. } => "corrupt_frame",
            TraceEvent::FlowQueued { .. } => "flow_queued",
            TraceEvent::FlowSent { .. } => "flow_sent",
            TraceEvent::NicProgArmed { .. } => "nic_prog_armed",
            TraceEvent::NicCollComplete { .. } => "nic_coll_complete",
            TraceEvent::SpanBegin { name, .. } | TraceEvent::SpanEnd { name, .. } => name,
        }
    }

    /// Event payload as a JSON object for the exporter's `args` field.
    fn args_json(&self) -> String {
        match self {
            TraceEvent::SendPosted {
                req,
                gid,
                coll,
                dst,
                tag,
                len,
                eager,
            } => format!(
                "{{\"req\":{req},\"gid\":{gid},\"coll\":{coll},\"dst\":{dst},\
                 \"tag\":{tag},\"len\":{len},\"eager\":{eager}}}"
            ),
            TraceEvent::RecvPosted { req } => format!("{{\"req\":{req}}}"),
            TraceEvent::Matched {
                req,
                gid,
                src,
                tag,
                len,
            } => {
                format!("{{\"req\":{req},\"gid\":{gid},\"src\":{src},\"tag\":{tag},\"len\":{len}}}")
            }
            TraceEvent::Unexpected { src, tag } => format!("{{\"src\":{src},\"tag\":{tag}}}"),
            TraceEvent::Registered {
                gid,
                bytes,
                cost_ns,
            } => {
                format!("{{\"gid\":{gid},\"bytes\":{bytes},\"cost_ns\":{cost_ns}}}")
            }
            TraceEvent::RdmaIssued { gid, read, bytes } => {
                format!("{{\"gid\":{gid},\"read\":{read},\"bytes\":{bytes}}}")
            }
            TraceEvent::DmaDone { gid, bytes } => format!("{{\"gid\":{gid},\"bytes\":{bytes}}}"),
            TraceEvent::PipeChunk {
                req,
                gid,
                off,
                len,
                last,
            } => {
                format!(
                    "{{\"req\":{req},\"gid\":{gid},\"off\":{off},\"len\":{len},\"last\":{last}}}"
                )
            }
            TraceEvent::ControlSent { gid, kind } => {
                format!("{{\"gid\":{gid},\"kind\":\"{}\"}}", escape_json(kind))
            }
            TraceEvent::Completed { req, gid, send } => {
                format!("{{\"req\":{req},\"gid\":{gid},\"send\":{send}}}")
            }
            TraceEvent::CtlRetransmit {
                kind,
                rel_seq,
                attempt,
            } => format!(
                "{{\"kind\":\"{}\",\"rel_seq\":{rel_seq},\"attempt\":{attempt}}}",
                escape_json(kind)
            ),
            TraceEvent::CtlDuplicate { kind, rel_seq } => {
                format!(
                    "{{\"kind\":\"{}\",\"rel_seq\":{rel_seq}}}",
                    escape_json(kind)
                )
            }
            TraceEvent::CtlGaveUp { kind, rel_seq } => {
                format!(
                    "{{\"kind\":\"{}\",\"rel_seq\":{rel_seq}}}",
                    escape_json(kind)
                )
            }
            TraceEvent::ReqFailed { req, send, err } => {
                format!(
                    "{{\"req\":{req},\"send\":{send},\"err\":\"{}\"}}",
                    escape_json(err)
                )
            }
            TraceEvent::CorruptFrame { len } => format!("{{\"len\":{len}}}"),
            TraceEvent::FlowQueued { req, gid } | TraceEvent::FlowSent { req, gid } => {
                format!("{{\"req\":{req},\"gid\":{gid}}}")
            }
            TraceEvent::NicProgArmed {
                prog,
                kind,
                radix,
                members,
            } => format!(
                "{{\"prog\":{prog},\"kind\":\"{}\",\"radix\":{radix},\"members\":{members}}}",
                escape_json(kind)
            ),
            TraceEvent::NicCollComplete { prog, coll, kind } => {
                format!(
                    "{{\"prog\":{prog},\"coll\":{coll},\"kind\":\"{}\"}}",
                    escape_json(kind)
                )
            }
            TraceEvent::SpanBegin { id, .. } | TraceEvent::SpanEnd { id, .. } => {
                format!("{{\"span\":{id}}}")
            }
        }
    }
}

/// A per-endpoint trace buffer: a bounded ring. When full, the oldest event
/// is evicted and counted in [`TraceLog::dropped`], so a long run with a
/// small capacity keeps the *tail* of the timeline.
#[derive(Clone)]
pub struct TraceLog {
    events: VecDeque<(Time, TraceEvent)>,
    capacity: usize,
    dropped: u64,
}

impl Default for TraceLog {
    fn default() -> Self {
        TraceLog::with_capacity(DEFAULT_TRACE_CAPACITY)
    }
}

impl TraceLog {
    /// An empty log holding at most `capacity` events (min 1).
    pub fn with_capacity(capacity: usize) -> TraceLog {
        TraceLog {
            events: VecDeque::new(),
            capacity: capacity.max(1),
            dropped: 0,
        }
    }

    /// Record one event at `now`, evicting the oldest when full.
    pub fn record(&mut self, now: Time, ev: TraceEvent) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back((now, ev));
    }

    /// Retained events in record order.
    pub fn events(&self) -> impl Iterator<Item = &(Time, TraceEvent)> {
        self.events.iter()
    }

    /// Number of events currently retained.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Maximum events retained before eviction starts.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Render the trace as aligned text lines.
    pub fn dump(&self) -> Vec<String> {
        self.events
            .iter()
            .map(|(t, e)| format!("{:>12} {:?}", format!("{t}"), e))
            .collect()
    }

    /// Count events matching a predicate.
    pub fn count(&self, f: impl Fn(&TraceEvent) -> bool) -> usize {
        self.events.iter().filter(|(_, e)| f(e)).count()
    }
}

/// Escape a string for inclusion inside a JSON string literal: quotes,
/// backslashes, and control characters (the trace exporter must emit valid
/// JSON whatever ends up in an event name).
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Namespace an async span id by the rank that recorded it: ranks allocate
/// span ids independently (request ids, DMA tokens), so a merged multi-rank
/// export would otherwise pair a begin on rank 0 with an end on rank 1 that
/// happens to share the `(cat, id)`. 16 bits of rank above 48 bits of local
/// id — the same packing the reliability layer uses for `rel` span ids.
fn rank_span_id(rank: u32, id: u64) -> u64 {
    ((rank as u64) << 48) | (id & 0xFFFF_FFFF_FFFF)
}

/// Render per-rank trace logs as one Chrome trace-event JSON document.
///
/// Point events become instants (`ph:"i"`); spans become async begin/end
/// pairs (`ph:"b"`/`"e"`) correlated by category + id (namespaced per rank
/// by [`rank_span_id`]), which Perfetto and `chrome://tracing` draw as bars
/// on the rank's timeline. Gid-carrying lifecycle events additionally emit
/// *flow* events (`ph:"s"`/`"t"`/`"f"`, cat `msgflow`, id = gid), so a
/// merged multi-rank trace draws an arrow from the sender's post through
/// the receiver's match to the receiver's completion. Timestamps are
/// virtual microseconds; `pid` and `tid` are the rank.
pub fn chrome_trace_json(logs: &[(u32, &TraceLog)]) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
    let mut first = true;
    let push = |s: String, first: &mut bool, out: &mut String| {
        if !*first {
            out.push(',');
        }
        *first = false;
        out.push_str(&s);
    };
    for (rank, log) in logs {
        for (t, ev) in log.events() {
            let ts = t.as_ns() as f64 / 1000.0;
            match ev {
                TraceEvent::SpanBegin { id, cat, name } => push(
                    format!(
                        "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"b\",\"id\":{},\
                         \"ts\":{ts},\"pid\":{rank},\"tid\":{rank}}}",
                        escape_json(name),
                        escape_json(cat),
                        rank_span_id(*rank, *id)
                    ),
                    &mut first,
                    &mut out,
                ),
                TraceEvent::SpanEnd { id, cat, name } => push(
                    format!(
                        "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"e\",\"id\":{},\
                         \"ts\":{ts},\"pid\":{rank},\"tid\":{rank}}}",
                        escape_json(name),
                        escape_json(cat),
                        rank_span_id(*rank, *id)
                    ),
                    &mut first,
                    &mut out,
                ),
                _ => {
                    push(
                        format!(
                            "{{\"name\":\"{}\",\"cat\":\"proto\",\"ph\":\"i\",\"s\":\"t\",\
                             \"ts\":{ts},\"pid\":{rank},\"tid\":{rank},\"args\":{}}}",
                            escape_json(ev.name()),
                            ev.args_json()
                        ),
                        &mut first,
                        &mut out,
                    );
                    // Cross-rank causality: the sender's post starts a flow
                    // on the message's gid, the receiver's match steps it,
                    // and the receiver's completion finishes it.
                    let flow = match ev {
                        TraceEvent::SendPosted { gid, .. } if *gid != 0 => Some(("s", "", *gid)),
                        TraceEvent::Matched { gid, .. } if *gid != 0 => Some(("t", "", *gid)),
                        TraceEvent::Completed {
                            gid, send: false, ..
                        } if *gid != 0 => Some(("f", ",\"bp\":\"e\"", *gid)),
                        _ => None,
                    };
                    if let Some((ph, extra, gid)) = flow {
                        push(
                            format!(
                                "{{\"name\":\"msg\",\"cat\":\"msgflow\",\"ph\":\"{ph}\"{extra},\
                                 \"id\":{gid},\"ts\":{ts},\"pid\":{rank},\"tid\":{rank}}}"
                            ),
                            &mut first,
                            &mut out,
                        );
                    }
                }
            }
        }
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_dump() {
        let mut log = TraceLog::default();
        assert!(log.is_empty());
        log.record(
            Time::from_ns(1500),
            TraceEvent::SendPosted {
                req: 1,
                gid: 0x0100_0000_0001,
                coll: 0,
                dst: 1,
                tag: 0,
                len: 64,
                eager: true,
            },
        );
        log.record(
            Time::from_ns(2500),
            TraceEvent::Completed {
                req: 1,
                gid: 0x0100_0000_0001,
                send: true,
            },
        );
        assert_eq!(log.len(), 2);
        let lines = log.dump();
        assert!(lines[0].contains("SendPosted"));
        assert!(lines[0].contains("1.500us"));
        assert_eq!(log.count(|e| matches!(e, TraceEvent::Completed { .. })), 1);
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let mut log = TraceLog::with_capacity(3);
        for i in 0..5u64 {
            log.record(Time::from_ns(i * 100), TraceEvent::RecvPosted { req: i });
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.dropped(), 2);
        let reqs: Vec<u64> = log
            .events()
            .map(|(_, e)| match e {
                TraceEvent::RecvPosted { req } => *req,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(reqs, vec![2, 3, 4]);
    }

    #[test]
    fn chrome_export_pairs_spans() {
        let mut log = TraceLog::default();
        log.record(
            Time::from_ns(1000),
            TraceEvent::SpanBegin {
                id: 7,
                cat: "rndv",
                name: "rndv_handshake",
            },
        );
        log.record(
            Time::from_ns(2000),
            TraceEvent::DmaDone {
                gid: 0,
                bytes: 4096,
            },
        );
        log.record(
            Time::from_ns(3000),
            TraceEvent::SpanEnd {
                id: 7,
                cat: "rndv",
                name: "rndv_handshake",
            },
        );
        let json = chrome_trace_json(&[(0, &log)]);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"ph\":\"b\",\"id\":7"));
        assert!(json.contains("\"ph\":\"e\",\"id\":7"));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"ts\":1"));
    }

    #[test]
    fn chrome_export_namespaces_span_ids_per_rank() {
        // Two ranks opening spans with the same local (cat, id) must not
        // pair up in a merged export.
        let mut a = TraceLog::default();
        a.record(
            Time::from_ns(100),
            TraceEvent::SpanBegin {
                id: 7,
                cat: "rdma",
                name: "rdma_burst",
            },
        );
        let mut b = TraceLog::default();
        b.record(
            Time::from_ns(200),
            TraceEvent::SpanEnd {
                id: 7,
                cat: "rdma",
                name: "rdma_burst",
            },
        );
        let json = chrome_trace_json(&[(0, &a), (1, &b)]);
        let id0 = rank_span_id(0, 7);
        let id1 = rank_span_id(1, 7);
        assert_ne!(id0, id1);
        assert!(
            json.contains(&format!("\"ph\":\"b\",\"id\":{id0}")),
            "{json}"
        );
        assert!(
            json.contains(&format!("\"ph\":\"e\",\"id\":{id1}")),
            "{json}"
        );
        // The raw colliding id appears under neither rank's begin/end.
        assert_eq!(json.matches(&format!("\"id\":{id0}")).count(), 1);
    }

    #[test]
    fn chrome_export_emits_cross_rank_flow_events() {
        let gid = crate::hdr::msg_gid(0, 0, 1);
        let mut sender = TraceLog::default();
        sender.record(
            Time::from_ns(100),
            TraceEvent::SendPosted {
                req: 1,
                gid,
                coll: 0,
                dst: 1,
                tag: 5,
                len: 1 << 20,
                eager: false,
            },
        );
        let mut receiver = TraceLog::default();
        receiver.record(
            Time::from_ns(900),
            TraceEvent::Matched {
                req: 2,
                gid,
                src: 0,
                tag: 5,
                len: 1 << 20,
            },
        );
        receiver.record(
            Time::from_ns(5000),
            TraceEvent::Completed {
                req: 2,
                gid,
                send: false,
            },
        );
        let json = chrome_trace_json(&[(0, &sender), (1, &receiver)]);
        assert!(
            json.contains(&format!(
                "\"cat\":\"msgflow\",\"ph\":\"s\",\"id\":{gid},\"ts\":0.1,\"pid\":0"
            )),
            "{json}"
        );
        assert!(
            json.contains(&format!(
                "\"cat\":\"msgflow\",\"ph\":\"t\",\"id\":{gid},\"ts\":0.9,\"pid\":1"
            )),
            "{json}"
        );
        assert!(
            json.contains(&format!(
                "\"cat\":\"msgflow\",\"ph\":\"f\",\"bp\":\"e\",\"id\":{gid},\"ts\":5,\"pid\":1"
            )),
            "{json}"
        );
    }

    #[test]
    fn escape_json_handles_quotes_backslashes_and_controls() {
        assert_eq!(escape_json("plain"), "plain");
        assert_eq!(escape_json("a\"b"), "a\\\"b");
        assert_eq!(escape_json("a\\b"), "a\\\\b");
        assert_eq!(escape_json("a\nb\tc"), "a\\nb\\tc");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
    }

    #[test]
    fn chrome_export_escapes_span_names() {
        let mut log = TraceLog::default();
        log.record(
            Time::from_ns(10),
            TraceEvent::SpanBegin {
                id: 1,
                cat: "odd\"cat",
                name: "bad\nname",
            },
        );
        let json = chrome_trace_json(&[(0, &log)]);
        assert!(json.contains("bad\\nname"));
        assert!(json.contains("odd\\\"cat"));
        assert!(!json.contains("bad\nname"));
    }
}
