//! Cross-rank critical-path analysis over merged trace logs.
//!
//! Every trace event carries the global message id ([`crate::hdr::msg_gid`])
//! of the logical operation it serves, and every rank runs on the same
//! simulated clock, so the union of all ranks' trace rings is a causally
//! consistent record: this module folds it, per message, into a named-stage
//! decomposition of end-to-end latency — where did the microseconds of a
//! 1 MiB rendezvous actually go?
//!
//! Stage model for a rendezvous message (boundaries are event times, clamped
//! monotone, so the stages sum to the measured total *exactly*):
//!
//! - `queued` — send posted until flow control released it (credit-parked
//!   sends only; absent when the send left immediately).
//! - `match_wait` — send posted until the receiver matched the RTS. Covers
//!   the wire flight of the first fragment and any time it sat unexpected.
//! - `handshake` — match until the first RDMA descriptor/chunk was issued.
//!   Covers the ACK hop (write scheme) and the leading registration.
//! - `wire` / `registration` / `host_gap` — the bulk window, partitioned by
//!   sweeping outstanding RDMA bytes: intervals with bytes in flight are
//!   `wire`; idle intervals inside a memory-registration window are
//!   `registration` (pin-down cost the pipeline failed to hide); the rest
//!   is `host_gap` (bookkeeping, scheduling, credit waits).
//! - `fin_wait` — last DMA completion until the last rank completed the
//!   request. Covers FIN/FIN_ACK flight and completion bookkeeping.
//!
//! Eager messages decompose into `match_wait` + `delivery`.
//!
//! As a cross-check, each message's `wire` intervals are intersected with
//! the receiver's ejection-link busy windows (from
//! `Fabric::node_busy_intervals`), yielding `queue_overlap_ns`: how much of
//! the presumed wire time the receiver's link was actually serializing —
//! low overlap on a congested run means the time was queueing, not moving
//! bytes.

use std::collections::HashMap;

use qsim::Time;

use crate::trace::{TraceEvent, TraceLog};

/// One gid's events, merged across ranks and ordered by time.
struct MsgEvents {
    /// `(t_ns, rank, event)` sorted by time.
    evs: Vec<(u64, u32, TraceEvent)>,
}

/// One message's critical-path decomposition.
#[derive(Clone, Debug)]
pub struct MsgPath {
    /// Global message id.
    pub gid: u64,
    /// Rank that posted the send.
    pub sender: u32,
    /// Rank that completed the receive.
    pub receiver: u32,
    /// Message length in bytes.
    pub len: usize,
    /// Eager (true) or rendezvous (false).
    pub eager: bool,
    /// Collective span id the send was posted under; 0 for point-to-point.
    pub coll: u64,
    /// End-to-end latency: send posted to last completion, ns.
    pub total_ns: u64,
    /// Named stages in path order; they sum to `total_ns` exactly.
    pub stages: Vec<(&'static str, u64)>,
    /// Of the `wire` stage, nanoseconds the receiver's ejection link was
    /// actually busy (0 when interval recording was off).
    pub queue_overlap_ns: u64,
}

impl MsgPath {
    /// Sum of the named stages (equals `total_ns` by construction).
    pub fn stage_sum_ns(&self) -> u64 {
        self.stages.iter().map(|(_, ns)| ns).sum()
    }

    /// Value of one named stage, 0 when absent.
    pub fn stage_ns(&self, name: &str) -> u64 {
        self.stages
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, ns)| *ns)
            .unwrap_or(0)
    }

    fn to_json(&self) -> String {
        let stages: Vec<String> = self
            .stages
            .iter()
            .map(|(n, ns)| format!("\"{n}\":{ns}"))
            .collect();
        format!(
            "{{\"gid\":{},\"sender\":{},\"receiver\":{},\"len\":{},\"eager\":{},\
             \"coll\":{},\"total_ns\":{},\"stages\":{{{}}},\"queue_overlap_ns\":{}}}",
            self.gid,
            self.sender,
            self.receiver,
            self.len,
            self.eager,
            self.coll,
            self.total_ns,
            stages.join(","),
            self.queue_overlap_ns
        )
    }
}

/// Aggregated stage totals for one log2 message-size bucket.
#[derive(Clone, Debug)]
pub struct BucketStats {
    /// Bucket lower bound, inclusive (bytes).
    pub lo: usize,
    /// Bucket upper bound, exclusive (bytes).
    pub hi: usize,
    /// Messages in the bucket.
    pub msgs: usize,
    /// Sum of end-to-end latencies, ns.
    pub total_ns: u64,
    /// Per-stage sums across the bucket's messages.
    pub stages: Vec<(&'static str, u64)>,
}

impl BucketStats {
    fn to_json(&self) -> String {
        let stages: Vec<String> = self
            .stages
            .iter()
            .map(|(n, ns)| format!("\"{n}\":{ns}"))
            .collect();
        format!(
            "{{\"lo\":{},\"hi\":{},\"msgs\":{},\"total_ns\":{},\"stages\":{{{}}}}}",
            self.lo,
            self.hi,
            self.msgs,
            self.total_ns,
            stages.join(",")
        )
    }
}

/// The full critical-path report over a merged trace.
#[derive(Clone, Debug, Default)]
pub struct CritPathReport {
    /// Per-message decompositions, ordered by send-post time.
    pub msgs: Vec<MsgPath>,
    /// Per-log2-size-bucket aggregation, ordered by bucket.
    pub buckets: Vec<BucketStats>,
}

impl CritPathReport {
    /// JSON rendering of the whole report.
    pub fn to_json(&self) -> String {
        let msgs: Vec<String> = self.msgs.iter().map(|m| m.to_json()).collect();
        let buckets: Vec<String> = self.buckets.iter().map(|b| b.to_json()).collect();
        format!(
            "{{\"msgs\":[{}],\"buckets\":[{}]}}",
            msgs.join(","),
            buckets.join(",")
        )
    }

    /// Human-readable per-bucket table with stage percentages.
    pub fn render(&self) -> String {
        let mut out = String::from("critical-path breakdown by message size\n");
        out.push_str(
            "  bytes            msgs  total_ns     qued%  match%  hshake% wire%  reg%   gap%   fin%\n",
        );
        for b in &self.buckets {
            let pct = |name: &str| {
                let ns: u64 = b
                    .stages
                    .iter()
                    .filter(|(n, _)| *n == name)
                    .map(|(_, v)| v)
                    .sum();
                if b.total_ns == 0 {
                    0.0
                } else {
                    ns as f64 * 100.0 / b.total_ns as f64
                }
            };
            out.push_str(&format!(
                "  [{:>7},{:>7}) {:<5} {:<12} {:<6.1} {:<7.1} {:<7.1} {:<6.1} {:<6.1} {:<6.1} {:.1}\n",
                b.lo,
                b.hi,
                b.msgs,
                b.total_ns,
                pct("queued"),
                pct("match_wait"),
                pct("handshake"),
                pct("wire") + pct("delivery"),
                pct("registration"),
                pct("host_gap"),
                pct("fin_wait"),
            ));
        }
        out
    }
}

/// Total overlap between `[lo, hi)` and a set of `(start, end)` windows.
fn overlap(lo: u64, hi: u64, windows: &[(u64, u64)]) -> u64 {
    windows
        .iter()
        .map(|&(s, e)| e.min(hi).saturating_sub(s.max(lo)))
        .sum()
}

/// Decompose one message's merged events into named stages.
fn decompose(gid: u64, m: &MsgEvents, ej_busy: &HashMap<u32, Vec<(u64, u64)>>) -> Option<MsgPath> {
    let mut t0 = None;
    let (mut sender, mut receiver) = (0u32, 0u32);
    let (mut len, mut eager, mut coll) = (0usize, false, 0u64);
    let mut tm = None; // first match
    let mut tsent = None; // credit-parked send released by flow control
    let mut tend = 0u64; // last completion
    let mut saw_complete = false;
    let mut reg: Vec<(u64, u64)> = Vec::new(); // registration windows
    let mut xfer: Vec<(u64, i64)> = Vec::new(); // (t, outstanding-bytes delta)
    for (t, rank, ev) in &m.evs {
        match ev {
            TraceEvent::SendPosted {
                coll: c,
                len: l,
                eager: e,
                ..
            } if t0.is_none() => {
                t0 = Some(*t);
                sender = *rank;
                len = *l;
                eager = *e;
                coll = *c;
            }
            TraceEvent::Matched { .. } if tm.is_none() => {
                tm = Some(*t);
                receiver = *rank;
            }
            TraceEvent::FlowSent { .. } if tsent.is_none() => {
                tsent = Some(*t);
            }
            TraceEvent::Registered { cost_ns, .. } => {
                reg.push((t.saturating_sub(*cost_ns), *t));
            }
            TraceEvent::RdmaIssued { bytes, .. } => xfer.push((*t, *bytes as i64)),
            TraceEvent::PipeChunk { len, .. } => xfer.push((*t, *len as i64)),
            TraceEvent::DmaDone { bytes, .. } => xfer.push((*t, -(*bytes as i64))),
            TraceEvent::Completed { .. } => {
                saw_complete = true;
                tend = tend.max(*t);
            }
            _ => {}
        }
    }
    let t0 = t0?;
    if !saw_complete || tend < t0 {
        return None; // still in flight (or the ring evicted its start)
    }
    let total_ns = tend - t0;
    let tm = tm.unwrap_or(tend).clamp(t0, tend);

    let mut stages: Vec<(&'static str, u64)> = Vec::new();
    // The `queued` stage appears only for credit-parked sends, so the
    // flow-off decomposition is byte-identical to the historical one.
    match tsent {
        Some(tq) => {
            let tq = tq.clamp(t0, tm);
            stages.push(("queued", tq - t0));
            stages.push(("match_wait", tm - tq));
        }
        None => stages.push(("match_wait", tm - t0)),
    }
    let mut queue_overlap_ns = 0;
    if eager || xfer.is_empty() {
        stages.push(("delivery", tend - tm));
    } else {
        xfer.sort_unstable_by_key(|&(t, _)| t);
        let txs = xfer
            .iter()
            .find(|&&(_, d)| d > 0)
            .map(|&(t, _)| t)
            .unwrap_or(tm)
            .clamp(tm, tend);
        let tld = xfer
            .iter()
            .rev()
            .find(|&&(_, d)| d < 0)
            .map(|&(t, _)| t)
            .unwrap_or(txs)
            .clamp(txs, tend);
        stages.push(("handshake", txs - tm));
        // Sweep the bulk window [txs, tld], partitioning by outstanding
        // bytes; the receiver's ejection busy windows price the wire share.
        let ej = ej_busy.get(&receiver).map(|v| v.as_slice()).unwrap_or(&[]);
        let (mut wire, mut regist, mut gap) = (0u64, 0u64, 0u64);
        let mut outstanding = 0i64;
        let mut prev = txs;
        for &(t, delta) in xfer.iter().chain(std::iter::once(&(tld, 0))) {
            let seg = (prev.max(txs), t.min(tld));
            if seg.1 > seg.0 {
                let span = seg.1 - seg.0;
                if outstanding > 0 {
                    wire += span;
                    queue_overlap_ns += overlap(seg.0, seg.1, ej);
                } else {
                    let r = overlap(seg.0, seg.1, &reg).min(span);
                    regist += r;
                    gap += span - r;
                }
            }
            prev = prev.max(t);
            outstanding += delta;
        }
        stages.push(("wire", wire));
        stages.push(("registration", regist));
        stages.push(("host_gap", gap));
        stages.push(("fin_wait", tend - tld));
    }
    Some(MsgPath {
        gid,
        sender,
        receiver,
        len,
        eager,
        coll,
        total_ns,
        stages,
        queue_overlap_ns,
    })
}

fn bucket_of(len: usize) -> (usize, usize) {
    if len == 0 {
        (0, 1)
    } else {
        let k = usize::BITS - 1 - len.leading_zeros();
        (1 << k, 1usize.checked_shl(k + 1).unwrap_or(usize::MAX))
    }
}

/// Analyze merged per-rank trace logs into a [`CritPathReport`].
///
/// `ej_busy` maps each rank to its node's recorded ejection-link busy
/// windows (see `Fabric::record_intervals`); pass an empty slice to skip
/// the queueing cross-check.
pub fn analyze(logs: &[(u32, &TraceLog)], ej_busy: &[(u32, Vec<(u64, u64)>)]) -> CritPathReport {
    let ej: HashMap<u32, Vec<(u64, u64)>> = ej_busy.iter().cloned().collect();
    // Bin every gid-carrying event; registration windows attach by gid too.
    let mut by_gid: HashMap<u64, MsgEvents> = HashMap::new();
    for (rank, log) in logs {
        for (t, ev) in log.events() {
            let gid = match ev {
                TraceEvent::SendPosted { gid, .. }
                | TraceEvent::Matched { gid, .. }
                | TraceEvent::Registered { gid, .. }
                | TraceEvent::RdmaIssued { gid, .. }
                | TraceEvent::PipeChunk { gid, .. }
                | TraceEvent::DmaDone { gid, .. }
                | TraceEvent::ControlSent { gid, .. }
                | TraceEvent::FlowQueued { gid, .. }
                | TraceEvent::FlowSent { gid, .. }
                | TraceEvent::Completed { gid, .. } => *gid,
                _ => 0,
            };
            if gid == 0 {
                continue;
            }
            by_gid
                .entry(gid)
                .or_insert_with(|| MsgEvents { evs: Vec::new() })
                .evs
                .push((t.as_ns(), *rank, ev.clone()));
        }
    }
    let mut msgs: Vec<MsgPath> = Vec::new();
    for (gid, m) in by_gid.iter_mut() {
        m.evs.sort_by_key(|(t, _, _)| *t);
        if let Some(p) = decompose(*gid, m, &ej) {
            msgs.push(p);
        }
    }
    msgs.sort_by_key(|p| (p.total_ns, p.gid));
    msgs.sort_by_key(|p| p.gid); // stable order: by gid (post order per rank)

    let mut buckets: Vec<BucketStats> = Vec::new();
    for p in &msgs {
        let (lo, hi) = bucket_of(p.len);
        let b = match buckets.iter_mut().find(|b| b.lo == lo) {
            Some(b) => b,
            None => {
                buckets.push(BucketStats {
                    lo,
                    hi,
                    msgs: 0,
                    total_ns: 0,
                    stages: Vec::new(),
                });
                buckets.last_mut().unwrap()
            }
        };
        b.msgs += 1;
        b.total_ns += p.total_ns;
        for (name, ns) in &p.stages {
            match b.stages.iter_mut().find(|(n, _)| n == name) {
                Some((_, acc)) => *acc += ns,
                None => b.stages.push((name, *ns)),
            }
        }
    }
    buckets.sort_by_key(|b| b.lo);
    CritPathReport { msgs, buckets }
}

/// Convenience for tests and tools: analyze one in-memory event stream
/// shaped as `(rank, time, event)` rows.
pub fn analyze_events(events: &[(u32, Time, TraceEvent)]) -> CritPathReport {
    let mut per_rank: HashMap<u32, TraceLog> = HashMap::new();
    for (rank, t, ev) in events {
        per_rank
            .entry(*rank)
            .or_insert_with(|| TraceLog::with_capacity(events.len().max(1)))
            .record(*t, ev.clone());
    }
    let logs: Vec<(u32, &TraceLog)> = per_rank.iter().map(|(r, l)| (*r, l)).collect();
    analyze(&logs, &[])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(rank: u32, t_ns: u64, ev: TraceEvent) -> (u32, Time, TraceEvent) {
        (rank, Time::from_ns(t_ns), ev)
    }

    fn rndv_stream() -> Vec<(u32, Time, TraceEvent)> {
        let gid = crate::hdr::msg_gid(0, 0, 1);
        vec![
            ev(
                0,
                100,
                TraceEvent::SendPosted {
                    req: 1,
                    gid,
                    coll: 0,
                    dst: 1,
                    tag: 9,
                    len: 1 << 20,
                    eager: false,
                },
            ),
            ev(
                1,
                600,
                TraceEvent::Matched {
                    req: 11,
                    gid,
                    src: 0,
                    tag: 9,
                    len: 1 << 20,
                },
            ),
            // 200ns of registration before the first chunk goes out.
            ev(
                1,
                900,
                TraceEvent::Registered {
                    gid,
                    bytes: 1 << 19,
                    cost_ns: 200,
                },
            ),
            ev(
                1,
                1000,
                TraceEvent::PipeChunk {
                    req: 11,
                    gid,
                    off: 0,
                    len: 1 << 19,
                    last: false,
                },
            ),
            ev(
                1,
                2000,
                TraceEvent::DmaDone {
                    gid,
                    bytes: 1 << 19,
                },
            ),
            // A visible idle gap: 2000..2300 registering the second half.
            ev(
                1,
                2300,
                TraceEvent::Registered {
                    gid,
                    bytes: 1 << 19,
                    cost_ns: 300,
                },
            ),
            ev(
                1,
                2300,
                TraceEvent::PipeChunk {
                    req: 11,
                    gid,
                    off: 1 << 19,
                    len: 1 << 19,
                    last: true,
                },
            ),
            ev(
                1,
                3300,
                TraceEvent::DmaDone {
                    gid,
                    bytes: 1 << 19,
                },
            ),
            ev(
                1,
                3400,
                TraceEvent::Completed {
                    req: 11,
                    gid,
                    send: false,
                },
            ),
            ev(
                0,
                3600,
                TraceEvent::Completed {
                    req: 1,
                    gid,
                    send: true,
                },
            ),
        ]
    }

    #[test]
    fn rendezvous_stages_partition_the_total_exactly() {
        let rep = analyze_events(&rndv_stream());
        assert_eq!(rep.msgs.len(), 1);
        let m = &rep.msgs[0];
        assert_eq!((m.sender, m.receiver), (0, 1));
        assert_eq!(m.len, 1 << 20);
        assert!(!m.eager);
        assert_eq!(m.total_ns, 3500);
        assert_eq!(m.stage_sum_ns(), m.total_ns);
        assert_eq!(m.stage_ns("match_wait"), 500);
        assert_eq!(m.stage_ns("handshake"), 400); // 600 -> 1000
        assert_eq!(m.stage_ns("wire"), 2000); // 1000..2000 + 2300..3300
        assert_eq!(m.stage_ns("registration"), 300); // idle 2000..2300
        assert_eq!(m.stage_ns("host_gap"), 0);
        assert_eq!(m.stage_ns("fin_wait"), 300); // 3300 -> 3600
        let nonzero = m.stages.iter().filter(|(_, ns)| *ns > 0).count();
        assert!(nonzero >= 4, "stages: {:?}", m.stages);
    }

    #[test]
    fn eager_messages_split_match_and_delivery() {
        let gid = crate::hdr::msg_gid(0, 2, 5);
        let rep = analyze_events(&[
            ev(
                2,
                50,
                TraceEvent::SendPosted {
                    req: 5,
                    gid,
                    coll: 7,
                    dst: 3,
                    tag: 1,
                    len: 256,
                    eager: true,
                },
            ),
            ev(
                3,
                450,
                TraceEvent::Matched {
                    req: 8,
                    gid,
                    src: 2,
                    tag: 1,
                    len: 256,
                },
            ),
            ev(
                3,
                500,
                TraceEvent::Completed {
                    req: 8,
                    gid,
                    send: false,
                },
            ),
        ]);
        let m = &rep.msgs[0];
        assert!(m.eager);
        assert_eq!(m.coll, 7);
        assert_eq!(m.total_ns, 450);
        assert_eq!(m.stage_ns("match_wait"), 400);
        assert_eq!(m.stage_ns("delivery"), 50);
        assert_eq!(m.stage_sum_ns(), m.total_ns);
    }

    #[test]
    fn credit_parked_sends_grow_a_queued_stage() {
        let gid = crate::hdr::msg_gid(0, 4, 3);
        let rep = analyze_events(&[
            ev(
                4,
                100,
                TraceEvent::SendPosted {
                    req: 3,
                    gid,
                    coll: 0,
                    dst: 5,
                    tag: 2,
                    len: 512,
                    eager: true,
                },
            ),
            // Parked on zero credits at post time, released 700ns later.
            ev(4, 100, TraceEvent::FlowQueued { req: 3, gid }),
            ev(4, 800, TraceEvent::FlowSent { req: 3, gid }),
            ev(
                5,
                1200,
                TraceEvent::Matched {
                    req: 9,
                    gid,
                    src: 4,
                    tag: 2,
                    len: 512,
                },
            ),
            ev(
                5,
                1300,
                TraceEvent::Completed {
                    req: 9,
                    gid,
                    send: false,
                },
            ),
        ]);
        assert_eq!(rep.msgs.len(), 1);
        let m = &rep.msgs[0];
        assert_eq!(m.stage_ns("queued"), 700);
        assert_eq!(m.stage_ns("match_wait"), 400);
        assert_eq!(m.stage_ns("delivery"), 100);
        assert_eq!(m.stage_sum_ns(), m.total_ns);
    }

    #[test]
    fn incomplete_messages_are_skipped() {
        let gid = crate::hdr::msg_gid(0, 0, 2);
        let rep = analyze_events(&[ev(
            0,
            10,
            TraceEvent::SendPosted {
                req: 2,
                gid,
                coll: 0,
                dst: 1,
                tag: 0,
                len: 64,
                eager: true,
            },
        )]);
        assert!(rep.msgs.is_empty());
    }

    #[test]
    fn buckets_aggregate_by_log2_size() {
        assert_eq!(bucket_of(0), (0, 1));
        assert_eq!(bucket_of(1), (1, 2));
        assert_eq!(bucket_of(1500), (1024, 2048));
        assert_eq!(bucket_of(1 << 20), (1 << 20, 1 << 21));
        let rep = analyze_events(&rndv_stream());
        assert_eq!(rep.buckets.len(), 1);
        let b = &rep.buckets[0];
        assert_eq!((b.lo, b.hi, b.msgs), (1 << 20, 1 << 21, 1));
        assert_eq!(b.total_ns, 3500);
        let json = rep.to_json();
        assert!(json.contains("\"stages\":{\"match_wait\":500"));
        assert!(json.contains("\"buckets\":[{\"lo\":1048576"));
        let text = rep.render();
        assert!(text.contains("critical-path breakdown"));
        assert!(text.contains("1048576"));
    }

    #[test]
    fn queue_overlap_prices_wire_time_against_ej_busy_windows() {
        let events = rndv_stream();
        let mut per_rank: HashMap<u32, TraceLog> = HashMap::new();
        for (rank, t, ev) in &events {
            per_rank
                .entry(*rank)
                .or_insert_with(|| TraceLog::with_capacity(64))
                .record(*t, ev.clone());
        }
        let logs: Vec<(u32, &TraceLog)> = per_rank.iter().map(|(r, l)| (*r, l)).collect();
        // Receiver's ejection link busy for the first wire interval only.
        let busy = vec![(1u32, vec![(1000u64, 2000u64)])];
        let rep = analyze(&logs, &busy);
        assert_eq!(rep.msgs[0].queue_overlap_ns, 1000);
        // Without intervals the cross-check reports zero.
        let rep2 = analyze(&logs, &[]);
        assert_eq!(rep2.msgs[0].queue_overlap_ns, 0);
    }
}
