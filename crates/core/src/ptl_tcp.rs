//! The TCP/IP reference transport.
//!
//! Open MPI's first PTL ran over TCP (paper §1); it pays operating-system
//! overhead (syscalls) and kernel data copies on both sides, which is the
//! motivation for the Elan4 PTL. We model a switched gigabit Ethernet as a
//! full crossbar with per-node link occupancy, plus per-send syscall and
//! copy costs. Frames arrive whole in a per-rank inbox (the stream framing
//! of a real socket is below the fidelity this reproduction needs).

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use elan4::NicConfig;
use ompi_rte::ProcName;
use qsim::Mutex;
use qsim::{Dur, Proc, Signal, Time};

/// Ethernet + kernel-stack timing model.
#[derive(Clone, Debug)]
pub struct TcpConfig {
    /// One-way wire+switch latency.
    pub wire_latency: Dur,
    /// Practical link bandwidth, bytes per microsecond (1 GbE ≈ 110 MB/s).
    pub bytes_per_us: u64,
    /// Syscall + TCP/IP stack processing per send or receive.
    pub syscall: Dur,
    /// Largest frame handed to the kernel at once.
    pub max_frame: usize,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            wire_latency: Dur::from_us(22),
            bytes_per_us: 110,
            syscall: Dur::from_us_f64(2.5),
            max_frame: 64 << 10,
        }
    }
}

/// Incoming frame queue of one rank.
pub struct TcpInbox {
    queue: Mutex<VecDeque<Vec<u8>>>,
    doorbell: Mutex<Option<Signal>>,
    depth_hwm: Mutex<usize>,
}

impl TcpInbox {
    /// An empty inbox with no doorbell.
    pub fn new() -> Arc<TcpInbox> {
        Arc::new(TcpInbox {
            queue: Mutex::new(VecDeque::new()),
            doorbell: Mutex::new(None),
            depth_hwm: Mutex::new(0),
        })
    }

    /// Notify `sig` on every delivered frame.
    pub fn set_doorbell(&self, sig: Signal) {
        *self.doorbell.lock() = Some(sig);
    }

    /// Take the next frame, if any.
    pub fn pop(&self) -> Option<Vec<u8>> {
        self.queue.lock().pop_front()
    }

    /// True when no frame is waiting.
    pub fn is_empty(&self) -> bool {
        self.queue.lock().is_empty()
    }

    /// Deepest the queue has ever been (socket-buffer occupancy telemetry).
    pub fn depth_hwm(&self) -> usize {
        *self.depth_hwm.lock()
    }

    fn deliver(&self, frame: Vec<u8>) {
        let depth = {
            let mut q = self.queue.lock();
            q.push_back(frame);
            q.len()
        };
        let mut hwm = self.depth_hwm.lock();
        *hwm = (*hwm).max(depth);
    }
}

struct TcpNetInner {
    inboxes: HashMap<ProcName, (usize, Arc<TcpInbox>)>,
    tx_free: Vec<Time>,
    rx_free: Vec<Time>,
    stats: TcpNetStats,
    drop_rule: Option<DropRule>,
    dup_rule: Option<DupRule>,
}

/// Armed fault injection: vanish frames of one kind off the wire.
struct DropRule {
    kind: u8,
    remaining: u64,
}

/// Armed fault injection: deliver frames of one kind twice.
struct DupRule {
    kind: u8,
    remaining: u64,
}

/// Traffic totals of the shared Ethernet.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct TcpNetStats {
    /// Frames accepted for delivery.
    pub frames_sent: u64,
    /// Bytes across those frames.
    pub bytes_sent: u64,
    /// Frames dropped because the peer was unbound (RST behaviour).
    pub frames_dropped: u64,
    /// Frames silently discarded by armed fault injection
    /// ([`TcpNet::inject_drop`]).
    pub frames_injected: u64,
    /// Frames delivered twice by armed fault injection
    /// ([`TcpNet::inject_dup`]).
    pub frames_duplicated: u64,
}

/// The shared Ethernet.
pub struct TcpNet {
    cfg: TcpConfig,
    inner: Mutex<TcpNetInner>,
}

impl TcpNet {
    /// A fresh Ethernet for `nodes` hosts.
    pub fn new(cfg: TcpConfig, nodes: usize) -> Arc<TcpNet> {
        Arc::new(TcpNet {
            cfg,
            inner: Mutex::new(TcpNetInner {
                inboxes: HashMap::new(),
                tx_free: vec![Time::ZERO; nodes],
                rx_free: vec![Time::ZERO; nodes],
                stats: TcpNetStats::default(),
                drop_rule: None,
                dup_rule: None,
            }),
        })
    }

    /// The timing model in use.
    pub fn cfg(&self) -> &TcpConfig {
        &self.cfg
    }

    /// Traffic totals so far.
    pub fn stats(&self) -> TcpNetStats {
        self.inner.lock().stats
    }

    /// Bind a rank's inbox (the `listen`/`accept` moment).
    pub fn bind(&self, who: ProcName, node: usize, inbox: Arc<TcpInbox>) {
        self.inner.lock().inboxes.insert(who, (node, inbox));
    }

    /// Close a rank's socket (frames in flight are dropped, like RST).
    pub fn unbind(&self, who: ProcName) {
        self.inner.lock().inboxes.remove(&who);
    }

    /// Arm deterministic fault injection: the next `count` frames whose
    /// header kind equals `kind` (e.g. [`crate::hdr::HdrType::FinAck`])
    /// vanish off the wire after the sender has paid its kernel costs —
    /// exactly the loss a stall-diagnostics test needs, with no randomness.
    pub fn inject_drop(&self, kind: crate::hdr::HdrType, count: u64) {
        self.inner.lock().drop_rule = Some(DropRule {
            kind: kind as u8,
            remaining: count,
        });
    }

    /// Arm deterministic duplication: the next `count` frames whose header
    /// kind equals `kind` are delivered twice, one wire latency apart — the
    /// redelivery a duplicate-suppression test needs, with no randomness.
    pub fn inject_dup(&self, kind: crate::hdr::HdrType, count: u64) {
        self.inner.lock().dup_rule = Some(DupRule {
            kind: kind as u8,
            remaining: count,
        });
    }

    /// Send one frame from the calling process's node to `dst`. Charges the
    /// caller the syscall + kernel copy; wire time is asynchronous. The
    /// matching receive-side copy cost is charged when the frame is popped
    /// (see `Endpoint` dispatch).
    pub fn send(
        self: &Arc<Self>,
        proc: &Proc,
        nic_cfg: &NicConfig,
        src_node: usize,
        dst: ProcName,
        frame: Vec<u8>,
    ) {
        assert!(frame.len() <= self.cfg.max_frame, "frame exceeds max_frame");
        // Kernel send path: syscall + copy into socket buffer.
        proc.advance(self.cfg.syscall + nic_cfg.memcpy(frame.len()));

        {
            // Fault injection happens after the sender paid its costs: the
            // kernel accepted the frame, the wire lost it.
            let mut inner = self.inner.lock();
            if let Some(rule) = &mut inner.drop_rule {
                if rule.remaining > 0 && frame.first() == Some(&rule.kind) {
                    rule.remaining -= 1;
                    inner.stats.frames_injected += 1;
                    return;
                }
            }
        }

        let (dst_node, inbox) = {
            let mut inner = self.inner.lock();
            match inner.inboxes.get(&dst) {
                Some((n, i)) => (*n, i.clone()),
                // Peer closed: TCP would RST; the frame vanishes.
                None => {
                    inner.stats.frames_dropped += 1;
                    return;
                }
            }
        };
        let now = proc.now();
        let ser = Dur::for_bytes(frame.len(), self.cfg.bytes_per_us);
        let (delivered, copies) = {
            let mut inner = self.inner.lock();
            inner.stats.frames_sent += 1;
            inner.stats.bytes_sent += frame.len() as u64;
            let mut copies = 1u64;
            if let Some(rule) = &mut inner.dup_rule {
                if rule.remaining > 0 && frame.first() == Some(&rule.kind) {
                    rule.remaining -= 1;
                    inner.stats.frames_duplicated += 1;
                    copies = 2;
                }
            }
            let start = now.max(inner.tx_free[src_node]);
            inner.tx_free[src_node] = start + ser;
            let arr = (start + self.cfg.wire_latency).max(inner.rx_free[dst_node]);
            let done = arr + ser;
            inner.rx_free[dst_node] = done;
            (done, copies)
        };
        for i in 0..copies {
            let inbox = inbox.clone();
            let frame = frame.clone();
            // A duplicated frame re-arrives one wire latency after the
            // original, as a retransmitted segment would.
            proc.sim()
                .call_at(delivered + self.cfg.wire_latency * i, move |s| {
                    inbox.deliver(frame);
                    if let Some(d) = inbox.doorbell.lock().clone() {
                        d.notify(s);
                    }
                });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsim::Simulation;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn tcp_latency_dominated_by_wire_and_syscalls() {
        let net = TcpNet::new(TcpConfig::default(), 2);
        let sim = Simulation::new();
        let a = ProcName {
            job: ompi_rte::JobId(0),
            rank: 0,
        };
        let b = ProcName {
            job: ompi_rte::JobId(0),
            rank: 1,
        };
        let inbox = TcpInbox::new();
        net.bind(a, 0, TcpInbox::new());
        net.bind(b, 1, inbox.clone());
        let t = Arc::new(AtomicU64::new(0));
        {
            let net = net.clone();
            let inbox = inbox.clone();
            let t = t.clone();
            sim.spawn("rx", move |p| {
                let sig = p.signal();
                inbox.set_doorbell(sig.clone());
                let _ = net; // keep alive
                loop {
                    if inbox.pop().is_some() {
                        break;
                    }
                    p.wait(&sig).expect_signaled();
                }
                t.store(p.now().as_ns(), Ordering::SeqCst);
            });
        }
        {
            let net = net.clone();
            sim.spawn("tx", move |p| {
                p.advance(Dur::from_ns(10));
                net.send(&p, &NicConfig::default(), 0, b, vec![0u8; 64]);
            });
        }
        sim.run().unwrap();
        let ns = t.load(Ordering::SeqCst);
        // syscall 2.5us + copy + 22us wire + serialization.
        assert!(ns > 24_000 && ns < 30_000, "tcp one-way {ns}ns");
    }

    #[test]
    fn frames_arrive_in_order() {
        let net = TcpNet::new(TcpConfig::default(), 2);
        let sim = Simulation::new();
        let b = ProcName {
            job: ompi_rte::JobId(0),
            rank: 1,
        };
        let inbox = TcpInbox::new();
        net.bind(b, 1, inbox.clone());
        let got = Arc::new(Mutex::new(Vec::new()));
        {
            let got = got.clone();
            let inbox = inbox.clone();
            sim.spawn("rx", move |p| {
                let sig = p.signal();
                inbox.set_doorbell(sig.clone());
                let mut n = 0;
                while n < 5 {
                    match inbox.pop() {
                        Some(f) => {
                            got.lock().push(f[0]);
                            n += 1;
                        }
                        None => {
                            p.wait(&sig).expect_signaled();
                        }
                    }
                }
            });
        }
        {
            let net = net.clone();
            sim.spawn("tx", move |p| {
                for i in 0..5u8 {
                    net.send(&p, &NicConfig::default(), 0, b, vec![i; 100]);
                }
            });
        }
        sim.run().unwrap();
        assert_eq!(*got.lock(), vec![0, 1, 2, 3, 4]);
        let stats = net.stats();
        assert_eq!(stats.frames_sent, 5);
        assert_eq!(stats.bytes_sent, 5 * 100);
        assert_eq!(stats.frames_dropped, 0);
        assert!(inbox.depth_hwm() >= 1);
    }

    #[test]
    fn injected_drop_vanishes_matching_kind_only_until_exhausted() {
        let net = TcpNet::new(TcpConfig::default(), 2);
        let sim = Simulation::new();
        let b = ProcName {
            job: ompi_rte::JobId(0),
            rank: 1,
        };
        let inbox = TcpInbox::new();
        net.bind(b, 1, inbox.clone());
        net.inject_drop(crate::hdr::HdrType::FinAck, 1);
        let got = Arc::new(Mutex::new(Vec::new()));
        {
            let got = got.clone();
            let inbox = inbox.clone();
            sim.spawn("rx", move |p| {
                let sig = p.signal();
                inbox.set_doorbell(sig.clone());
                let mut n = 0;
                while n < 2 {
                    match inbox.pop() {
                        Some(f) => {
                            got.lock().push(f[0]);
                            n += 1;
                        }
                        None => {
                            p.wait(&sig).expect_signaled();
                        }
                    }
                }
            });
        }
        {
            let net = net.clone();
            sim.spawn("tx", move |p| {
                let fin_ack = crate::hdr::HdrType::FinAck as u8;
                // First FIN_ACK vanishes, the eager frame passes, and the
                // second FIN_ACK passes because the rule is exhausted.
                net.send(&p, &NicConfig::default(), 0, b, vec![fin_ack; 16]);
                net.send(&p, &NicConfig::default(), 0, b, vec![1u8; 16]);
                net.send(&p, &NicConfig::default(), 0, b, vec![fin_ack; 16]);
            });
        }
        sim.run().unwrap();
        assert_eq!(*got.lock(), vec![1, crate::hdr::HdrType::FinAck as u8]);
        assert_eq!(net.stats().frames_injected, 1);
        assert_eq!(net.stats().frames_sent, 2);
    }

    #[test]
    fn injected_dup_delivers_matching_kind_twice() {
        let net = TcpNet::new(TcpConfig::default(), 2);
        let sim = Simulation::new();
        let b = ProcName {
            job: ompi_rte::JobId(0),
            rank: 1,
        };
        let inbox = TcpInbox::new();
        net.bind(b, 1, inbox.clone());
        net.inject_dup(crate::hdr::HdrType::FinAck, 1);
        let got = Arc::new(Mutex::new(Vec::new()));
        {
            let got = got.clone();
            let inbox = inbox.clone();
            sim.spawn("rx", move |p| {
                let sig = p.signal();
                inbox.set_doorbell(sig.clone());
                let mut n = 0;
                while n < 3 {
                    match inbox.pop() {
                        Some(f) => {
                            got.lock().push(f[0]);
                            n += 1;
                        }
                        None => {
                            p.wait(&sig).expect_signaled();
                        }
                    }
                }
            });
        }
        {
            let net = net.clone();
            sim.spawn("tx", move |p| {
                let fin_ack = crate::hdr::HdrType::FinAck as u8;
                // The FIN_ACK arrives twice; the eager frame once; the rule
                // is exhausted after the first match.
                net.send(&p, &NicConfig::default(), 0, b, vec![fin_ack; 16]);
                net.send(&p, &NicConfig::default(), 0, b, vec![1u8; 16]);
            });
        }
        sim.run().unwrap();
        let mut seen = got.lock().clone();
        seen.sort_unstable();
        let fin_ack = crate::hdr::HdrType::FinAck as u8;
        assert_eq!(seen, vec![1, fin_ack, fin_ack]);
        assert_eq!(net.stats().frames_duplicated, 1);
        assert_eq!(net.stats().frames_sent, 2);
    }

    #[test]
    fn send_to_unbound_peer_is_dropped() {
        let net = TcpNet::new(TcpConfig::default(), 2);
        let sim = Simulation::new();
        let ghost = ProcName {
            job: ompi_rte::JobId(9),
            rank: 9,
        };
        {
            let net = net.clone();
            sim.spawn("tx", move |p| {
                net.send(&p, &NicConfig::default(), 0, ghost, vec![1, 2, 3]);
                p.advance(Dur::from_us(100));
            });
        }
        sim.run().unwrap();
        assert_eq!(net.stats().frames_dropped, 1);
        assert_eq!(net.stats().frames_sent, 0);
    }
}
