//! Wire headers.
//!
//! Every Open MPI fragment carries a fixed 64-byte header (the paper
//! compares this against MPICH-QsNetII's 32-byte header in §6.5). A QDMA
//! slot is 2 KB, so the payload that can ride along with the first fragment
//! is `2048 - 64 = 1984` bytes — exactly the rendezvous threshold the paper
//! quotes.

/// Header size on the wire.
pub const HDR_LEN: usize = 64;
/// QDMA slot size.
pub const SLOT_LEN: usize = 2048;
/// Maximum payload inlined after a header in one QDMA.
pub const MAX_INLINE: usize = SLOT_LEN - HDR_LEN;

/// Fragment/control types.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
#[repr(u8)]
pub enum HdrType {
    /// Eager message: header + whole payload.
    Eager = 1,
    /// Rendezvous first fragment (may carry inline payload).
    Rendezvous = 2,
    /// Receiver's acknowledgment for the RDMA-write scheme; carries the
    /// destination E4 address.
    Ack = 3,
    /// Sender's completion notice after RDMA writes (write scheme).
    Fin = 4,
    /// Receiver's combined ack + completion notice (read scheme).
    FinAck = 5,
    /// An in-band data fragment (transports without RDMA, e.g. TCP).
    Frag = 6,
    /// Shared-completion-queue token: a local DMA descriptor finished.
    Completion = 7,
    /// Reliability-layer receipt: acknowledges one sequence-stamped control
    /// frame so the sender can retire its retransmit buffer entry.
    CtlAck = 8,
    /// Reliability-layer failure notice: the sender exhausted retries (or
    /// had no route) and names the peer-owned request that will never see
    /// its control frame, so the peer can error it out instead of hanging.
    Nack = 9,
    /// Explicit flow-control credit grant (`seq` = credits returned). Only
    /// sent when the receiver is hoarding more than half the peer's credit
    /// window with no reverse control traffic to piggyback on — normally
    /// credits ride inside ACK (`seq` high bits) and FIN_ACK (`e4_vpid`)
    /// frames at zero wire cost.
    CreditReturn = 10,
}

impl HdrType {
    /// Decode a wire kind byte; `None` for values no header kind uses.
    pub fn from_u8(v: u8) -> Option<HdrType> {
        Some(match v {
            1 => HdrType::Eager,
            2 => HdrType::Rendezvous,
            3 => HdrType::Ack,
            4 => HdrType::Fin,
            5 => HdrType::FinAck,
            6 => HdrType::Frag,
            7 => HdrType::Completion,
            8 => HdrType::CtlAck,
            9 => HdrType::Nack,
            10 => HdrType::CreditReturn,
            _ => return None,
        })
    }

    /// Display name, as used in trace events and diagnostics.
    pub fn name(self) -> &'static str {
        match self {
            HdrType::Eager => "Eager",
            HdrType::Rendezvous => "Rendezvous",
            HdrType::Ack => "Ack",
            HdrType::Fin => "Fin",
            HdrType::FinAck => "FinAck",
            HdrType::Frag => "Frag",
            HdrType::Completion => "Completion",
            HdrType::CtlAck => "CtlAck",
            HdrType::Nack => "Nack",
            HdrType::CreditReturn => "CreditReturn",
        }
    }
}

/// Why a byte buffer failed to decode as a header. Frames carrying any of
/// these are dropped (and counted) rather than crashing the rank: a corrupt
/// frame must cost at most a retransmit, never the job.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum HdrDecodeError {
    /// Fewer than [`HDR_LEN`] bytes.
    Short,
    /// The magic byte is wrong: this is not (or no longer) a header.
    BadMagic,
    /// The kind byte names no known fragment type.
    BadKind(u8),
}

impl std::fmt::Display for HdrDecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HdrDecodeError::Short => write!(f, "short header"),
            HdrDecodeError::BadMagic => write!(f, "corrupt header magic"),
            HdrDecodeError::BadKind(k) => write!(f, "corrupt header type {k}"),
        }
    }
}

/// The 64-byte header. One struct covers all fragment kinds; unused fields
/// are zero (the real implementation similarly unions match/ack/frag
/// headers within the fixed envelope).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Hdr {
    /// Fragment kind.
    pub kind: HdrType,
    /// Communicator context id.
    pub ctx: u32,
    /// Sender's rank within the communicator.
    pub src_rank: u32,
    /// MPI tag.
    pub tag: i32,
    /// Per (communicator, destination) sequence number for ordered matching.
    pub seq: u32,
    /// Total packed length of the message.
    pub msg_len: u64,
    /// Sender-side request token.
    pub send_req: u64,
    /// Receiver-side request token.
    pub recv_req: u64,
    /// Exposed source (read scheme) or destination (write scheme ACK)
    /// E4 address value.
    pub e4_va: u64,
    /// VPID owning `e4_va`.
    pub e4_vpid: u32,
    /// Byte offset of this fragment within the packed message.
    pub offset: u64,
    /// Payload bytes following this header.
    pub payload_len: u32,
    /// End-to-end payload checksum (Fletcher-16), when integrity checking
    /// is enabled; zero otherwise.
    pub checksum: u16,
}

impl Hdr {
    /// A zeroed header of the given kind.
    pub fn new(kind: HdrType) -> Hdr {
        Hdr {
            kind,
            ctx: 0,
            src_rank: 0,
            tag: 0,
            seq: 0,
            msg_len: 0,
            send_req: 0,
            recv_req: 0,
            e4_va: 0,
            e4_vpid: 0,
            offset: 0,
            payload_len: 0,
            checksum: 0,
        }
    }

    /// Serialize into exactly [`HDR_LEN`] bytes.
    pub fn to_bytes(&self) -> [u8; HDR_LEN] {
        let mut b = [0u8; HDR_LEN];
        b[0] = self.kind as u8;
        b[1] = 0xE4; // magic for corruption checks
        b[2..4].copy_from_slice(&self.checksum.to_le_bytes());
        b[4..8].copy_from_slice(&self.ctx.to_le_bytes());
        b[8..12].copy_from_slice(&self.src_rank.to_le_bytes());
        b[12..16].copy_from_slice(&self.tag.to_le_bytes());
        b[16..20].copy_from_slice(&self.seq.to_le_bytes());
        b[20..28].copy_from_slice(&self.msg_len.to_le_bytes());
        b[28..36].copy_from_slice(&self.send_req.to_le_bytes());
        b[36..44].copy_from_slice(&self.recv_req.to_le_bytes());
        b[44..52].copy_from_slice(&self.e4_va.to_le_bytes());
        b[52..56].copy_from_slice(&self.e4_vpid.to_le_bytes());
        // offset is bounded by msg_len (u64) but we store 48 bits + the
        // payload length in the remaining 8 bytes.
        b[56..62].copy_from_slice(&self.offset.to_le_bytes()[..6]);
        b[62..64].copy_from_slice(&(self.payload_len as u16).to_le_bytes());
        b
    }

    /// Parse a header from the front of `bytes`.
    ///
    /// # Panics
    /// If `bytes` is shorter than a header, the magic byte is wrong, or the
    /// kind is unknown. Protocol code should prefer [`Hdr::decode`], which
    /// reports those conditions as an error the caller can count and drop.
    pub fn from_bytes(bytes: &[u8]) -> Hdr {
        match Hdr::decode(bytes) {
            Ok(h) => h,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallibly parse a header from the front of `bytes`.
    pub fn decode(bytes: &[u8]) -> Result<Hdr, HdrDecodeError> {
        if bytes.len() < HDR_LEN {
            return Err(HdrDecodeError::Short);
        }
        if bytes[1] != 0xE4 {
            return Err(HdrDecodeError::BadMagic);
        }
        let kind = HdrType::from_u8(bytes[0]).ok_or(HdrDecodeError::BadKind(bytes[0]))?;
        let u32at = |o: usize| u32::from_le_bytes(bytes[o..o + 4].try_into().unwrap());
        let u64at = |o: usize| u64::from_le_bytes(bytes[o..o + 8].try_into().unwrap());
        let mut off6 = [0u8; 8];
        off6[..6].copy_from_slice(&bytes[56..62]);
        Ok(Hdr {
            kind,
            ctx: u32at(4),
            src_rank: u32at(8),
            tag: i32::from_le_bytes(bytes[12..16].try_into().unwrap()),
            seq: u32at(16),
            msg_len: u64at(20),
            send_req: u64at(28),
            recv_req: u64at(36),
            e4_va: u64at(44),
            e4_vpid: u32at(52),
            offset: u64::from_le_bytes(off6),
            payload_len: u16::from_le_bytes(bytes[62..64].try_into().unwrap()) as u32,
            checksum: u16::from_le_bytes(bytes[2..4].try_into().unwrap()),
        })
    }

    /// Header + payload as one QDMA-able buffer.
    pub fn frame(&self, payload: &[u8]) -> Vec<u8> {
        debug_assert_eq!(self.payload_len as usize, payload.len());
        let mut v = Vec::with_capacity(HDR_LEN + payload.len());
        v.extend_from_slice(&self.to_bytes());
        v.extend_from_slice(payload);
        v
    }
}

/// Globally unique message id: `(job, sender world rank, send request)`
/// packed into one u64. Every fragment of one logical message — eager or
/// rendezvous, on any rank — maps to the same gid, so trace and flight
/// events can be causally stitched across the whole cluster.
///
/// The id is *derived*, not carried as a new wire field: the first fragment
/// already carries `send_req`, and the receiving PTL knows the sender's
/// identity out of band (`frag.from`), so both sides compute the same value.
/// Control frames (ACK/FIN/FIN_ACK/Completion) resolve it from local request
/// state instead — the reliability layer reuses their ctx/src_rank fields
/// for sequencing, so those bytes cannot be trusted for identity.
///
/// Layout: `job[8] | rank[16] | send_req[40]`. Request ids start at 1, so a
/// valid gid is never 0; 0 means "unattributed" in trace events.
pub fn msg_gid(job: u32, rank: u32, send_req: u64) -> u64 {
    ((job as u64 & 0xFF) << 56) | ((rank as u64 & 0xFFFF) << 40) | (send_req & 0xFF_FFFF_FFFF)
}

/// The sender world rank packed in a [`msg_gid`].
pub fn gid_rank(gid: u64) -> u32 {
    ((gid >> 40) & 0xFFFF) as u32
}

/// The sender-side request id packed in a [`msg_gid`].
pub fn gid_send_req(gid: u64) -> u64 {
    gid & 0xFF_FFFF_FFFF
}

/// Flow-control credits piggyback on the ACK's `seq` field, which only
/// needs its low 16 bits for the inline-payload byte count (the inline
/// share is at most [`MAX_INLINE`] = 1984 bytes). The high 16 bits carry
/// the credit grant; [`ack_inline_len`]/[`ack_credits`] split them back
/// apart. FIN_ACK frames carry credits in `e4_vpid` instead (that field
/// is unused on a FIN_ACK — the sender already tore down or never made a
/// remote mapping by the time it arrives).
pub fn pack_ack_seq(inline_len: u32, credits: u16) -> u32 {
    // Saturate rather than mask: a (buggy) oversized inline length must not
    // bleed into the high bits and corrupt the credit grant, and a
    // saturated length is at least visibly wrong on the receive side
    // (> MAX_INLINE) instead of silently aliasing a small value.
    inline_len.min(0xFFFF) | ((credits as u32) << 16)
}

/// The inline-payload byte count packed in an ACK `seq`.
pub fn ack_inline_len(seq: u32) -> u32 {
    seq & 0xFFFF
}

/// The piggybacked credit grant packed in an ACK `seq`.
pub fn ack_credits(seq: u32) -> u16 {
    (seq >> 16) as u16
}

/// Fletcher-16 checksum (the cheap end-to-end integrity check; LA-MPI
/// heritage — paper §3's reliable-delivery requirement).
pub fn fletcher16(data: &[u8]) -> u16 {
    let mut a: u16 = 0;
    let mut b: u16 = 0;
    for &byte in data {
        a = (a + byte as u16) % 255;
        b = (b + a) % 255;
    }
    (b << 8) | a
}

#[cfg(test)]
mod tests {
    use super::*;
    #[cfg(feature = "proptest")]
    use proptest::prelude::*;

    #[test]
    fn header_is_exactly_64_bytes() {
        let h = Hdr::new(HdrType::Eager);
        assert_eq!(h.to_bytes().len(), 64);
        assert_eq!(MAX_INLINE, 1984, "paper's rendezvous threshold");
    }

    #[test]
    fn roundtrip_all_fields() {
        let mut h = Hdr::new(HdrType::Ack);
        h.ctx = 7;
        h.src_rank = 3;
        h.tag = -42;
        h.seq = 99;
        h.msg_len = 1 << 33;
        h.send_req = 0xDEAD_BEEF_CAFE;
        h.recv_req = 0x1234_5678_9ABC;
        h.e4_va = 0xFF_FFFF_FFFF;
        h.e4_vpid = 511;
        h.offset = (1 << 40) + 17;
        h.payload_len = 1984;
        h.checksum = 0xBEEF;
        let parsed = Hdr::from_bytes(&h.to_bytes());
        assert_eq!(parsed, h);
    }

    #[test]
    fn ack_seq_packs_at_max_inline_boundary() {
        // The largest legitimate inline length must round-trip exactly,
        // with the credit grant intact in the high bits.
        let seq = pack_ack_seq(MAX_INLINE as u32, 0xABCD);
        assert_eq!(ack_inline_len(seq), MAX_INLINE as u32);
        assert_eq!(ack_credits(seq), 0xABCD);
        let seq = pack_ack_seq(0xFFFF, u16::MAX);
        assert_eq!(ack_inline_len(seq), 0xFFFF);
        assert_eq!(ack_credits(seq), u16::MAX);
    }

    #[test]
    fn oversized_inline_len_saturates_and_keeps_credits() {
        // Release-build guard: a length past 16 bits saturates instead of
        // bleeding into (and corrupting) the piggybacked credit grant.
        let seq = pack_ack_seq(0x1_0000, 7);
        assert_eq!(ack_inline_len(seq), 0xFFFF);
        assert_eq!(ack_credits(seq), 7);
        let seq = pack_ack_seq(u32::MAX, 12345);
        assert_eq!(ack_inline_len(seq), 0xFFFF);
        assert_eq!(ack_credits(seq), 12345);
    }

    #[test]
    fn frame_concatenates() {
        let mut h = Hdr::new(HdrType::Eager);
        h.payload_len = 3;
        let f = h.frame(&[9, 8, 7]);
        assert_eq!(f.len(), 67);
        assert_eq!(&f[64..], &[9, 8, 7]);
        let h2 = Hdr::from_bytes(&f);
        assert_eq!(h2.payload_len, 3);
    }

    #[test]
    #[should_panic(expected = "corrupt header magic")]
    fn corruption_detected() {
        let mut b = Hdr::new(HdrType::Fin).to_bytes();
        b[1] = 0;
        Hdr::from_bytes(&b);
    }

    #[test]
    fn decode_reports_errors_instead_of_panicking() {
        let good = Hdr::new(HdrType::Fin).to_bytes();
        assert_eq!(Hdr::decode(&good).unwrap().kind, HdrType::Fin);
        assert_eq!(Hdr::decode(&good[..32]), Err(HdrDecodeError::Short));
        let mut bad_magic = good;
        bad_magic[1] = 0;
        assert_eq!(Hdr::decode(&bad_magic), Err(HdrDecodeError::BadMagic));
        let mut bad_kind = good;
        bad_kind[0] = 0xAB;
        assert_eq!(Hdr::decode(&bad_kind), Err(HdrDecodeError::BadKind(0xAB)));
        assert_eq!(
            HdrDecodeError::BadKind(0xAB).to_string(),
            "corrupt header type 171"
        );
    }

    #[test]
    fn gid_packs_and_unpacks_identity() {
        let g = msg_gid(3, 511, 0x1234_5678);
        assert_eq!(gid_rank(g), 511);
        assert_eq!(gid_send_req(g), 0x1234_5678);
        // Same request id on different ranks (or jobs) never collides.
        assert_ne!(msg_gid(0, 0, 7), msg_gid(0, 1, 7));
        assert_ne!(msg_gid(0, 0, 7), msg_gid(1, 0, 7));
        // Request ids start at 1, so a real gid is never the "unattributed"
        // sentinel.
        assert_ne!(msg_gid(0, 0, 1), 0);
    }

    #[test]
    fn kind_roundtrip_and_names() {
        for v in 1u8..=10 {
            let k = HdrType::from_u8(v).unwrap();
            assert_eq!(k as u8, v);
            assert!(!k.name().is_empty());
        }
        assert_eq!(HdrType::from_u8(0), None);
        assert_eq!(HdrType::from_u8(11), None);
        assert_eq!(HdrType::CtlAck.name(), "CtlAck");
        assert_eq!(HdrType::Nack.name(), "Nack");
        assert_eq!(HdrType::CreditReturn.name(), "CreditReturn");
    }

    #[test]
    fn ack_seq_packs_inline_len_and_credits() {
        let seq = pack_ack_seq(1984, 7);
        assert_eq!(ack_inline_len(seq), 1984);
        assert_eq!(ack_credits(seq), 7);
        // No credits leaves the legacy encoding untouched.
        assert_eq!(pack_ack_seq(1024, 0), 1024);
        assert_eq!(ack_credits(pack_ack_seq(0, u16::MAX)), u16::MAX);
    }

    #[cfg(feature = "proptest")]
    proptest! {
        #[test]
        fn roundtrip_random(
            kind in 1u8..=10,
            ctx in any::<u32>(),
            src in any::<u32>(),
            tag in any::<i32>(),
            seq in any::<u32>(),
            msg_len in any::<u64>(),
            sreq in any::<u64>(),
            rreq in any::<u64>(),
            va in any::<u64>(),
            vpid in any::<u32>(),
            offset in 0u64..(1 << 48),
            plen in 0u32..=1984,
            csum in any::<u16>(),
        ) {
            let h = Hdr {
                kind: HdrType::from_u8(kind).unwrap(),
                ctx, src_rank: src, tag, seq, msg_len,
                send_req: sreq, recv_req: rreq,
                e4_va: va, e4_vpid: vpid, offset, payload_len: plen,
                checksum: csum,
            };
            prop_assert_eq!(Hdr::from_bytes(&h.to_bytes()), h);
        }

        #[test]
        fn fletcher_detects_single_byte_flips(
            data in proptest::collection::vec(any::<u8>(), 1..256),
            idx in any::<usize>(),
            flip in 1u8..=255,
        ) {
            let base = fletcher16(&data);
            let mut corrupted = data.clone();
            let i = idx % corrupted.len();
            corrupted[i] ^= flip;
            prop_assert_ne!(base, fletcher16(&corrupted));
        }
    }
}
