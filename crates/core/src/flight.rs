//! Post-mortem flight recorder.
//!
//! A bounded, always-on ring of recent fabric/protocol events — much
//! cheaper than the full trace ring (compact events, small default
//! capacity, no span bookkeeping), so it stays enabled in production runs
//! where `telemetry.trace` is off. When the progress watchdog declares a
//! stall, or a request completes with an MPI error class, the ring is
//! dumped as structured JSON: the last things that happened before the
//! failure, exactly the view a post-mortem needs.
//!
//! Events are fed from the same funnel as the trace ring
//! ([`crate::endpoint::Endpoint::trace`]), mapped down to the compact
//! [`FlightEvent`] subset; protocol code needs no extra call sites.

use std::collections::VecDeque;

use qsim::Time;

use crate::trace::{escape_json, TraceEvent};

/// Default ring capacity of a [`FlightRecorder`]; see
/// [`crate::StackConfig::flight_capacity`].
pub const DEFAULT_FLIGHT_CAPACITY: usize = 256;

/// One compact flight-recorder event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FlightEvent {
    /// A send request was posted.
    Send {
        /// Request id.
        req: u64,
        /// Global message id ([`crate::hdr::msg_gid`]).
        gid: u64,
        /// Destination rank.
        dst: u32,
        /// Message length.
        len: usize,
        /// Eager (true) or rendezvous (false).
        eager: bool,
    },
    /// A receive request was posted.
    Recv {
        /// Request id.
        req: u64,
    },
    /// A first fragment matched a posted receive.
    Match {
        /// The receive request.
        req: u64,
        /// Global message id.
        gid: u64,
        /// Sender rank.
        src: u32,
        /// Total message length.
        len: usize,
    },
    /// A first fragment arrived unexpected.
    Unexpected {
        /// Sender rank.
        src: u32,
    },
    /// RDMA descriptors were issued.
    Rdma {
        /// Global message id the batch serves.
        gid: u64,
        /// Read (receiver pulls) or write (sender pushes).
        read: bool,
        /// Bytes covered.
        bytes: usize,
    },
    /// A local DMA completion was reaped.
    DmaDone {
        /// Global message id the descriptor served.
        gid: u64,
        /// Bytes credited.
        bytes: usize,
    },
    /// A control message was sent.
    Control {
        /// Global message id the frame belongs to; 0 when unattributed.
        gid: u64,
        /// `"Ack"`, `"Fin"` or `"FinAck"`.
        kind: &'static str,
    },
    /// The reliability layer re-sent a control frame.
    Retransmit {
        /// Control kind name.
        kind: &'static str,
        /// Retransmission attempt number.
        attempt: u32,
    },
    /// Retransmission retries were exhausted.
    GaveUp {
        /// Control kind name.
        kind: &'static str,
    },
    /// A corrupt frame was dropped.
    Corrupt {
        /// Raw frame length.
        len: usize,
    },
    /// A request completed cleanly.
    Complete {
        /// Request id.
        req: u64,
        /// Global message id.
        gid: u64,
        /// Send (true) or receive (false).
        send: bool,
    },
    /// A request completed with an MPI error class.
    ReqFailed {
        /// Request id.
        req: u64,
        /// MPI error-class name.
        err: &'static str,
    },
    /// The watchdog declared a stall on this rank.
    Stall {
        /// Number of stuck requests.
        stuck: usize,
    },
}

impl FlightEvent {
    /// Map a trace event down to the compact flight subset; `None` for
    /// high-volume or bookkeeping-only events (pipeline chunks, duplicate
    /// suppressions, spans) that would wash the ring out.
    pub fn from_trace(ev: &TraceEvent) -> Option<FlightEvent> {
        Some(match ev {
            TraceEvent::SendPosted {
                req,
                gid,
                dst,
                len,
                eager,
                ..
            } => FlightEvent::Send {
                req: *req,
                gid: *gid,
                dst: *dst,
                len: *len,
                eager: *eager,
            },
            TraceEvent::RecvPosted { req } => FlightEvent::Recv { req: *req },
            TraceEvent::Matched {
                req, gid, src, len, ..
            } => FlightEvent::Match {
                req: *req,
                gid: *gid,
                src: *src,
                len: *len,
            },
            TraceEvent::Unexpected { src, .. } => FlightEvent::Unexpected { src: *src },
            TraceEvent::RdmaIssued { gid, read, bytes } => FlightEvent::Rdma {
                gid: *gid,
                read: *read,
                bytes: *bytes,
            },
            TraceEvent::DmaDone { gid, bytes } => FlightEvent::DmaDone {
                gid: *gid,
                bytes: *bytes,
            },
            TraceEvent::ControlSent { gid, kind } => FlightEvent::Control { gid: *gid, kind },
            TraceEvent::CtlRetransmit { kind, attempt, .. } => FlightEvent::Retransmit {
                kind,
                attempt: *attempt,
            },
            TraceEvent::CtlGaveUp { kind, .. } => FlightEvent::GaveUp { kind },
            TraceEvent::CorruptFrame { len } => FlightEvent::Corrupt { len: *len },
            TraceEvent::Completed { req, gid, send } => FlightEvent::Complete {
                req: *req,
                gid: *gid,
                send: *send,
            },
            TraceEvent::ReqFailed { req, err, .. } => FlightEvent::ReqFailed { req: *req, err },
            TraceEvent::PipeChunk { .. }
            | TraceEvent::Registered { .. }
            | TraceEvent::CtlDuplicate { .. }
            | TraceEvent::FlowQueued { .. }
            | TraceEvent::FlowSent { .. }
            | TraceEvent::NicProgArmed { .. }
            | TraceEvent::NicCollComplete { .. }
            | TraceEvent::SpanBegin { .. }
            | TraceEvent::SpanEnd { .. } => return None,
        })
    }

    /// The global message id an event is attributed to, when it carries one
    /// and it is non-zero. Used to reconstruct a single message's lifecycle
    /// out of the ring (e.g. for stall diagnostics).
    pub fn gid(&self) -> Option<u64> {
        match self {
            FlightEvent::Send { gid, .. }
            | FlightEvent::Match { gid, .. }
            | FlightEvent::Rdma { gid, .. }
            | FlightEvent::DmaDone { gid, .. }
            | FlightEvent::Control { gid, .. }
            | FlightEvent::Complete { gid, .. } => (*gid != 0).then_some(*gid),
            _ => None,
        }
    }

    /// Short event name used in the JSON dump.
    pub fn name(&self) -> &'static str {
        match self {
            FlightEvent::Send { .. } => "send",
            FlightEvent::Recv { .. } => "recv",
            FlightEvent::Match { .. } => "match",
            FlightEvent::Unexpected { .. } => "unexpected",
            FlightEvent::Rdma { .. } => "rdma",
            FlightEvent::DmaDone { .. } => "dma_done",
            FlightEvent::Control { .. } => "control",
            FlightEvent::Retransmit { .. } => "retransmit",
            FlightEvent::GaveUp { .. } => "gave_up",
            FlightEvent::Corrupt { .. } => "corrupt",
            FlightEvent::Complete { .. } => "complete",
            FlightEvent::ReqFailed { .. } => "req_failed",
            FlightEvent::Stall { .. } => "stall",
        }
    }

    fn fields_json(&self) -> String {
        match self {
            FlightEvent::Send {
                req,
                gid,
                dst,
                len,
                eager,
            } => format!(
                ",\"req\":{req},\"gid\":{gid},\"dst\":{dst},\"len\":{len},\"eager\":{eager}"
            ),
            FlightEvent::Recv { req } => format!(",\"req\":{req}"),
            FlightEvent::Match { req, gid, src, len } => {
                format!(",\"req\":{req},\"gid\":{gid},\"src\":{src},\"len\":{len}")
            }
            FlightEvent::Unexpected { src } => format!(",\"src\":{src}"),
            FlightEvent::Rdma { gid, read, bytes } => {
                format!(",\"gid\":{gid},\"read\":{read},\"bytes\":{bytes}")
            }
            FlightEvent::DmaDone { gid, bytes } => format!(",\"gid\":{gid},\"bytes\":{bytes}"),
            FlightEvent::Control { gid, kind } => {
                format!(",\"gid\":{gid},\"kind\":\"{}\"", escape_json(kind))
            }
            FlightEvent::Retransmit { kind, attempt } => {
                format!(",\"kind\":\"{}\",\"attempt\":{attempt}", escape_json(kind))
            }
            FlightEvent::GaveUp { kind } => format!(",\"kind\":\"{}\"", escape_json(kind)),
            FlightEvent::Corrupt { len } => format!(",\"len\":{len}"),
            FlightEvent::Complete { req, gid, send } => {
                format!(",\"req\":{req},\"gid\":{gid},\"send\":{send}")
            }
            FlightEvent::ReqFailed { req, err } => {
                format!(",\"req\":{req},\"err\":\"{}\"", escape_json(err))
            }
            FlightEvent::Stall { stuck } => format!(",\"stuck\":{stuck}"),
        }
    }

    /// One event as a JSON object, timestamped.
    pub fn to_json(&self, at: Time) -> String {
        format!(
            "{{\"t_ns\":{},\"ev\":\"{}\"{}}}",
            at.as_ns(),
            self.name(),
            self.fields_json()
        )
    }
}

/// The bounded always-on event ring. When full, the oldest event is
/// evicted and counted, so the ring always holds the *tail* of history —
/// the part a post-mortem cares about.
pub struct FlightRecorder {
    events: VecDeque<(Time, FlightEvent)>,
    capacity: usize,
    dropped: u64,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::with_capacity(DEFAULT_FLIGHT_CAPACITY)
    }
}

impl FlightRecorder {
    /// An empty ring holding at most `capacity` events (min 1).
    pub fn with_capacity(capacity: usize) -> FlightRecorder {
        FlightRecorder {
            events: VecDeque::new(),
            capacity: capacity.max(1),
            dropped: 0,
        }
    }

    /// Record one event at `now`, evicting the oldest when full.
    pub fn record(&mut self, now: Time, ev: FlightEvent) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back((now, ev));
    }

    /// Events currently retained.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Retained events in record order.
    pub fn events(&self) -> impl Iterator<Item = &(Time, FlightEvent)> {
        self.events.iter()
    }

    /// The retained tail as a JSON array of timestamped events.
    pub fn events_json(&self) -> String {
        let rows: Vec<String> = self.events.iter().map(|(t, e)| e.to_json(*t)).collect();
        format!("[{}]", rows.join(","))
    }

    /// A full dump document for one rank:
    /// `{"rank":r,"reason":"...","at_ns":t,"dropped":n,"events":[...]}`.
    pub fn dump_json(&self, rank: usize, reason: &str, at: Time) -> String {
        format!(
            "{{\"rank\":{},\"reason\":\"{}\",\"at_ns\":{},\"dropped\":{},\"events\":{}}}",
            rank,
            escape_json(reason),
            at.as_ns(),
            self.dropped,
            self.events_json()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_the_tail_and_counts_drops() {
        let mut fr = FlightRecorder::with_capacity(3);
        for i in 0..5u64 {
            fr.record(Time::from_ns(i * 10), FlightEvent::Recv { req: i });
        }
        assert_eq!(fr.len(), 3);
        assert_eq!(fr.dropped(), 2);
        let reqs: Vec<u64> = fr
            .events()
            .map(|(_, e)| match e {
                FlightEvent::Recv { req } => *req,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(reqs, vec![2, 3, 4]);
    }

    #[test]
    fn trace_mapping_keeps_protocol_events_and_drops_noise() {
        let ev = TraceEvent::SendPosted {
            req: 9,
            gid: 77,
            coll: 0,
            dst: 1,
            tag: 5,
            len: 4096,
            eager: false,
        };
        assert_eq!(
            FlightEvent::from_trace(&ev),
            Some(FlightEvent::Send {
                req: 9,
                gid: 77,
                dst: 1,
                len: 4096,
                eager: false
            })
        );
        assert_eq!(FlightEvent::from_trace(&ev).unwrap().gid(), Some(77));
        assert_eq!(
            FlightEvent::from_trace(&TraceEvent::ReqFailed {
                req: 2,
                send: true,
                err: "MPI_ERR_PROC_FAILED"
            }),
            Some(FlightEvent::ReqFailed {
                req: 2,
                err: "MPI_ERR_PROC_FAILED"
            })
        );
        assert_eq!(
            FlightEvent::from_trace(&TraceEvent::PipeChunk {
                req: 1,
                gid: 77,
                off: 0,
                len: 8192,
                last: false
            }),
            None
        );
        assert_eq!(
            FlightEvent::from_trace(&TraceEvent::Registered {
                gid: 77,
                bytes: 8192,
                cost_ns: 100
            }),
            None
        );
        assert_eq!(
            FlightEvent::from_trace(&TraceEvent::SpanBegin {
                id: 1,
                cat: "rndv",
                name: "x"
            }),
            None
        );
    }

    #[test]
    fn dump_is_valid_shaped_json() {
        let mut fr = FlightRecorder::default();
        fr.record(
            Time::from_ns(100),
            FlightEvent::Control {
                gid: 5,
                kind: "FinAck",
            },
        );
        fr.record(Time::from_ns(200), FlightEvent::Stall { stuck: 2 });
        let dump = fr.dump_json(3, "watchdog stall", Time::from_ns(250));
        assert!(dump.contains("\"rank\":3"));
        assert!(dump.contains("\"reason\":\"watchdog stall\""));
        assert!(dump.contains("\"ev\":\"control\",\"gid\":5,\"kind\":\"FinAck\""));
        assert!(dump.contains("\"ev\":\"stall\",\"stuck\":2"));
        assert!(dump.contains("\"dropped\":0"));
    }
}
