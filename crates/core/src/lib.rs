//! # openmpi-core — the Open MPI communication stack over simulated Elan4
//!
//! The paper's contribution, reproduced in Rust on top of the simulated
//! Quadrics hardware:
//!
//! - [`hdr`] — the 64-byte match/control header (vs. MPICH-QsNetII's 32).
//! - [`state`] + [`proto`] — the PML: request management, FIFO matching
//!   with wildcards, per-peer sequence ordering, and the long-message
//!   protocols: **RDMA write + FIN** and **RDMA read + FIN_ACK** (paper
//!   Figs. 3 & 4), optionally with the control message *chained* to the
//!   final RDMA, plus the **shared completion queue** built from chained
//!   QDMAs (Fig. 6).
//! - [`endpoint`] — per-rank NIC resources and the four progress engines
//!   (polling, interrupt, one-thread, two-thread; paper §6.4/Table 1).
//! - [`ptl_tcp`] — the TCP/IP reference transport, usable concurrently with
//!   Elan4 for multi-network striping.
//! - [`mpi`] + [`comm`] + [`coll`] — an MPI-2-flavoured API: communicators,
//!   wildcards, nonblocking requests, split/dup, tree collectives, and
//!   dynamic process spawn over the Elan4 capability (paper §4.1).
//! - [`universe`] — glue that launches MPI worlds onto a simulated cluster.
//!
//! Every protocol knob the paper evaluates lives in [`StackConfig`].

#![warn(missing_docs)]

pub mod coll;
pub mod comm;
pub mod config;
pub mod critpath;
pub mod endpoint;
pub mod flight;
pub mod hdr;
pub mod introspect;
pub mod metrics;
pub mod mpi;
pub mod peer;
pub mod proto;
pub mod ptl;
pub mod ptl_tcp;
pub mod regcache;
pub mod rma;
pub mod state;
pub mod trace;
pub mod universe;

pub use coll::ReduceOp;
pub use comm::Communicator;
pub use config::{CompletionMode, HostConfig, ProgressMode, RdmaScheme, StackConfig};
pub use critpath::{BucketStats, CritPathReport, MsgPath};
pub use endpoint::{Endpoint, Transports};
pub use flight::{FlightEvent, FlightRecorder};
pub use introspect::{
    cvar_read, cvar_write, cvars_json, pvar_snapshot, CvarValue, PvarSnapshot, StallDiagnostic,
};
pub use metrics::{CollOp, Counters, Histogram, Metrics};
pub use mpi::{Mpi, PersistentRequest, Status, ANY_SOURCE, ANY_TAG};
pub use proto::{ReqKind, Request};
pub use ptl::{PtlInfo, PtlKind, PtlRegistry, PtlStage, PtlTraffic};
pub use ptl_tcp::{TcpConfig, TcpNet};
pub use regcache::{RegCache, RegStats};
pub use rma::Window;
pub use state::MpiErrClass;
pub use trace::{chrome_trace_json, TraceEvent, TraceLog};
pub use universe::{Placement, Universe};

#[cfg(test)]
mod tests;
