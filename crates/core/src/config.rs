//! Protocol and host-cost configuration for the Open MPI stack.
//!
//! Every design choice the paper evaluates is a knob here, so each figure's
//! series is just a different [`StackConfig`].

use ompi_datatype::CopyModel;
use qsim::Dur;

/// Which long-message scheme the Elan4 PTL uses (paper §4.2, Figs. 3 & 4).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum RdmaScheme {
    /// Sender RDMA-writes after the ACK, then sends FIN.
    Write,
    /// Receiver RDMA-reads after the match, then sends FIN_ACK.
    Read,
}

/// How the host learns that its own RDMA descriptors completed (paper §4.3).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum CompletionMode {
    /// Poll each descriptor's host event word.
    PollEvent,
    /// Chain a small QDMA to every RDMA, funneling completions into the
    /// *existing* receive queue (the one-queue strategy).
    SharedQueueCombined,
    /// Same, but into a dedicated second queue (the two-queue strategy).
    SharedQueueSeparate,
}

/// How pending communication is progressed (paper §3, dual-mode progress).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum ProgressMode {
    /// The application thread polls inside blocking MPI calls.
    Polling,
    /// The application thread blocks on NIC interrupts directly ("not really
    /// workable" per the paper — measured for Table 1).
    Interrupt,
    /// One asynchronous progress thread services the (combined) queue.
    OneThread,
    /// Two threads: one for incoming messages, one for the separate
    /// completion queue.
    TwoThreads,
}

/// Configuration of the whole communication stack for one run.
#[derive(Clone, Debug)]
pub struct StackConfig {
    /// Long-message scheme.
    pub scheme: RdmaScheme,
    /// Carry up to `first_frag_payload` bytes inside the rendezvous packet.
    /// Disabling this is the paper's §6.1 optimization.
    pub inline_first_frag: bool,
    /// Chain the FIN / FIN_ACK QDMA to the final RDMA (vs. the host sending
    /// it after polling the completion).
    pub chained_fin: bool,
    /// Completion-notification strategy for RDMA descriptors.
    pub completion: CompletionMode,
    /// Progress engine.
    pub progress: ProgressMode,
    /// Messages at most this long (packed) go eagerly in one QDMA.
    /// The 2 KB QDMA limit minus the 64-byte match header = 1984.
    pub eager_limit: usize,
    /// Force every message through the rendezvous/RDMA path (Fig. 7 studies
    /// the RDMA path in isolation).
    pub force_rendezvous: bool,
    /// Route data through the datatype convertor instead of the memcpy fast
    /// path (the "DTP" series of Fig. 7).
    pub use_datatype_engine: bool,
    /// Receive-queue depth (QSLOTS).
    pub qslots: usize,
    /// End-to-end payload integrity checking (Fletcher-16 in the header;
    /// LA-MPI heritage, paper §3). Detection is fail-stop: a corrupt
    /// payload aborts the rank. Recovery/retransmission is future work in
    /// the paper (§8) and here.
    pub integrity_check: bool,
    /// Record every protocol transition in the endpoint's
    /// [`crate::trace::TraceLog`].
    pub trace: bool,
    /// Ring capacity of the trace log; when full, the oldest events are
    /// evicted and counted in [`crate::trace::TraceLog::dropped`].
    pub trace_capacity: usize,
    /// Keep per-endpoint telemetry ([`crate::metrics::Metrics`]): protocol
    /// counters and latency histograms. Off by default so the fast path
    /// does no extra locking.
    pub metrics: bool,
    /// Post-mortem flight recorder ([`crate::flight::FlightRecorder`]): a
    /// small always-on ring of recent protocol events, dumped as JSON when
    /// the watchdog declares a stall or a request fails with an MPI error
    /// class. On by default — it is far cheaper than full tracing.
    pub flight_recorder: bool,
    /// Ring capacity of the flight recorder.
    pub flight_capacity: usize,
    /// Progress watchdog: scan for stalled requests every this many progress
    /// ticks. `0` (the default) disables the watchdog entirely.
    pub watchdog_interval: u64,
    /// Consecutive watchdog scans a request must survive without any state
    /// transition before it is declared stalled.
    pub watchdog_grace: u32,
    /// Virtual-time bound on blocked waits while the watchdog is armed; each
    /// expiry counts as a progress tick, so a wedged rank keeps ticking (and
    /// eventually diagnosing) instead of deadlocking silently.
    pub watchdog_tick: Dur,
    /// Reliability layer for TCP-routed control frames (ACK/FIN/FIN_ACK):
    /// sequence-stamp them, buffer them for retransmission, and suppress
    /// duplicates on receipt. A lost control frame then costs one retransmit
    /// timeout instead of stranding the rendezvous (the watchdog stays the
    /// last-resort detector).
    pub tcp_reliability: bool,
    /// Initial retransmission timeout for an unacknowledged control frame.
    pub tcp_retransmit_timeout: Dur,
    /// Multiplier applied to the timeout after each retransmission
    /// (exponential backoff).
    pub tcp_retransmit_backoff: u32,
    /// Retransmissions attempted before the frame is abandoned, the peer is
    /// marked failed, and the affected request completes with an error
    /// status.
    pub tcp_max_retries: u32,
    /// Registration (pin-down) cache: keep rendezvous/RMA MMU mappings
    /// alive after their request completes and reuse them for repeated
    /// buffers, deferring the charged unmap to LRU eviction
    /// ([`crate::regcache`]).
    pub reg_cache: bool,
    /// Byte capacity of the registration cache.
    pub reg_cache_bytes: usize,
    /// Entry capacity of the registration cache.
    pub reg_cache_entries: usize,
    /// Pipelined rendezvous: the DMA-issuing side splits its bulk share
    /// into `pipeline_chunk`-sized pieces and registers chunk *i+1* while
    /// chunk *i*'s RDMA is in flight, hiding the pin-down cost behind the
    /// transfer (the MPICH2-over-InfiniBand optimization).
    pub pipeline_enable: bool,
    /// Bytes per pipeline chunk.
    pub pipeline_chunk: usize,
    /// Chunks allowed in flight per rail.
    pub pipeline_depth: usize,
    /// Elan shares shorter than this keep the monolithic single-RDMA path
    /// (chunking overhead would outweigh the registration overlap).
    pub pipeline_min_len: usize,
    /// End-to-end credit-based flow control for eager/unexpected messages
    /// (the MPICH2-over-InfiniBand scheme): each peer grants
    /// `flow_credits` sends up front, every eager send consumes one, and
    /// credits travel back piggybacked on ACK/FIN_ACK frames (an explicit
    /// CREDIT_RETURN frame fires only when the receiver is hoarding).
    /// Senders out of credits queue locally instead of flooding the
    /// victim's receive queue. Off by default: the paper's stack has no
    /// end-to-end limit, and the incast benchmarks compare both settings.
    pub flow_enable: bool,
    /// Per-peer initial credit grant. `0` (the default) auto-scales at
    /// `Endpoint::init` so the whole job's worst-case in-flight eager
    /// traffic fits the receiver's bounce pool:
    /// `clamp(flow_bounce_pool / max(1, nprocs - 1), 2, 16)`.
    pub flow_credits: usize,
    /// Slots in the preallocated receive-side bounce pool (each slot is
    /// one QDMA payload, [`crate::hdr::SLOT_LEN`] bytes). Unexpected
    /// eager payloads stage here instead of a per-message allocation;
    /// when the pool is dry the fallback allocation is charged
    /// [`HostConfig::bounce_alloc`].
    pub flow_bounce_pool: usize,
    /// Endpoint-wide cap on outstanding RDMA descriptors (all rails, all
    /// requests). `0` means uncapped. Only enforced while `flow_enable`
    /// is on — the GASNet elan-conduit NETWORKDEPTH throttle.
    pub flow_dma_cap: usize,
    /// Defer credit grants while the local ejection-link queue is at
    /// least this deep (fabric feedback into the credit loop). `0`
    /// disables the feedback.
    pub flow_ej_backoff: usize,
    /// Compile barrier/bcast/allreduce into NIC-resident chained event
    /// programs: once every rank has armed the program, each inter-hop
    /// transfer is NIC→NIC (a child's arriving QDMA decrements the parent's
    /// counted event, which fires the next chained QDMA) with exactly one
    /// host wakeup per rank at completion. Falls back to the host-driven
    /// trees for TCP-only routes, non-commutative reduce ops, payloads over
    /// the QDMA limit, and communicators without hardware-collective
    /// support. Must be set uniformly across the job.
    pub coll_nic_offload: bool,
    /// Fan-out of the NIC-offloaded reduction/broadcast tree (>= 2).
    pub coll_tree_radix: usize,
    /// Let eligible broadcasts use the hardware broadcast rail
    /// (`ElanCtx::hw_bcast`) when the communicator spans a full
    /// rail-connected set; off, they take the binomial point-to-point tree.
    pub coll_hw_bcast: bool,
    /// Time-series sampler: snapshot queue depths / link occupancy into the
    /// endpoint's [`crate::introspect::Timeline`] every this much simulated
    /// time. `Dur::ZERO` (the default) disables sampling.
    pub timeline_interval: Dur,
    /// Ring capacity of the timeline sampler; when full, the oldest samples
    /// are evicted and counted.
    pub timeline_capacity: usize,
    /// Host-side layer costs.
    pub host: HostConfig,
    /// Copy-engine cost model.
    pub copy: CopyModel,
}

/// Host CPU costs of the Open MPI layers.
#[derive(Clone, Debug)]
pub struct HostConfig {
    /// One matching attempt in the PML (walk posted/unexpected lists).
    pub pml_match: Dur,
    /// Building a 64-byte match/control header.
    pub hdr_build: Dur,
    /// Parsing an incoming header + dispatch.
    pub hdr_parse: Dur,
    /// Request allocation / completion bookkeeping.
    pub req_bookkeep: Dur,
    /// PML scheduling decision (choose PTL, slice message).
    pub sched: Dur,
    /// Fixed sender-side cost of staging payload through the pre-allocated
    /// send buffers (charged whenever a fragment carries data). Calibrated
    /// so the paper's no-inline rendezvous optimization wins above the
    /// threshold (§6.1).
    pub inline_copy_setup: Dur,
    /// Fixed receiver-side cost of copying payload out of a queue slot.
    pub unpack_setup: Dur,
    /// Allocating (and first-touching) a bounce region for an unexpected
    /// payload when the preallocated pool is exhausted — the cost the
    /// GASNet elan-conduit avoids by preallocating its bounce buffers.
    /// Charged only on the pool-miss path.
    pub bounce_alloc: Dur,
    /// Progress-thread to application-thread wakeup (condvar handoff).
    pub thread_handoff: Dur,
    /// Extra per-wakeup penalty when two progress threads contend for CPU
    /// and memory (paper §6.4: two-thread progress is slower).
    pub thread_contention: Dur,
}

impl Default for HostConfig {
    fn default() -> Self {
        HostConfig {
            pml_match: Dur::from_ns(250),
            hdr_build: Dur::from_ns(150),
            hdr_parse: Dur::from_ns(100),
            req_bookkeep: Dur::from_ns(100),
            sched: Dur::from_ns(100),
            inline_copy_setup: Dur::from_ns(600),
            unpack_setup: Dur::from_ns(150),
            bounce_alloc: Dur::from_ns(2_000),
            thread_handoff: Dur::from_ns(4_000),
            thread_contention: Dur::from_ns(2_300),
        }
    }
}

impl Default for StackConfig {
    fn default() -> Self {
        StackConfig {
            scheme: RdmaScheme::Read,
            inline_first_frag: false,
            chained_fin: true,
            completion: CompletionMode::PollEvent,
            progress: ProgressMode::Polling,
            eager_limit: crate::hdr::MAX_INLINE,
            force_rendezvous: false,
            use_datatype_engine: false,
            qslots: 128,
            integrity_check: false,
            trace: false,
            trace_capacity: crate::trace::DEFAULT_TRACE_CAPACITY,
            metrics: false,
            flight_recorder: true,
            flight_capacity: crate::flight::DEFAULT_FLIGHT_CAPACITY,
            watchdog_interval: 0,
            watchdog_grace: 4,
            watchdog_tick: Dur::from_us(200),
            tcp_reliability: true,
            tcp_retransmit_timeout: Dur::from_us(500),
            tcp_retransmit_backoff: 2,
            tcp_max_retries: 4,
            reg_cache: true,
            reg_cache_bytes: 32 << 20,
            reg_cache_entries: 128,
            pipeline_enable: true,
            pipeline_chunk: 32 << 10,
            pipeline_depth: 4,
            pipeline_min_len: 256 << 10,
            flow_enable: false,
            flow_credits: 0,
            flow_bounce_pool: 64,
            flow_dma_cap: 32,
            flow_ej_backoff: 0,
            coll_nic_offload: false,
            coll_tree_radix: 4,
            coll_hw_bcast: true,
            timeline_interval: Dur::ZERO,
            timeline_capacity: 1024,
            host: HostConfig::default(),
            copy: CopyModel::default(),
        }
    }
}

impl StackConfig {
    /// The paper's best-performing configuration (used for Fig. 10):
    /// chained FIN, polling progress, no shared completion queue, rendezvous
    /// without inlined data.
    pub fn best() -> Self {
        StackConfig::default()
    }

    /// Sanity-check mode combinations.
    pub fn validate(&self) {
        match self.progress {
            ProgressMode::OneThread => assert!(
                self.completion == CompletionMode::SharedQueueCombined,
                "one-thread progress requires the combined shared completion queue"
            ),
            ProgressMode::TwoThreads => assert!(
                self.completion == CompletionMode::SharedQueueSeparate,
                "two-thread progress requires the separate completion queue"
            ),
            _ => {}
        }
        assert!(self.eager_limit <= crate::hdr::MAX_INLINE);
        assert!(self.qslots >= 2);
        assert!(
            self.trace_capacity >= 1,
            "trace ring needs at least one slot"
        );
        if self.flight_recorder {
            assert!(
                self.flight_capacity >= 1,
                "flight recorder needs at least one slot"
            );
        }
        if self.watchdog_interval > 0 {
            assert!(self.watchdog_grace >= 1, "watchdog grace must be >= 1");
            assert!(
                self.watchdog_tick > Dur::ZERO,
                "watchdog tick must be a positive duration"
            );
        }
        if self.tcp_reliability {
            assert!(
                self.tcp_retransmit_timeout > Dur::ZERO,
                "retransmit timeout must be a positive duration"
            );
            assert!(
                self.tcp_retransmit_backoff >= 1,
                "retransmit backoff multiplier must be >= 1"
            );
        }
        if self.reg_cache {
            assert!(
                self.reg_cache_bytes > 0 && self.reg_cache_entries > 0,
                "registration cache capacities must be positive when enabled"
            );
        }
        if self.pipeline_enable {
            assert!(
                self.pipeline_chunk > 0,
                "pipeline chunk size must be positive when pipelining is enabled"
            );
            assert!(
                self.pipeline_depth >= 1,
                "pipeline depth must be >= 1 when pipelining is enabled"
            );
        }
        if self.flow_enable {
            assert!(
                self.flow_bounce_pool >= 1,
                "flow control needs at least one bounce-pool slot"
            );
            assert!(
                self.flow_credits <= self.flow_bounce_pool,
                "per-peer flow credits cannot exceed the bounce pool (one sender could overrun it)"
            );
        }
        assert!(
            self.coll_tree_radix >= 2,
            "collective tree radix must be >= 2"
        );
        if self.timeline_interval > Dur::ZERO {
            assert!(
                self.timeline_capacity >= 1,
                "timeline ring needs at least one slot when sampling is enabled"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid_and_matches_paper_best() {
        let c = StackConfig::best();
        c.validate();
        assert_eq!(c.scheme, RdmaScheme::Read);
        assert!(c.chained_fin);
        assert!(!c.inline_first_frag);
        assert_eq!(c.eager_limit, 1984);
        assert!(c.tcp_reliability);
        assert!(c.tcp_retransmit_timeout > Dur::ZERO);
        assert!(c.tcp_retransmit_backoff >= 1);
        assert!(c.reg_cache);
        assert!(c.reg_cache_bytes > 0 && c.reg_cache_entries > 0);
        assert!(c.pipeline_enable);
        assert!(c.pipeline_chunk > 0 && c.pipeline_depth >= 1);
        assert!(c.pipeline_min_len >= c.pipeline_chunk);
    }

    #[test]
    #[should_panic(expected = "pipeline depth must be >= 1")]
    fn zero_pipeline_depth_rejected() {
        let c = StackConfig {
            pipeline_depth: 0,
            ..Default::default()
        };
        c.validate();
    }

    #[test]
    #[should_panic(expected = "pipeline chunk size must be positive")]
    fn zero_pipeline_chunk_rejected() {
        let c = StackConfig {
            pipeline_chunk: 0,
            ..Default::default()
        };
        c.validate();
    }

    #[test]
    fn flow_defaults_are_off_but_sized() {
        let c = StackConfig::default();
        assert!(!c.flow_enable);
        assert_eq!(c.flow_credits, 0, "0 means auto-scale at init");
        assert!(c.flow_bounce_pool >= 1);
        let on = StackConfig {
            flow_enable: true,
            ..Default::default()
        };
        on.validate();
    }

    #[test]
    #[should_panic(expected = "bounce-pool slot")]
    fn zero_bounce_pool_rejected_when_flow_on() {
        let c = StackConfig {
            flow_enable: true,
            flow_bounce_pool: 0,
            ..Default::default()
        };
        c.validate();
    }

    #[test]
    #[should_panic(expected = "cannot exceed the bounce pool")]
    fn oversubscribed_credits_rejected() {
        let c = StackConfig {
            flow_enable: true,
            flow_credits: 65,
            flow_bounce_pool: 64,
            ..Default::default()
        };
        c.validate();
    }

    #[test]
    fn coll_defaults_are_conservative() {
        let c = StackConfig::default();
        assert!(!c.coll_nic_offload, "offload is opt-in");
        assert_eq!(c.coll_tree_radix, 4);
        assert!(c.coll_hw_bcast);
    }

    #[test]
    #[should_panic(expected = "collective tree radix must be >= 2")]
    fn degenerate_tree_radix_rejected() {
        let c = StackConfig {
            coll_tree_radix: 1,
            ..Default::default()
        };
        c.validate();
    }

    #[test]
    #[should_panic(expected = "registration cache capacities")]
    fn zero_reg_cache_capacity_rejected() {
        let c = StackConfig {
            reg_cache_bytes: 0,
            ..Default::default()
        };
        c.validate();
    }

    #[test]
    #[should_panic(expected = "retransmit backoff multiplier")]
    fn zero_backoff_rejected() {
        let c = StackConfig {
            tcp_retransmit_backoff: 0,
            ..Default::default()
        };
        c.validate();
    }

    #[test]
    #[should_panic(expected = "one-thread progress requires")]
    fn invalid_combo_rejected() {
        let c = StackConfig {
            progress: ProgressMode::OneThread,
            ..Default::default()
        };
        c.validate();
    }
}
