//! The user-facing MPI-flavoured API.
//!
//! Each rank's entry closure receives an [`Mpi`] handle wrapping its
//! simulated process, endpoint, and `MPI_COMM_WORLD`. The API follows MPI-2
//! semantics where the paper depends on them: tag/source wildcards, ordered
//! matching, nonblocking requests, communicator creation, and dynamic
//! process management (`spawn`).

use std::cell::{Cell, RefCell};
use std::sync::Arc;

use elan4::HostBuf;
use ompi_datatype::{Convertor, Datatype};
use ompi_rte::{JobId, ProcName};
use qsim::{Dur, Proc, Time};

use crate::comm::{register_comm, Communicator};
use crate::endpoint::Endpoint;
use crate::proto::{self, ReqKind, Request};
use crate::universe::Universe;

/// MPI_ANY_SOURCE for the `src` argument of receives.
pub const ANY_SOURCE: i32 = -1;
/// MPI_ANY_TAG for the `tag` argument of receives.
pub const ANY_TAG: i32 = -1;

/// Completion information of a receive.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Status {
    /// Sender's rank within the communicator.
    pub source: usize,
    /// Matched tag.
    pub tag: i32,
    /// Packed message length in bytes.
    pub len: usize,
    /// `Some` when the stack completed the receive with an error instead
    /// of a payload (MPI_ERR_IN_STATUS semantics). The other fields are
    /// then best-effort: the request's selectors if it never matched.
    pub error: Option<crate::state::MpiErrClass>,
}

/// Per-rank MPI handle. Owned by the rank's simulated process.
pub struct Mpi {
    proc: Proc,
    ep: Arc<Endpoint>,
    universe: Arc<Universe>,
    world: Communicator,
    parent: RefCell<Option<Option<Communicator>>>,
    finalized: Cell<bool>,
}

impl Mpi {
    pub(crate) fn new(
        proc: Proc,
        ep: Arc<Endpoint>,
        universe: Arc<Universe>,
        world: Communicator,
    ) -> Mpi {
        Mpi {
            proc,
            ep,
            universe,
            world,
            parent: RefCell::new(None),
            finalized: Cell::new(false),
        }
    }

    // ---- identity --------------------------------------------------------

    /// This rank's `MPI_COMM_WORLD`.
    pub fn world(&self) -> Communicator {
        self.world.clone()
    }

    /// Rank within the world.
    pub fn rank(&self) -> usize {
        self.world.my_rank
    }

    /// World size.
    pub fn size(&self) -> usize {
        self.world.size()
    }

    /// This process's global name.
    pub fn name(&self) -> ProcName {
        self.ep.name
    }

    /// The job this process belongs to.
    pub fn job(&self) -> JobId {
        self.ep.name.job
    }

    /// The underlying simulated process.
    pub fn proc(&self) -> &Proc {
        &self.proc
    }

    /// The communication endpoint (for stats and instrumentation).
    pub fn endpoint(&self) -> &Arc<Endpoint> {
        &self.ep
    }

    /// The shared machine/configuration.
    pub fn universe(&self) -> &Arc<Universe> {
        &self.universe
    }

    /// Current virtual time.
    pub fn now(&self) -> Time {
        self.proc.now()
    }

    /// Model local computation.
    pub fn compute(&self, d: Dur) {
        self.proc.advance(d);
    }

    // ---- memory ------------------------------------------------------------

    /// Allocate host memory on this rank's node.
    pub fn alloc(&self, len: usize) -> HostBuf {
        self.ep.alloc(len)
    }

    /// Free a buffer.
    pub fn free(&self, buf: HostBuf) {
        self.ep.free(buf);
    }

    /// Untimed host store into a buffer.
    pub fn write(&self, buf: &HostBuf, off: usize, data: &[u8]) {
        self.ep.write_buf(buf, off, data);
    }

    /// Untimed host load from a buffer.
    pub fn read(&self, buf: &HostBuf, off: usize, len: usize) -> Vec<u8> {
        self.ep.read_buf(buf, off, len)
    }

    // ---- point-to-point ----------------------------------------------------

    /// Nonblocking typed send.
    pub fn isend_typed(
        &self,
        comm: &Communicator,
        dst: usize,
        tag: i32,
        buf: &HostBuf,
        conv: Convertor,
    ) -> Request {
        assert!(tag >= 0, "application tags must be non-negative");
        assert!(dst < comm.size(), "destination rank out of range");
        proto::post_send(&self.proc, &self.ep, comm, dst, tag, *buf, conv)
    }

    /// Nonblocking contiguous-bytes send of `len` bytes from `buf`.
    pub fn isend(
        &self,
        comm: &Communicator,
        dst: usize,
        tag: i32,
        buf: &HostBuf,
        len: usize,
    ) -> Request {
        assert!(len <= buf.len);
        self.isend_typed(comm, dst, tag, buf, Convertor::new(Datatype::bytes(len), 1))
    }

    /// Nonblocking typed receive. `src` may be [`ANY_SOURCE`], `tag` may be
    /// [`ANY_TAG`].
    pub fn irecv_typed(
        &self,
        comm: &Communicator,
        src: i32,
        tag: i32,
        buf: &HostBuf,
        conv: Convertor,
    ) -> Request {
        let src_sel = (src != ANY_SOURCE).then(|| {
            assert!((src as usize) < comm.size(), "source rank out of range");
            src as u32
        });
        let tag_sel = (tag != ANY_TAG).then(|| {
            assert!(tag >= 0, "application tags must be non-negative");
            tag
        });
        proto::post_recv(&self.proc, &self.ep, comm, src_sel, tag_sel, *buf, conv)
    }

    /// Nonblocking synchronous send (MPI_Issend): completion guarantees the
    /// receiver matched the message. Implemented by forcing the rendezvous
    /// path, whose FIN_ACK/ACK only comes back after a match (paper Figs.
    /// 3-4).
    pub fn issend(
        &self,
        comm: &Communicator,
        dst: usize,
        tag: i32,
        buf: &HostBuf,
        len: usize,
    ) -> Request {
        assert!(tag >= 0 && dst < comm.size() && len <= buf.len);
        proto::post_send_mode(
            &self.proc,
            &self.ep,
            comm,
            dst,
            tag,
            *buf,
            Convertor::new(Datatype::bytes(len), 1),
            true,
        )
    }

    /// Blocking synchronous send (MPI_Ssend).
    pub fn ssend(&self, comm: &Communicator, dst: usize, tag: i32, buf: &HostBuf, len: usize) {
        let r = self.issend(comm, dst, tag, buf, len);
        self.wait(r);
    }

    /// Nonblocking contiguous-bytes receive of up to `len` bytes.
    pub fn irecv(
        &self,
        comm: &Communicator,
        src: i32,
        tag: i32,
        buf: &HostBuf,
        len: usize,
    ) -> Request {
        assert!(len <= buf.len);
        self.irecv_typed(comm, src, tag, buf, Convertor::new(Datatype::bytes(len), 1))
    }

    /// Block until a request completes.
    pub fn wait(&self, req: Request) {
        proto::wait(&self.proc, &self.ep, req);
    }

    /// Block until a request completes; returns `Err` with the MPI error
    /// class when the stack completed it unsuccessfully (unreachable peer,
    /// retransmissions exhausted) instead of delivering the data. The
    /// request is reaped either way.
    pub fn wait_result(&self, req: Request) -> Result<(), crate::state::MpiErrClass> {
        self.ep.wait_until(&self.proc, |st| match req.kind {
            ReqKind::Send => st.send_reqs.get(&req.id).map(|r| r.done).unwrap_or(true),
            ReqKind::Recv => st.recv_reqs.get(&req.id).map(|r| r.done).unwrap_or(true),
        });
        let mut st = self.ep.state.lock();
        let err = match req.kind {
            ReqKind::Send => st.send_reqs.remove(&req.id).and_then(|r| r.error),
            ReqKind::Recv => st.recv_reqs.remove(&req.id).and_then(|r| r.error),
        };
        drop(st);
        match err {
            Some(e) => {
                self.ep.metric(|m| m.counters.errs_surfaced += 1);
                Err(e)
            }
            None => Ok(()),
        }
    }

    /// Block until a receive completes; returns its status. A receive the
    /// stack completed with an error (unreachable peer, retransmissions
    /// exhausted) yields a status whose `error` field is set instead of a
    /// panic; check it before trusting the payload.
    pub fn wait_status(&self, req: Request) -> Status {
        assert_eq!(req.kind, ReqKind::Recv, "wait_status is for receives");
        self.ep.wait_until(&self.proc, |st| {
            st.recv_reqs.get(&req.id).map(|r| r.done).unwrap_or(true)
        });
        let mut st = self.ep.state.lock();
        let r = st
            .recv_reqs
            .remove(&req.id)
            .expect("request already reaped");
        drop(st);
        if r.error.is_some() {
            self.ep.metric(|m| m.counters.errs_surfaced += 1);
        }
        match (&r.matched, r.error) {
            (Some(m), error) => Status {
                source: m.src_rank as usize,
                tag: m.tag,
                len: m.msg_len,
                error,
            },
            // Failed before matching: fall back to the request's selectors
            // (0 / ANY_TAG when wildcarded) so the caller still gets a
            // well-formed status around the error class.
            (None, error) => Status {
                source: r.src_sel.map(|s| s as usize).unwrap_or(0),
                tag: r.tag_sel.unwrap_or(ANY_TAG),
                len: r.bytes_received,
                error,
            },
        }
    }

    /// Nonblocking completion test. A `true` return reaps the request (MPI
    /// semantics): do not wait on it again.
    pub fn test(&self, req: Request) -> bool {
        proto::test(&self.proc, &self.ep, req)
    }

    /// Fail a live request in place, taking the same teardown a NACK or an
    /// internal protocol error would (mid-pipeline chunk mappings included).
    /// Fault-path test hook, not part of the MPI surface: the peer is not
    /// notified, so the test must degrade both ends itself.
    #[doc(hidden)]
    pub fn abort_request(&self, req: Request, err: crate::state::MpiErrClass) {
        proto::fail_request(&self.proc, &self.ep, req.kind, req.id, err);
    }

    /// Wait for every request in order. Request errors are dropped, as with
    /// MPI_STATUSES_IGNORE; use [`Mpi::waitall_result`] to observe them.
    pub fn waitall(&self, reqs: impl IntoIterator<Item = Request>) {
        for r in reqs {
            self.wait(r);
        }
    }

    /// Wait for every request in order, surfacing per-request errors the
    /// way MPI_ERR_IN_STATUS does: `Err` carries one entry per request (in
    /// posting order) with the error class of each failed one.
    pub fn waitall_result(
        &self,
        reqs: impl IntoIterator<Item = Request>,
    ) -> Result<(), Vec<Option<crate::state::MpiErrClass>>> {
        let mut errs = Vec::new();
        let mut failed = false;
        for r in reqs {
            let e = self.wait_result(r).err();
            failed |= e.is_some();
            errs.push(e);
        }
        if failed {
            Err(errs)
        } else {
            Ok(())
        }
    }

    /// Block until any request in the slice completes; returns its index
    /// (and reaps that request — the others stay pending). Drops the
    /// completed request's error, as with MPI_STATUS_IGNORE; use
    /// [`Mpi::waitany_result`] to observe it.
    pub fn waitany(&self, reqs: &[Request]) -> usize {
        proto::waitany(&self.proc, &self.ep, reqs)
    }

    /// Like [`Mpi::waitany`], but also reports whether the completed
    /// request finished with an error.
    pub fn waitany_result(
        &self,
        reqs: &[Request],
    ) -> (usize, Result<(), crate::state::MpiErrClass>) {
        let (idx, err) = proto::waitany_result(&self.proc, &self.ep, reqs);
        match err {
            Some(e) => {
                self.ep.metric(|m| m.counters.errs_surfaced += 1);
                (idx, Err(e))
            }
            None => (idx, Ok(())),
        }
    }

    /// Blocking send.
    pub fn send(&self, comm: &Communicator, dst: usize, tag: i32, buf: &HostBuf, len: usize) {
        let r = self.isend(comm, dst, tag, buf, len);
        self.wait(r);
    }

    /// Blocking receive; returns the match status.
    pub fn recv(
        &self,
        comm: &Communicator,
        src: i32,
        tag: i32,
        buf: &HostBuf,
        len: usize,
    ) -> Status {
        let r = self.irecv(comm, src, tag, buf, len);
        self.wait_status(r)
    }

    /// Combined send+receive (deadlock-free exchange).
    #[allow(clippy::too_many_arguments)]
    pub fn sendrecv(
        &self,
        comm: &Communicator,
        dst: usize,
        stag: i32,
        sbuf: &HostBuf,
        slen: usize,
        src: i32,
        rtag: i32,
        rbuf: &HostBuf,
        rlen: usize,
    ) -> Status {
        let rr = self.irecv(comm, src, rtag, rbuf, rlen);
        let sr = self.isend(comm, dst, stag, sbuf, slen);
        self.wait(sr);
        self.wait_status(rr)
    }

    /// Nonblocking probe: is a matching message available? Returns its
    /// status without consuming it.
    pub fn iprobe(&self, comm: &Communicator, src: i32, tag: i32) -> Option<Status> {
        let (src_sel, tag_sel) = probe_selectors(comm, src, tag);
        if matches!(
            self.ep.cfg.progress,
            crate::config::ProgressMode::Polling | crate::config::ProgressMode::Interrupt
        ) {
            proto::progress_pass(&self.proc, &self.ep);
        }
        self.ep
            .state
            .lock()
            .peek_unexpected(comm.ctx, src_sel, tag_sel)
            .map(|(s, t, l)| Status {
                source: s as usize,
                tag: t,
                len: l,
                error: None,
            })
    }

    /// Blocking probe: wait until a matching message is available.
    pub fn probe(&self, comm: &Communicator, src: i32, tag: i32) -> Status {
        let (src_sel, tag_sel) = probe_selectors(comm, src, tag);
        let ctx = comm.ctx;
        let mut found = None;
        self.ep.wait_until(&self.proc, |st| {
            found = st.peek_unexpected(ctx, src_sel, tag_sel);
            found.is_some()
        });
        let (s, t, l) = found.unwrap();
        Status {
            source: s as usize,
            tag: t,
            len: l,
            error: None,
        }
    }

    // ---- communicator management -------------------------------------------

    /// Duplicate a communicator (fresh contexts, same group).
    pub fn comm_dup(&self, comm: &Communicator) -> Communicator {
        // Rank 0 allocates the context pair and broadcasts it.
        let mut ctxs = [0u32; 2];
        if comm.my_rank == 0 {
            let (a, b) = self.universe.alloc_ctx_pair();
            ctxs = [a, b];
        }
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&ctxs[0].to_le_bytes());
        bytes.extend_from_slice(&ctxs[1].to_le_bytes());
        let bytes = self.bcast_bytes(comm, 0, bytes);
        let dup = Communicator {
            ctx: u32::from_le_bytes(bytes[0..4].try_into().unwrap()),
            coll_ctx: u32::from_le_bytes(bytes[4..8].try_into().unwrap()),
            group: comm.group.clone(),
            my_rank: comm.my_rank,
            hw_coll: comm.hw_coll,
        };
        register_comm(&self.proc, &self.ep, &dup);
        self.barrier(comm);
        dup
    }

    /// Split `comm` by color (negative = do not participate). Returns the
    /// new communicator for this rank's color.
    pub fn comm_split(&self, comm: &Communicator, color: i32, key: i32) -> Option<Communicator> {
        // Gather everyone's (color, key).
        let mut mine = Vec::new();
        mine.extend_from_slice(&color.to_le_bytes());
        mine.extend_from_slice(&key.to_le_bytes());
        let all = self.allgather_bytes(comm, &mine);
        let pairs: Vec<(i32, i32)> = all
            .chunks_exact(8)
            .map(|c| {
                (
                    i32::from_le_bytes(c[0..4].try_into().unwrap()),
                    i32::from_le_bytes(c[4..8].try_into().unwrap()),
                )
            })
            .collect();

        // Distinct non-negative colors, sorted: rank 0 allocates a context
        // pair for each and broadcasts the table.
        let mut colors: Vec<i32> = pairs.iter().map(|p| p.0).filter(|c| *c >= 0).collect();
        colors.sort_unstable();
        colors.dedup();
        let mut table = Vec::new();
        if comm.my_rank == 0 {
            for c in &colors {
                let (a, b) = self.universe.alloc_ctx_pair();
                table.extend_from_slice(&c.to_le_bytes());
                table.extend_from_slice(&a.to_le_bytes());
                table.extend_from_slice(&b.to_le_bytes());
            }
        } else {
            table = vec![0u8; colors.len() * 12];
        }
        let table = self.bcast_bytes(comm, 0, table);

        self.barrier(comm);
        if color < 0 {
            return None;
        }
        let (ctx, coll_ctx) = table
            .chunks_exact(12)
            .find_map(|c| {
                let col = i32::from_le_bytes(c[0..4].try_into().unwrap());
                (col == color).then(|| {
                    (
                        u32::from_le_bytes(c[4..8].try_into().unwrap()),
                        u32::from_le_bytes(c[8..12].try_into().unwrap()),
                    )
                })
            })
            .expect("own color missing from split table");

        // Members of my color, ordered by (key, old rank).
        let mut members: Vec<(i32, usize)> = pairs
            .iter()
            .enumerate()
            .filter(|(_, p)| p.0 == color)
            .map(|(r, p)| (p.1, r))
            .collect();
        members.sort_unstable();
        let group: Vec<ProcName> = members.iter().map(|(_, r)| comm.group[*r]).collect();
        let my_rank = members
            .iter()
            .position(|(_, r)| *r == comm.my_rank)
            .unwrap();
        let new = Communicator {
            ctx,
            coll_ctx,
            group,
            my_rank,
            // A split group did not initialize synchronously as one unit;
            // no global address space, no hardware broadcast (paper §4.1).
            hw_coll: false,
        };
        register_comm(&self.proc, &self.ep, &new);
        Some(new)
    }

    /// Release a communicator's matching state (MPI_Comm_free). Collective:
    /// all members must call it, and no traffic may be pending on it.
    pub fn comm_free(&self, comm: Communicator) {
        self.barrier(&comm);
        let mut st = self.ep.state.lock();
        for ctx in [comm.ctx, comm.coll_ctx] {
            if let Some(c) = st.comms.remove(&ctx) {
                assert!(
                    c.unexpected.is_empty() && c.posted.is_empty(),
                    "comm_free with pending traffic on ctx {ctx}"
                );
            }
        }
    }

    // ---- dynamic process management (MPI-2) ----------------------------------

    /// Spawn `count` new MPI processes running `entry` on the given nodes
    /// (paper §4.1: processes join the Quadrics network dynamically, claiming
    /// contexts from the system-wide capability at any time). Returns the
    /// merged parent+children communicator: this rank is rank 0, child `i`
    /// is rank `i + 1`.
    pub fn spawn(
        &self,
        count: usize,
        nodes: &[usize],
        entry: impl Fn(Mpi) + Send + Sync + 'static,
    ) -> Communicator {
        assert_eq!(nodes.len(), count);
        let uni = self.universe.clone();
        let child_job = uni.rte.create_job(count, Some(self.ep.name));
        let (ictx, icoll) = uni.alloc_ctx_pair();
        let (wctx, wcoll) = uni.alloc_ctx_pair();

        // Publish the context ids where the children can find them.
        let mut blob = Vec::new();
        for v in [ictx, icoll, wctx, wcoll] {
            blob.extend_from_slice(&v.to_le_bytes());
        }
        uni.rte.modex_put(
            &self.proc,
            self.ep.name,
            &format!("spawn-{}", child_job.0),
            blob,
        );

        let mut group = vec![self.ep.name];
        group.extend((0..count).map(|r| ProcName {
            job: child_job,
            rank: r,
        }));
        let inter = Communicator {
            ctx: ictx,
            coll_ctx: icoll,
            group,
            my_rank: 0,
            hw_coll: false,
        };
        register_comm(&self.proc, &self.ep, &inter);

        let entry = Arc::new(entry);
        let parent_name = self.ep.name;
        for (rank, &node) in nodes.iter().enumerate() {
            let uni = uni.clone();
            let entry = entry.clone();
            self.proc
                .spawn(&format!("spawned-{}-{rank}", child_job.0), move |p| {
                    let name = ProcName {
                        job: child_job,
                        rank,
                    };
                    let ep = Endpoint::init(
                        &p,
                        name,
                        node,
                        uni.cfg.clone(),
                        uni.transports.clone(),
                        uni.cluster.clone(),
                        uni.rte.clone(),
                        Some(uni.tcp_net.clone()),
                    );
                    ep.start_progress(&p);
                    // Fetch the context ids the parent allocated.
                    let blob =
                        uni.rte
                            .modex_get(&p, parent_name, &format!("spawn-{}", child_job.0));
                    let v: Vec<u32> = blob
                        .chunks_exact(4)
                        .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
                        .collect();
                    let world_group = (0..count)
                        .map(|r| ProcName {
                            job: child_job,
                            rank: r,
                        })
                        .collect();
                    let world = Communicator {
                        ctx: v[2],
                        coll_ctx: v[3],
                        group: world_group,
                        my_rank: rank,
                        // Spawned after the initial launch: late joiners have
                        // no global virtual address space (paper §4.1).
                        hw_coll: false,
                    };
                    register_comm(&p, &ep, &world);
                    let mut inter_group = vec![parent_name];
                    inter_group.extend(world.group.iter().copied());
                    let inter = Communicator {
                        ctx: v[0],
                        coll_ctx: v[1],
                        group: inter_group,
                        my_rank: rank + 1,
                        hw_coll: false,
                    };
                    register_comm(&p, &ep, &inter);
                    uni.rte.barrier(&p, child_job);
                    let mpi = Mpi::new(p, ep, uni, world);
                    *mpi.parent.borrow_mut() = Some(Some(inter));
                    entry(mpi);
                });
        }
        inter
    }

    /// For spawned processes: the merged communicator to the parent
    /// (`None` for processes launched directly).
    pub fn parent_comm(&self) -> Option<Communicator> {
        if let Some(cached) = self.parent.borrow().as_ref() {
            return cached.clone();
        }
        *self.parent.borrow_mut() = Some(None);
        None
    }

    // ---- teardown ------------------------------------------------------------

    /// Drain pending communication, synchronize, and release network
    /// resources. Called automatically when the handle drops.
    pub fn finalize(&self) {
        if !self.finalized.replace(true) {
            self.ep.finalize(&self.proc);
        }
    }
}

/// A persistent communication request (MPI_Send_init / MPI_Recv_init):
/// the argument set is frozen once; each [`Mpi::start`] posts a fresh
/// operation with it. Useful for fixed communication patterns (halo
/// exchanges) where request setup cost matters.
#[derive(Clone)]
pub struct PersistentRequest {
    comm: Communicator,
    kind: ReqKind,
    peer: i32,
    tag: i32,
    buf: elan4::HostBuf,
    conv: Convertor,
}

impl Mpi {
    /// Freeze a send's argument set for repeated starting.
    pub fn send_init(
        &self,
        comm: &Communicator,
        dst: usize,
        tag: i32,
        buf: &HostBuf,
        len: usize,
    ) -> PersistentRequest {
        assert!(tag >= 0 && dst < comm.size() && len <= buf.len);
        PersistentRequest {
            comm: comm.clone(),
            kind: ReqKind::Send,
            peer: dst as i32,
            tag,
            buf: *buf,
            conv: Convertor::new(Datatype::bytes(len), 1),
        }
    }

    /// Freeze a receive's argument set for repeated starting.
    pub fn recv_init(
        &self,
        comm: &Communicator,
        src: i32,
        tag: i32,
        buf: &HostBuf,
        len: usize,
    ) -> PersistentRequest {
        assert!(len <= buf.len);
        PersistentRequest {
            comm: comm.clone(),
            kind: ReqKind::Recv,
            peer: src,
            tag,
            buf: *buf,
            conv: Convertor::new(Datatype::bytes(len), 1),
        }
    }

    /// Post one operation from a persistent request (MPI_Start).
    pub fn start(&self, p: &PersistentRequest) -> Request {
        match p.kind {
            ReqKind::Send => {
                self.isend_typed(&p.comm, p.peer as usize, p.tag, &p.buf, p.conv.clone())
            }
            ReqKind::Recv => self.irecv_typed(&p.comm, p.peer, p.tag, &p.buf, p.conv.clone()),
        }
    }

    /// Start every request in the slice (MPI_Startall).
    pub fn startall(&self, ps: &[PersistentRequest]) -> Vec<Request> {
        ps.iter().map(|p| self.start(p)).collect()
    }
}

fn probe_selectors(comm: &Communicator, src: i32, tag: i32) -> (Option<u32>, Option<i32>) {
    let src_sel = (src != ANY_SOURCE).then(|| {
        assert!((src as usize) < comm.size(), "source rank out of range");
        src as u32
    });
    let tag_sel = (tag != ANY_TAG).then(|| {
        assert!(tag >= 0, "application tags must be non-negative");
        tag
    });
    (src_sel, tag_sel)
}

impl Drop for Mpi {
    fn drop(&mut self) {
        if !self.finalized.get() && !std::thread::panicking() {
            self.finalized.set(true);
            self.ep.finalize(&self.proc);
        }
    }
}
