//! Tree-based collectives layered on point-to-point, as in the paper's
//! stack ("currently, collective communication is provided as a separated
//! component on top of point-to-point communication", §2.1).
//!
//! All collective traffic flows on the communicator's collective context so
//! it can never match application receives.

use std::sync::Arc;

use elan4::{EventId, NicReduce, QdmaSpec, Vpid};

use crate::comm::Communicator;
use crate::metrics::CollOp;
use crate::mpi::Mpi;

/// Reduction operators over typed byte buffers.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ReduceOp {
    /// Element-wise f64 sum.
    SumF64,
    /// Element-wise f64 max.
    MaxF64,
    /// Element-wise wrapping u64 sum.
    SumU64,
}

impl ReduceOp {
    /// `acc ⟵ acc ⊕ other`, element-wise.
    pub fn apply(&self, acc: &mut [u8], other: &[u8]) {
        assert_eq!(acc.len(), other.len());
        match self {
            ReduceOp::SumF64 => fold::<8>(acc, other, |a, b| {
                (f64::from_le_bytes(a) + f64::from_le_bytes(b)).to_le_bytes()
            }),
            ReduceOp::MaxF64 => fold::<8>(acc, other, |a, b| {
                f64::from_le_bytes(a)
                    .max(f64::from_le_bytes(b))
                    .to_le_bytes()
            }),
            ReduceOp::SumU64 => fold::<8>(acc, other, |a, b| {
                u64::from_le_bytes(a)
                    .wrapping_add(u64::from_le_bytes(b))
                    .to_le_bytes()
            }),
        }
    }
}

fn fold<const N: usize>(acc: &mut [u8], other: &[u8], f: impl Fn([u8; N], [u8; N]) -> [u8; N]) {
    assert_eq!(acc.len() % N, 0, "buffer not a whole number of elements");
    for (a, b) in acc.chunks_exact_mut(N).zip(other.chunks_exact(N)) {
        let r = f(a.try_into().unwrap(), b.try_into().unwrap());
        a.copy_from_slice(&r);
    }
}

const TAG_BARRIER: i32 = 1;
const TAG_BCAST: i32 = 2;
const TAG_REDUCE: i32 = 3;
const TAG_GATHER: i32 = 4;
const TAG_ALLTOALL: i32 = 5;
const TAG_ALLGATHER: i32 = 6;
const TAG_BCAST_HW: i32 = 7;
const TAG_SCATTER: i32 = 8;

impl Mpi {
    /// Telemetry: one collective entered. Composed collectives (allreduce,
    /// reduce_scatter, …) also count the primitives they delegate to.
    fn coll_count(&self, op: CollOp) {
        self.endpoint()
            .metric(|m| m.counters.coll[op as usize] += 1);
    }

    /// Run one collective body with causal attribution: count it and, at
    /// the outermost nesting level, open a `coll` trace span whose id tags
    /// (via [`crate::endpoint::Endpoint::cur_coll`]) every message the
    /// collective posts, so a merged trace links fan-in/fan-out hops back
    /// to the operation. Composed collectives stay attributed to the outer
    /// operation: the inner primitive only adds its counter.
    fn with_coll<R>(&self, op: CollOp, f: impl FnOnce() -> R) -> R {
        self.coll_count(op);
        let cid = self.endpoint().coll_enter();
        if let Some(id) = cid {
            self.endpoint().trace(
                self.proc().now(),
                crate::trace::TraceEvent::SpanBegin {
                    id,
                    cat: "coll",
                    name: op.name(),
                },
            );
        }
        let out = f();
        if let Some(id) = cid {
            self.endpoint().trace(
                self.proc().now(),
                crate::trace::TraceEvent::SpanEnd {
                    id,
                    cat: "coll",
                    name: op.name(),
                },
            );
        }
        self.endpoint().coll_exit();
        out
    }

    /// Barrier: a NIC-resident event-tree program when the communicator is
    /// eligible for offload, otherwise a host-driven dissemination barrier
    /// (ceil(log2(n)) rounds).
    pub fn barrier(&self, comm: &Communicator) {
        self.with_coll(CollOp::Barrier, || {
            let c = comm.coll_plane();
            let n = c.size();
            if n <= 1 {
                return;
            }
            if self.endpoint().tunables.coll_nic_offload() {
                if self.nic_eligible(&c) {
                    if let Some(prog) = self.nic_program(&c, NicCollKind::Barrier, None, 0) {
                        return self.run_nic_barrier(&prog);
                    }
                }
                self.nic_fallback();
            }
            self.host_barrier(&c, TAG_BARRIER);
        })
    }

    /// Host-driven dissemination barrier over point-to-point, with tags
    /// drawn from `tag_base * 1000 + round`. Also the synchronization step
    /// of NIC-program setup (which must not recurse into `barrier`).
    fn host_barrier(&self, c: &Communicator, tag_base: i32) {
        let n = c.size();
        let me = c.rank();
        let buf = self.alloc(1);
        let mut k = 1;
        let mut round = 0;
        while k < n {
            let to = (me + k) % n;
            let from = (me + n - k) % n;
            let tag = tag_base * 1000 + round;
            let rr = self.irecv(c, from as i32, tag, &buf, 0);
            let sr = self.isend(c, to, tag, &buf, 0);
            self.wait(sr);
            self.wait(rr);
            k <<= 1;
            round += 1;
        }
        self.free(buf);
    }

    /// Broadcast `len` bytes of `buf` from `root`. Uses the Elan4 hardware
    /// broadcast when the communicator was created synchronously (the
    /// global-virtual-address-space gate of paper §4.1); otherwise a
    /// binomial tree over point-to-point.
    pub fn bcast(&self, comm: &Communicator, root: usize, buf: &elan4::HostBuf, len: usize) {
        let c = comm.coll_plane();
        let n = c.size();
        if n <= 1 {
            return;
        }
        if self.endpoint().tunables.coll_nic_offload() {
            if self.nic_eligible(&c) && len <= NIC_COLL_MAX {
                if let Some(prog) = self.nic_program(&c, NicCollKind::Bcast, None, root) {
                    return self.with_coll(CollOp::Bcast, || {
                        self.run_nic_bcast(&c, &prog, root, buf, len)
                    });
                }
            }
            self.nic_fallback();
        }
        if c.hw_coll
            && self.endpoint().transports.elan_rails > 0
            && self.endpoint().tunables.coll_hw_bcast()
        {
            return self.bcast_hw(&c, root, buf, len);
        }
        self.with_coll(CollOp::Bcast, || {
            // Virtual rank with the root at 0.
            let vrank = (c.rank() + n - root) % n;
            let mut mask = 1usize;
            // Receive once from the parent...
            while mask < n {
                if vrank & mask != 0 {
                    let parent = (vrank - mask + root) % n;
                    self.recv(&c, parent as i32, TAG_BCAST, buf, len);
                    break;
                }
                mask <<= 1;
            }
            // ...then forward down the tree.
            mask >>= 1;
            while mask > 0 {
                if vrank + mask < n {
                    let child = (vrank + mask + root) % n;
                    self.send(&c, child, TAG_BCAST, buf, len);
                }
                mask >>= 1;
            }
        })
    }

    /// Hardware broadcast: the root chunks the payload into ≤1984-byte
    /// eager fragments, each delivered to every member with a single NIC
    /// injection; members receive them as ordinary matched messages.
    fn bcast_hw(&self, c: &Communicator, root: usize, buf: &elan4::HostBuf, len: usize) {
        self.endpoint().metric(|m| m.counters.coll_hw_bcasts += 1);
        self.with_coll(CollOp::BcastHw, || {
            const CHUNK: usize = crate::hdr::MAX_INLINE;
            let chunks = len.div_ceil(CHUNK).max(1);
            if c.rank() == root {
                for i in 0..chunks {
                    let off = i * CHUNK;
                    let take = (len - off).min(CHUNK);
                    let data = self.read(buf, off, take);
                    crate::proto::post_bcast_eager(
                        self.proc(),
                        self.endpoint(),
                        c,
                        TAG_BCAST_HW,
                        &data,
                    );
                }
            } else {
                for i in 0..chunks {
                    let off = i * CHUNK;
                    let take = (len - off).min(CHUNK);
                    let slot = buf.slice(off, take.max(1));
                    self.recv(c, root as i32, TAG_BCAST_HW, &slot, take);
                }
            }
        })
    }

    /// Scatter: block `i` of `send` (root only) lands in every rank `i`'s
    /// `recv` buffer.
    pub fn scatter(
        &self,
        comm: &Communicator,
        root: usize,
        send: Option<&elan4::HostBuf>,
        recv: &elan4::HostBuf,
        block: usize,
    ) {
        self.with_coll(CollOp::Scatter, || {
            let c = comm.coll_plane();
            let n = c.size();
            if c.rank() == root {
                let send = send.expect("root must supply a send buffer");
                assert!(send.len >= n * block, "scatter buffer too small");
                let own = self.read(send, root * block, block);
                self.write(recv, 0, &own);
                let reqs: Vec<_> = (0..n)
                    .filter(|&r| r != root)
                    .map(|r| {
                        let slot = send.slice(r * block, block);
                        self.isend(&c, r, TAG_SCATTER, &slot, block)
                    })
                    .collect();
                self.waitall(reqs);
            } else {
                self.recv(&c, root as i32, TAG_SCATTER, recv, block);
            }
        })
    }

    /// Broadcast a variable-length byte vector (length prefix + payload).
    pub fn bcast_bytes(&self, comm: &Communicator, root: usize, data: Vec<u8>) -> Vec<u8> {
        let c = comm.coll_plane();
        let lbuf = self.alloc(8);
        if c.rank() == root {
            self.write(&lbuf, 0, &(data.len() as u64).to_le_bytes());
        }
        self.bcast(comm, root, &lbuf, 8);
        let len = u64::from_le_bytes(self.read(&lbuf, 0, 8).try_into().unwrap()) as usize;
        self.free(lbuf);

        let buf = self.alloc(len.max(1));
        if c.rank() == root {
            self.write(&buf, 0, &data);
        }
        self.bcast(comm, root, &buf, len);
        let out = self.read(&buf, 0, len);
        self.free(buf);
        out
    }

    /// Binomial-tree reduction of `len` bytes to `root`. Every rank's `buf`
    /// holds its contribution; on the root it holds the result afterwards.
    pub fn reduce(
        &self,
        comm: &Communicator,
        root: usize,
        op: ReduceOp,
        buf: &elan4::HostBuf,
        len: usize,
    ) {
        self.with_coll(CollOp::Reduce, || {
            let c = comm.coll_plane();
            let n = c.size();
            if n <= 1 {
                return;
            }
            let vrank = (c.rank() + n - root) % n;
            let tmp = self.alloc(len.max(1));
            let mut mask = 1usize;
            while mask < n {
                if vrank & mask != 0 {
                    let parent = (vrank - mask + root) % n;
                    self.send(&c, parent, TAG_REDUCE, buf, len);
                    break;
                }
                if vrank + mask < n {
                    let child = (vrank + mask + root) % n;
                    self.recv(&c, child as i32, TAG_REDUCE, &tmp, len);
                    let mut acc = self.read(buf, 0, len);
                    let other = self.read(&tmp, 0, len);
                    op.apply(&mut acc, &other);
                    self.write(buf, 0, &acc);
                }
                mask <<= 1;
            }
            self.free(tmp);
        })
    }

    /// Reduce-to-all: a NIC-resident combining tree when eligible (the NIC
    /// reduces on the way up and broadcasts the result on the way down),
    /// otherwise reduce to rank 0 then broadcast.
    pub fn allreduce(&self, comm: &Communicator, op: ReduceOp, buf: &elan4::HostBuf, len: usize) {
        self.with_coll(CollOp::Allreduce, || {
            if self.endpoint().tunables.coll_nic_offload() {
                let c = comm.coll_plane();
                if self.nic_eligible(&c) && len <= NIC_COLL_MAX && len.is_multiple_of(8) {
                    if let Some(nic_op) = op.nic_reduce() {
                        if let Some(prog) =
                            self.nic_program(&c, NicCollKind::Allreduce, Some(nic_op), 0)
                        {
                            return self.run_nic_allreduce(&prog, buf, len);
                        }
                    }
                }
                self.nic_fallback();
            }
            self.reduce(comm, 0, op, buf, len);
            self.bcast(comm, 0, buf, len);
        })
    }

    /// Gather `len` bytes from every rank into `recv` (root only), ordered
    /// by rank.
    pub fn gather(
        &self,
        comm: &Communicator,
        root: usize,
        sbuf: &elan4::HostBuf,
        len: usize,
        recv: Option<&elan4::HostBuf>,
    ) {
        self.with_coll(CollOp::Gather, || {
            let c = comm.coll_plane();
            let n = c.size();
            if c.rank() == root {
                let recv = recv.expect("root must supply a receive buffer");
                assert!(recv.len >= n * len, "gather buffer too small");
                let data = self.read(sbuf, 0, len);
                self.write(recv, root * len, &data);
                let mut reqs = Vec::new();
                for r in 0..n {
                    if r == root {
                        continue;
                    }
                    let slot = recv.slice(r * len, len);
                    reqs.push(self.irecv(&c, r as i32, TAG_GATHER, &slot, len));
                }
                self.waitall(reqs);
            } else {
                self.send(&c, root, TAG_GATHER, sbuf, len);
            }
        })
    }

    /// All-gather via gather + broadcast.
    pub fn allgather(
        &self,
        comm: &Communicator,
        sbuf: &elan4::HostBuf,
        len: usize,
        recv: &elan4::HostBuf,
    ) {
        self.with_coll(CollOp::Allgather, || {
            self.gather(comm, 0, sbuf, len, Some(recv));
            self.bcast(comm, 0, recv, comm.size() * len);
        })
    }

    /// All-gather of small variable payloads (equal length per rank derived
    /// from `mine`), returned as a concatenated vector ordered by rank.
    pub fn allgather_bytes(&self, comm: &Communicator, mine: &[u8]) -> Vec<u8> {
        let n = comm.size();
        let len = mine.len();
        let sbuf = self.alloc(len.max(1));
        self.write(&sbuf, 0, mine);
        let rbuf = self.alloc((n * len).max(1));
        self.allgather(comm, &sbuf, len, &rbuf);
        let out = self.read(&rbuf, 0, n * len);
        self.free(sbuf);
        self.free(rbuf);
        out
    }

    /// Pairwise-exchange all-to-all: rank `r`'s block `i` of `send` goes to
    /// rank `i`'s block `r` of `recv`.
    pub fn alltoall(
        &self,
        comm: &Communicator,
        send: &elan4::HostBuf,
        recv: &elan4::HostBuf,
        block: usize,
    ) {
        self.with_coll(CollOp::Alltoall, || {
            let c = comm.coll_plane();
            let n = c.size();
            let me = c.rank();
            assert!(send.len >= n * block && recv.len >= n * block);
            // Local block.
            let own = self.read(send, me * block, block);
            self.write(recv, me * block, &own);
            // Exchange with every other rank, staggered to avoid hot spots.
            for step in 1..n {
                let to = (me + step) % n;
                let from = (me + n - step) % n;
                let sslice = send.slice(to * block, block);
                let rslice = recv.slice(from * block, block);
                let tag = TAG_ALLTOALL * 1000 + step as i32;
                let rr = self.irecv(&c, from as i32, tag, &rslice, block);
                let sr = self.isend(&c, to, tag, &sslice, block);
                self.wait(sr);
                self.wait(rr);
            }
            let _ = TAG_ALLGATHER;
        })
    }
}

const TAG_SCAN: i32 = 9;
const TAG_GATHERV: i32 = 10;

impl Mpi {
    /// Inclusive prefix reduction (MPI_Scan): rank `r` ends up with the
    /// reduction of ranks `0..=r`. Linear chain: receive from the left,
    /// fold, forward to the right.
    pub fn scan(&self, comm: &Communicator, op: ReduceOp, buf: &elan4::HostBuf, len: usize) {
        self.with_coll(CollOp::Scan, || {
            let c = comm.coll_plane();
            let n = c.size();
            let me = c.rank();
            if n <= 1 {
                return;
            }
            if me > 0 {
                let tmp = self.alloc(len.max(1));
                self.recv(&c, (me - 1) as i32, TAG_SCAN, &tmp, len);
                let mut acc = self.read(buf, 0, len);
                let left = self.read(&tmp, 0, len);
                op.apply(&mut acc, &left);
                self.write(buf, 0, &acc);
                self.free(tmp);
            }
            if me < n - 1 {
                self.send(&c, me + 1, TAG_SCAN, buf, len);
            }
        })
    }

    /// Reduce-scatter with equal blocks: element-wise reduction of every
    /// rank's `send` (length `n * block`), with block `i` of the result
    /// landing in rank `i`'s `recv`.
    pub fn reduce_scatter(
        &self,
        comm: &Communicator,
        op: ReduceOp,
        send: &elan4::HostBuf,
        recv: &elan4::HostBuf,
        block: usize,
    ) {
        self.with_coll(CollOp::ReduceScatter, || {
            let c = comm.coll_plane();
            let n = c.size();
            assert!(send.len >= n * block && recv.len >= block);
            // Reduce to rank 0, then scatter — simple and correct; a pairwise
            // exchange would halve the traffic but the collective layer is not
            // what the paper evaluates.
            let work = self.alloc((n * block).max(1));
            let data = self.read(send, 0, n * block);
            self.write(&work, 0, &data);
            self.reduce(comm, 0, op, &work, n * block);
            if c.rank() == 0 {
                self.scatter(comm, 0, Some(&work), recv, block);
            } else {
                self.scatter(comm, 0, None, recv, block);
            }
            self.free(work);
        })
    }

    /// Variable-length gather: each rank contributes `len` bytes; the root
    /// receives them ordered by rank, returned as (offsets, bytes).
    pub fn gatherv(
        &self,
        comm: &Communicator,
        root: usize,
        data: &[u8],
    ) -> Option<(Vec<usize>, Vec<u8>)> {
        self.with_coll(CollOp::Gatherv, || self.gatherv_inner(comm, root, data))
    }

    fn gatherv_inner(
        &self,
        comm: &Communicator,
        root: usize,
        data: &[u8],
    ) -> Option<(Vec<usize>, Vec<u8>)> {
        let c = comm.coll_plane();
        let n = c.size();
        // Gather the lengths first.
        let mut len_bytes = Vec::with_capacity(8);
        len_bytes.extend_from_slice(&(data.len() as u64).to_le_bytes());
        let lbuf = self.alloc(8);
        self.write(&lbuf, 0, &len_bytes);
        let lens_buf = self.alloc(8 * n);
        self.gather(
            comm,
            root,
            &lbuf,
            8,
            (c.rank() == root).then_some(&lens_buf),
        );

        let result = if c.rank() == root {
            let lens: Vec<usize> = self
                .read(&lens_buf, 0, 8 * n)
                .chunks_exact(8)
                .map(|b| u64::from_le_bytes(b.try_into().unwrap()) as usize)
                .collect();
            let mut offsets = Vec::with_capacity(n + 1);
            let mut total = 0;
            for l in &lens {
                offsets.push(total);
                total += l;
            }
            offsets.push(total);
            let mut out = vec![0u8; total];
            out[offsets[root]..offsets[root] + data.len()].copy_from_slice(data);
            // Receive each rank's payload into its slot.
            let mut reqs = Vec::new();
            let mut bufs = Vec::new();
            for (r, len) in lens.iter().enumerate() {
                if r == root || *len == 0 {
                    continue;
                }
                let b = self.alloc(*len);
                reqs.push((r, self.irecv(&c, r as i32, TAG_GATHERV, &b, *len)));
                bufs.push((r, b));
            }
            for (_, req) in &reqs {
                self.wait(*req);
            }
            for (r, b) in &bufs {
                let bytes = self.read(b, 0, lens[*r]);
                out[offsets[*r]..offsets[*r] + lens[*r]].copy_from_slice(&bytes);
                self.free(*b);
            }
            Some((offsets, out))
        } else {
            if !data.is_empty() {
                let b = self.alloc(data.len());
                self.write(&b, 0, data);
                self.send(&c, root, TAG_GATHERV, &b, data.len());
                self.free(b);
            }
            None
        };
        self.free(lbuf);
        self.free(lens_buf);
        result
    }
}

const TAG_ALLTOALLV: i32 = 11;

impl Mpi {
    /// Variable-count all-to-all: `sends[i]` goes to rank `i`; returns the
    /// vector received from each rank, in rank order. Lengths need not be
    /// agreed beforehand — receivers probe for them.
    pub fn alltoallv(&self, comm: &Communicator, sends: &[Vec<u8>]) -> Vec<Vec<u8>> {
        self.with_coll(CollOp::Alltoallv, || self.alltoallv_inner(comm, sends))
    }

    fn alltoallv_inner(&self, comm: &Communicator, sends: &[Vec<u8>]) -> Vec<Vec<u8>> {
        let c = comm.coll_plane();
        let n = c.size();
        let me = c.rank();
        assert_eq!(sends.len(), n, "one send vector per rank");

        let mut reqs = Vec::new();
        let mut bufs = Vec::new();
        for (d, data) in sends.iter().enumerate() {
            if d == me {
                continue;
            }
            let b = self.alloc(data.len().max(1));
            self.write(&b, 0, data);
            reqs.push(self.isend(&c, d, TAG_ALLTOALLV, &b, data.len()));
            bufs.push(b);
        }

        let mut out: Vec<Vec<u8>> = vec![Vec::new(); n];
        out[me] = sends[me].clone();
        for _ in 0..n - 1 {
            let st = self.probe(&c, crate::mpi::ANY_SOURCE, TAG_ALLTOALLV);
            let b = self.alloc(st.len.max(1));
            self.recv(&c, st.source as i32, TAG_ALLTOALLV, &b, st.len);
            out[st.source] = self.read(&b, 0, st.len);
            self.free(b);
        }
        self.waitall(reqs);
        for b in bufs {
            self.free(b);
        }
        out
    }
}

/// Setup tag for the NIC-program event-id exchange.
const TAG_NICPROG: i32 = 12;
/// Tag base for the host barrier that closes NIC-program setup.
const TAG_NICPROG_SYNC: i32 = 13;

/// NIC payloads ride in single event-write QDMAs, so an offloaded bcast or
/// allreduce frame is capped at the QDMA limit.
const NIC_COLL_MAX: usize = 2048;

impl ReduceOp {
    /// The NIC-side reduction implementing this operator, if the NIC thread
    /// processor supports it. Only commutative/associative 64-bit-lane ops
    /// qualify; anything else keeps the collective on the host path.
    fn nic_reduce(&self) -> Option<NicReduce> {
        match self {
            ReduceOp::SumF64 => Some(NicReduce::SumF64),
            ReduceOp::MaxF64 => Some(NicReduce::MaxF64),
            ReduceOp::SumU64 => Some(NicReduce::SumU64),
        }
    }
}

/// Which collective a NIC-resident event program implements.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum NicCollKind {
    /// Pure synchronization: empty payloads up and down the tree.
    Barrier,
    /// Root seeds its children's down events; the up tree stays dormant.
    Bcast,
    /// Combining tree: partials reduce on the way up, the result fans out
    /// on the way down.
    Allreduce,
}

impl NicCollKind {
    fn name(&self) -> &'static str {
        match self {
            NicCollKind::Barrier => "barrier",
            NicCollKind::Bcast => "bcast",
            NicCollKind::Allreduce => "allreduce",
        }
    }
}

/// Cache key for one compiled NIC program. Payload length is deliberately
/// absent: the event wiring is payload-agnostic, so one program serves every
/// message size a communicator throws at it.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct ProgKey {
    /// The communicator's collective context id.
    pub coll_ctx: u32,
    /// Which collective the program implements.
    pub kind: NicCollKind,
    /// NIC reduction (allreduce programs only).
    pub op: Option<NicReduce>,
    /// Tree fan-out the program was compiled for.
    pub radix: usize,
    /// Root rank the tree is rotated around.
    pub root: usize,
}

/// One rank's slice of a compiled NIC collective program: two counted
/// events whose chains encode the tree, armed once and reused for every
/// subsequent call (auto-reset re-arms the counts on the NIC).
pub struct NicProgram {
    /// Trace identity (unique per rank).
    prog_id: u64,
    /// Fan-in event: children's arrivals plus this rank's own entry. Fires
    /// when the whole subtree has entered; carries the combined payload.
    up: elan4::ElanEvent,
    /// Fan-out event: one arrival from the parent releases this rank and
    /// forwards the payload to its children.
    down: elan4::ElanEvent,
    /// This rank's position in virtual-rank space (root at 0).
    vr: usize,
    /// Direct children as (vpid, down-event id) — the bcast root seeds
    /// these directly with QDMAs.
    children: Vec<(Vpid, EventId)>,
}

/// Cached outcome of NIC-program compilation for one [`ProgKey`]. A
/// `Fallback` entry pins the decision so ineligible communicators don't
/// rescan their peer list on every call.
#[derive(Clone)]
pub enum CachedProg {
    /// Program armed and reusable.
    Ready(Arc<NicProgram>),
    /// Offload impossible for this key (e.g. a TCP-only member).
    Fallback,
}

impl Mpi {
    /// Structural eligibility for NIC offload: a synchronously-created
    /// group (shared virtual address space, like the hardware broadcast
    /// gate of paper §4.1), an Elan rail to run on, and a non-trivial
    /// group. Per-call payload limits are checked at the call sites.
    fn nic_eligible(&self, c: &Communicator) -> bool {
        c.hw_coll && self.endpoint().transports.elan_rails > 0 && c.size() > 1
    }

    /// Telemetry: offload was requested (`coll.nic_offload` on) but this
    /// call ran on the host path instead.
    fn nic_fallback(&self) {
        self.endpoint()
            .metric(|m| m.counters.coll_nic_fallbacks += 1);
    }

    /// Look up (or compile) the NIC program for `key`. Every member of the
    /// communicator must call this with the same arguments — compilation
    /// performs a setup exchange — which holds because all inputs to the
    /// decision (cvars, group shape, modex contents) are job-uniform.
    fn nic_program(
        &self,
        c: &Communicator,
        kind: NicCollKind,
        op: Option<NicReduce>,
        root: usize,
    ) -> Option<Arc<NicProgram>> {
        let ep = self.endpoint();
        let radix = ep.tunables.coll_tree_radix();
        let key = ProgKey {
            coll_ctx: c.ctx,
            kind,
            op,
            radix,
            root,
        };
        if let Some(cached) = ep.nic_progs.lock().get(&key) {
            return match cached {
                CachedProg::Ready(p) => Some(p.clone()),
                CachedProg::Fallback => None,
            };
        }
        let built = self.build_nic_program(c, kind, op, radix, root);
        let entry = match &built {
            Some(p) => CachedProg::Ready(p.clone()),
            None => CachedProg::Fallback,
        };
        ep.nic_progs.lock().insert(key, entry);
        built
    }

    /// Compile one rank's slice of a NIC collective program: create the up
    /// and down events, exchange event ids through comm-rank 0, arm the
    /// chains that encode a radix-`radix` tree rotated around `root`, and
    /// synchronize so no rank enters a program a peer has not armed yet.
    ///
    /// Returns `None` when any member lacks Elan addressing (a TCP-only
    /// route cannot host a counted event); the decision is identical on
    /// every rank, so no rank blocks in the exchange.
    fn build_nic_program(
        &self,
        c: &Communicator,
        kind: NicCollKind,
        op: Option<NicReduce>,
        radix: usize,
        root: usize,
    ) -> Option<Arc<NicProgram>> {
        let ep = self.endpoint();
        let n = c.size();
        let vpids: Option<Vec<Vpid>> = {
            let st = ep.state.lock();
            c.group
                .iter()
                .map(|p| st.peers.get(p).and_then(|pi| pi.elan.map(|e| e.vpid)))
                .collect()
        };
        let vpids = vpids?;

        let me = c.rank();
        let vr = (me + n - root) % n;
        let to_rank = |v: usize| (v + root) % n;
        let child_vrs: Vec<usize> = (1..=radix)
            .map(|i| radix * vr + i)
            .filter(|&cv| cv < n)
            .collect();
        let nchildren = child_vrs.len();

        // Fan-in: every child's arrival plus this rank's own entry; the
        // auto-reset re-arms the count on the NIC so the program survives
        // back-to-back calls without a host round-trip.
        let up = ep.ectx.event_create((nchildren + 1) as u32);
        up.set_auto_reset((nchildren + 1) as u32);
        if let Some(o) = op {
            up.set_combine(o);
        }
        let down = ep.ectx.event_create(1);
        down.set_auto_reset(1);

        let table = self.exchange_event_table(c, up.id(), down.id());

        let rail = 0;
        if vr > 0 {
            let p = to_rank((vr - 1) / radix);
            up.chain_qdma(QdmaSpec::forward_to_event(vpids[p], table[p].0, rail));
            for &cv in &child_vrs {
                let cr = to_rank(cv);
                down.chain_qdma(QdmaSpec::forward_to_event(vpids[cr], table[cr].1, rail));
            }
        } else {
            // The root's fan-in completing IS the collective completing;
            // its chains launch the fan-out phase directly.
            for &cv in &child_vrs {
                let cr = to_rank(cv);
                up.chain_qdma(QdmaSpec::forward_to_event(vpids[cr], table[cr].1, rail));
            }
        }
        let children = child_vrs
            .iter()
            .map(|&cv| {
                let cr = to_rank(cv);
                (vpids[cr], table[cr].1)
            })
            .collect();

        // No rank may enter until every rank's chains are armed: a host
        // barrier on a dedicated tag closes the setup phase.
        self.host_barrier(c, TAG_NICPROG_SYNC);

        let prog_id = ((c.ctx as u64) << 32) | up.id().0 as u64;
        ep.metric(|m| m.counters.coll_nic_programs += 1);
        ep.trace(
            self.proc().now(),
            crate::trace::TraceEvent::NicProgArmed {
                prog: prog_id,
                kind: kind.name(),
                radix,
                members: n,
            },
        );
        Some(Arc::new(NicProgram {
            prog_id,
            up,
            down,
            vr,
            children,
        }))
    }

    /// Gather every rank's (up, down) event ids through comm-rank 0 and
    /// redistribute the full table. Raw tagged point-to-point — this runs
    /// underneath the collectives, so it must not call one.
    fn exchange_event_table(
        &self,
        c: &Communicator,
        up: EventId,
        down: EventId,
    ) -> Vec<(EventId, EventId)> {
        let n = c.size();
        let me = c.rank();
        let mut mine = Vec::with_capacity(8);
        mine.extend_from_slice(&up.0.to_le_bytes());
        mine.extend_from_slice(&down.0.to_le_bytes());
        let bytes = if me == 0 {
            let mut table = vec![0u8; 8 * n];
            table[..8].copy_from_slice(&mine);
            let tmp = self.alloc(8);
            for r in 1..n {
                self.recv(c, r as i32, TAG_NICPROG, &tmp, 8);
                table[8 * r..8 * r + 8].copy_from_slice(&self.read(&tmp, 0, 8));
            }
            self.free(tmp);
            let tbuf = self.alloc(8 * n);
            self.write(&tbuf, 0, &table);
            let reqs: Vec<_> = (1..n)
                .map(|r| self.isend(c, r, TAG_NICPROG, &tbuf, 8 * n))
                .collect();
            self.waitall(reqs);
            self.free(tbuf);
            table
        } else {
            let sbuf = self.alloc(8);
            self.write(&sbuf, 0, &mine);
            self.send(c, 0, TAG_NICPROG, &sbuf, 8);
            self.free(sbuf);
            let rbuf = self.alloc(8 * n);
            self.recv(c, 0, TAG_NICPROG, &rbuf, 8 * n);
            let table = self.read(&rbuf, 0, 8 * n);
            self.free(rbuf);
            table
        };
        bytes
            .chunks_exact(8)
            .map(|ch| {
                (
                    EventId(u32::from_le_bytes(ch[0..4].try_into().unwrap())),
                    EventId(u32::from_le_bytes(ch[4..8].try_into().unwrap())),
                )
            })
            .collect()
    }

    /// Block until `ev` fires: the single host wakeup of an offloaded
    /// collective. Every inter-rank hop of the program is NIC-to-NIC, so
    /// nothing here needs the host progress engine — sleeping on the event
    /// signal cannot deadlock.
    fn wait_nic_event(&self, ev: &elan4::ElanEvent) {
        let proc = self.proc();
        let sig = proc.signal();
        ev.set_signal(sig.clone());
        loop {
            if ev.take_fired(proc) {
                return;
            }
            match proc.wait(&sig) {
                qsim::Wait::Signaled => {}
                qsim::Wait::Shutdown => panic!("simulation shut down inside a NIC collective"),
            }
        }
    }

    /// Consume a non-root rank's own fan-in fire. Its `up` event fired on
    /// the NIC to forward partials upward; by the time `down` released the
    /// host that fire has long latched, and draining it keeps the payload
    /// FIFO from growing across calls.
    fn drain_own_up(&self, prog: &NicProgram) {
        let _ = prog.up.take_fired_ready();
        let _ = prog.up.take_payload();
    }

    fn nic_coll_complete(&self, prog: &NicProgram, kind: NicCollKind) {
        let ep = self.endpoint();
        ep.metric(|m| m.counters.coll_nic_offloaded += 1);
        ep.trace(
            self.proc().now(),
            crate::trace::TraceEvent::NicCollComplete {
                prog: prog.prog_id,
                coll: ep.cur_coll(),
                kind: kind.name(),
            },
        );
    }

    /// Enter an armed barrier program: one PIO store, then sleep until the
    /// tree has drained back down to this rank.
    fn run_nic_barrier(&self, prog: &NicProgram) {
        let ep = self.endpoint();
        ep.ectx.set_event(self.proc(), prog.up.id(), None);
        if prog.vr == 0 {
            self.wait_nic_event(&prog.up);
            let _ = prog.up.take_payload();
        } else {
            self.wait_nic_event(&prog.down);
            let _ = prog.down.take_payload();
            self.drain_own_up(prog);
        }
        self.nic_coll_complete(prog, NicCollKind::Barrier);
    }

    /// Broadcast through an armed program: the root QDMAs the frame into
    /// each direct child's down event and returns (fire-and-forget, like
    /// the eager send it replaces); descendants relay NIC-to-NIC. Payloads
    /// queue in fire order at each hop, so back-to-back broadcasts from a
    /// non-blocking root pipeline safely.
    fn run_nic_bcast(
        &self,
        c: &Communicator,
        prog: &NicProgram,
        root: usize,
        buf: &elan4::HostBuf,
        len: usize,
    ) {
        let ep = self.endpoint();
        if c.rank() == root {
            let data = self.read(buf, 0, len);
            for (vpid, ev) in &prog.children {
                ep.ectx
                    .qdma_to_event(self.proc(), 0, *vpid, *ev, data.clone());
            }
        } else {
            self.wait_nic_event(&prog.down);
            let out = prog.down.take_payload();
            assert_eq!(out.len(), len, "NIC bcast payload length mismatch");
            self.write(buf, 0, &out);
        }
        self.nic_coll_complete(prog, NicCollKind::Bcast);
    }

    /// Allreduce through an armed combining-tree program: enter with this
    /// rank's contribution (the NIC folds it into the fan-in event), sleep,
    /// and read the full reduction from the event that released us.
    fn run_nic_allreduce(&self, prog: &NicProgram, buf: &elan4::HostBuf, len: usize) {
        let ep = self.endpoint();
        let data = self.read(buf, 0, len);
        ep.ectx.set_event(self.proc(), prog.up.id(), Some(data));
        let result = if prog.vr == 0 {
            self.wait_nic_event(&prog.up);
            prog.up.take_payload()
        } else {
            self.wait_nic_event(&prog.down);
            let out = prog.down.take_payload();
            self.drain_own_up(prog);
            out
        };
        assert_eq!(result.len(), len, "NIC allreduce payload length mismatch");
        self.write(buf, 0, &result);
        self.nic_coll_complete(prog, NicCollKind::Allreduce);
    }
}
