//! MPI_T-style runtime introspection: control variables (cvars),
//! performance variables (pvars), and a deterministic progress watchdog.
//!
//! Open MPI's MCA tools interface lets operators read and tune a *running*
//! stack and pull live performance readouts without stopping it. This module
//! is that control plane for the simulated stack:
//!
//! - **cvars** ([`cvar_read`] / [`cvar_write`] / [`CVARS`]): every
//!   [`crate::StackConfig`] knob is a named, typed, runtime-readable
//!   variable; the safe subset (eager threshold, telemetry gates, watchdog
//!   tuning) is runtime-writable through the endpoint's [`Tunables`].
//! - **pvars** ([`pvar_snapshot`]): live readouts of the
//!   [`crate::metrics::Metrics`] counters and histograms plus queue depths
//!   and in-flight DMA state, snapshottable as JSON mid-run. Counter pvars
//!   read straight from `Metrics`, so a pvar can never disagree with the
//!   `--emit-metrics` JSON.
//! - **watchdog** ([`watchdog_tick`]): driven from the progress loop on the
//!   sim clock (deterministic), it fingerprints every live request and, when
//!   one makes no state transition for a configured number of scans, records
//!   and raises a structured [`StallDiagnostic`] naming the protocol phase
//!   each stuck request is wedged in.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use qsim::{Proc, Time};

use crate::config::{CompletionMode, ProgressMode, RdmaScheme, StackConfig};
use crate::endpoint::Endpoint;
use crate::state::DmaRole;

// ---------------------------------------------------------------------------
// tunables: the writable backing store behind the cvar registry
// ---------------------------------------------------------------------------

/// Runtime-writable stack knobs, initialized from [`StackConfig`] and read
/// by the hot path instead of the frozen config copy. Plain atomics: the
/// simulation runs one process at a time, so `Relaxed` suffices.
pub struct Tunables {
    eager_limit: AtomicUsize,
    metrics: AtomicBool,
    trace: AtomicBool,
    flight_enable: AtomicBool,
    watchdog_interval: AtomicU64,
    watchdog_grace: AtomicU64,
    retransmit_timeout_ns: AtomicU64,
    retransmit_backoff: AtomicU64,
    retransmit_max_retries: AtomicU64,
    pipeline_enable: AtomicBool,
    pipeline_chunk: AtomicUsize,
    pipeline_depth: AtomicUsize,
    pipeline_min_len: AtomicUsize,
    flow_enable: AtomicBool,
    /// Per-peer eager credit window. Seeded from config; a configured 0
    /// (auto-scale) is resolved against the job size at endpoint init.
    flow_credits: AtomicUsize,
    flow_dma_cap: AtomicUsize,
    coll_nic_offload: AtomicBool,
    coll_tree_radix: AtomicUsize,
    coll_hw_bcast: AtomicBool,
    timeline_interval_ns: AtomicU64,
    /// Virtual time of the last timeline sample; `u64::MAX` = never sampled,
    /// so the first due check fires immediately once sampling is enabled.
    timeline_last_ns: AtomicU64,
    /// Progress ticks seen (progress passes + watchdog-timeout expiries).
    /// Lives here rather than in `Metrics` so the watchdog works with
    /// telemetry off.
    ticks: AtomicU64,
}

impl Tunables {
    /// Seed the writable knobs from a validated config.
    pub fn from_config(cfg: &StackConfig) -> Self {
        Tunables {
            eager_limit: AtomicUsize::new(cfg.eager_limit),
            metrics: AtomicBool::new(cfg.metrics),
            trace: AtomicBool::new(cfg.trace),
            flight_enable: AtomicBool::new(cfg.flight_recorder),
            watchdog_interval: AtomicU64::new(cfg.watchdog_interval),
            watchdog_grace: AtomicU64::new(cfg.watchdog_grace as u64),
            retransmit_timeout_ns: AtomicU64::new(cfg.tcp_retransmit_timeout.as_ns()),
            retransmit_backoff: AtomicU64::new(cfg.tcp_retransmit_backoff as u64),
            retransmit_max_retries: AtomicU64::new(cfg.tcp_max_retries as u64),
            pipeline_enable: AtomicBool::new(cfg.pipeline_enable),
            pipeline_chunk: AtomicUsize::new(cfg.pipeline_chunk),
            pipeline_depth: AtomicUsize::new(cfg.pipeline_depth),
            pipeline_min_len: AtomicUsize::new(cfg.pipeline_min_len),
            flow_enable: AtomicBool::new(cfg.flow_enable),
            flow_credits: AtomicUsize::new(cfg.flow_credits),
            flow_dma_cap: AtomicUsize::new(cfg.flow_dma_cap),
            coll_nic_offload: AtomicBool::new(cfg.coll_nic_offload),
            coll_tree_radix: AtomicUsize::new(cfg.coll_tree_radix),
            coll_hw_bcast: AtomicBool::new(cfg.coll_hw_bcast),
            timeline_interval_ns: AtomicU64::new(cfg.timeline_interval.as_ns()),
            timeline_last_ns: AtomicU64::new(u64::MAX),
            ticks: AtomicU64::new(0),
        }
    }

    /// Is the pipelined chunked-RDMA rendezvous enabled right now?
    pub fn pipeline_enable(&self) -> bool {
        self.pipeline_enable.load(Ordering::Relaxed)
    }

    /// Pipeline chunk size in bytes (clamped to >= 1).
    pub fn pipeline_chunk(&self) -> usize {
        self.pipeline_chunk.load(Ordering::Relaxed).max(1)
    }

    /// Chunks allowed in flight per rail (clamped to >= 1).
    pub fn pipeline_depth(&self) -> usize {
        self.pipeline_depth.load(Ordering::Relaxed).max(1)
    }

    /// Elan shares below this stay on the monolithic single-RDMA path.
    pub fn pipeline_min_len(&self) -> usize {
        self.pipeline_min_len.load(Ordering::Relaxed)
    }

    /// Is end-to-end injection flow control enabled right now?
    pub fn flow_enable(&self) -> bool {
        self.flow_enable.load(Ordering::Relaxed)
    }

    /// Per-peer eager credit window (resolved; never 0 once the endpoint
    /// has initialized with flow control on).
    pub fn flow_credits(&self) -> usize {
        self.flow_credits.load(Ordering::Relaxed)
    }

    /// Resolve the auto-scaled credit window at endpoint init.
    pub(crate) fn set_flow_credits(&self, v: usize) {
        self.flow_credits.store(v, Ordering::Relaxed);
    }

    /// Endpoint-wide outstanding-DMA descriptor cap; 0 = uncapped.
    pub fn flow_dma_cap(&self) -> usize {
        self.flow_dma_cap.load(Ordering::Relaxed)
    }

    /// Are NIC-offloaded chained-event collectives enabled right now?
    pub fn coll_nic_offload(&self) -> bool {
        self.coll_nic_offload.load(Ordering::Relaxed)
    }

    /// Fan-out of the NIC-offloaded collective tree (clamped to >= 2).
    pub fn coll_tree_radix(&self) -> usize {
        self.coll_tree_radix.load(Ordering::Relaxed).max(2)
    }

    /// May eligible broadcasts use the hardware broadcast rail?
    pub fn coll_hw_bcast(&self) -> bool {
        self.coll_hw_bcast.load(Ordering::Relaxed)
    }

    /// Virtual-time gap between timeline samples; 0 = sampler off.
    pub fn timeline_interval_ns(&self) -> u64 {
        self.timeline_interval_ns.load(Ordering::Relaxed)
    }

    /// Is a timeline sample due at `now_ns`? Updates the last-sample stamp
    /// when it is, so each interval yields exactly one sample.
    pub fn timeline_due(&self, now_ns: u64) -> bool {
        let interval = self.timeline_interval_ns();
        if interval == 0 {
            return false;
        }
        let last = self.timeline_last_ns.load(Ordering::Relaxed);
        if last != u64::MAX && now_ns.saturating_sub(last) < interval {
            return false;
        }
        self.timeline_last_ns.store(now_ns, Ordering::Relaxed);
        true
    }

    /// Current eager/rendezvous threshold in bytes.
    pub fn eager_limit(&self) -> usize {
        self.eager_limit.load(Ordering::Relaxed)
    }

    /// Is telemetry (counters + histograms) enabled right now?
    pub fn metrics(&self) -> bool {
        self.metrics.load(Ordering::Relaxed)
    }

    /// Is protocol tracing enabled right now?
    pub fn trace(&self) -> bool {
        self.trace.load(Ordering::Relaxed)
    }

    /// Is the post-mortem flight recorder enabled right now?
    pub fn flight_enable(&self) -> bool {
        self.flight_enable.load(Ordering::Relaxed)
    }

    /// Progress ticks between watchdog scans; 0 = watchdog off.
    pub fn watchdog_interval(&self) -> u64 {
        self.watchdog_interval.load(Ordering::Relaxed)
    }

    /// Consecutive stale scans before a request is declared stalled.
    pub fn watchdog_grace(&self) -> u64 {
        self.watchdog_grace.load(Ordering::Relaxed).max(1)
    }

    /// Initial retransmit timeout for an unacknowledged control frame.
    pub fn retransmit_timeout(&self) -> qsim::Dur {
        qsim::Dur::from_ns(self.retransmit_timeout_ns.load(Ordering::Relaxed))
    }

    /// Multiplier applied to the timeout after each retry (exponential
    /// backoff); clamped to >= 1.
    pub fn retransmit_backoff(&self) -> u32 {
        self.retransmit_backoff.load(Ordering::Relaxed).max(1) as u32
    }

    /// Retransmissions attempted before the frame is abandoned and the peer
    /// declared failed.
    pub fn retransmit_max_retries(&self) -> u32 {
        self.retransmit_max_retries.load(Ordering::Relaxed) as u32
    }

    /// Count one progress tick; returns the new total.
    pub fn next_tick(&self) -> u64 {
        self.ticks.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Progress ticks counted so far.
    pub fn ticks(&self) -> u64 {
        self.ticks.load(Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------------------
// cvar registry
// ---------------------------------------------------------------------------

/// A typed control-variable value.
#[derive(Clone, PartialEq, Debug)]
pub enum CvarValue {
    /// Boolean knob.
    Bool(bool),
    /// Numeric knob (byte counts, depths, intervals, durations in ns).
    U64(u64),
    /// Enumerated knob, rendered by name.
    Str(String),
}

impl CvarValue {
    /// JSON rendering of the value.
    pub fn to_json(&self) -> String {
        match self {
            CvarValue::Bool(b) => b.to_string(),
            CvarValue::U64(v) => v.to_string(),
            CvarValue::Str(s) => format!("\"{s}\""),
        }
    }
}

/// Static description of one control variable.
pub struct CvarDef {
    /// Dotted MPI_T-style name, e.g. `pml.eager_limit`.
    pub name: &'static str,
    /// One-line description.
    pub desc: &'static str,
    /// Writable at runtime via [`cvar_write`]?
    pub writable: bool,
}

/// The cvar registry: every stack knob, with its mutability.
pub const CVARS: &[CvarDef] = &[
    CvarDef {
        name: "pml.eager_limit",
        desc: "messages at most this long (bytes) go eagerly in one QDMA",
        writable: true,
    },
    CvarDef {
        name: "pml.rdma_scheme",
        desc: "long-message scheme: write (RDMA-write+FIN) or read (RDMA-read+FIN_ACK)",
        writable: false,
    },
    CvarDef {
        name: "pml.inline_first_frag",
        desc: "carry payload inside the rendezvous packet",
        writable: false,
    },
    CvarDef {
        name: "pml.chained_fin",
        desc: "NIC fires FIN/FIN_ACK chained to the final RDMA",
        writable: false,
    },
    CvarDef {
        name: "pml.force_rendezvous",
        desc: "route every message through the rendezvous path",
        writable: false,
    },
    CvarDef {
        name: "ptl.completion_mode",
        desc: "RDMA completion strategy: poll_event, shared_combined, shared_separate",
        writable: false,
    },
    CvarDef {
        name: "ptl.progress_mode",
        desc: "progress engine: polling, interrupt, one_thread, two_threads",
        writable: false,
    },
    CvarDef {
        name: "ptl.qslots",
        desc: "receive-queue depth (QSLOTS)",
        writable: false,
    },
    CvarDef {
        name: "ptl.integrity_check",
        desc: "end-to-end Fletcher-16 payload checking",
        writable: false,
    },
    CvarDef {
        name: "telemetry.metrics",
        desc: "per-endpoint counters and histograms",
        writable: true,
    },
    CvarDef {
        name: "telemetry.trace",
        desc: "protocol event trace ring",
        writable: true,
    },
    CvarDef {
        name: "telemetry.trace_capacity",
        desc: "trace ring capacity (events)",
        writable: false,
    },
    CvarDef {
        name: "flight.enable",
        desc: "always-on post-mortem flight recorder (dumped on stall or request failure)",
        writable: true,
    },
    CvarDef {
        name: "flight.capacity",
        desc: "flight-recorder ring capacity (events)",
        writable: false,
    },
    CvarDef {
        name: "watchdog.interval",
        desc: "progress ticks between watchdog scans; 0 disables",
        writable: true,
    },
    CvarDef {
        name: "watchdog.grace",
        desc: "consecutive stale scans before a request is declared stalled",
        writable: true,
    },
    CvarDef {
        name: "watchdog.tick_ns",
        desc: "virtual-time bound on blocked waits while the watchdog is armed",
        writable: false,
    },
    CvarDef {
        name: "tcp.reliability",
        desc: "sequence-stamp TCP control frames and retransmit until acknowledged",
        writable: false,
    },
    CvarDef {
        name: "tcp.retransmit_timeout_ns",
        desc: "initial timeout before an unacknowledged control frame is resent",
        writable: true,
    },
    CvarDef {
        name: "tcp.retransmit_backoff",
        desc: "timeout multiplier applied after each retry (exponential backoff)",
        writable: true,
    },
    CvarDef {
        name: "tcp.max_retries",
        desc: "retransmissions before the frame is abandoned and the peer declared failed",
        writable: true,
    },
    CvarDef {
        name: "reg.cache",
        desc: "registration (pin-down) cache: reuse rendezvous/RMA mappings across requests",
        writable: true,
    },
    CvarDef {
        name: "reg.cache_bytes",
        desc: "byte capacity of the registration cache (evicts idle LRU mappings beyond it)",
        writable: true,
    },
    CvarDef {
        name: "reg.cache_entries",
        desc: "entry capacity of the registration cache",
        writable: true,
    },
    CvarDef {
        name: "pipe.enable",
        desc: "pipelined chunked-RDMA rendezvous (overlap registration with transfer)",
        writable: true,
    },
    CvarDef {
        name: "pipe.chunk",
        desc: "pipeline chunk size in bytes",
        writable: true,
    },
    CvarDef {
        name: "pipe.depth",
        desc: "pipeline chunks allowed in flight per rail",
        writable: true,
    },
    CvarDef {
        name: "pipe.min_len",
        desc: "Elan shares below this many bytes keep the monolithic RDMA path",
        writable: true,
    },
    CvarDef {
        name: "flow.enable",
        desc: "end-to-end injection flow control: per-peer eager credits + DMA cap",
        writable: true,
    },
    CvarDef {
        name: "flow.credits",
        desc: "per-peer eager credit window (config 0 auto-scales to the job size at init)",
        writable: true,
    },
    CvarDef {
        name: "flow.dma_cap",
        desc: "endpoint-wide outstanding RDMA descriptor cap; 0 = uncapped",
        writable: true,
    },
    CvarDef {
        name: "flow.bounce_pool",
        desc: "preallocated bounce-buffer pool slots for unexpected-message staging",
        writable: false,
    },
    CvarDef {
        name: "coll.nic_offload",
        desc: "compile barrier/bcast/allreduce into NIC-resident chained event programs",
        writable: true,
    },
    CvarDef {
        name: "coll.tree_radix",
        desc: "fan-out of the NIC-offloaded collective tree (>= 2)",
        writable: true,
    },
    CvarDef {
        name: "coll.hw_bcast",
        desc: "let eligible broadcasts use the hardware broadcast rail",
        writable: true,
    },
    CvarDef {
        name: "timeline.interval_ns",
        desc: "virtual-time gap between time-series telemetry samples; 0 disables",
        writable: true,
    },
    CvarDef {
        name: "timeline.capacity",
        desc: "timeline sample-ring capacity",
        writable: false,
    },
];

fn scheme_name(s: RdmaScheme) -> &'static str {
    match s {
        RdmaScheme::Write => "write",
        RdmaScheme::Read => "read",
    }
}

fn completion_name(c: CompletionMode) -> &'static str {
    match c {
        CompletionMode::PollEvent => "poll_event",
        CompletionMode::SharedQueueCombined => "shared_combined",
        CompletionMode::SharedQueueSeparate => "shared_separate",
    }
}

fn progress_name(p: ProgressMode) -> &'static str {
    match p {
        ProgressMode::Polling => "polling",
        ProgressMode::Interrupt => "interrupt",
        ProgressMode::OneThread => "one_thread",
        ProgressMode::TwoThreads => "two_threads",
    }
}

/// Read a control variable by name; `None` for unknown names.
pub fn cvar_read(ep: &Endpoint, name: &str) -> Option<CvarValue> {
    let v = match name {
        "pml.eager_limit" => CvarValue::U64(ep.tunables.eager_limit() as u64),
        "pml.rdma_scheme" => CvarValue::Str(scheme_name(ep.cfg.scheme).to_string()),
        "pml.inline_first_frag" => CvarValue::Bool(ep.cfg.inline_first_frag),
        "pml.chained_fin" => CvarValue::Bool(ep.cfg.chained_fin),
        "pml.force_rendezvous" => CvarValue::Bool(ep.cfg.force_rendezvous),
        "ptl.completion_mode" => CvarValue::Str(completion_name(ep.cfg.completion).to_string()),
        "ptl.progress_mode" => CvarValue::Str(progress_name(ep.cfg.progress).to_string()),
        "ptl.qslots" => CvarValue::U64(ep.cfg.qslots as u64),
        "ptl.integrity_check" => CvarValue::Bool(ep.cfg.integrity_check),
        "telemetry.metrics" => CvarValue::Bool(ep.tunables.metrics()),
        "telemetry.trace" => CvarValue::Bool(ep.tunables.trace()),
        "telemetry.trace_capacity" => CvarValue::U64(ep.cfg.trace_capacity as u64),
        "flight.enable" => CvarValue::Bool(ep.tunables.flight_enable()),
        "flight.capacity" => CvarValue::U64(ep.cfg.flight_capacity as u64),
        "watchdog.interval" => CvarValue::U64(ep.tunables.watchdog_interval()),
        "watchdog.grace" => CvarValue::U64(ep.tunables.watchdog_grace()),
        "watchdog.tick_ns" => CvarValue::U64(ep.cfg.watchdog_tick.as_ns()),
        "tcp.reliability" => CvarValue::Bool(ep.cfg.tcp_reliability),
        "tcp.retransmit_timeout_ns" => CvarValue::U64(ep.tunables.retransmit_timeout().as_ns()),
        "tcp.retransmit_backoff" => CvarValue::U64(ep.tunables.retransmit_backoff() as u64),
        "tcp.max_retries" => CvarValue::U64(ep.tunables.retransmit_max_retries() as u64),
        "reg.cache" => CvarValue::Bool(ep.reg.lock().enabled()),
        "reg.cache_bytes" => CvarValue::U64(ep.reg.lock().cap_bytes() as u64),
        "reg.cache_entries" => CvarValue::U64(ep.reg.lock().cap_entries() as u64),
        "pipe.enable" => CvarValue::Bool(ep.tunables.pipeline_enable()),
        "pipe.chunk" => CvarValue::U64(ep.tunables.pipeline_chunk() as u64),
        "pipe.depth" => CvarValue::U64(ep.tunables.pipeline_depth() as u64),
        "pipe.min_len" => CvarValue::U64(ep.tunables.pipeline_min_len() as u64),
        "flow.enable" => CvarValue::Bool(ep.tunables.flow_enable()),
        "flow.credits" => CvarValue::U64(ep.tunables.flow_credits() as u64),
        "flow.dma_cap" => CvarValue::U64(ep.tunables.flow_dma_cap() as u64),
        "flow.bounce_pool" => CvarValue::U64(ep.cfg.flow_bounce_pool as u64),
        "coll.nic_offload" => CvarValue::Bool(ep.tunables.coll_nic_offload()),
        "coll.tree_radix" => CvarValue::U64(ep.tunables.coll_tree_radix() as u64),
        "coll.hw_bcast" => CvarValue::Bool(ep.tunables.coll_hw_bcast()),
        "timeline.interval_ns" => CvarValue::U64(ep.tunables.timeline_interval_ns()),
        "timeline.capacity" => CvarValue::U64(ep.cfg.timeline_capacity as u64),
        _ => return None,
    };
    Some(v)
}

/// Write a runtime-writable control variable. Rejects unknown names,
/// read-only cvars, type mismatches, and out-of-range values.
pub fn cvar_write(ep: &Endpoint, name: &str, value: CvarValue) -> Result<(), String> {
    match (name, value) {
        ("pml.eager_limit", CvarValue::U64(v)) => {
            if v as usize > crate::hdr::MAX_INLINE {
                return Err(format!(
                    "pml.eager_limit {v} exceeds the QDMA inline maximum {}",
                    crate::hdr::MAX_INLINE
                ));
            }
            ep.tunables.eager_limit.store(v as usize, Ordering::Relaxed);
            Ok(())
        }
        ("telemetry.metrics", CvarValue::Bool(b)) => {
            ep.tunables.metrics.store(b, Ordering::Relaxed);
            Ok(())
        }
        ("telemetry.trace", CvarValue::Bool(b)) => {
            ep.tunables.trace.store(b, Ordering::Relaxed);
            Ok(())
        }
        ("flight.enable", CvarValue::Bool(b)) => {
            ep.tunables.flight_enable.store(b, Ordering::Relaxed);
            Ok(())
        }
        ("watchdog.interval", CvarValue::U64(v)) => {
            ep.tunables.watchdog_interval.store(v, Ordering::Relaxed);
            Ok(())
        }
        ("watchdog.grace", CvarValue::U64(v)) => {
            if v == 0 {
                return Err("watchdog.grace must be >= 1".to_string());
            }
            ep.tunables.watchdog_grace.store(v, Ordering::Relaxed);
            Ok(())
        }
        ("tcp.retransmit_timeout_ns", CvarValue::U64(v)) => {
            if v == 0 {
                return Err("tcp.retransmit_timeout_ns must be > 0".to_string());
            }
            ep.tunables
                .retransmit_timeout_ns
                .store(v, Ordering::Relaxed);
            Ok(())
        }
        ("tcp.retransmit_backoff", CvarValue::U64(v)) => {
            if v == 0 {
                return Err("tcp.retransmit_backoff must be >= 1".to_string());
            }
            ep.tunables.retransmit_backoff.store(v, Ordering::Relaxed);
            Ok(())
        }
        ("tcp.max_retries", CvarValue::U64(v)) => {
            ep.tunables
                .retransmit_max_retries
                .store(v, Ordering::Relaxed);
            Ok(())
        }
        ("reg.cache", CvarValue::Bool(b)) => {
            // Disabling stops new insertions; existing entries drain through
            // the normal release/eviction path.
            ep.reg.lock().set_enabled(b);
            Ok(())
        }
        ("reg.cache_bytes", CvarValue::U64(v)) => {
            if v == 0 {
                return Err("reg.cache_bytes must be > 0".to_string());
            }
            ep.reg.lock().set_cap_bytes(v as usize);
            Ok(())
        }
        ("reg.cache_entries", CvarValue::U64(v)) => {
            if v == 0 {
                return Err("reg.cache_entries must be > 0".to_string());
            }
            ep.reg.lock().set_cap_entries(v as usize);
            Ok(())
        }
        ("pipe.enable", CvarValue::Bool(b)) => {
            ep.tunables.pipeline_enable.store(b, Ordering::Relaxed);
            Ok(())
        }
        ("pipe.chunk", CvarValue::U64(v)) => {
            if v == 0 {
                return Err("pipe.chunk must be > 0".to_string());
            }
            ep.tunables
                .pipeline_chunk
                .store(v as usize, Ordering::Relaxed);
            Ok(())
        }
        ("pipe.depth", CvarValue::U64(v)) => {
            if v == 0 {
                return Err("pipe.depth must be >= 1".to_string());
            }
            ep.tunables
                .pipeline_depth
                .store(v as usize, Ordering::Relaxed);
            Ok(())
        }
        ("pipe.min_len", CvarValue::U64(v)) => {
            ep.tunables
                .pipeline_min_len
                .store(v as usize, Ordering::Relaxed);
            Ok(())
        }
        ("flow.enable", CvarValue::Bool(b)) => {
            ep.tunables.flow_enable.store(b, Ordering::Relaxed);
            Ok(())
        }
        ("flow.credits", CvarValue::U64(v)) => {
            if v == 0 {
                return Err("flow.credits must be >= 1 (0 auto-scales at init only)".to_string());
            }
            if v as usize > ep.cfg.flow_bounce_pool {
                return Err(format!(
                    "flow.credits {v} exceeds the bounce pool ({} slots)",
                    ep.cfg.flow_bounce_pool
                ));
            }
            ep.tunables
                .flow_credits
                .store(v as usize, Ordering::Relaxed);
            Ok(())
        }
        ("flow.dma_cap", CvarValue::U64(v)) => {
            ep.tunables
                .flow_dma_cap
                .store(v as usize, Ordering::Relaxed);
            Ok(())
        }
        ("coll.nic_offload", CvarValue::Bool(b)) => {
            // Armed programs are keyed by communicator/shape, so flipping
            // this mid-run only steers *future* collectives; it must still
            // be set uniformly across the job before the next collective.
            ep.tunables.coll_nic_offload.store(b, Ordering::Relaxed);
            Ok(())
        }
        ("coll.tree_radix", CvarValue::U64(v)) => {
            if v < 2 {
                return Err("coll.tree_radix must be >= 2".to_string());
            }
            ep.tunables
                .coll_tree_radix
                .store(v as usize, Ordering::Relaxed);
            Ok(())
        }
        ("coll.hw_bcast", CvarValue::Bool(b)) => {
            ep.tunables.coll_hw_bcast.store(b, Ordering::Relaxed);
            Ok(())
        }
        ("timeline.interval_ns", CvarValue::U64(v)) => {
            ep.tunables.timeline_interval_ns.store(v, Ordering::Relaxed);
            Ok(())
        }
        (n, v) => {
            if let Some(def) = CVARS.iter().find(|d| d.name == n) {
                if def.writable {
                    Err(format!("cvar {n}: type mismatch (got {v:?})"))
                } else {
                    Err(format!("cvar {n} is read-only"))
                }
            } else {
                Err(format!("unknown cvar {n}"))
            }
        }
    }
}

/// All cvars of an endpoint as one JSON object
/// (`name -> {value, writable, desc}`).
pub fn cvars_json(ep: &Endpoint) -> String {
    let rows: Vec<String> = CVARS
        .iter()
        .map(|d| {
            let v = cvar_read(ep, d.name).expect("registry entry must be readable");
            format!(
                "\"{}\":{{\"value\":{},\"writable\":{},\"desc\":\"{}\"}}",
                d.name,
                v.to_json(),
                d.writable,
                d.desc
            )
        })
        .collect();
    format!("{{{}}}", rows.join(","))
}

/// The value a cvar takes under [`StackConfig::default`]; `None` for
/// unknown names. Lets tooling show how far a running stack has been tuned
/// away from stock without carrying a second table.
pub fn cvar_default(name: &str) -> Option<CvarValue> {
    let d = StackConfig::default();
    let v = match name {
        "pml.eager_limit" => CvarValue::U64(d.eager_limit as u64),
        "pml.rdma_scheme" => CvarValue::Str(scheme_name(d.scheme).to_string()),
        "pml.inline_first_frag" => CvarValue::Bool(d.inline_first_frag),
        "pml.chained_fin" => CvarValue::Bool(d.chained_fin),
        "pml.force_rendezvous" => CvarValue::Bool(d.force_rendezvous),
        "ptl.completion_mode" => CvarValue::Str(completion_name(d.completion).to_string()),
        "ptl.progress_mode" => CvarValue::Str(progress_name(d.progress).to_string()),
        "ptl.qslots" => CvarValue::U64(d.qslots as u64),
        "ptl.integrity_check" => CvarValue::Bool(d.integrity_check),
        "telemetry.metrics" => CvarValue::Bool(d.metrics),
        "telemetry.trace" => CvarValue::Bool(d.trace),
        "telemetry.trace_capacity" => CvarValue::U64(d.trace_capacity as u64),
        "flight.enable" => CvarValue::Bool(d.flight_recorder),
        "flight.capacity" => CvarValue::U64(d.flight_capacity as u64),
        "watchdog.interval" => CvarValue::U64(d.watchdog_interval),
        "watchdog.grace" => CvarValue::U64(d.watchdog_grace as u64),
        "watchdog.tick_ns" => CvarValue::U64(d.watchdog_tick.as_ns()),
        "tcp.reliability" => CvarValue::Bool(d.tcp_reliability),
        "tcp.retransmit_timeout_ns" => CvarValue::U64(d.tcp_retransmit_timeout.as_ns()),
        "tcp.retransmit_backoff" => CvarValue::U64(d.tcp_retransmit_backoff as u64),
        "tcp.max_retries" => CvarValue::U64(d.tcp_max_retries as u64),
        "reg.cache" => CvarValue::Bool(d.reg_cache),
        "reg.cache_bytes" => CvarValue::U64(d.reg_cache_bytes as u64),
        "reg.cache_entries" => CvarValue::U64(d.reg_cache_entries as u64),
        "pipe.enable" => CvarValue::Bool(d.pipeline_enable),
        "pipe.chunk" => CvarValue::U64(d.pipeline_chunk as u64),
        "pipe.depth" => CvarValue::U64(d.pipeline_depth as u64),
        "pipe.min_len" => CvarValue::U64(d.pipeline_min_len as u64),
        "flow.enable" => CvarValue::Bool(d.flow_enable),
        "flow.credits" => CvarValue::U64(d.flow_credits as u64),
        "flow.dma_cap" => CvarValue::U64(d.flow_dma_cap as u64),
        "flow.bounce_pool" => CvarValue::U64(d.flow_bounce_pool as u64),
        "coll.nic_offload" => CvarValue::Bool(d.coll_nic_offload),
        "coll.tree_radix" => CvarValue::U64(d.coll_tree_radix as u64),
        "coll.hw_bcast" => CvarValue::Bool(d.coll_hw_bcast),
        "timeline.interval_ns" => CvarValue::U64(d.timeline_interval.as_ns()),
        "timeline.capacity" => CvarValue::U64(d.timeline_capacity as u64),
        _ => return None,
    };
    Some(v)
}

fn cvar_type_name(v: &CvarValue) -> &'static str {
    match v {
        CvarValue::Bool(_) => "bool",
        CvarValue::U64(_) => "u64",
        CvarValue::Str(_) => "enum",
    }
}

/// The full introspection registry of one endpoint as JSON: every cvar
/// (name, type, default, writability, live value, description) and every
/// pvar (name, live value). This is the `--list-introspect` document — the
/// MPI_T equivalent of `ompi_info --all`.
pub fn registry_json(ep: &Endpoint) -> String {
    let cvars: Vec<String> = CVARS
        .iter()
        .map(|d| {
            let v = cvar_read(ep, d.name).expect("registry entry must be readable");
            let default = cvar_default(d.name).expect("registry entry must have a default");
            format!(
                "{{\"name\":\"{}\",\"type\":\"{}\",\"default\":{},\"writable\":{},\
                 \"value\":{},\"desc\":\"{}\"}}",
                d.name,
                cvar_type_name(&v),
                default.to_json(),
                d.writable,
                v.to_json(),
                d.desc
            )
        })
        .collect();
    let pvars: Vec<String> = pvar_snapshot(ep)
        .vars
        .iter()
        .map(|(n, v)| format!("{{\"name\":\"{n}\",\"type\":\"u64\",\"value\":{v}}}"))
        .collect();
    format!(
        "{{\"rank\":{},\"cvars\":[{}],\"pvars\":[{}]}}",
        ep.name.rank,
        cvars.join(","),
        pvars.join(",")
    )
}

// ---------------------------------------------------------------------------
// pvar registry
// ---------------------------------------------------------------------------

/// One rank's performance variables at an instant: a flat, ordered list of
/// `(name, value)` scalars, cheap to aggregate across ranks.
#[derive(Clone, Debug)]
pub struct PvarSnapshot {
    /// The rank the snapshot came from.
    pub rank: usize,
    /// `(name, value)` rows in registry order.
    pub vars: Vec<(String, u64)>,
}

impl PvarSnapshot {
    /// Look a variable up by name.
    pub fn get(&self, name: &str) -> Option<u64> {
        self.vars.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// JSON object rendering (`{"rank":r,"vars":{name:value,...}}`).
    pub fn to_json(&self) -> String {
        let rows: Vec<String> = self
            .vars
            .iter()
            .map(|(n, v)| format!("\"{n}\":{v}"))
            .collect();
        format!("{{\"rank\":{},\"vars\":{{{}}}}}", self.rank, rows.join(","))
    }
}

fn hist_vars(out: &mut Vec<(String, u64)>, name: &str, h: &crate::metrics::Histogram) {
    out.push((format!("hist.{name}.count"), h.count()));
    out.push((format!("hist.{name}.sum_ns"), h.sum_ns()));
    out.push((format!("hist.{name}.max_ns"), h.max_ns().unwrap_or(0)));
    out.push((
        format!("hist.{name}.p50_ns"),
        h.quantile_ns(0.5).unwrap_or(0),
    ));
    out.push((
        format!("hist.{name}.p99_ns"),
        h.quantile_ns(0.99).unwrap_or(0),
    ));
}

/// Snapshot every pvar of `ep` without stopping the stack.
///
/// Counter pvars read directly from the endpoint's [`crate::metrics::Metrics`]
/// (the single source of truth), queue pvars from live
/// [`crate::state::EpState`], and watchdog pvars from the introspection
/// state.
pub fn pvar_snapshot(ep: &Endpoint) -> PvarSnapshot {
    let mut vars: Vec<(String, u64)> = Vec::with_capacity(64);

    // Live protocol state (under the state lock, released before metrics).
    {
        let st = ep.state.lock();
        let send_live = st.send_reqs.values().filter(|r| !r.done).count();
        let recv_live = st.recv_reqs.values().filter(|r| !r.done).count();
        let posted: usize = st.comms.values().map(|c| c.posted.len()).sum();
        let unexpected: usize = st.comms.values().map(|c| c.unexpected.len()).sum();
        let dma_bytes: usize = st
            .pending_dmas
            .iter()
            .map(|p| match &p.role {
                DmaRole::Read { bytes, .. }
                | DmaRole::Write { bytes, .. }
                | DmaRole::Chunk { bytes, .. } => *bytes,
            })
            .sum();
        vars.push(("queues.send_reqs_live".into(), send_live as u64));
        vars.push(("queues.recv_reqs_live".into(), recv_live as u64));
        vars.push(("queues.posted_depth".into(), posted as u64));
        vars.push(("queues.unexpected_depth".into(), unexpected as u64));
        vars.push(("queues.pending_dmas".into(), st.pending_dmas.len() as u64));
        vars.push(("queues.pending_dma_bytes".into(), dma_bytes as u64));
        vars.push(("queues.comms".into(), st.comms.len() as u64));
        vars.push(("queues.ctl_inflight".into(), st.ctl_inflight.len() as u64));
        vars.push(("queues.failed_peers".into(), st.failed_peers.len() as u64));
        vars.push(("queues.pipelines_live".into(), st.pipelines.len() as u64));
        vars.push(("queues.tcp_pushes_live".into(), st.tcp_pushes.len() as u64));
        let credits_avail: usize = st.flow.values().map(|fp| fp.credits).sum();
        let pending_ret: usize = st.flow.values().map(|fp| fp.pending_return).sum();
        vars.push(("queues.flow_queued".into(), st.flow_queued_total() as u64));
        vars.push(("flow.credits_available".into(), credits_avail as u64));
        vars.push(("flow.pending_return".into(), pending_ret as u64));
        vars.push(("flow.pool_in_use".into(), st.bounce_pool.in_use() as u64));
        vars.push((
            "flow.pool_capacity".into(),
            st.bounce_pool.capacity() as u64,
        ));
    }

    // Telemetry counters: read from Metrics, never a second tally.
    {
        let m = ep.metrics.lock();
        let c = &m.counters;
        for (name, v) in [
            ("pml.eager_sent", c.eager_sent),
            ("pml.rndv_sent", c.rndv_sent),
            ("pml.recvs_posted", c.recvs_posted),
            ("pml.matches", c.matches),
            ("pml.unexpected_total", c.unexpected_total),
            ("pml.unexpected_hwm", c.unexpected_hwm),
            ("pml.frags_sent", c.frags_sent),
            ("rdma.descriptors", c.rdma_descriptors),
            ("rdma.bytes", c.rdma_bytes),
            ("rdma.read_batches", c.rdma_read_batches),
            ("rdma.write_batches", c.rdma_write_batches),
            ("rdma.chained_completions", c.chained_completions),
            ("progress.iterations", c.progress_iterations),
            ("rel.retransmits", c.retransmits),
            ("rel.dup_suppressed", c.dup_suppressed),
            ("rel.gave_up", c.gave_up),
            ("rel.corrupt_frames", c.corrupt_frames),
            ("rel.ctl_acks_sent", c.ctl_acks_sent),
            ("rel.reqs_failed", c.reqs_failed),
            ("rel.errs_surfaced", c.errs_surfaced),
            ("pipe.started", c.pipe_started),
            ("pipe.fallback", c.pipe_fallback),
            ("pipe.chunks_issued", c.pipe_chunks_issued),
            ("pipe.chunks_landed", c.pipe_chunks_landed),
            ("pipe.depth_hwm", c.pipe_depth_hwm),
            ("pipe.reg_overlap_ns", c.pipe_reg_overlap_ns),
            ("flow.sends_queued", c.flow_sends_queued),
            ("flow.queued_ns", c.flow_queued_ns),
            ("flow.credits_consumed", c.flow_credits_consumed),
            ("flow.credits_returned", c.flow_credits_returned),
            ("flow.credit_frames", c.flow_credit_frames),
            ("flow.piggybacked", c.flow_piggybacked),
            ("flow.grant_deferrals", c.flow_grant_deferrals),
            ("flow.dma_waits", c.flow_dma_waits),
            ("flow.pool_hits", c.flow_pool_hits),
            ("flow.pool_fallbacks", c.flow_pool_fallbacks),
            ("coll.nic_programs", c.coll_nic_programs),
            ("coll.nic_offloaded", c.coll_nic_offloaded),
            ("coll.nic_fallbacks", c.coll_nic_fallbacks),
            ("coll.hw_bcasts", c.coll_hw_bcasts),
        ] {
            vars.push((name.to_string(), v));
        }
        for (kind, v) in crate::metrics::CONTROL_KINDS.iter().zip(c.control_sent) {
            vars.push((format!("control.{kind}"), v));
        }
        for (op, v) in crate::metrics::COLL_OPS.iter().zip(c.coll) {
            vars.push((format!("coll.ops.{}", op.name()), v));
        }
        hist_vars(&mut vars, "match_time", &m.match_time);
        hist_vars(&mut vars, "rndv_handshake", &m.rndv_handshake);
        hist_vars(&mut vars, "completion_time", &m.completion_time);
    }

    // Registration cache: authoritative stats live in the cache itself
    // (counted even with telemetry off), not the Metrics tally.
    {
        let r = ep.reg_stats();
        vars.push(("reg.hits".into(), r.hits));
        vars.push(("reg.misses".into(), r.misses));
        vars.push(("reg.evictions".into(), r.evictions));
        vars.push(("reg.mapped_bytes".into(), r.mapped_bytes));
        vars.push(("reg.entries".into(), r.entries));
    }

    // Watchdog state.
    {
        let ins = ep.introspect.lock();
        vars.push(("watchdog.ticks".into(), ep.tunables.ticks()));
        vars.push(("watchdog.scans".into(), ins.scans));
        vars.push(("watchdog.stalls_detected".into(), ins.stalls_detected));
        vars.push(("flight.dumps".into(), ins.flight_dumps.len() as u64));
    }

    // Trace-ring and flight-recorder health: a non-zero `trace.dropped`
    // means the chrome trace is missing its oldest events.
    {
        let t = ep.trace.lock();
        vars.push(("trace.retained".into(), t.len() as u64));
        vars.push(("trace.dropped".into(), t.dropped()));
    }
    {
        let f = ep.flight.lock();
        vars.push(("flight.retained".into(), f.len() as u64));
        vars.push(("flight.dropped".into(), f.dropped()));
    }
    {
        let tl = ep.timeline.lock();
        vars.push(("timeline.retained".into(), tl.len() as u64));
        vars.push(("timeline.dropped".into(), tl.dropped()));
    }

    // Fabric link occupancy for this rank's own endpoint links (injection
    // and ejection), summed across rails. Switch-internal links are global
    // shared state and are reported by the fabric's congestion report, not
    // duplicated per rank.
    {
        let (inj, ej) = ep.cluster.fabric().node_link_totals(ep.node);
        for (stage, t) in [("inj", inj), ("ej", ej)] {
            vars.push((format!("fab.{stage}.busy_ns"), t.busy_ns));
            vars.push((format!("fab.{stage}.payload_bytes"), t.payload_bytes));
            vars.push((format!("fab.{stage}.wire_bytes"), t.wire_bytes));
            vars.push((format!("fab.{stage}.packets"), t.packets));
            vars.push((format!("fab.{stage}.retries"), t.retries));
            vars.push((format!("fab.{stage}.queue_peak"), t.queue_peak));
        }
    }

    PvarSnapshot {
        rank: ep.name.rank,
        vars,
    }
}

// ---------------------------------------------------------------------------
// time-series telemetry: the periodic pvar sampler
// ---------------------------------------------------------------------------

/// One periodic snapshot of the stack's hot gauges, taken on the simulated
/// clock by [`timeline_tick`]. A row in the timeline, not an event: queue
/// *depths* and cumulative link occupancy at an instant, so plotting
/// consecutive samples shows ramps (e.g. an incast victim's ejection queue
/// building) that endpoint-lifetime aggregates average away.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TimelineSample {
    /// Virtual time of the sample (ns).
    pub t_ns: u64,
    /// Posted-receive depth summed over communicators.
    pub posted_depth: u64,
    /// Unexpected-queue depth summed over communicators.
    pub unexpected_depth: u64,
    /// DMA descriptors in flight (host has not reaped completion).
    pub pending_dmas: u64,
    /// Chunked-rendezvous pipelines live.
    pub pipelines_live: u64,
    /// Reliability-tracked control frames awaiting CTL_ACK.
    pub ctl_inflight: u64,
    /// Cumulative injection-link busy time across rails (ns).
    pub inj_busy_ns: u64,
    /// Cumulative ejection-link busy time across rails (ns).
    pub ej_busy_ns: u64,
    /// Packets queued at this node's injection links right now.
    pub inj_queue: u64,
    /// Packets queued at this node's ejection links right now.
    pub ej_queue: u64,
}

impl TimelineSample {
    /// One sample as a JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"t_ns\":{},\"posted_depth\":{},\"unexpected_depth\":{},\
             \"pending_dmas\":{},\"pipelines_live\":{},\"ctl_inflight\":{},\
             \"inj_busy_ns\":{},\"ej_busy_ns\":{},\"inj_queue\":{},\"ej_queue\":{}}}",
            self.t_ns,
            self.posted_depth,
            self.unexpected_depth,
            self.pending_dmas,
            self.pipelines_live,
            self.ctl_inflight,
            self.inj_busy_ns,
            self.ej_busy_ns,
            self.inj_queue,
            self.ej_queue
        )
    }
}

/// Bounded ring of [`TimelineSample`]s, guarded by the endpoint's timeline
/// lock (a leaf lock, like the flight recorder's). When full, the oldest
/// sample is evicted and counted, keeping the most recent history.
pub struct Timeline {
    samples: std::collections::VecDeque<TimelineSample>,
    capacity: usize,
    dropped: u64,
}

impl Timeline {
    /// An empty ring holding at most `capacity` samples (min 1).
    pub fn with_capacity(capacity: usize) -> Timeline {
        Timeline {
            samples: std::collections::VecDeque::new(),
            capacity: capacity.max(1),
            dropped: 0,
        }
    }

    /// Append one sample, evicting the oldest when full.
    pub fn push(&mut self, s: TimelineSample) {
        if self.samples.len() == self.capacity {
            self.samples.pop_front();
            self.dropped += 1;
        }
        self.samples.push_back(s);
    }

    /// Samples currently retained.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when nothing has been sampled (or everything was evicted).
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Samples evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Retained samples, oldest first.
    pub fn samples(&self) -> impl Iterator<Item = &TimelineSample> {
        self.samples.iter()
    }

    /// The retained timeline as one JSON document:
    /// `{"rank":r,"dropped":n,"samples":[...]}`.
    pub fn to_json(&self, rank: usize) -> String {
        let rows: Vec<String> = self.samples.iter().map(|s| s.to_json()).collect();
        format!(
            "{{\"rank\":{},\"dropped\":{},\"samples\":[{}]}}",
            rank,
            self.dropped,
            rows.join(",")
        )
    }
}

/// Take a timeline sample if one is due (`timeline.interval_ns` of virtual
/// time elapsed since the last). Called from every progress pass and timer
/// tick; a cheap atomic check when sampling is off. Locks: state, then
/// fabric, then timeline — each taken and released in turn, none nested.
pub fn timeline_tick(proc: &Proc, ep: &Arc<Endpoint>) {
    let now = proc.now();
    if !ep.tunables.timeline_due(now.as_ns()) {
        return;
    }
    let (posted, unexpected, dmas, pipes, ctl) = {
        let st = ep.state.lock();
        (
            st.comms.values().map(|c| c.posted.len()).sum::<usize>(),
            st.comms.values().map(|c| c.unexpected.len()).sum::<usize>(),
            st.pending_dmas.len(),
            st.pipelines.len(),
            st.ctl_inflight.len(),
        )
    };
    let fabric = ep.cluster.fabric();
    let (inj, ej) = fabric.node_link_totals(ep.node);
    let (inj_queue, ej_queue) = fabric.node_queue_now(ep.node, now);
    ep.timeline.lock().push(TimelineSample {
        t_ns: now.as_ns(),
        posted_depth: posted as u64,
        unexpected_depth: unexpected as u64,
        pending_dmas: dmas as u64,
        pipelines_live: pipes as u64,
        ctl_inflight: ctl as u64,
        inj_busy_ns: inj.busy_ns,
        ej_busy_ns: ej.busy_ns,
        inj_queue,
        ej_queue,
    });
}

// ---------------------------------------------------------------------------
// progress watchdog
// ---------------------------------------------------------------------------

/// Watchdog bookkeeping plus recorded stall diagnostics, guarded by the
/// endpoint's introspect lock (may be taken while holding the state lock,
/// never the reverse — same rule as the metrics lock).
#[derive(Default)]
pub struct IntrospectState {
    /// Per-request `(fingerprint, consecutive stale scans)`.
    marks: HashMap<u64, (u64, u64)>,
    /// Watchdog scans performed.
    pub scans: u64,
    /// Requests ever declared stalled.
    pub stalls_detected: u64,
    /// Structured diagnostics recorded on stall detection.
    pub diagnostics: Vec<StallDiagnostic>,
    /// Flight-recorder dumps (JSON) emitted on stall or request failure.
    pub flight_dumps: Vec<String>,
}

/// One stuck request inside a [`StallDiagnostic`].
#[derive(Clone, Debug)]
pub struct StuckReq {
    /// Request id.
    pub id: u64,
    /// Global message id ([`crate::hdr::msg_gid`]); 0 when the request never
    /// progressed far enough to be attributed (e.g. an unmatched receive).
    pub gid: u64,
    /// `"send"` or `"recv"`.
    pub kind: &'static str,
    /// Peer description (destination rank for sends, source for receives).
    pub peer: String,
    /// MPI tag (selector for receives; `None` rendered as `any`).
    pub tag: String,
    /// Bytes confirmed/received so far.
    pub bytes_done: usize,
    /// Total message length (0 when unknown, i.e. unmatched receives).
    pub bytes_total: usize,
    /// Protocol phase the request is wedged in.
    pub phase: String,
    /// Lifecycle stage that never completed, inferred from the message's
    /// causal event chain in the flight recorder.
    pub stalled_stage: String,
    /// The message's reconstructed lifecycle: every flight-recorder event
    /// carrying this gid, as a JSON array of timestamped events.
    pub lifecycle: String,
    /// Consecutive scans without a state transition.
    pub stale_scans: u64,
}

/// Infer which lifecycle stage a stalled message is wedged in from its
/// retained flight events (this rank's view of the causal chain). Byte
/// accounting beats last-event order: DMA completions may interleave with
/// later issues, so the question is whether issued bytes all landed.
fn stalled_stage(evs: &[&crate::flight::FlightEvent]) -> String {
    use crate::flight::FlightEvent as F;
    let (mut issued, mut landed) = (0usize, 0usize);
    let (mut sent, mut matched, mut rdma, mut complete) = (false, false, false, false);
    for e in evs {
        match e {
            F::Send { .. } => sent = true,
            F::Match { .. } => matched = true,
            F::Rdma { bytes, .. } => {
                rdma = true;
                issued += bytes;
            }
            F::DmaDone { bytes, .. } => landed += bytes,
            F::Complete { .. } => complete = true,
            _ => {}
        }
    }
    if complete {
        "complete: lifecycle finished on this rank (peer side stalled)".to_string()
    } else if rdma && landed < issued {
        format!(
            "wire: RDMA issued, {}/{} bytes never landed",
            landed, issued
        )
    } else if rdma {
        "fin-wait: payload landed, final control exchange never arrived".to_string()
    } else if matched {
        "handshake: matched, bulk transfer never started".to_string()
    } else if sent {
        "match-wait: posted, peer never matched or acknowledged".to_string()
    } else {
        "unattributed: no lifecycle events retained for this message".to_string()
    }
}

/// A pending DMA descriptor summarized for a diagnostic.
#[derive(Clone, Debug)]
pub struct DmaSummary {
    /// Completion token.
    pub token: u64,
    /// `"read"` or `"write"`.
    pub role: &'static str,
    /// Bytes the descriptor moves.
    pub bytes: usize,
}

/// An unexpected-queue entry summarized for a diagnostic.
#[derive(Clone, Debug)]
pub struct UnexpectedSummary {
    /// Communicator context id.
    pub ctx: u32,
    /// Sender's rank in that communicator.
    pub src_rank: u32,
    /// Fragment tag.
    pub tag: i32,
    /// Total message length the fragment announces.
    pub msg_len: usize,
}

/// The structured per-rank dump emitted when the watchdog fires.
#[derive(Clone, Debug)]
pub struct StallDiagnostic {
    /// The stalled rank.
    pub rank: usize,
    /// Virtual time of detection (ns).
    pub at_ns: u64,
    /// Requests that made no state transition for the grace period.
    pub stuck: Vec<StuckReq>,
    /// Depth of the posted-receive queues.
    pub posted_depth: usize,
    /// Contents of the unexpected queues.
    pub unexpected: Vec<UnexpectedSummary>,
    /// In-flight DMA descriptors the host has not reaped.
    pub pending_dmas: Vec<DmaSummary>,
    /// Flight-recorder contents at detection time (JSON array of events).
    pub flight: String,
}

impl StallDiagnostic {
    /// JSON rendering of the full diagnostic.
    pub fn to_json(&self) -> String {
        let stuck: Vec<String> = self
            .stuck
            .iter()
            .map(|s| {
                format!(
                    "{{\"id\":{},\"gid\":{},\"kind\":\"{}\",\"peer\":\"{}\",\"tag\":\"{}\",\
                     \"bytes_done\":{},\"bytes_total\":{},\"phase\":\"{}\",\
                     \"stalled_stage\":\"{}\",\"lifecycle\":{},\
                     \"stale_scans\":{}}}",
                    s.id,
                    s.gid,
                    s.kind,
                    s.peer,
                    s.tag,
                    s.bytes_done,
                    s.bytes_total,
                    s.phase,
                    crate::trace::escape_json(&s.stalled_stage),
                    if s.lifecycle.is_empty() {
                        "[]"
                    } else {
                        &s.lifecycle
                    },
                    s.stale_scans
                )
            })
            .collect();
        let unexpected: Vec<String> = self
            .unexpected
            .iter()
            .map(|u| {
                format!(
                    "{{\"ctx\":{},\"src_rank\":{},\"tag\":{},\"msg_len\":{}}}",
                    u.ctx, u.src_rank, u.tag, u.msg_len
                )
            })
            .collect();
        let dmas: Vec<String> = self
            .pending_dmas
            .iter()
            .map(|d| {
                format!(
                    "{{\"token\":{},\"role\":\"{}\",\"bytes\":{}}}",
                    d.token, d.role, d.bytes
                )
            })
            .collect();
        format!(
            "{{\"rank\":{},\"at_ns\":{},\"stuck\":[{}],\"posted_depth\":{},\
             \"unexpected\":[{}],\"pending_dmas\":[{}],\"flight\":{}}}",
            self.rank,
            self.at_ns,
            stuck.join(","),
            self.posted_depth,
            unexpected.join(","),
            dmas.join(","),
            if self.flight.is_empty() {
                "[]"
            } else {
                &self.flight
            }
        )
    }

    /// Human-readable rendering (the watchdog's panic message).
    pub fn render(&self) -> String {
        let mut out = format!(
            "progress watchdog: rank {} stalled at t={}ns; {} stuck request(s):",
            self.rank,
            self.at_ns,
            self.stuck.len()
        );
        for s in &self.stuck {
            out.push_str(&format!(
                "\n  {} req {} (gid {:#x}) -> peer {} tag {}: {}/{} bytes, phase [{}], \
                 stalled at [{}], no transition for {} scans",
                s.kind,
                s.id,
                s.gid,
                s.peer,
                s.tag,
                s.bytes_done,
                s.bytes_total,
                s.phase,
                s.stalled_stage,
                s.stale_scans
            ));
        }
        out.push_str(&format!(
            "\n  posted receives: {}; unexpected queue: {} entries; pending DMAs: {}",
            self.posted_depth,
            self.unexpected.len(),
            self.pending_dmas.len()
        ));
        if !self.flight.is_empty() && self.flight != "[]" {
            out.push_str("\n  flight recorder dumped (see JSON diagnostic)");
        }
        out
    }
}

/// Phase a not-yet-done send is wedged in, by rendezvous scheme and
/// handshake state.
fn send_phase(scheme: RdmaScheme, rndv_acked: bool) -> String {
    let wire = match scheme {
        RdmaScheme::Write => "rdma-write+fin",
        RdmaScheme::Read => "rdma-read+fin_ack",
    };
    if rndv_acked {
        format!("{wire}: handshake done, awaiting delivery confirmation")
    } else {
        format!("{wire}: rendezvous posted, awaiting first receiver contact")
    }
}

/// Phase a not-yet-done receive is wedged in.
fn recv_phase(scheme: RdmaScheme, matched: bool, eager_limit: usize, msg_len: usize) -> String {
    if !matched {
        return "unmatched: posted, no first fragment (eager or rendezvous) arrived".to_string();
    }
    if msg_len <= eager_limit {
        return "eager: matched, inline payload incomplete".to_string();
    }
    let wire = match scheme {
        RdmaScheme::Write => "rdma-write+fin",
        RdmaScheme::Read => "rdma-read+fin_ack",
    };
    format!("{wire}: matched, awaiting remaining payload")
}

fn pack_fingerprint(done: bool, flag: bool, bytes: usize) -> u64 {
    (bytes as u64) << 2 | (flag as u64) << 1 | done as u64
}

/// One watchdog scan over every live request. Returns the diagnostic if any
/// request exceeded the grace period, after recording it in the endpoint's
/// introspect state. Locks: state, then introspect (never the reverse).
fn watchdog_scan(ep: &Endpoint, now: Time) -> Option<StallDiagnostic> {
    let grace = ep.tunables.watchdog_grace();
    let st = ep.state.lock();
    let mut ins = ep.introspect.lock();
    ins.scans += 1;

    let mut live: Vec<(u64, u64)> = Vec::new(); // (id, fingerprint)
    for r in st.send_reqs.values().filter(|r| !r.done) {
        live.push((
            r.id,
            pack_fingerprint(r.done, r.rndv_acked, r.bytes_confirmed),
        ));
    }
    for r in st.recv_reqs.values().filter(|r| !r.done) {
        live.push((
            r.id,
            pack_fingerprint(r.done, r.matched.is_some(), r.bytes_received),
        ));
    }

    // Requests no longer live stop being tracked.
    let live_ids: std::collections::HashSet<u64> = live.iter().map(|(id, _)| *id).collect();
    ins.marks.retain(|id, _| live_ids.contains(id));

    let mut stalled: Vec<(u64, u64)> = Vec::new(); // (id, stale scans)
    for (id, fp) in live {
        let e = ins.marks.entry(id).or_insert((fp, 0));
        if e.0 == fp {
            e.1 += 1;
            if e.1 >= grace {
                stalled.push((id, e.1));
            }
        } else {
            *e = (fp, 0);
        }
    }
    if stalled.is_empty() {
        return None;
    }

    // Build the structured dump. Reconstruct each stuck message's causal
    // chain from the flight ring (leaf lock: snapshot and release) so the
    // diagnostic names the exact stage that never completed, not just the
    // request's current protocol phase.
    let flight_events: Vec<(Time, crate::flight::FlightEvent)> =
        ep.flight.lock().events().cloned().collect();
    let lifecycle_of = |gid: u64| -> (String, String) {
        let evs: Vec<&crate::flight::FlightEvent> = flight_events
            .iter()
            .filter(|(_, e)| gid != 0 && e.gid() == Some(gid))
            .map(|(_, e)| e)
            .collect();
        let stage = stalled_stage(&evs);
        let rows: Vec<String> = flight_events
            .iter()
            .filter(|(_, e)| gid != 0 && e.gid() == Some(gid))
            .map(|(t, e)| e.to_json(*t))
            .collect();
        (stage, format!("[{}]", rows.join(",")))
    };
    let mut stuck = Vec::new();
    for (id, stale) in &stalled {
        if let Some(r) = st.send_reqs.get(id) {
            let (stage, lifecycle) = lifecycle_of(r.gid);
            stuck.push(StuckReq {
                id: *id,
                gid: r.gid,
                kind: "send",
                peer: format!("rank {}", r.dst_rank),
                tag: r.tag.to_string(),
                bytes_done: r.bytes_confirmed,
                bytes_total: r.msg_len,
                phase: send_phase(ep.cfg.scheme, r.rndv_acked),
                stalled_stage: stage,
                lifecycle,
                stale_scans: *stale,
            });
        } else if let Some(r) = st.recv_reqs.get(id) {
            let (peer, tag, total) = match &r.matched {
                Some(m) => (format!("rank {}", m.src_rank), m.tag.to_string(), m.msg_len),
                None => (
                    r.src_sel
                        .map(|s| format!("rank {s}"))
                        .unwrap_or_else(|| "any".to_string()),
                    r.tag_sel
                        .map(|t| t.to_string())
                        .unwrap_or_else(|| "any".to_string()),
                    0,
                ),
            };
            let gid = r.matched.as_ref().map(|m| m.gid).unwrap_or(0);
            let (stage, lifecycle) = lifecycle_of(gid);
            stuck.push(StuckReq {
                id: *id,
                gid,
                kind: "recv",
                peer,
                tag,
                bytes_done: r.bytes_received,
                bytes_total: total,
                phase: recv_phase(
                    ep.cfg.scheme,
                    r.matched.is_some(),
                    ep.tunables.eager_limit(),
                    r.matched.as_ref().map(|m| m.msg_len).unwrap_or(0),
                ),
                stalled_stage: stage,
                lifecycle,
                stale_scans: *stale,
            });
        }
    }
    // Snapshot the flight recorder for the post-mortem: first record the
    // stall itself, then freeze the ring's contents into the diagnostic.
    // The flight lock is a leaf lock, safe under state + introspect.
    let flight = {
        let mut f = ep.flight.lock();
        if ep.tunables.flight_enable() {
            f.record(
                now,
                crate::flight::FlightEvent::Stall {
                    stuck: stalled.len(),
                },
            );
        }
        f.events_json()
    };
    let diag = StallDiagnostic {
        rank: ep.name.rank,
        at_ns: now.as_ns(),
        stuck,
        posted_depth: st.comms.values().map(|c| c.posted.len()).sum(),
        unexpected: st
            .comms
            .values()
            .flat_map(|c| c.unexpected.iter())
            .map(|f| UnexpectedSummary {
                ctx: f.hdr.ctx,
                src_rank: f.hdr.src_rank,
                tag: f.hdr.tag,
                msg_len: f.hdr.msg_len as usize,
            })
            .collect(),
        pending_dmas: st
            .pending_dmas
            .iter()
            .map(|p| match &p.role {
                DmaRole::Read { bytes, .. } => DmaSummary {
                    token: p.token,
                    role: "read",
                    bytes: *bytes,
                },
                DmaRole::Write { bytes, .. } => DmaSummary {
                    token: p.token,
                    role: "write",
                    bytes: *bytes,
                },
                DmaRole::Chunk { bytes, is_read, .. } => DmaSummary {
                    token: p.token,
                    role: if *is_read {
                        "chunk_read"
                    } else {
                        "chunk_write"
                    },
                    bytes: *bytes,
                },
            })
            .collect(),
        flight,
    };
    ins.stalls_detected += stalled.len() as u64;
    ins.flight_dumps.push(
        ep.flight
            .lock()
            .dump_json(ep.name.rank, "watchdog stall", now),
    );
    ins.diagnostics.push(diag.clone());
    Some(diag)
}

/// Count one progress tick and, every `watchdog.interval` ticks, scan for
/// stalled requests. Panics with the rendered [`StallDiagnostic`] when one
/// is found — under qsim this surfaces deterministically as
/// `SimError::ProcPanic` naming the stalled rank.
///
/// No-op when the watchdog is disabled (`watchdog.interval == 0`).
pub fn watchdog_tick(proc: &Proc, ep: &Arc<Endpoint>) {
    let interval = ep.tunables.watchdog_interval();
    if interval == 0 {
        return;
    }
    let t = ep.tunables.next_tick();
    if !t.is_multiple_of(interval) {
        return;
    }
    // Scan (and record) under the locks, then panic outside them so the
    // teardown path never observes a poisoned endpoint.
    let diag = watchdog_scan(ep, proc.now());
    if let Some(d) = diag {
        panic!("{}", d.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_names_cover_schemes_and_states() {
        assert!(send_phase(RdmaScheme::Read, false).contains("rdma-read+fin_ack"));
        assert!(send_phase(RdmaScheme::Write, true).contains("rdma-write+fin"));
        assert!(recv_phase(RdmaScheme::Read, false, 1984, 0).contains("unmatched"));
        assert!(recv_phase(RdmaScheme::Read, true, 1984, 100).contains("eager"));
        assert!(recv_phase(RdmaScheme::Write, true, 1984, 10_000).contains("rdma-write+fin"));
    }

    #[test]
    fn fingerprint_distinguishes_transitions() {
        let a = pack_fingerprint(false, false, 100);
        let b = pack_fingerprint(false, true, 100);
        let c = pack_fingerprint(false, true, 200);
        let d = pack_fingerprint(true, true, 200);
        assert!(a != b && b != c && c != d);
    }

    #[test]
    fn stall_diagnostic_json_and_render_shape() {
        let d = StallDiagnostic {
            rank: 3,
            at_ns: 12_345,
            stuck: vec![StuckReq {
                id: 7,
                gid: 0x0100_0000_0000_0007,
                kind: "send",
                peer: "rank 1".to_string(),
                tag: "42".to_string(),
                bytes_done: 1984,
                bytes_total: 100_000,
                phase: send_phase(RdmaScheme::Read, true),
                stalled_stage: "wire: RDMA issued, 1984/100000 bytes never landed".to_string(),
                lifecycle: "[{\"t_ns\":1,\"ev\":\"send\"}]".to_string(),
                stale_scans: 4,
            }],
            posted_depth: 1,
            unexpected: vec![UnexpectedSummary {
                ctx: 0,
                src_rank: 2,
                tag: 9,
                msg_len: 64,
            }],
            pending_dmas: vec![DmaSummary {
                token: 5,
                role: "read",
                bytes: 4096,
            }],
            flight: "[]".to_string(),
        };
        let j = d.to_json();
        assert!(j.contains("\"rank\":3"));
        assert!(j.contains("rdma-read+fin_ack"));
        assert!(j.contains("\"pending_dmas\":[{\"token\":5"));
        assert!(j.contains("\"gid\":72057594037927943"));
        assert!(j.contains("\"stalled_stage\":\"wire: RDMA issued"));
        assert!(j.contains("\"lifecycle\":[{\"t_ns\":1,\"ev\":\"send\"}]"));
        let r = d.render();
        assert!(r.contains("rank 3 stalled"));
        assert!(r.contains("peer rank 1"));
        assert!(r.contains("phase [rdma-read+fin_ack"));
        assert!(r.contains("stalled at [wire: RDMA issued"));
    }

    #[test]
    fn stalled_stage_orders_lifecycle_inferences() {
        use crate::flight::FlightEvent as F;
        let send = F::Send {
            req: 1,
            gid: 9,
            dst: 1,
            len: 100,
            eager: false,
        };
        let mtch = F::Match {
            req: 2,
            gid: 9,
            src: 0,
            len: 100,
        };
        let rdma = F::Rdma {
            gid: 9,
            read: true,
            bytes: 100,
        };
        let done = F::DmaDone { gid: 9, bytes: 100 };
        let comp = F::Complete {
            req: 2,
            gid: 9,
            send: false,
        };
        assert!(stalled_stage(&[]).contains("unattributed"));
        assert!(stalled_stage(&[&send]).contains("match-wait"));
        assert!(stalled_stage(&[&send, &mtch]).contains("handshake"));
        assert!(stalled_stage(&[&send, &mtch, &rdma]).contains("wire"));
        assert!(stalled_stage(&[&send, &mtch, &rdma, &done]).contains("fin-wait"));
        assert!(stalled_stage(&[&send, &mtch, &rdma, &done, &comp]).contains("complete"));
    }

    #[test]
    fn timeline_ring_bounds_and_serializes() {
        let mut tl = Timeline::with_capacity(2);
        for i in 0..3u64 {
            tl.push(TimelineSample {
                t_ns: i * 1000,
                ej_queue: i,
                ..Default::default()
            });
        }
        assert_eq!(tl.len(), 2);
        assert_eq!(tl.dropped(), 1);
        let j = tl.to_json(4);
        assert!(j.starts_with("{\"rank\":4,\"dropped\":1,\"samples\":["));
        assert!(j.contains("\"t_ns\":1000"));
        assert!(j.contains("\"t_ns\":2000"));
        assert!(!j.contains("\"t_ns\":0,"));
        assert!(j.contains("\"ej_queue\":2"));
    }

    #[test]
    fn cvar_defaults_cover_the_whole_registry() {
        for d in CVARS {
            let v = cvar_default(d.name);
            assert!(v.is_some(), "no default for cvar {}", d.name);
        }
        assert_eq!(cvar_default("no.such.cvar"), None);
        // The default table reflects StackConfig::default(), not a copy.
        let cfg = StackConfig::default();
        assert_eq!(
            cvar_default("pml.eager_limit"),
            Some(CvarValue::U64(cfg.eager_limit as u64))
        );
        assert_eq!(
            cvar_default("timeline.interval_ns"),
            Some(CvarValue::U64(cfg.timeline_interval.as_ns()))
        );
    }
}
