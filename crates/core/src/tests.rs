//! End-to-end tests of the whole stack on the simulated testbed.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use ompi_datatype::{Convertor, Datatype};
use qsim::Mutex;

use crate::config::{CompletionMode, ProgressMode, RdmaScheme, StackConfig};
use crate::endpoint::Transports;
use crate::mpi::{Mpi, ANY_SOURCE, ANY_TAG};
use crate::universe::{Placement, Universe};

fn pattern(n: usize, seed: u8) -> Vec<u8> {
    (0..n)
        .map(|i| ((i * 31 + seed as usize * 7) % 251) as u8)
        .collect()
}

/// Run a 2-rank world; rank 0 and rank 1 run the respective closures.
fn run_pair(
    cfg: StackConfig,
    f0: impl Fn(&Mpi) + Send + Sync + 'static,
    f1: impl Fn(&Mpi) + Send + Sync + 'static,
) {
    let uni = Universe::paper_testbed(cfg);
    uni.run_world(2, Placement::RoundRobin, move |mpi| {
        if mpi.rank() == 0 {
            f0(&mpi)
        } else {
            f1(&mpi)
        }
    });
}

/// Ping-pong `iters` round trips of `len` bytes; returns half-RTT in ns.
fn pingpong(cfg: StackConfig, len: usize, iters: usize) -> u64 {
    let lat = Arc::new(AtomicU64::new(0));
    let lat2 = lat.clone();
    let uni = Universe::paper_testbed(cfg);
    uni.run_world(2, Placement::RoundRobin, move |mpi| {
        let world = mpi.world();
        let sbuf = mpi.alloc(len.max(1));
        let rbuf = mpi.alloc(len.max(1));
        mpi.write(&sbuf, 0, &pattern(len, mpi.rank() as u8));
        mpi.barrier(&world);
        let t0 = mpi.now();
        for _ in 0..iters {
            if mpi.rank() == 0 {
                mpi.send(&world, 1, 0, &sbuf, len);
                mpi.recv(&world, 1, 0, &rbuf, len);
            } else {
                mpi.recv(&world, 0, 0, &rbuf, len);
                mpi.send(&world, 0, 0, &sbuf, len);
            }
        }
        if mpi.rank() == 0 {
            let total = (mpi.now() - t0).as_ns();
            lat2.store(total / (2 * iters as u64), Ordering::SeqCst);
            assert_eq!(mpi.read(&rbuf, 0, len), pattern(len, 1), "data corrupt");
        }
    });
    lat.load(Ordering::SeqCst)
}

#[test]
fn eager_pingpong_data_and_latency() {
    let l0 = pingpong(StackConfig::best(), 0, 20);
    let l64 = pingpong(StackConfig::best(), 64, 20);
    // Paper band: Open MPI small-message latency ≈ 4-5 µs.
    assert!(l0 > 2_500 && l0 < 6_000, "0B latency {l0}ns out of band");
    assert!(l64 > l0, "64B should cost more than 0B");
}

#[test]
fn rendezvous_sizes_all_scheme_combinations() {
    for scheme in [RdmaScheme::Read, RdmaScheme::Write] {
        for inline in [false, true] {
            for chained in [false, true] {
                let mut cfg = StackConfig::best();
                cfg.scheme = scheme;
                cfg.inline_first_frag = inline;
                cfg.chained_fin = chained;
                for len in [1985usize, 4096, 65536] {
                    let lat = pingpong(cfg.clone(), len, 4);
                    assert!(
                        lat > 3_000,
                        "{scheme:?} inline={inline} chained={chained} len={len}: {lat}ns"
                    );
                }
            }
        }
    }
}

#[test]
fn forced_rendezvous_small_messages() {
    for scheme in [RdmaScheme::Read, RdmaScheme::Write] {
        for inline in [false, true] {
            let mut cfg = StackConfig::best();
            cfg.scheme = scheme;
            cfg.inline_first_frag = inline;
            cfg.force_rendezvous = true;
            for len in [0usize, 4, 512, 1984] {
                pingpong(cfg.clone(), len, 3);
            }
        }
    }
}

#[test]
fn read_scheme_beats_write_scheme_without_inline() {
    // Paper §6.1: RDMA read saves a control packet vs. RDMA write.
    let mut read_cfg = StackConfig::best();
    read_cfg.force_rendezvous = true;
    let mut write_cfg = read_cfg.clone();
    write_cfg.scheme = RdmaScheme::Write;
    let r = pingpong(read_cfg, 1024, 10);
    let w = pingpong(write_cfg, 1024, 10);
    assert!(r < w, "read {r}ns should beat write {w}ns");
}

#[test]
fn no_inline_beats_inline_rendezvous() {
    // Paper §6.1: sending the rendezvous packet without inlined data is
    // better wherever the rendezvous path runs (sizes above the 1984-byte
    // threshold; below it the eager path is used).
    for len in [2048usize, 4096, 8192] {
        let no_inline = StackConfig::best();
        let mut inline = no_inline.clone();
        inline.inline_first_frag = true;
        let ni = pingpong(no_inline, len, 10);
        let il = pingpong(inline, len, 10);
        assert!(
            ni < il,
            "len={len}: no-inline {ni}ns should beat inline {il}ns"
        );
    }
}

#[test]
fn datatype_engine_adds_fixed_overhead() {
    // Paper §6.1: the DTP copy engine costs ~0.4 µs per request.
    let mut base = StackConfig::best();
    base.force_rendezvous = true;
    base.inline_first_frag = true;
    let mut dtp = base.clone();
    dtp.use_datatype_engine = true;
    let b = pingpong(base, 256, 10);
    let d = pingpong(dtp, 256, 10);
    let delta = d.saturating_sub(b);
    assert!(
        (300..600).contains(&delta),
        "DTP overhead {delta}ns, expected ~400"
    );
}

#[test]
fn chained_fin_saves_host_turnaround() {
    let mut chained = StackConfig::best();
    chained.force_rendezvous = true;
    let mut unchained = chained.clone();
    unchained.chained_fin = false;
    let c = pingpong(chained, 4096, 10);
    let u = pingpong(unchained, 4096, 10);
    assert!(c < u, "chained {c}ns should beat unchained {u}ns");
    assert!(
        u - c < 3_000,
        "chaining gain should be marginal (paper §6.2), got {}ns",
        u - c
    );
}

#[test]
fn shared_completion_queue_costs_a_little() {
    let mut poll = StackConfig::best();
    poll.force_rendezvous = true;
    let mut one_q = poll.clone();
    one_q.completion = CompletionMode::SharedQueueCombined;
    let mut two_q = poll.clone();
    two_q.completion = CompletionMode::SharedQueueSeparate;
    let p = pingpong(poll, 4096, 10);
    let q1 = pingpong(one_q, 4096, 10);
    let q2 = pingpong(two_q, 4096, 10);
    assert!(q1 > p, "one-queue {q1} should cost over basic {p}");
    assert!(q2 > p, "two-queue {q2} should cost over basic {p}");
}

#[test]
fn progress_mode_ordering_matches_table1() {
    let mut basic = StackConfig::best();
    basic.force_rendezvous = true;

    let mut irq = basic.clone();
    irq.progress = ProgressMode::Interrupt;

    let mut one = basic.clone();
    one.progress = ProgressMode::OneThread;
    one.completion = CompletionMode::SharedQueueCombined;

    let mut two = basic.clone();
    two.progress = ProgressMode::TwoThreads;
    two.completion = CompletionMode::SharedQueueSeparate;

    let b = pingpong(basic, 4, 10);
    let i = pingpong(irq, 4, 10);
    let o = pingpong(one, 4, 10);
    let t = pingpong(two, 4, 10);
    assert!(b < i && i < o && o < t, "expected {b} < {i} < {o} < {t}");
    // Rough paper magnitudes: interrupts ~+10us, one thread ~+8 more,
    // two threads a few more.
    assert!((i - b) > 6_000 && (i - b) < 16_000, "irq delta {}", i - b);
    assert!(
        (o - i) > 4_000 && (o - i) < 14_000,
        "thread delta {}",
        o - i
    );
}

#[test]
fn message_ordering_is_fifo_per_peer() {
    run_pair(
        StackConfig::best(),
        |mpi| {
            let w = mpi.world();
            let buf = mpi.alloc(8);
            for i in 0..16u64 {
                mpi.write(&buf, 0, &i.to_le_bytes());
                mpi.send(&w, 1, 7, &buf, 8);
            }
        },
        |mpi| {
            let w = mpi.world();
            let buf = mpi.alloc(8);
            for i in 0..16u64 {
                mpi.recv(&w, 0, 7, &buf, 8);
                let got = u64::from_le_bytes(mpi.read(&buf, 0, 8).try_into().unwrap());
                assert_eq!(got, i, "messages reordered");
            }
        },
    );
}

#[test]
fn wildcard_source_and_tag() {
    let uni = Universe::paper_testbed(StackConfig::best());
    uni.run_world(3, Placement::RoundRobin, |mpi| {
        let w = mpi.world();
        if mpi.rank() == 0 {
            let buf = mpi.alloc(4);
            let mut seen = [false; 3];
            for _ in 0..2 {
                let st = mpi.recv(&w, ANY_SOURCE, ANY_TAG, &buf, 4);
                assert_eq!(st.tag, 40 + st.source as i32);
                assert_eq!(mpi.read(&buf, 0, 4), vec![st.source as u8; 4]);
                seen[st.source] = true;
            }
            assert!(seen[1] && seen[2]);
        } else {
            let buf = mpi.alloc(4);
            mpi.write(&buf, 0, &[mpi.rank() as u8; 4]);
            mpi.send(&w, 0, 40 + mpi.rank() as i32, &buf, 4);
        }
    });
}

#[test]
fn unexpected_messages_match_late_receives() {
    run_pair(
        StackConfig::best(),
        |mpi| {
            let w = mpi.world();
            let buf = mpi.alloc(1 << 16);
            mpi.write(&buf, 0, &pattern(1 << 16, 3));
            // Large rendezvous + small eager, both before any recv is up.
            let r1 = mpi.isend(&w, 1, 5, &buf, 1 << 16);
            let r2 = mpi.isend(&w, 1, 6, &buf, 100);
            mpi.waitall([r1, r2]);
        },
        |mpi| {
            let w = mpi.world();
            // Force both messages into the unexpected path.
            mpi.compute(qsim::Dur::from_us(500));
            let big = mpi.alloc(1 << 16);
            let small = mpi.alloc(100);
            // Receive in the opposite order of arrival.
            mpi.recv(&w, 0, 6, &small, 100);
            mpi.recv(&w, 0, 5, &big, 1 << 16);
            assert_eq!(mpi.read(&big, 0, 1 << 16), pattern(1 << 16, 3));
            assert_eq!(mpi.read(&small, 0, 100), pattern(1 << 16, 3)[..100]);
        },
    );
}

#[test]
fn noncontiguous_datatypes_roundtrip() {
    // Columns of a matrix: 256 blocks of 16 bytes, stride 48.
    let dt = Datatype::vector(256, 16, 48, Datatype::u8());
    let conv = Convertor::new(dt, 1);
    let span = conv.span();
    let packed_len = conv.packed_len();
    assert!(packed_len > crate::hdr::MAX_INLINE, "exercise rendezvous");
    let conv0 = conv.clone();
    let conv1 = conv;
    run_pair(
        StackConfig::best(),
        move |mpi| {
            let w = mpi.world();
            let buf = mpi.alloc(span);
            mpi.write(&buf, 0, &pattern(span, 9));
            let r = mpi.isend_typed(&w, 1, 3, &buf, conv0.clone());
            mpi.wait(r);
        },
        move |mpi| {
            let w = mpi.world();
            let buf = mpi.alloc(span);
            let r = mpi.irecv_typed(&w, 0, 3, &buf, conv1.clone());
            mpi.wait(r);
            let got = mpi.read(&buf, 0, span);
            let sent = pattern(span, 9);
            for (off, len) in conv1.segments() {
                assert_eq!(&got[off..off + len], &sent[off..off + len]);
            }
        },
    );
}

#[test]
fn nonblocking_window_of_outstanding_sends() {
    run_pair(
        StackConfig::best(),
        |mpi| {
            let w = mpi.world();
            let bufs: Vec<_> = (0..8)
                .map(|i| {
                    let b = mpi.alloc(8192);
                    mpi.write(&b, 0, &pattern(8192, i as u8));
                    b
                })
                .collect();
            let reqs: Vec<_> = bufs.iter().map(|b| mpi.isend(&w, 1, 11, b, 8192)).collect();
            mpi.waitall(reqs);
        },
        |mpi| {
            let w = mpi.world();
            let bufs: Vec<_> = (0..8).map(|_| mpi.alloc(8192)).collect();
            let reqs: Vec<_> = bufs.iter().map(|b| mpi.irecv(&w, 0, 11, b, 8192)).collect();
            mpi.waitall(reqs);
            for (i, b) in bufs.iter().enumerate() {
                assert_eq!(mpi.read(b, 0, 8192), pattern(8192, i as u8));
            }
        },
    );
}

#[test]
fn collectives_eight_ranks() {
    let uni = Universe::paper_testbed(StackConfig::best());
    uni.run_world(8, Placement::RoundRobin, |mpi| {
        let w = mpi.world();
        let n = mpi.size();
        let me = mpi.rank();

        // Barrier synchronizes virtual time.
        mpi.barrier(&w);

        // Bcast from rank 3.
        let b = mpi.alloc(1024);
        if me == 3 {
            mpi.write(&b, 0, &pattern(1024, 42));
        }
        mpi.bcast(&w, 3, &b, 1024);
        assert_eq!(mpi.read(&b, 0, 1024), pattern(1024, 42));

        // Allreduce sum of f64.
        let r = mpi.alloc(8 * 4);
        let vals: Vec<f64> = (0..4).map(|i| (me * 10 + i) as f64).collect();
        let bytes: Vec<u8> = vals.iter().flat_map(|v| v.to_le_bytes()).collect();
        mpi.write(&r, 0, &bytes);
        mpi.allreduce(&w, crate::ReduceOp::SumF64, &r, 32);
        let out = mpi.read(&r, 0, 32);
        for i in 0..4 {
            let v = f64::from_le_bytes(out[i * 8..i * 8 + 8].try_into().unwrap());
            let expect: f64 = (0..n).map(|rk| (rk * 10 + i) as f64).sum();
            assert_eq!(v, expect);
        }

        // Gather to rank 0.
        let s = mpi.alloc(4);
        mpi.write(&s, 0, &[me as u8; 4]);
        let g = mpi.alloc(4 * n);
        mpi.gather(&w, 0, &s, 4, Some(&g));
        if me == 0 {
            for rk in 0..n {
                assert_eq!(mpi.read(&g, rk * 4, 4), vec![rk as u8; 4]);
            }
        }

        // Alltoall.
        let send = mpi.alloc(8 * n);
        let recv = mpi.alloc(8 * n);
        for dst in 0..n {
            mpi.write(&send, dst * 8, &[(me * 16 + dst) as u8; 8]);
        }
        mpi.alltoall(&w, &send, &recv, 8);
        for src in 0..n {
            assert_eq!(mpi.read(&recv, src * 8, 8), vec![(src * 16 + me) as u8; 8]);
        }
    });
}

#[test]
fn comm_split_and_dup() {
    let uni = Universe::paper_testbed(StackConfig::best());
    uni.run_world(6, Placement::RoundRobin, |mpi| {
        let w = mpi.world();
        let me = mpi.rank();
        // Two halves, reversed rank order within each.
        let color = (me % 2) as i32;
        let key = -(me as i32);
        let sub = mpi.comm_split(&w, color, key).unwrap();
        assert_eq!(sub.size(), 3);
        // key = -rank reverses order: highest old rank becomes rank 0.
        let expect_rank = match me {
            0 | 1 => 2,
            2 | 3 => 1,
            _ => 0,
        };
        assert_eq!(sub.rank(), expect_rank);
        // Ring exchange within the subcomm.
        let buf = mpi.alloc(8);
        mpi.write(&buf, 0, &(me as u64).to_le_bytes());
        let nxt = (sub.rank() + 1) % sub.size();
        let prv = (sub.rank() + sub.size() - 1) % sub.size();
        let rbuf = mpi.alloc(8);
        mpi.sendrecv(&sub, nxt, 1, &buf, 8, prv as i32, 1, &rbuf, 8);
        mpi.barrier(&w);

        // Dup of the world works independently.
        let dup = mpi.comm_dup(&w);
        mpi.barrier(&dup);
    });
}

#[test]
fn dynamic_spawn_parent_child_traffic() {
    let uni = Universe::paper_testbed(StackConfig::best());
    let spawned_check = Arc::new(AtomicU64::new(0));
    let sc = spawned_check.clone();
    uni.run_world(2, Placement::RoundRobin, move |mpi| {
        let w = mpi.world();
        if mpi.rank() == 0 {
            // Dynamically spawn two children on nodes 4 and 5.
            let sc2 = sc.clone();
            let inter = mpi.spawn(2, &[4, 5], move |child| {
                let pc = child.parent_comm().expect("child must see its parent");
                assert_eq!(pc.rank(), child.rank() + 1);
                // Child world works among children.
                let cw = child.world();
                child.barrier(&cw);
                // Receive from the parent, double it, send back.
                let buf = child.alloc(8);
                child.recv(&pc, 0, 9, &buf, 8);
                let v = u64::from_le_bytes(child.read(&buf, 0, 8).try_into().unwrap());
                child.write(&buf, 0, &(v * 2).to_le_bytes());
                child.send(&pc, 0, 10, &buf, 8);
                sc2.fetch_add(1, Ordering::SeqCst);
            });
            let buf = mpi.alloc(8);
            for c in 1..=2usize {
                mpi.write(&buf, 0, &(100 * c as u64).to_le_bytes());
                mpi.send(&inter, c, 9, &buf, 8);
            }
            for _ in 0..2 {
                let st = mpi.recv(&inter, ANY_SOURCE, 10, &buf, 8);
                let v = u64::from_le_bytes(mpi.read(&buf, 0, 8).try_into().unwrap());
                assert_eq!(v, 200 * st.source as u64);
            }
        }
        mpi.barrier(&w);
    });
    assert_eq!(spawned_check.load(Ordering::SeqCst), 2);
}

#[test]
fn multirail_striping_is_faster_and_correct() {
    fn bw_run(rails: usize) -> u64 {
        let fabric = qsnet::FabricConfig {
            rails: 2,
            ..Default::default()
        };
        let uni = Universe::new(
            elan4::NicConfig::default(),
            fabric,
            StackConfig::best(),
            Transports {
                elan_rails: rails,
                tcp: false,
            },
        );
        let t = Arc::new(AtomicU64::new(0));
        let t2 = t.clone();
        uni.run_world(2, Placement::RoundRobin, move |mpi| {
            let w = mpi.world();
            let len = 1 << 20;
            let buf = mpi.alloc(len);
            if mpi.rank() == 0 {
                mpi.write(&buf, 0, &pattern(len, 1));
                mpi.barrier(&w);
                let t0 = mpi.now();
                mpi.send(&w, 1, 0, &buf, len);
                // Round-trip one byte to bound delivery.
                let ack = mpi.alloc(1);
                mpi.recv(&w, 1, 1, &ack, 1);
                t2.store((mpi.now() - t0).as_ns(), Ordering::SeqCst);
            } else {
                mpi.barrier(&w);
                mpi.recv(&w, 0, 0, &buf, len);
                assert_eq!(mpi.read(&buf, 0, len), pattern(len, 1));
                let ack = mpi.alloc(1);
                mpi.send(&w, 0, 1, &ack, 1);
            }
        });
        t.load(Ordering::SeqCst)
    }
    let one = bw_run(1);
    let two = bw_run(2);
    // PCI-X is shared, so two rails can't double throughput, but they must
    // beat one rail measurably.
    assert!(two < one * 95 / 100, "2 rails {two}ns vs 1 rail {one}ns");
}

#[test]
fn concurrent_elan_and_tcp_striping() {
    let mut cfg = StackConfig::best();
    cfg.scheme = RdmaScheme::Write;
    let uni = Universe::new(
        elan4::NicConfig::default(),
        qsnet::FabricConfig::default(),
        cfg,
        Transports {
            elan_rails: 1,
            tcp: true,
        },
    );
    uni.run_world(2, Placement::RoundRobin, |mpi| {
        let w = mpi.world();
        let len = 1 << 20;
        let buf = mpi.alloc(len);
        if mpi.rank() == 0 {
            mpi.write(&buf, 0, &pattern(len, 5));
            mpi.send(&w, 1, 0, &buf, len);
        } else {
            mpi.recv(&w, 0, 0, &buf, len);
            assert_eq!(mpi.read(&buf, 0, len), pattern(len, 5));
        }
    });
    // The Elan share must actually have moved via RDMA.
    let stats = uni.cluster.stats();
    assert!(stats.rdmas > 0, "elan share missing");
}

#[test]
fn tcp_only_transport_works_and_is_slow() {
    let uni = Universe::new(
        elan4::NicConfig::default(),
        qsnet::FabricConfig::default(),
        StackConfig::best(),
        Transports {
            elan_rails: 0,
            tcp: true,
        },
    );
    let t = Arc::new(AtomicU64::new(0));
    let t2 = t.clone();
    uni.run_world(2, Placement::RoundRobin, move |mpi| {
        let w = mpi.world();
        let buf = mpi.alloc(64);
        if mpi.rank() == 0 {
            mpi.write(&buf, 0, &pattern(64, 2));
            let t0 = mpi.now();
            mpi.send(&w, 1, 0, &buf, 64);
            mpi.recv(&w, 1, 0, &buf, 64);
            t2.store((mpi.now() - t0).as_ns() / 2, Ordering::SeqCst);
        } else {
            mpi.recv(&w, 0, 0, &buf, 64);
            mpi.send(&w, 0, 0, &buf, 64);
        }
    });
    let lat = t.load(Ordering::SeqCst);
    // TCP latency is tens of microseconds — the paper's motivation.
    assert!(lat > 20_000, "tcp latency {lat}ns suspiciously low");
}

#[test]
fn pml_layer_cost_instrumentation() {
    // Paper §6.3: the PML layer and above costs ≈ 0.5 µs per message.
    let cost = Arc::new(Mutex::new(None));
    let c2 = cost.clone();
    let uni = Universe::paper_testbed(StackConfig::best());
    uni.run_world(2, Placement::RoundRobin, move |mpi| {
        let w = mpi.world();
        let buf = mpi.alloc(64);
        for _ in 0..50 {
            if mpi.rank() == 0 {
                mpi.send(&w, 1, 0, &buf, 64);
                mpi.recv(&w, 1, 0, &buf, 64);
            } else {
                mpi.recv(&w, 0, 0, &buf, 64);
                mpi.send(&w, 0, 0, &buf, 64);
            }
        }
        if mpi.rank() == 0 {
            *c2.lock() = mpi.endpoint().pml_layer_cost();
        }
    });
    let c = cost.lock().expect("no samples");
    assert!(
        c.as_ns() > 200 && c.as_ns() < 1_500,
        "PML layer cost {c} out of band"
    );
}

#[test]
fn deterministic_virtual_timing() {
    let a = pingpong(StackConfig::best(), 4096, 5);
    let b = pingpong(StackConfig::best(), 4096, 5);
    assert_eq!(
        a, b,
        "identical runs must produce identical virtual timings"
    );
}

#[test]
fn memory_is_released_after_finalize() {
    let uni = Universe::paper_testbed(StackConfig::best());
    uni.run_world(2, Placement::RoundRobin, |mpi| {
        let w = mpi.world();
        let buf = mpi.alloc(1 << 18);
        if mpi.rank() == 0 {
            mpi.send(&w, 1, 0, &buf, 1 << 18);
        } else {
            mpi.recv(&w, 0, 0, &buf, 1 << 18);
        }
        mpi.free(buf);
    });
    for node in 0..2 {
        assert_eq!(uni.cluster.mem_in_use(node), 0, "leak on node {node}");
    }
}

#[test]
fn fabric_fault_injection_is_transparent() {
    let uni = Universe::paper_testbed(StackConfig::best());
    // Fault several packets between the two nodes used by the ranks.
    uni.cluster.fabric().inject_drops(0, 1, 3);
    uni.run_world(2, Placement::RoundRobin, |mpi| {
        let w = mpi.world();
        let len = 1 << 16;
        let buf = mpi.alloc(len);
        if mpi.rank() == 0 {
            mpi.write(&buf, 0, &pattern(len, 7));
            mpi.send(&w, 1, 0, &buf, len);
        } else {
            mpi.recv(&w, 0, 0, &buf, len);
            assert_eq!(mpi.read(&buf, 0, len), pattern(len, 7));
        }
    });
    assert_eq!(uni.cluster.fabric().stats().retries, 3);
}

// ---------------------------------------------------------------------------
// extensions: RMA, hardware broadcast, probe, scatter
// ---------------------------------------------------------------------------

#[test]
fn rma_put_get_fence() {
    let uni = Universe::paper_testbed(StackConfig::best());
    uni.run_world(4, Placement::RoundRobin, |mpi| {
        let w = mpi.world();
        let me = mpi.rank();
        let n = mpi.size();
        let wbuf = mpi.alloc(1024);
        mpi.write(&wbuf, 0, &[me as u8; 1024]);
        let mut win = mpi.win_create(&w, wbuf);

        // Everyone puts its rank byte into the right neighbour's window.
        let src = mpi.alloc(64);
        mpi.write(&src, 0, &[(me + 100) as u8; 64]);
        let right = (me + 1) % n;
        mpi.put(&mut win, right, me * 64, &src, 0, 64);
        mpi.win_fence(&mut win);

        // The left neighbour's put is visible locally after the fence.
        let left = (me + n - 1) % n;
        assert_eq!(mpi.read(&wbuf, left * 64, 64), vec![(left + 100) as u8; 64]);

        // One-sided read of rank 0's window.
        let dst = mpi.alloc(1024);
        mpi.get(&mut win, 0, 0, &dst, 0, 1024);
        mpi.win_fence(&mut win);
        let got = mpi.read(&dst, 256, 64);
        assert!(got
            .iter()
            .all(|&b| b == 0 || b == 103 || b == 100 + n as u8 - 1));

        mpi.win_free(win);
        mpi.free(src);
        mpi.free(dst);
        mpi.free(wbuf);
    });
}

#[test]
fn rma_accumulate_sum() {
    let uni = Universe::paper_testbed(StackConfig::best());
    uni.run_world(4, Placement::RoundRobin, |mpi| {
        let w = mpi.world();
        let wbuf = mpi.alloc(8);
        mpi.write(&wbuf, 0, &0f64.to_le_bytes());
        let mut win = mpi.win_create(&w, wbuf);
        // Serialized epochs: each rank adds its value to rank 0's counter.
        for turn in 0..mpi.size() {
            if mpi.rank() == turn {
                let v = mpi.alloc(8);
                mpi.write(&v, 0, &((turn + 1) as f64).to_le_bytes());
                mpi.accumulate_sum_f64(&mut win, 0, 0, &v, 0, 8);
                mpi.free(v);
            }
            mpi.win_fence(&mut win);
        }
        if mpi.rank() == 0 {
            let total = f64::from_le_bytes(mpi.read(&wbuf, 0, 8).try_into().unwrap());
            assert_eq!(total, 1.0 + 2.0 + 3.0 + 4.0);
        }
        mpi.win_free(win);
        mpi.free(wbuf);
    });
}

#[test]
fn hardware_bcast_used_and_faster_than_tree() {
    fn bcast_time(hw: bool, len: usize) -> (u64, u64) {
        let uni = Universe::paper_testbed(StackConfig::best());
        let t = Arc::new(AtomicU64::new(0));
        let t2 = t.clone();
        uni.run_world(8, Placement::RoundRobin, move |mpi| {
            let mut w = mpi.world();
            if !hw {
                w.hw_coll = false; // force the binomial tree
            }
            let buf = mpi.alloc(len);
            if mpi.rank() == 0 {
                mpi.write(&buf, 0, &pattern(len, 9));
            }
            mpi.barrier(&w);
            let t0 = mpi.now();
            for _ in 0..5 {
                mpi.bcast(&w, 0, &buf, len);
            }
            assert_eq!(mpi.read(&buf, 0, len), pattern(len, 9));
            mpi.barrier(&w);
            if mpi.rank() == 0 {
                t2.fetch_max((mpi.now() - t0).as_ns(), Ordering::SeqCst);
            }
        });
        (t.load(Ordering::SeqCst), uni.cluster.stats().hw_bcasts)
    }
    let (hw_t, hw_count) = bcast_time(true, 1024);
    let (tree_t, tree_count) = bcast_time(false, 1024);
    assert!(hw_count > 0, "hardware broadcast not used");
    assert_eq!(tree_count, 0, "tree bcast must not touch hw bcast");
    assert!(
        hw_t < tree_t,
        "hw bcast {hw_t}ns should beat tree {tree_t}ns on 8 ranks"
    );
}

#[test]
fn spawned_comm_falls_back_to_tree_bcast() {
    // Paper §4.1: late joiners cannot use the hardware broadcast because
    // the global virtual address space no longer covers them.
    let uni = Universe::paper_testbed(StackConfig::best());
    let before = uni.cluster.stats().hw_bcasts;
    uni.run_world(1, Placement::RoundRobin, |mpi| {
        let inter = mpi.spawn(2, &[5, 6], |child| {
            let pc = child.parent_comm().unwrap();
            let buf = child.alloc(256);
            child.bcast(&pc, 0, &buf, 256);
            let expect: Vec<u8> = (0..256).map(|i| i as u8).collect();
            assert_eq!(child.read(&buf, 0, 256), expect);
        });
        let buf = mpi.alloc(256);
        let data: Vec<u8> = (0..256).map(|i| i as u8).collect();
        mpi.write(&buf, 0, &data);
        mpi.bcast(&inter, 0, &buf, 256);
    });
    assert_eq!(
        uni.cluster.stats().hw_bcasts,
        before,
        "spawned communicator must not use hw bcast"
    );
}

#[test]
fn probe_and_iprobe() {
    run_pair(
        StackConfig::best(),
        |mpi| {
            let w = mpi.world();
            let buf = mpi.alloc(512);
            mpi.write(&buf, 0, &pattern(512, 4));
            mpi.compute(qsim::Dur::from_us(50));
            mpi.send(&w, 1, 21, &buf, 512);
        },
        |mpi| {
            let w = mpi.world();
            // Nothing there yet.
            assert!(mpi.iprobe(&w, 0, 21).is_none());
            // Blocking probe sees the message without consuming it.
            let st = mpi.probe(&w, ANY_SOURCE, ANY_TAG);
            assert_eq!(st.source, 0);
            assert_eq!(st.tag, 21);
            assert_eq!(st.len, 512);
            // Still there for iprobe, then receive exactly st.len bytes.
            assert!(mpi.iprobe(&w, 0, 21).is_some());
            let buf = mpi.alloc(st.len);
            let st2 = mpi.recv(&w, st.source as i32, st.tag, &buf, st.len);
            assert_eq!(st2.len, 512);
            assert_eq!(mpi.read(&buf, 0, 512), pattern(512, 4));
            // Consumed now.
            assert!(mpi.iprobe(&w, 0, 21).is_none());
        },
    );
}

#[test]
fn scatter_distributes_blocks() {
    let uni = Universe::paper_testbed(StackConfig::best());
    uni.run_world(8, Placement::RoundRobin, |mpi| {
        let w = mpi.world();
        let n = mpi.size();
        let me = mpi.rank();
        let recv = mpi.alloc(128);
        if me == 2 {
            let send = mpi.alloc(128 * n);
            for r in 0..n {
                mpi.write(&send, r * 128, &[(r * 3) as u8; 128]);
            }
            mpi.scatter(&w, 2, Some(&send), &recv, 128);
        } else {
            mpi.scatter(&w, 2, None, &recv, 128);
        }
        assert_eq!(mpi.read(&recv, 0, 128), vec![(me * 3) as u8; 128]);
    });
}

#[test]
fn integrity_check_passes_on_clean_wire() {
    let mut cfg = StackConfig::best();
    cfg.integrity_check = true;
    // All sizes, both protocol paths, verified end to end.
    for len in [1usize, 1984, 4096] {
        pingpong(cfg.clone(), len, 3);
    }
}

#[test]
fn integrity_check_catches_injected_corruption() {
    let mut cfg = StackConfig::best();
    cfg.integrity_check = true;
    let uni = Universe::paper_testbed(cfg);
    uni.cluster.inject_payload_corruption(1);
    let sim = qsim::Simulation::new();
    uni.launch_world(&sim, 2, Placement::RoundRobin, |mpi| {
        let w = mpi.world();
        let buf = mpi.alloc(1024);
        if mpi.rank() == 0 {
            mpi.write(&buf, 0, &pattern(1024, 1));
            mpi.send(&w, 1, 0, &buf, 1024);
        } else {
            mpi.recv(&w, 0, 0, &buf, 1024);
        }
    });
    match sim.run() {
        Err(qsim::SimError::ProcPanic { message, .. }) => {
            assert!(message.contains("integrity check failed"), "got: {message}");
        }
        other => panic!("expected fail-stop on corruption, got {other:?}"),
    }
    assert_eq!(uni.cluster.stats().corrupted_deposits, 1);
}

#[test]
fn without_integrity_check_corruption_is_silent() {
    // Documents why the check exists: the same fault passes undetected.
    let uni = Universe::paper_testbed(StackConfig::best());
    uni.cluster.inject_payload_corruption(1);
    let delivered = Arc::new(Mutex::new(Vec::new()));
    let d2 = delivered.clone();
    uni.run_world(2, Placement::RoundRobin, move |mpi| {
        let w = mpi.world();
        let buf = mpi.alloc(1024);
        if mpi.rank() == 0 {
            mpi.write(&buf, 0, &pattern(1024, 1));
            mpi.send(&w, 1, 0, &buf, 1024);
        } else {
            mpi.recv(&w, 0, 0, &buf, 1024);
            *d2.lock() = mpi.read(&buf, 0, 1024);
        }
    });
    assert_ne!(
        *delivered.lock(),
        pattern(1024, 1),
        "corruption went unnoticed"
    );
}

#[test]
fn waitany_returns_first_completion() {
    run_pair(
        StackConfig::best(),
        |mpi| {
            let w = mpi.world();
            let buf = mpi.alloc(64);
            // Send tag 1 late, tag 2 early.
            mpi.compute(qsim::Dur::from_us(200));
            mpi.send(&w, 1, 2, &buf, 64);
            mpi.compute(qsim::Dur::from_us(200));
            mpi.send(&w, 1, 1, &buf, 64);
        },
        |mpi| {
            let w = mpi.world();
            let b1 = mpi.alloc(64);
            let b2 = mpi.alloc(64);
            let r1 = mpi.irecv(&w, 0, 1, &b1, 64);
            let r2 = mpi.irecv(&w, 0, 2, &b2, 64);
            let reqs = [r1, r2];
            let first = mpi.waitany(&reqs);
            assert_eq!(first, 1, "tag 2 arrives first");
            mpi.wait(reqs[0]);
        },
    );
}

#[test]
fn self_send_loopback() {
    let uni = Universe::paper_testbed(StackConfig::best());
    uni.run_world(2, Placement::RoundRobin, |mpi| {
        let w = mpi.world();
        let me = mpi.rank();
        // Nonblocking self-send, both eager and rendezvous sized.
        for len in [64usize, 4096] {
            let sbuf = mpi.alloc(len);
            let rbuf = mpi.alloc(len);
            mpi.write(&sbuf, 0, &pattern(len, me as u8));
            let rr = mpi.irecv(&w, me as i32, 5, &rbuf, len);
            let sr = mpi.isend(&w, me, 5, &sbuf, len);
            mpi.wait(sr);
            mpi.wait(rr);
            assert_eq!(mpi.read(&rbuf, 0, len), pattern(len, me as u8));
            mpi.free(sbuf);
            mpi.free(rbuf);
        }
    });
}

#[test]
fn truncation_is_detected() {
    let uni = Universe::paper_testbed(StackConfig::best());
    let sim = qsim::Simulation::new();
    uni.launch_world(&sim, 2, Placement::RoundRobin, |mpi| {
        let w = mpi.world();
        if mpi.rank() == 0 {
            let buf = mpi.alloc(256);
            mpi.send(&w, 1, 0, &buf, 256);
        } else {
            let buf = mpi.alloc(64);
            mpi.recv(&w, 0, 0, &buf, 64); // too small
        }
    });
    match sim.run() {
        Err(qsim::SimError::ProcPanic { message, .. }) => {
            assert!(message.contains("truncation"), "got: {message}");
        }
        other => panic!("expected truncation error, got {other:?}"),
    }
}

#[test]
fn scan_prefix_sums() {
    let uni = Universe::paper_testbed(StackConfig::best());
    uni.run_world(6, Placement::RoundRobin, |mpi| {
        let w = mpi.world();
        let me = mpi.rank();
        let buf = mpi.alloc(16);
        let vals = [(me + 1) as f64, (me * 2) as f64];
        let bytes: Vec<u8> = vals.iter().flat_map(|v| v.to_le_bytes()).collect();
        mpi.write(&buf, 0, &bytes);
        mpi.scan(&w, crate::ReduceOp::SumF64, &buf, 16);
        let out = mpi.read(&buf, 0, 16);
        let a = f64::from_le_bytes(out[0..8].try_into().unwrap());
        let b = f64::from_le_bytes(out[8..16].try_into().unwrap());
        let expect_a: f64 = (0..=me).map(|r| (r + 1) as f64).sum();
        let expect_b: f64 = (0..=me).map(|r| (r * 2) as f64).sum();
        assert_eq!(a, expect_a, "rank {me}");
        assert_eq!(b, expect_b, "rank {me}");
    });
}

#[test]
fn reduce_scatter_blocks() {
    let uni = Universe::paper_testbed(StackConfig::best());
    uni.run_world(4, Placement::RoundRobin, |mpi| {
        let w = mpi.world();
        let n = mpi.size();
        let me = mpi.rank();
        let send = mpi.alloc(8 * n);
        // Rank r contributes value (r+1) in every block.
        let vals: Vec<f64> = vec![(me + 1) as f64; n];
        let bytes: Vec<u8> = vals.iter().flat_map(|v| v.to_le_bytes()).collect();
        mpi.write(&send, 0, &bytes);
        let recv = mpi.alloc(8);
        mpi.reduce_scatter(&w, crate::ReduceOp::SumF64, &send, &recv, 8);
        let got = f64::from_le_bytes(mpi.read(&recv, 0, 8).try_into().unwrap());
        let expect: f64 = (1..=n).map(|v| v as f64).sum();
        assert_eq!(got, expect, "rank {me}");
    });
}

#[test]
fn gatherv_variable_lengths() {
    let uni = Universe::paper_testbed(StackConfig::best());
    uni.run_world(5, Placement::RoundRobin, |mpi| {
        let w = mpi.world();
        let me = mpi.rank();
        // Rank r contributes r copies of byte r (rank 0 contributes none).
        let mine = vec![me as u8; me];
        let res = mpi.gatherv(&w, 3, &mine);
        if me == 3 {
            let (offsets, bytes) = res.expect("root gets the result");
            assert_eq!(offsets.len(), 6);
            for r in 0..5 {
                assert_eq!(offsets[r + 1] - offsets[r], r);
                assert!(bytes[offsets[r]..offsets[r + 1]]
                    .iter()
                    .all(|&b| b == r as u8));
            }
        } else {
            assert!(res.is_none());
        }
    });
}

#[test]
fn persistent_requests_halo_pattern() {
    run_pair(
        StackConfig::best(),
        |mpi| {
            let w = mpi.world();
            let sbuf = mpi.alloc(256);
            let rbuf = mpi.alloc(256);
            let ps = mpi.send_init(&w, 1, 30, &sbuf, 256);
            let pr = mpi.recv_init(&w, 1, 31, &rbuf, 256);
            for round in 0..5u8 {
                mpi.write(&sbuf, 0, &[round; 256]);
                let reqs = mpi.startall(&[ps.clone(), pr.clone()]);
                mpi.waitall(reqs);
                assert_eq!(mpi.read(&rbuf, 0, 256), vec![round ^ 0xFF; 256]);
            }
        },
        |mpi| {
            let w = mpi.world();
            let sbuf = mpi.alloc(256);
            let rbuf = mpi.alloc(256);
            let ps = mpi.send_init(&w, 0, 31, &sbuf, 256);
            let pr = mpi.recv_init(&w, 0, 30, &rbuf, 256);
            for round in 0..5u8 {
                mpi.write(&sbuf, 0, &[round ^ 0xFF; 256]);
                let reqs = mpi.startall(&[ps.clone(), pr.clone()]);
                mpi.waitall(reqs);
                assert_eq!(mpi.read(&rbuf, 0, 256), vec![round; 256]);
            }
        },
    );
}

#[test]
fn trace_records_protocol_flow() {
    use crate::trace::TraceEvent;
    let mut cfg = StackConfig::best();
    cfg.trace = true;
    #[allow(clippy::type_complexity)]
    let traces: Arc<Mutex<Vec<(usize, Vec<String>)>>> = Arc::new(Mutex::new(Vec::new()));
    let t2 = traces.clone();
    let uni = Universe::paper_testbed(cfg);
    uni.run_world(2, Placement::RoundRobin, move |mpi| {
        let w = mpi.world();
        let buf = mpi.alloc(8192);
        if mpi.rank() == 0 {
            mpi.send(&w, 1, 0, &buf, 8192); // rendezvous-sized
        } else {
            mpi.recv(&w, 0, 0, &buf, 8192);
        }
        let ep = mpi.endpoint().clone();
        let log = ep.trace.lock();
        let rank = mpi.rank();
        // Receiver (read scheme) must show match -> rdma read -> dma done
        // -> completion, in that order.
        if rank == 1 {
            let evs: Vec<&TraceEvent> = log.events().map(|(_, e)| e).collect();
            let matched = evs
                .iter()
                .position(|e| matches!(e, TraceEvent::Matched { .. }));
            let rdma = evs
                .iter()
                .position(|e| matches!(e, TraceEvent::RdmaIssued { read: true, .. }));
            let done = evs
                .iter()
                .position(|e| matches!(e, TraceEvent::DmaDone { .. }));
            let comp = evs
                .iter()
                .position(|e| matches!(e, TraceEvent::Completed { send: false, .. }));
            assert!(
                matched < rdma && rdma < done && done < comp,
                "read-scheme order violated: {evs:?}"
            );
        }
        t2.lock().push((rank, log.dump()));
    });
    let traces = traces.lock();
    assert_eq!(traces.len(), 2);
    for (_, lines) in traces.iter() {
        assert!(!lines.is_empty());
    }
}

#[test]
fn trace_off_records_nothing() {
    let uni = Universe::paper_testbed(StackConfig::best());
    let empty = Arc::new(AtomicU64::new(1));
    let e2 = empty.clone();
    uni.run_world(2, Placement::RoundRobin, move |mpi| {
        let w = mpi.world();
        let buf = mpi.alloc(64);
        if mpi.rank() == 0 {
            mpi.send(&w, 1, 0, &buf, 64);
        } else {
            mpi.recv(&w, 0, 0, &buf, 64);
        }
        if !mpi.endpoint().trace.lock().is_empty() {
            e2.store(0, Ordering::SeqCst);
        }
    });
    assert_eq!(empty.load(Ordering::SeqCst), 1, "tracing leaked when off");
}

#[test]
fn ssend_completes_only_after_match() {
    let recv_posted_at = Arc::new(AtomicU64::new(0));
    let send_done_at = Arc::new(AtomicU64::new(0));
    let (rp, sd) = (recv_posted_at.clone(), send_done_at.clone());
    run_pair(
        StackConfig::best(),
        move |mpi| {
            let w = mpi.world();
            let buf = mpi.alloc(16);
            // Small message: a plain send would complete locally at once;
            // the synchronous send must wait for the late receiver.
            mpi.ssend(&w, 1, 0, &buf, 16);
            sd.store(mpi.now().as_ns(), Ordering::SeqCst);
        },
        move |mpi| {
            let w = mpi.world();
            mpi.compute(qsim::Dur::from_us(300));
            rp.store(mpi.now().as_ns(), Ordering::SeqCst);
            let buf = mpi.alloc(16);
            mpi.recv(&w, 0, 0, &buf, 16);
        },
    );
    let posted = recv_posted_at.load(Ordering::SeqCst);
    let done = send_done_at.load(Ordering::SeqCst);
    assert!(
        done > posted,
        "ssend completed at {done}ns before the recv was posted at {posted}ns"
    );
}

#[test]
fn plain_small_send_completes_before_match() {
    // Contrast with the ssend test: buffered eager semantics.
    let send_done_at = Arc::new(AtomicU64::new(0));
    let sd = send_done_at.clone();
    run_pair(
        StackConfig::best(),
        move |mpi| {
            let w = mpi.world();
            let buf = mpi.alloc(16);
            mpi.send(&w, 1, 0, &buf, 16);
            sd.store(mpi.now().as_ns(), Ordering::SeqCst);
        },
        |mpi| {
            let w = mpi.world();
            mpi.compute(qsim::Dur::from_us(300));
            let buf = mpi.alloc(16);
            mpi.recv(&w, 0, 0, &buf, 16);
        },
    );
    assert!(
        send_done_at.load(Ordering::SeqCst) < 300_000,
        "eager send should complete before the receiver wakes"
    );
}

#[test]
fn comm_free_releases_contexts() {
    let uni = Universe::paper_testbed(StackConfig::best());
    uni.run_world(4, Placement::RoundRobin, |mpi| {
        let w = mpi.world();
        let dup = mpi.comm_dup(&w);
        let buf = mpi.alloc(32);
        let nxt = (mpi.rank() + 1) % mpi.size();
        let prv = ((mpi.rank() + mpi.size() - 1) % mpi.size()) as i32;
        mpi.sendrecv(&dup, nxt, 1, &buf, 32, prv, 1, &buf, 32);
        let dup_ctx = dup.ctx;
        mpi.comm_free(dup);
        assert!(
            !mpi.endpoint().state.lock().comms.contains_key(&dup_ctx),
            "context survived comm_free"
        );
        // The world is unaffected.
        mpi.barrier(&w);
    });
}

#[test]
fn sixty_four_ranks_on_a_three_level_tree() {
    // Exercise a 64-node quaternary fat tree (3 switch levels) end to end.
    let fabric = qsnet::FabricConfig {
        nodes: 64,
        ..Default::default()
    };
    let uni = Universe::new(
        elan4::NicConfig::default(),
        fabric,
        StackConfig::best(),
        Transports::default(),
    );
    uni.run_world(64, Placement::RoundRobin, |mpi| {
        let w = mpi.world();
        let n = mpi.size();
        let me = mpi.rank();
        // Ring exchange across the full machine.
        let sbuf = mpi.alloc(512);
        let rbuf = mpi.alloc(512);
        mpi.write(&sbuf, 0, &[me as u8; 512]);
        let st = mpi.sendrecv(
            &w,
            (me + 1) % n,
            3,
            &sbuf,
            512,
            ((me + n - 1) % n) as i32,
            3,
            &rbuf,
            512,
        );
        assert_eq!(st.source, (me + n - 1) % n);
        assert_eq!(mpi.read(&rbuf, 0, 512), vec![st.source as u8; 512]);
        // Global reduction over all 64 ranks.
        let acc = mpi.alloc(8);
        mpi.write(&acc, 0, &(me as f64).to_le_bytes());
        mpi.allreduce(&w, crate::ReduceOp::SumF64, &acc, 8);
        let total = f64::from_le_bytes(mpi.read(&acc, 0, 8).try_into().unwrap());
        assert_eq!(total as usize, (0..n).sum::<usize>());
    });
}

#[test]
fn rma_pscw_epochs() {
    // Ranks 1..3 put into rank 0's window under post/start/complete/wait —
    // no fence, no involvement of uninvolved ranks.
    let uni = Universe::paper_testbed(StackConfig::best());
    uni.run_world(4, Placement::RoundRobin, |mpi| {
        let w = mpi.world();
        let me = mpi.rank();
        let wbuf = mpi.alloc(3 * 64);
        mpi.write(&wbuf, 0, &[0u8; 3 * 64]);
        let mut win = mpi.win_create(&w, wbuf);

        if me == 0 {
            mpi.win_post(&win, &[1, 2, 3]);
            mpi.win_wait(&win, &[1, 2, 3]);
            for origin in 1..4usize {
                assert_eq!(
                    mpi.read(&wbuf, (origin - 1) * 64, 64),
                    vec![origin as u8 * 7; 64],
                    "origin {origin}'s slab missing"
                );
            }
        } else {
            let src = mpi.alloc(64);
            mpi.write(&src, 0, &[me as u8 * 7; 64]);
            mpi.win_start(&win, &[0]);
            mpi.put(&mut win, 0, (me - 1) * 64, &src, 0, 64);
            mpi.win_complete(&mut win, &[0]);
            mpi.free(src);
        }
        mpi.win_free(win);
        mpi.free(wbuf);
    });
}

#[test]
fn rank_failure_is_reported_cleanly() {
    // A rank that dies mid-run surfaces as a ProcPanic with its name, and
    // the simulation tears down instead of hanging (the fail-stop behaviour
    // the paper's fault-tolerant runtime needs to detect).
    let uni = Universe::paper_testbed(StackConfig::best());
    let sim = qsim::Simulation::new();
    uni.launch_world(&sim, 2, Placement::RoundRobin, |mpi| {
        let w = mpi.world();
        let buf = mpi.alloc(64);
        if mpi.rank() == 0 {
            panic!("simulated rank crash");
        } else {
            mpi.recv(&w, 0, 0, &buf, 64);
        }
    });
    match sim.run() {
        Err(qsim::SimError::ProcPanic { proc, message }) => {
            assert_eq!(proc, "rank0");
            assert!(message.contains("simulated rank crash"));
        }
        other => panic!("expected rank failure report, got {other:?}"),
    }
}

#[test]
fn spawned_child_initiates_first_contact() {
    // Regression: the child rendezvous-sends to the parent before the
    // parent has ever addressed the child, so the parent must resolve the
    // child's addressing lazily at match time.
    let uni = Universe::paper_testbed(StackConfig::best());
    uni.run_world(1, Placement::RoundRobin, |mpi| {
        let inter = mpi.spawn(1, &[3], |child| {
            let pc = child.parent_comm().unwrap();
            let buf = child.alloc(8192);
            child.write(&buf, 0, &pattern(8192, 6));
            // Rendezvous-sized: the parent must reply (read scheme pulls /
            // FIN_ACK), which requires the child's peer info.
            child.send(&pc, 0, 1, &buf, 8192);
            child.free(buf);
        });
        let buf = mpi.alloc(8192);
        mpi.recv(&inter, 1, 1, &buf, 8192);
        assert_eq!(mpi.read(&buf, 0, 8192), pattern(8192, 6));
        mpi.free(buf);
    });
}

#[test]
fn alltoallv_variable_payloads() {
    let uni = Universe::paper_testbed(StackConfig::best());
    uni.run_world(5, Placement::RoundRobin, |mpi| {
        let w = mpi.world();
        let n = mpi.size();
        let me = mpi.rank();
        // Rank r sends (r + d) bytes of value r*16+d to rank d.
        let sends: Vec<Vec<u8>> = (0..n).map(|d| vec![(me * 16 + d) as u8; me + d]).collect();
        let got = mpi.alltoallv(&w, &sends);
        for (src, data) in got.iter().enumerate() {
            assert_eq!(data.len(), src + me, "length from {src}");
            assert!(data.iter().all(|&b| b == (src * 16 + me) as u8));
        }
    });
}

#[test]
fn rma_under_interrupt_progress() {
    let mut cfg = StackConfig::best();
    cfg.progress = ProgressMode::Interrupt;
    let uni = Universe::paper_testbed(cfg);
    uni.run_world(2, Placement::RoundRobin, |mpi| {
        let w = mpi.world();
        let wbuf = mpi.alloc(4096);
        let mut win = mpi.win_create(&w, wbuf);
        if mpi.rank() == 0 {
            let src = mpi.alloc(4096);
            mpi.write(&src, 0, &pattern(4096, 3));
            mpi.put(&mut win, 1, 0, &src, 0, 4096);
        }
        mpi.win_fence(&mut win);
        if mpi.rank() == 1 {
            assert_eq!(mpi.read(&wbuf, 0, 4096), pattern(4096, 3));
        }
        mpi.win_free(win);
    });
}

// ---- end-to-end flow control -----------------------------------------------

/// Run an N-to-1 eager incast with the receiver asleep for the opening
/// burst; returns (completion_ns, victim ej queue peak, pool fallbacks
/// summed over ranks, resolved per-peer credits).
fn incast_run(flow_on: bool) -> (u64, u64, u64, u64) {
    let mut cfg = StackConfig::best();
    cfg.metrics = true;
    cfg.flow_enable = flow_on;
    let (ranks, msgs, len) = (8usize, 32usize, 1024usize);
    let peak = Arc::new(AtomicU64::new(0));
    let fallbacks = Arc::new(AtomicU64::new(0));
    let credits = Arc::new(AtomicU64::new(0));
    let (p2, f2, c2) = (peak.clone(), fallbacks.clone(), credits.clone());
    let uni = Universe::paper_testbed(cfg);
    let report = uni.run_world(ranks, Placement::RoundRobin, move |mpi| {
        let w = mpi.world();
        if mpi.rank() == 0 {
            // Sleep through the opening burst so every message arrives
            // unexpected and stages in the bounce pool.
            mpi.compute(qsim::Dur::from_ns(300_000));
            let rbuf = mpi.alloc(len);
            for _ in 0..(ranks - 1) * msgs {
                mpi.recv(&w, ANY_SOURCE, 0, &rbuf, len);
            }
        } else {
            let sbuf = mpi.alloc(len);
            mpi.write(&sbuf, 0, &pattern(len, mpi.rank() as u8));
            let reqs: Vec<_> = (0..msgs).map(|_| mpi.isend(&w, 0, 0, &sbuf, len)).collect();
            mpi.waitall(reqs);
        }
        mpi.barrier(&w);
        let ep = mpi.endpoint();
        if mpi.rank() == 0 {
            let (_, ej) = ep.cluster.fabric().node_link_totals(ep.node);
            p2.store(ej.queue_peak, Ordering::SeqCst);
            c2.store(ep.tunables.flow_credits() as u64, Ordering::SeqCst);
        }
        f2.fetch_add(
            ep.metrics_snapshot().counters.flow_pool_fallbacks,
            Ordering::SeqCst,
        );
    });
    (
        report.end_time.as_ns(),
        peak.load(Ordering::SeqCst),
        fallbacks.load(Ordering::SeqCst),
        credits.load(Ordering::SeqCst),
    )
}

#[test]
fn incast_flow_control_bounds_victim_queue_and_wins() {
    let (t_off, peak_off, fb_off, _) = incast_run(false);
    let (t_on, peak_on, fb_on, credits) = incast_run(true);
    // Pool exhaustion is the flow-off cost: 224 unexpected messages against
    // 64 preallocated slots must overflow into charged fallbacks.
    assert!(
        fb_off > 0,
        "flow-off incast never exhausted the bounce pool"
    );
    assert_eq!(fb_on, 0, "flow-on incast overran the bounce pool");
    // The end-to-end window caps in-flight eager traffic at senders *
    // credits, which the victim's ejection link peak must respect (small
    // slack for barrier/control frames sharing the link).
    assert!(credits >= 2, "auto-scaled credits {credits} out of range");
    let bound = 7 * credits + 8;
    assert!(
        peak_on <= bound,
        "victim ej peak {peak_on} exceeds credit bound {bound}"
    );
    assert!(
        peak_on < peak_off,
        "flow-on ej peak {peak_on} not below flow-off {peak_off}"
    );
    assert!(
        t_on < t_off,
        "flow-on incast ({t_on}ns) not faster than flow-off ({t_off}ns)"
    );
}

#[test]
fn flow_credit_invariant_over_random_interleavings() {
    // Proptest-style: seeded LCG drives per-rank send/recv/compute
    // interleavings; the credit ledger must reconcile at quiescence.
    type Row = (usize, usize, usize, u64, u64, u64, usize);
    for seed in [1u64, 7, 23] {
        let mut cfg = StackConfig::best();
        cfg.metrics = true;
        cfg.flow_enable = true;
        cfg.flow_credits = 3; // tiny window: parking on every burst
        let (ranks, msgs) = (4usize, 10usize);
        let rows: Arc<Mutex<Vec<Row>>> = Arc::new(Mutex::new(Vec::new()));
        let r2 = rows.clone();
        let uni = Universe::paper_testbed(cfg);
        uni.run_world(ranks, Placement::RoundRobin, move |mpi| {
            let w = mpi.world();
            let me = mpi.rank();
            let mut x = seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(me as u64 + 1);
            let mut rng = move || {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                x >> 33
            };
            let sbuf = mpi.alloc(1984);
            let rbuf = mpi.alloc(1984);
            mpi.write(&sbuf, 0, &pattern(1984, me as u8));
            // Shuffle the (peer, iteration) send plan.
            let mut plan: Vec<usize> = (0..ranks)
                .filter(|&d| d != me)
                .flat_map(|d| std::iter::repeat_n(d, msgs))
                .collect();
            for i in (1..plan.len()).rev() {
                plan.swap(i, rng() as usize % (i + 1));
            }
            let total_recvs = (ranks - 1) * msgs;
            let mut recvs_done = 0;
            let mut sends = Vec::new();
            for &dst in &plan {
                let len = (rng() % 1984) as usize;
                sends.push(mpi.isend(&w, dst, 0, &sbuf, len));
                match rng() % 3 {
                    0 if recvs_done < total_recvs => {
                        mpi.recv(&w, ANY_SOURCE, 0, &rbuf, 1984);
                        recvs_done += 1;
                    }
                    1 => mpi.compute(qsim::Dur::from_ns(rng() % 5_000)),
                    _ => {}
                }
            }
            while recvs_done < total_recvs {
                mpi.recv(&w, ANY_SOURCE, 0, &rbuf, 1984);
                recvs_done += 1;
            }
            mpi.waitall(sends);
            mpi.barrier(&w);
            let ep = mpi.endpoint();
            let st = ep.state.lock();
            for (peer, fp) in st.flow.iter() {
                assert!(
                    fp.queued.is_empty(),
                    "rank {me}: sends still parked for rank {} at quiescence",
                    peer.rank
                );
                r2.lock().push((
                    me,
                    peer.rank,
                    fp.credits,
                    fp.consumed,
                    fp.returned,
                    fp.delivered,
                    fp.pending_return,
                ));
            }
        });
        let rows = rows.lock();
        let initial = 3u64;
        let find = |a: usize, b: usize| rows.iter().find(|r| r.0 == a && r.1 == b);
        for &(rank, peer, credits, consumed, returned, delivered, pending) in rows.iter() {
            // The ledger: every consumed credit is either returned or still
            // held out of the window (in flight / awaiting grant).
            assert_eq!(
                consumed,
                returned + (initial - credits as u64),
                "seed {seed}: rank {rank} -> {peer} ledger off \
                 (consumed {consumed}, returned {returned}, credits {credits})"
            );
            assert!(
                credits as u64 <= initial,
                "seed {seed}: rank {rank} over-granted by rank {peer}"
            );
            assert!(pending as u64 <= delivered, "pending exceeds deliveries");
            // Cross-rank: the peer can only have delivered what we sent
            // under credit, and can only have granted what it delivered.
            if let Some(&(_, _, _, _, _, peer_delivered, _)) = find(peer, rank) {
                assert!(
                    peer_delivered <= consumed,
                    "seed {seed}: rank {peer} delivered {peer_delivered} from \
                     rank {rank}, which only consumed {consumed} credits"
                );
                assert!(
                    returned <= peer_delivered,
                    "seed {seed}: rank {rank} got {returned} credits back from \
                     rank {peer}, which only delivered {peer_delivered}"
                );
            }
        }
    }
}

#[test]
fn credit_starved_peer_does_not_block_traffic_to_others() {
    let mut cfg = StackConfig::best();
    cfg.metrics = true;
    cfg.flow_enable = true;
    cfg.flow_credits = 4;
    let sleep_ns = 2_000_000u64;
    let queued = Arc::new(AtomicU64::new(0));
    let pp_done = Arc::new(AtomicU64::new(0));
    let (q2, p2) = (queued.clone(), pp_done.clone());
    let uni = Universe::paper_testbed(cfg);
    uni.run_world(3, Placement::RoundRobin, move |mpi| {
        let w = mpi.world();
        let buf = mpi.alloc(512);
        mpi.write(&buf, 0, &pattern(512, mpi.rank() as u8));
        match mpi.rank() {
            0 => {
                // Slow receiver: rank 1's flood must park, starved of
                // credits, until this compute ends.
                mpi.compute(qsim::Dur::from_ns(sleep_ns));
                let rbuf = mpi.alloc(512);
                for _ in 0..40 {
                    mpi.recv(&w, 1, 0, &rbuf, 512);
                }
            }
            1 => {
                let reqs: Vec<_> = (0..40).map(|_| mpi.isend(&w, 0, 0, &buf, 512)).collect();
                // Credits to rank 0 are exhausted; traffic to rank 2 must
                // keep flowing regardless.
                let rbuf = mpi.alloc(512);
                for _ in 0..8 {
                    mpi.send(&w, 2, 1, &buf, 512);
                    mpi.recv(&w, 2, 1, &rbuf, 512);
                }
                p2.store(mpi.now().as_ns(), Ordering::SeqCst);
                mpi.waitall(reqs);
                q2.store(
                    mpi.endpoint().metrics_snapshot().counters.flow_sends_queued,
                    Ordering::SeqCst,
                );
            }
            _ => {
                let rbuf = mpi.alloc(512);
                for _ in 0..8 {
                    mpi.recv(&w, 1, 1, &rbuf, 512);
                    mpi.send(&w, 1, 1, &buf, 512);
                }
            }
        }
        mpi.barrier(&w);
    });
    assert!(
        queued.load(Ordering::SeqCst) > 0,
        "the flood never exhausted rank 1's credits to rank 0"
    );
    let done = pp_done.load(Ordering::SeqCst);
    assert!(
        done < sleep_ns,
        "rank 1 <-> rank 2 ping-pong ({done}ns) stalled behind the parked \
         flood to the sleeping rank 0"
    );
}

#[test]
fn late_eager_message_after_aborted_recv_is_dropped_cleanly() {
    let mut cfg = StackConfig::best();
    cfg.flow_enable = true;
    let uni = Universe::paper_testbed(cfg);
    uni.run_world(2, Placement::RoundRobin, |mpi| {
        let w = mpi.world();
        let buf = mpi.alloc(512);
        if mpi.rank() == 0 {
            let r = mpi.irecv(&w, 1, 5, &buf, 512);
            mpi.abort_request(r, crate::state::MpiErrClass::Internal);
            assert!(mpi.wait_result(r).is_err(), "aborted recv must report");
            mpi.barrier(&w);
            // The sender's message lands unexpected (its match was
            // reaped), staged in the bounce pool until finalize.
            mpi.barrier(&w);
            assert_eq!(mpi.endpoint().bounce_in_use(), 1, "payload not staged");
        } else {
            mpi.barrier(&w);
            mpi.write(&buf, 0, &pattern(512, 9));
            mpi.send(&w, 0, 5, &buf, 512);
            mpi.barrier(&w);
        }
        // Finalize must release the orphaned stage and the pool itself
        // without tripping the in-use assertion or leaking mappings.
        mpi.finalize();
        assert_eq!(mpi.endpoint().bounce_in_use(), 0);
        assert_eq!(mpi.endpoint().mapping_count(), 0);
    });
}

// ---------------------------------------------------------------------------
// NIC-resident collectives
// ---------------------------------------------------------------------------

fn nic_coll_cfg() -> StackConfig {
    let mut cfg = StackConfig::best();
    cfg.coll_nic_offload = true;
    cfg.metrics = true;
    cfg
}

#[test]
fn nic_offloaded_collectives_match_host_results() {
    let uni = Universe::paper_testbed(nic_coll_cfg());
    let rows: Arc<Mutex<Vec<(usize, crate::metrics::Metrics)>>> = Arc::new(Mutex::new(Vec::new()));
    let r2 = rows.clone();
    uni.run_world(8, Placement::RoundRobin, move |mpi| {
        let w = mpi.world();
        let me = mpi.rank();
        let n = mpi.size();
        mpi.barrier(&w);
        // Broadcasts from rotating roots, sizes spanning 0..=QDMA max.
        for (i, len) in [0usize, 1, 8, 777, 2048].into_iter().enumerate() {
            let root = i % n;
            let b = mpi.alloc(len.max(1));
            if me == root {
                mpi.write(&b, 0, &pattern(len, i as u8));
            }
            mpi.bcast(&w, root, &b, len);
            assert_eq!(
                mpi.read(&b, 0, len),
                pattern(len, i as u8),
                "bcast len {len}"
            );
            mpi.free(b);
        }
        // Allreduce through every NIC-supported operator.
        let s = (n * (n - 1) / 2) as u64;
        let b = mpi.alloc(16);
        mpi.write(&b, 0, &(me as f64).to_le_bytes());
        mpi.write(&b, 8, &((me * 3) as f64).to_le_bytes());
        mpi.allreduce(&w, crate::coll::ReduceOp::SumF64, &b, 16);
        let lane0 = f64::from_le_bytes(mpi.read(&b, 0, 8).try_into().unwrap());
        let lane1 = f64::from_le_bytes(mpi.read(&b, 8, 8).try_into().unwrap());
        assert_eq!(lane0, s as f64, "sum lane 0");
        assert_eq!(lane1, (3 * s) as f64, "sum lane 1");
        mpi.write(&b, 0, &((me as f64) * 1.5).to_le_bytes());
        mpi.allreduce(&w, crate::coll::ReduceOp::MaxF64, &b, 8);
        let mx = f64::from_le_bytes(mpi.read(&b, 0, 8).try_into().unwrap());
        assert_eq!(mx, (n - 1) as f64 * 1.5, "max");
        mpi.write(&b, 0, &(me as u64 + 7).to_le_bytes());
        mpi.allreduce(&w, crate::coll::ReduceOp::SumU64, &b, 8);
        let su = u64::from_le_bytes(mpi.read(&b, 0, 8).try_into().unwrap());
        assert_eq!(su, s + 7 * n as u64, "u64 sum");
        mpi.free(b);
        mpi.barrier(&w);
        r2.lock().push((me, mpi.endpoint().metrics_snapshot()));
    });
    assert!(
        uni.cluster.stats().event_writes > 0,
        "offloaded collectives must hop NIC-to-NIC via event writes"
    );
    let rows = rows.lock();
    assert_eq!(rows.len(), 8);
    for (rank, m) in rows.iter() {
        // 2 barriers + 5 bcasts + 3 allreduces, every one offloaded.
        assert_eq!(m.counters.coll_nic_offloaded, 10, "rank {rank} offloaded");
        assert_eq!(m.counters.coll_nic_fallbacks, 0, "rank {rank} fallbacks");
        // 1 barrier + 5 bcast roots + 3 allreduce ops = 9 cached programs.
        assert_eq!(m.counters.coll_nic_programs, 9, "rank {rank} programs");
    }
}

#[test]
fn nic_bcast_bytes_pipelines_without_payload_mixups() {
    // bcast_bytes issues two back-to-back broadcasts (length, then payload)
    // and the NIC root never blocks between them: successive frames must
    // queue in fire order at every hop, not overwrite each other.
    let uni = Universe::paper_testbed(nic_coll_cfg());
    uni.run_world(8, Placement::RoundRobin, move |mpi| {
        let w = mpi.world();
        for round in 0..10u8 {
            let root = (round as usize) % 4;
            let len = 100 + round as usize * 37;
            let data = if mpi.rank() == root {
                pattern(len, round)
            } else {
                Vec::new()
            };
            let out = mpi.bcast_bytes(&w, root, data);
            assert_eq!(out, pattern(len, round), "round {round}");
        }
    });
}

#[test]
fn nic_offload_falls_back_when_ineligible() {
    let uni = Universe::paper_testbed(nic_coll_cfg());
    let rows: Arc<Mutex<Vec<(usize, crate::metrics::Metrics)>>> = Arc::new(Mutex::new(Vec::new()));
    let r2 = rows.clone();
    uni.run_world(4, Placement::RoundRobin, move |mpi| {
        let w = mpi.world();
        let me = mpi.rank();
        // Oversize broadcast: beyond the single-QDMA payload cap, so it
        // must take the host path (hardware-rail eager chunks) and still
        // deliver correct bytes.
        let len = 4096;
        let b = mpi.alloc(len);
        if me == 0 {
            mpi.write(&b, 0, &pattern(len, 3));
        }
        mpi.bcast(&w, 0, &b, len);
        assert_eq!(mpi.read(&b, 0, len), pattern(len, 3), "oversize bcast");
        mpi.free(b);
        // A split communicator loses the synchronous-creation guarantee
        // (hw_coll = false): its collectives stay host-driven.
        let sub = mpi.comm_split(&w, (me % 2) as i32, me as i32).unwrap();
        mpi.barrier(&sub);
        let sb = mpi.alloc(8);
        mpi.write(&sb, 0, &(me as u64).to_le_bytes());
        mpi.allreduce(&sub, crate::coll::ReduceOp::SumU64, &sb, 8);
        let expect: u64 = (0..4).filter(|r| r % 2 == me % 2).map(|r| r as u64).sum();
        assert_eq!(
            u64::from_le_bytes(mpi.read(&sb, 0, 8).try_into().unwrap()),
            expect,
            "split allreduce"
        );
        mpi.free(sb);
        r2.lock().push((me, mpi.endpoint().metrics_snapshot()));
    });
    for (rank, m) in rows.lock().iter() {
        assert!(
            m.counters.coll_nic_fallbacks >= 3,
            "rank {rank}: oversize bcast + split barrier + split allreduce \
             must all count as fallbacks, got {}",
            m.counters.coll_nic_fallbacks
        );
    }
}

#[test]
fn hw_bcast_cvar_gates_the_rail() {
    // Gate closed: eligible broadcasts run the binomial tree, the hardware
    // rail stays untouched, data still arrives.
    let mut cfg = StackConfig::best();
    cfg.coll_hw_bcast = false;
    cfg.metrics = true;
    let uni = Universe::paper_testbed(cfg);
    let rows: Arc<Mutex<Vec<crate::metrics::Metrics>>> = Arc::new(Mutex::new(Vec::new()));
    let r2 = rows.clone();
    uni.run_world(8, Placement::RoundRobin, move |mpi| {
        let w = mpi.world();
        let b = mpi.alloc(1024);
        if mpi.rank() == 0 {
            mpi.write(&b, 0, &pattern(1024, 5));
        }
        mpi.bcast(&w, 0, &b, 1024);
        assert_eq!(mpi.read(&b, 0, 1024), pattern(1024, 5));
        r2.lock().push(mpi.endpoint().metrics_snapshot());
    });
    assert_eq!(
        uni.cluster.stats().hw_bcasts,
        0,
        "coll.hw_bcast=false must keep the broadcast off the rail"
    );
    for m in rows.lock().iter() {
        assert_eq!(m.counters.coll_hw_bcasts, 0);
    }

    // Gate open (the default): the same broadcast uses the rail.
    let mut cfg = StackConfig::best();
    cfg.metrics = true;
    let uni = Universe::paper_testbed(cfg);
    let rows: Arc<Mutex<Vec<crate::metrics::Metrics>>> = Arc::new(Mutex::new(Vec::new()));
    let r2 = rows.clone();
    uni.run_world(8, Placement::RoundRobin, move |mpi| {
        let w = mpi.world();
        let b = mpi.alloc(1024);
        if mpi.rank() == 0 {
            mpi.write(&b, 0, &pattern(1024, 5));
        }
        mpi.bcast(&w, 0, &b, 1024);
        assert_eq!(mpi.read(&b, 0, 1024), pattern(1024, 5));
        r2.lock().push(mpi.endpoint().metrics_snapshot());
    });
    assert!(
        uni.cluster.stats().hw_bcasts > 0,
        "rail unused with gate open"
    );
    let hw_counts: u64 = rows.lock().iter().map(|m| m.counters.coll_hw_bcasts).sum();
    assert!(hw_counts > 0, "root must count its hw bcast");
}

#[test]
fn partial_communicator_bcast_avoids_hw_rail() {
    // A split communicator spans only part of the rail-connected set; the
    // hardware broadcast gate (and the NIC-offload gate) must both refuse
    // it even though the cvars are on.
    let mut cfg = nic_coll_cfg();
    cfg.metrics = true;
    let uni = Universe::paper_testbed(cfg);
    uni.run_world(8, Placement::RoundRobin, move |mpi| {
        let w = mpi.world();
        let me = mpi.rank();
        let sub = mpi.comm_split(&w, (me % 2) as i32, me as i32).unwrap();
        let b = mpi.alloc(512);
        if sub.rank() == 0 {
            mpi.write(&b, 0, &pattern(512, (me % 2) as u8));
        }
        mpi.bcast(&sub, 0, &b, 512);
        assert_eq!(mpi.read(&b, 0, 512), pattern(512, (me % 2) as u8));
        mpi.free(b);
    });
    assert_eq!(
        uni.cluster.stats().hw_bcasts,
        0,
        "partial communicator must fall back off the hardware rail"
    );
}

#[test]
fn long_tail_collectives_match_scalar_reference_and_attribute_spans() {
    let mut cfg = StackConfig::best();
    cfg.metrics = true;
    cfg.trace = true;
    cfg.trace_capacity = 65536;
    let uni = Universe::paper_testbed(cfg);
    let rows: Arc<Mutex<Vec<(usize, crate::trace::TraceLog)>>> = Arc::new(Mutex::new(Vec::new()));
    let r2 = rows.clone();
    uni.run_world(6, Placement::RoundRobin, move |mpi| {
        let w = mpi.world();
        let me = mpi.rank();
        let n = mpi.size();
        // alltoallv: distinct length and content per (src, dst) pair.
        let sends: Vec<Vec<u8>> = (0..n)
            .map(|d| vec![(me * 16 + d) as u8; (me * 7 + d) % 13])
            .collect();
        let got = mpi.alltoallv(&w, &sends);
        for (s, v) in got.iter().enumerate() {
            assert_eq!(*v, vec![(s * 16 + me) as u8; (s * 7 + me) % 13], "from {s}");
        }
        // scan: prefix sums of (rank + 1).
        let b = mpi.alloc(8);
        mpi.write(&b, 0, &(me as u64 + 1).to_le_bytes());
        mpi.scan(&w, crate::coll::ReduceOp::SumU64, &b, 8);
        let expect: u64 = (0..=me).map(|r| r as u64 + 1).sum();
        assert_eq!(
            u64::from_le_bytes(mpi.read(&b, 0, 8).try_into().unwrap()),
            expect,
            "scan prefix"
        );
        mpi.free(b);
        // reduce_scatter: lane j of rank r's send is r + 10 j.
        let block = 8;
        let send = mpi.alloc(block * n);
        let recv = mpi.alloc(block);
        for j in 0..n {
            mpi.write(&send, j * 8, &(me as u64 + 10 * j as u64).to_le_bytes());
        }
        mpi.reduce_scatter(&w, crate::coll::ReduceOp::SumU64, &send, &recv, block);
        let expect: u64 = (0..n).map(|r| r as u64 + 10 * me as u64).sum();
        assert_eq!(
            u64::from_le_bytes(mpi.read(&recv, 0, 8).try_into().unwrap()),
            expect,
            "reduce_scatter block"
        );
        mpi.free(send);
        mpi.free(recv);
        // gatherv: rank r contributes 3r+1 bytes of known content to root 2.
        let data: Vec<u8> = (0..me * 3 + 1).map(|k| (me * 5 + k) as u8).collect();
        let res = mpi.gatherv(&w, 2, &data);
        if me == 2 {
            let (offsets, bytes) = res.expect("root gets the concatenation");
            assert_eq!(offsets.len(), n + 1);
            for r in 0..n {
                let expect: Vec<u8> = (0..r * 3 + 1).map(|k| (r * 5 + k) as u8).collect();
                assert_eq!(
                    &bytes[offsets[r]..offsets[r + 1]],
                    &expect[..],
                    "rank {r} slot"
                );
            }
        } else {
            assert!(res.is_none(), "non-root gets nothing");
        }
        r2.lock().push((me, mpi.endpoint().trace.lock().clone()));
    });
    // Composed collectives must attribute every `coll` span to the
    // outermost operation: the primitives they delegate to (gather, reduce,
    // scatter, bcast) never open spans of their own.
    let allowed = ["alltoallv", "scan", "reduce_scatter", "gatherv"];
    let rows = rows.lock();
    assert_eq!(rows.len(), 6);
    for (rank, t) in rows.iter() {
        assert_eq!(t.dropped(), 0, "rank {rank}: ring must hold the whole run");
        let mut depth = 0usize;
        let mut names = Vec::new();
        for (_, ev) in t.events() {
            match ev {
                crate::trace::TraceEvent::SpanBegin { cat, name, .. } if *cat == "coll" => {
                    assert_eq!(depth, 0, "rank {rank}: nested coll span {name}");
                    depth += 1;
                    names.push(*name);
                }
                crate::trace::TraceEvent::SpanEnd { cat, .. } if *cat == "coll" => {
                    depth -= 1;
                }
                _ => {}
            }
        }
        assert_eq!(depth, 0, "rank {rank}: unbalanced coll spans");
        for nm in &names {
            assert!(
                allowed.contains(nm),
                "rank {rank}: span '{nm}' leaked from inside a composed collective"
            );
        }
        for want in allowed {
            assert!(
                names.contains(&want),
                "rank {rank}: no span for outermost op {want}"
            );
        }
    }
}
