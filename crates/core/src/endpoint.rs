//! The per-rank communication endpoint: NIC resources, PML state, progress
//! engines, and blocking-wait logic.
//!
//! A rank's endpoint owns its Elan4 context (claimed dynamically from the
//! capability — paper §4.1/§5), its receive queue(s), an optional TCP inbox,
//! and the lock-guarded [`EpState`]. Progress is driven either by the
//! application thread (polling / interrupt modes) or by one or two
//! asynchronous progress threads over the shared completion queue
//! (paper §4.3).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use elan4::{Cluster, ElanCtx, HostBuf, RxQueue};
use ompi_rte::{ProcName, Rte};
use qsim::Mutex;
use qsim::{Dur, Proc, Signal, Time, TimedWait, Wait};

use crate::config::{CompletionMode, ProgressMode, StackConfig};
use crate::peer::{ElanPeer, PeerInfo, TcpPeer};
use crate::proto;
use crate::ptl::{PtlInfo, PtlKind, PtlRegistry};
use crate::ptl_tcp::{TcpInbox, TcpNet};
use crate::state::EpState;

/// Which transports an endpoint activates.
#[derive(Clone, Debug)]
pub struct Transports {
    /// Number of Elan4 rails used (0 disables the Elan4 PTL).
    pub elan_rails: usize,
    /// Activate the TCP PTL.
    pub tcp: bool,
}

impl Default for Transports {
    fn default() -> Self {
        Transports {
            elan_rails: 1,
            tcp: false,
        }
    }
}

/// Instrumentation for the paper's §6.3 layering analysis.
#[derive(Default)]
pub struct Instr {
    /// Set when a match-class packet is handed to the PML.
    pub last_rx: Option<Time>,
    /// Accumulated PML-and-above time between receipt and next send.
    pub pml_accum: Dur,
    /// Number of accumulated intervals.
    pub pml_samples: u64,
}

/// One rank's endpoint.
pub struct Endpoint {
    /// This process's name.
    pub name: ProcName,
    /// The node it runs on.
    pub node: usize,
    /// Protocol configuration.
    pub cfg: StackConfig,
    /// Activated transports.
    pub transports: Transports,
    /// The simulated machine.
    pub cluster: Arc<Cluster>,
    /// The runtime environment.
    pub rte: Arc<Rte>,
    /// This rank's Elan4 context (claimed dynamically at init).
    pub ectx: Arc<ElanCtx>,
    /// Main QDMA receive queue (when the Elan PTL is active).
    pub main_q: Option<Arc<RxQueue>>,
    /// Separate shared-completion queue (two-queue strategy).
    pub comp_q: Option<Arc<RxQueue>>,
    /// The Ethernet, when the TCP PTL is active.
    pub tcp_net: Option<Arc<TcpNet>>,
    /// Incoming TCP frames.
    pub tcp_inbox: Option<Arc<TcpInbox>>,
    /// PML state (requests, matching, peers).
    pub state: Mutex<EpState>,
    /// Component lifecycle registry (paper §2.2's five stages).
    pub ptls: Mutex<PtlRegistry>,
    /// The progress driver's wakeup signal (polling/interrupt modes).
    pub doorbell: Mutex<Option<Signal>>,
    /// §6.3 layer-cost instrumentation.
    pub instr: Mutex<Instr>,
    /// Protocol event trace (populated when `cfg.trace` is set).
    pub trace: Mutex<crate::trace::TraceLog>,
    /// Always-on post-mortem flight recorder (gated on the runtime-writable
    /// `flight.enable` cvar, on by default). Leaf lock: may be taken while
    /// holding any other endpoint lock.
    pub flight: Mutex<crate::flight::FlightRecorder>,
    /// Telemetry counters + histograms (populated when `cfg.metrics` is set).
    pub metrics: Mutex<crate::metrics::Metrics>,
    /// Registration (pin-down) cache for rendezvous/RMA MMU mappings. Its
    /// lock is never held across a map/unmap (both advance virtual time).
    pub reg: Mutex<crate::regcache::RegCache>,
    /// Runtime-writable knobs behind the cvar registry; the hot path reads
    /// these instead of the frozen [`StackConfig`] copies.
    pub tunables: crate::introspect::Tunables,
    /// Watchdog bookkeeping and recorded stall diagnostics. May be locked
    /// while holding the state lock, never the reverse.
    pub introspect: Mutex<crate::introspect::IntrospectState>,
    /// Periodic time-series snapshots of queue depths / link occupancy
    /// (gated on the `timeline.interval_ns` cvar). Leaf lock.
    pub timeline: Mutex<crate::introspect::Timeline>,
    /// Collective-operation ids: `coll_seq` allocates, `coll_depth` tracks
    /// nesting (bcast inside allreduce keeps the outer id), and `cur_coll`
    /// is the id point-to-point sends stamp on their trace events (0 when
    /// outside any collective).
    pub coll_seq: AtomicU64,
    /// Nesting depth of in-progress collectives on this rank.
    pub coll_depth: AtomicU64,
    /// Id of the outermost in-progress collective (0 = none).
    pub cur_coll_id: AtomicU64,
    /// Compiled NIC-resident collective event programs, keyed by
    /// communicator + shape and reused across calls ([`crate::coll`]).
    /// Lives on the endpoint (not the communicator) because communicator
    /// handles are cloned per call. Leaf lock, never held across waits.
    pub nic_progs: Mutex<std::collections::HashMap<crate::coll::ProgKey, crate::coll::CachedProg>>,
    /// This rank's published addressing.
    pub my_info: PeerInfo,
}

impl Endpoint {
    /// Bring a rank's endpoint up: claim a context, create queues, publish
    /// addressing via the modex, and synchronize with the rest of the job.
    #[allow(clippy::too_many_arguments)]
    pub fn init(
        proc: &Proc,
        name: ProcName,
        node: usize,
        cfg: StackConfig,
        transports: Transports,
        cluster: Arc<Cluster>,
        rte: Arc<Rte>,
        tcp_net: Option<Arc<TcpNet>>,
    ) -> Arc<Endpoint> {
        cfg.validate();
        assert!(
            transports.elan_rails <= cluster.rails(),
            "more rails requested than the fabric has"
        );
        // Dynamic join: claim an Elan4 context whenever this process starts.
        let ectx =
            Arc::new(ElanCtx::attach(&cluster, node).expect("Elan4 capability exhausted on node"));

        let (main_q, comp_q) = if transports.elan_rails > 0 {
            let main = Arc::new(ectx.create_queue(cfg.qslots, crate::hdr::SLOT_LEN));
            let comp = match cfg.completion {
                CompletionMode::SharedQueueSeparate => Some(Arc::new(
                    ectx.create_queue(cfg.qslots, crate::hdr::SLOT_LEN),
                )),
                _ => None,
            };
            (Some(main), comp)
        } else {
            (None, None)
        };

        let tcp_inbox = if transports.tcp {
            let net = tcp_net.as_ref().expect("tcp enabled without a TcpNet");
            let inbox = TcpInbox::new();
            net.bind(name, node, inbox.clone());
            Some(inbox)
        } else {
            None
        };

        let my_info = PeerInfo {
            name,
            elan: main_q.as_ref().map(|q| ElanPeer {
                vpid: ectx.vpid(),
                main_q: q.id(),
                comp_q: comp_q.as_ref().map(|c| c.id()),
                rails: transports.elan_rails as u8,
            }),
            tcp: transports.tcp.then_some(TcpPeer { node: node as u32 }),
        };

        // Publish addressing, then wait for the whole job before fetching
        // (the paper's collective connection setup during MPI_Init).
        rte.modex_put(proc, name, "ptl", my_info.to_bytes());
        rte.barrier(proc, name.job);

        let job_size = rte.job_size(name.job);
        let mut state = EpState::new();
        for r in 0..job_size {
            let who = ProcName {
                job: name.job,
                rank: r,
            };
            let raw = rte.modex_get(proc, who, "ptl");
            let info = PeerInfo::from_bytes(&raw);
            state.peers.insert(who, info);
        }

        // Drive each component through the open -> init -> activate stages
        // of §2.2. Opening/initializing happened physically above (queues,
        // inbox); the registry records the lifecycle and feeds the PML
        // scheduling heuristics.
        let mut ptls = PtlRegistry::new();
        for rail in 0..transports.elan_rails {
            let info = PtlInfo::elan4(rail);
            let kind = info.kind;
            ptls.open(info);
            ptls.init(kind).expect("fresh component");
            ptls.activate(kind).expect("initialized component");
        }
        if transports.tcp {
            ptls.open(PtlInfo::tcp());
            ptls.init(PtlKind::Tcp).expect("fresh component");
            ptls.activate(PtlKind::Tcp).expect("initialized component");
        }

        // Preallocate the unexpected-message bounce pool: eager payloads of
        // unmatched messages stage in these fixed slots instead of a
        // per-message allocation; a pool miss falls back to the allocator and
        // charges `host.bounce_alloc` (GASNet's elan-conduit bounce-buffer
        // strategy). Always active, so the flow-off path of the incast bench
        // measures exactly this exhaustion cost.
        if cfg.flow_bounce_pool > 0 {
            let slot_len = cfg.eager_limit.max(1);
            let slots: Vec<HostBuf> = (0..cfg.flow_bounce_pool)
                .map(|_| ectx.alloc(slot_len))
                .collect();
            state.bounce_pool.seed(slots, slot_len);
        }

        let trace_capacity = cfg.trace_capacity;
        let flight_capacity = cfg.flight_capacity;
        let timeline_capacity = cfg.timeline_capacity;
        let tunables = crate::introspect::Tunables::from_config(&cfg);
        // A configured credit window of 0 means auto-scale: split the bounce
        // pool across the peers that can send to us, so even an all-to-all
        // burst of unexpected eager messages fits in preallocated staging.
        if cfg.flow_enable && cfg.flow_credits == 0 {
            let peers = job_size.saturating_sub(1).max(1);
            let auto = (cfg.flow_bounce_pool / peers)
                .clamp(2, 16)
                .min(cfg.flow_bounce_pool.max(1));
            tunables.set_flow_credits(auto);
        }
        let reg = crate::regcache::RegCache::new(
            cfg.reg_cache,
            cfg.reg_cache_bytes,
            cfg.reg_cache_entries,
        );
        Arc::new(Endpoint {
            name,
            node,
            cfg,
            transports,
            cluster,
            rte,
            ectx,
            main_q,
            comp_q,
            tcp_net,
            tcp_inbox,
            state: Mutex::new(state),
            ptls: Mutex::new(ptls),
            doorbell: Mutex::new(None),
            instr: Mutex::new(Instr::default()),
            trace: Mutex::new(crate::trace::TraceLog::with_capacity(trace_capacity)),
            flight: Mutex::new(crate::flight::FlightRecorder::with_capacity(
                flight_capacity,
            )),
            metrics: Mutex::new(crate::metrics::Metrics::default()),
            reg: Mutex::new(reg),
            tunables,
            introspect: Mutex::new(crate::introspect::IntrospectState::default()),
            timeline: Mutex::new(crate::introspect::Timeline::with_capacity(
                timeline_capacity,
            )),
            coll_seq: AtomicU64::new(0),
            coll_depth: AtomicU64::new(0),
            cur_coll_id: AtomicU64::new(0),
            nic_progs: Mutex::new(std::collections::HashMap::new()),
            my_info,
        })
    }

    /// Install progress machinery for the configured mode. Must be called by
    /// the rank's own process before any communication.
    pub fn start_progress(self: &Arc<Self>, proc: &Proc) {
        match self.cfg.progress {
            ProgressMode::Polling | ProgressMode::Interrupt => {
                let bell = proc.signal();
                let irq = self.cfg.progress == ProgressMode::Interrupt;
                if let Some(q) = &self.main_q {
                    q.set_signal(bell.clone());
                    q.arm_irq(irq);
                }
                if let Some(q) = &self.comp_q {
                    q.set_signal(bell.clone());
                    q.arm_irq(irq);
                }
                if let Some(ib) = &self.tcp_inbox {
                    ib.set_doorbell(bell.clone());
                }
                *self.doorbell.lock() = Some(bell);
            }
            ProgressMode::OneThread => {
                let ep = self.clone();
                proc.spawn_daemon(
                    &format!("progress-{}-{}", self.name.job.0, self.name.rank),
                    move |p| {
                        progress_thread(&p, &ep, QueueSel::Main);
                    },
                );
            }
            ProgressMode::TwoThreads => {
                let ep = self.clone();
                proc.spawn_daemon(
                    &format!("progress-{}-{}", self.name.job.0, self.name.rank),
                    move |p| {
                        progress_thread(&p, &ep, QueueSel::Main);
                    },
                );
                let ep2 = self.clone();
                proc.spawn_daemon(
                    &format!("compl-{}-{}", self.name.job.0, self.name.rank),
                    move |p| {
                        progress_thread(&p, &ep2, QueueSel::Completion);
                    },
                );
            }
        }
    }

    /// The signal the current progress driver blocks on (polling/interrupt
    /// modes only).
    pub fn doorbell(&self) -> Option<Signal> {
        self.doorbell.lock().clone()
    }

    // ---- memory helpers ----------------------------------------------------

    /// Allocate host memory on this rank's node.
    pub fn alloc(&self, len: usize) -> HostBuf {
        self.ectx.alloc(len)
    }

    /// Free a buffer.
    pub fn free(&self, buf: HostBuf) {
        self.ectx.free(buf);
    }

    /// Untimed host store into a buffer.
    pub fn write_buf(&self, buf: &HostBuf, off: usize, data: &[u8]) {
        self.ectx.write(buf, off, data);
    }

    /// Untimed host load from a buffer.
    pub fn read_buf(&self, buf: &HostBuf, off: usize, len: usize) -> Vec<u8> {
        self.ectx.read(buf, off, len)
    }

    /// Host memcpy cost from the copy model.
    pub fn memcpy_cost(&self, len: usize) -> Dur {
        self.cfg.copy.memcpy(len)
    }

    // ---- blocking progress --------------------------------------------------

    /// Upper bound on one blocked wait, when a timer needs servicing: the
    /// watchdog tick and/or the earliest retransmit deadline (whichever is
    /// sooner). `None` means an unbounded wait is safe — no watchdog armed
    /// and no sequence-stamped control frame awaiting its receipt.
    fn wait_bound(&self, now: Time) -> Option<Dur> {
        let mut bound = if self.tunables.watchdog_interval() > 0 {
            Some(self.cfg.watchdog_tick)
        } else {
            None
        };
        if self.cfg.tcp_reliability {
            let earliest = {
                let st = self.state.lock();
                st.ctl_inflight.iter().map(|e| e.deadline).min()
            };
            if let Some(deadline) = earliest {
                let until = deadline.saturating_sub(now);
                let until = if until > Dur::ZERO {
                    until
                } else {
                    Dur::from_ns(1)
                };
                bound = Some(match bound {
                    Some(b) if b < until => b,
                    _ => until,
                });
            }
        }
        bound
    }

    /// A bounded wait expired: service the timers that bounded it.
    fn timers_tick(self: &Arc<Self>, proc: &Proc) {
        crate::introspect::watchdog_tick(proc, self);
        crate::introspect::timeline_tick(proc, self);
        proto::reliability_tick(proc, self);
    }

    /// Drive progress until `done()` (checked under the state lock) returns
    /// true. Used by request waits, barriers, and finalize.
    pub fn wait_until(self: &Arc<Self>, proc: &Proc, mut done: impl FnMut(&mut EpState) -> bool) {
        match self.cfg.progress {
            ProgressMode::Polling | ProgressMode::Interrupt => {
                let bell = self.doorbell().expect("progress not started");
                loop {
                    if done(&mut self.state.lock()) {
                        return;
                    }
                    if proto::progress_pass(proc, self) {
                        continue;
                    }
                    if done(&mut self.state.lock()) {
                        return;
                    }
                    // Bounded wait whenever the watchdog is armed or a
                    // control frame awaits its receipt: each expiry is a
                    // watchdog tick and a retransmit scan, so a wedged rank
                    // keeps diagnosing (and healing) instead of
                    // deadlocking.
                    match self.wait_bound(proc.now()) {
                        Some(bound) => match proc.wait_timeout(&bell, bound) {
                            TimedWait::Signaled => {
                                proc.advance(self.cluster.cfg().poll_check);
                            }
                            TimedWait::TimedOut => self.timers_tick(proc),
                            TimedWait::Shutdown => {
                                panic!("simulation shut down during MPI wait")
                            }
                        },
                        None => match proc.wait(&bell) {
                            Wait::Signaled => {
                                proc.advance(self.cluster.cfg().poll_check);
                            }
                            Wait::Shutdown => panic!("simulation shut down during MPI wait"),
                        },
                    }
                }
            }
            ProgressMode::OneThread | ProgressMode::TwoThreads => {
                // The progress thread(s) complete requests; we sleep on a
                // per-wait signal it notifies, paying the thread-handoff
                // cost on each wakeup.
                let extra = if self.cfg.progress == ProgressMode::TwoThreads {
                    self.cfg.host.thread_contention
                } else {
                    Dur::ZERO
                };
                loop {
                    let sig = proc.signal();
                    {
                        let mut st = self.state.lock();
                        if done(&mut st) {
                            return;
                        }
                        st.waiters.push(sig.clone());
                    }
                    match self.wait_bound(proc.now()) {
                        Some(bound) => match proc.wait_timeout(&sig, bound) {
                            TimedWait::Signaled => {
                                proc.advance(self.cfg.host.thread_handoff + extra);
                            }
                            TimedWait::TimedOut => self.timers_tick(proc),
                            TimedWait::Shutdown => {
                                panic!("simulation shut down during MPI wait")
                            }
                        },
                        None => match proc.wait(&sig) {
                            Wait::Signaled => {
                                proc.advance(self.cfg.host.thread_handoff + extra);
                            }
                            Wait::Shutdown => panic!("simulation shut down during MPI wait"),
                        },
                    }
                }
            }
        }
    }

    /// Record a trace event. The full ring is gated on the runtime-writable
    /// `telemetry.trace` cvar; the same funnel also feeds the always-on
    /// flight recorder (`flight.enable`) with the compact event subset, so
    /// protocol code has a single instrumentation call site.
    pub fn trace(&self, now: Time, ev: crate::trace::TraceEvent) {
        if self.tunables.flight_enable() {
            if let Some(fe) = crate::flight::FlightEvent::from_trace(&ev) {
                self.flight.lock().record(now, fe);
            }
        }
        if self.tunables.trace() {
            self.trace.lock().record(now, ev);
        }
    }

    /// Dump the flight recorder's retained tail as a JSON document.
    pub fn flight_dump(&self, reason: &str, now: Time) -> String {
        self.flight.lock().dump_json(self.name.rank, reason, now)
    }

    /// This rank's timeline samples as a JSON document.
    pub fn timeline_json(&self) -> String {
        self.timeline.lock().to_json(self.name.rank)
    }

    /// Enter a collective: allocates a fresh collective id at the outermost
    /// nesting level (returned for the span), keeps the enclosing id for
    /// nested collectives (e.g. the bcast inside an allreduce).
    pub fn coll_enter(&self) -> Option<u64> {
        if self.coll_depth.fetch_add(1, Ordering::Relaxed) == 0 {
            let cid = self.coll_seq.fetch_add(1, Ordering::Relaxed) + 1;
            self.cur_coll_id.store(cid, Ordering::Relaxed);
            Some(cid)
        } else {
            None
        }
    }

    /// Leave a collective; clears the current id at the outermost level.
    pub fn coll_exit(&self) {
        if self.coll_depth.fetch_sub(1, Ordering::Relaxed) == 1 {
            self.cur_coll_id.store(0, Ordering::Relaxed);
        }
    }

    /// Id of the collective currently in progress on this rank (0 = none);
    /// stamped on `SendPosted` trace events for fan-in/fan-out attribution.
    pub fn cur_coll(&self) -> u64 {
        self.cur_coll_id.load(Ordering::Relaxed)
    }

    /// Update telemetry (no-op unless the runtime-writable
    /// `telemetry.metrics` cvar is on). The metrics lock may be taken while
    /// holding the state lock, never the reverse.
    pub fn metric(&self, f: impl FnOnce(&mut crate::metrics::Metrics)) {
        if self.tunables.metrics() {
            f(&mut self.metrics.lock());
        }
    }

    /// A copy of the endpoint's telemetry as of now. Registration-cache
    /// counters are merged in from the cache itself (their single source of
    /// truth, maintained independently of the `telemetry.metrics` gate).
    pub fn metrics_snapshot(&self) -> crate::metrics::Metrics {
        let mut m = self.metrics.lock().clone();
        let s = self.reg_stats();
        m.counters.reg_hits = s.hits;
        m.counters.reg_misses = s.misses;
        m.counters.reg_evictions = s.evictions;
        m.counters.reg_mapped_bytes = s.mapped_bytes;
        m
    }

    /// Live registration-cache counters.
    pub fn reg_stats(&self) -> crate::regcache::RegStats {
        self.reg.lock().stats()
    }

    /// Live mappings in this rank's Elan4 MMU (leak checks in tests; after
    /// [`Endpoint::finalize`] this is zero).
    pub fn mapping_count(&self) -> usize {
        self.ectx.mapping_count()
    }

    /// Bounce-pool slots currently staging unexpected payloads (leak checks
    /// in tests; after [`Endpoint::finalize`] this is zero).
    pub fn bounce_in_use(&self) -> usize {
        self.state.lock().bounce_pool.in_use()
    }

    /// Packets holding or waiting for this node's ejection links at `now`.
    /// The flow-control pump reads this (never under the state lock) to
    /// defer credit grants while our receive side is backed up.
    pub fn ejection_depth(&self, now: Time) -> u64 {
        self.cluster.fabric().node_ej_queue_now(self.node, now)
    }

    /// Record the PML-handoff timestamp (paper §6.3 instrumentation).
    pub fn instr_mark_rx(&self, now: Time) {
        self.instr.lock().last_rx = Some(now);
    }

    /// A first fragment is leaving through the PTL: close the PML interval.
    pub fn instr_mark_tx(&self, now: Time) {
        let mut i = self.instr.lock();
        if let Some(rx) = i.last_rx.take() {
            i.pml_accum += now - rx;
            i.pml_samples += 1;
        }
    }

    /// Average "PML layer and above" cost per message, if measured.
    pub fn pml_layer_cost(&self) -> Option<Dur> {
        let i = self.instr.lock();
        if i.pml_samples == 0 {
            None
        } else {
            Some(i.pml_accum / i.pml_samples)
        }
    }

    /// Tear the endpoint down: drain pending traffic, synchronize, release
    /// the context (paper §4.1: finalize only after pending messages are
    /// drained synchronously so no leftover DMA can regenerate traffic).
    pub fn finalize(self: &Arc<Self>, proc: &Proc) {
        self.wait_until(proc, |st| {
            st.finalizing = true;
            // Drain the retransmit buffer too: a peer blocked on a lost
            // control frame needs our resend before the barrier, or both
            // ranks park forever.
            st.all_requests_done() && st.ctl_inflight.is_empty()
        });
        self.rte.barrier(proc, self.name.job);
        // A message that was never received (e.g. its receive was aborted)
        // can still sit unexpected with its payload staged in the bounce
        // pool: release those stages, then drain the pool — the drain
        // asserts every slot came back, catching any leak past a
        // completion or failure path.
        let (slots, leaked) = {
            let mut st = self.state.lock();
            let mut stages: Vec<HostBuf> = Vec::new();
            for c in st.comms.values_mut() {
                for f in c.unexpected.iter_mut().chain(c.out_of_order.iter_mut()) {
                    if let Some(s) = f.stage.take() {
                        stages.push(s);
                    }
                }
            }
            let mut leaked = Vec::new();
            for s in stages {
                if !st.bounce_pool.release(s) {
                    leaked.push(s);
                }
            }
            (st.bounce_pool.drain(), leaked)
        };
        for b in slots.into_iter().chain(leaked) {
            self.free(b);
        }
        // Every request is done, so no mapping is referenced any more:
        // drain the registration cache (charged unmaps) and verify nothing
        // leaked past a completion or failure path.
        crate::regcache::drain(proc, self);
        assert_eq!(
            self.mapping_count(),
            0,
            "rank {} leaked MMU mappings past finalize",
            self.name.rank
        );
        // Stages 4 and 5: finalize and close every component, then release
        // the context back to the capability (disjoin).
        self.ptls.lock().shutdown();
        if let Some(net) = &self.tcp_net {
            net.unbind(self.name);
        }
        self.cluster.release_ctx(self.ectx.vpid());
    }
}

/// Which queue a progress thread services.
#[derive(Copy, Clone, PartialEq, Eq)]
enum QueueSel {
    Main,
    Completion,
}

/// Body of an asynchronous progress thread: block on the queue's interrupt,
/// drain it, dispatch frames, wake any waiting application threads.
fn progress_thread(proc: &Proc, ep: &Arc<Endpoint>, sel: QueueSel) {
    let q = match sel {
        QueueSel::Main => ep.main_q.clone(),
        QueueSel::Completion => ep.comp_q.clone(),
    };
    let Some(q) = q else { return };
    let sig = proc.signal();
    q.set_signal(sig.clone());
    q.arm_irq(true);
    if sel == QueueSel::Main {
        if let Some(ib) = &ep.tcp_inbox {
            ib.set_doorbell(sig.clone());
        }
    }
    loop {
        ep.metric(|m| m.counters.progress_iterations += 1);
        if sel == QueueSel::Main {
            proto::reliability_tick(proc, ep);
        }
        let mut worked = false;
        while let Some(frame) = q.pop_ready() {
            proto::dispatch(proc, ep, frame);
            worked = true;
        }
        if sel == QueueSel::Main {
            if let Some(ib) = &ep.tcp_inbox {
                while let Some(frame) = ib.pop() {
                    // Kernel receive path: syscall + copy out of the socket.
                    if let Some(net) = &ep.tcp_net {
                        proc.advance(net.cfg().syscall + ep.cluster.cfg().memcpy(frame.len()));
                    }
                    proto::dispatch(proc, ep, frame);
                    worked = true;
                }
            }
            // Paced bulk work parks between dispatches; the thread must
            // pump it, since nothing else polls in the thread modes.
            if proto::tcp_push_pump(proc, ep) {
                worked = true;
            }
            if proto::pipe_pump_all(proc, ep) {
                worked = true;
            }
            // Credit-parked sends wake on credit returns dispatched above;
            // the pump also issues explicit credit-return frames when
            // piggyback opportunities ran dry.
            if proto::flow_pump(proc, ep) {
                worked = true;
            }
        }
        if worked {
            continue;
        }
        match ep.wait_bound(proc.now()) {
            Some(bound) => match proc.wait_timeout(&sig, bound) {
                TimedWait::Signaled => proc.advance(ep.cluster.cfg().poll_check),
                TimedWait::TimedOut => {
                    crate::introspect::watchdog_tick(proc, ep);
                    crate::introspect::timeline_tick(proc, ep);
                    proto::reliability_tick(proc, ep);
                }
                TimedWait::Shutdown => break,
            },
            None => match proc.wait(&sig) {
                Wait::Signaled => proc.advance(ep.cluster.cfg().poll_check),
                Wait::Shutdown => break,
            },
        }
    }
}
