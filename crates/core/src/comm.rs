//! Communicators: an ordered group of process names plus a pair of context
//! ids (one for point-to-point traffic, one for collectives, mirroring how
//! real MPI keeps collective traffic from matching user receives).

use std::sync::Arc;

use ompi_rte::ProcName;
use qsim::Proc;

use crate::endpoint::Endpoint;
use crate::state::CommState;

/// A communicator as seen by one rank.
#[derive(Clone, Debug)]
pub struct Communicator {
    /// Context id for point-to-point matching.
    pub ctx: u32,
    /// Context id for collective traffic.
    pub coll_ctx: u32,
    /// Member processes, in rank order.
    pub group: Vec<ProcName>,
    /// This process's rank within `group`.
    pub my_rank: usize,
    /// True only for groups created synchronously at job launch: such
    /// groups share the global virtual address space and may use the
    /// Elan4 hardware broadcast. Groups involving late joiners (spawn,
    /// split, dup) cannot (paper §4.1).
    pub hw_coll: bool,
}

impl Communicator {
    /// Number of members.
    pub fn size(&self) -> usize {
        self.group.len()
    }

    /// This process's rank.
    pub fn rank(&self) -> usize {
        self.my_rank
    }

    /// The collective-plane alias of this communicator (same group, the
    /// collective context as its p2p context).
    pub fn coll_plane(&self) -> Communicator {
        Communicator {
            ctx: self.coll_ctx,
            coll_ctx: self.coll_ctx,
            group: self.group.clone(),
            my_rank: self.my_rank,
            hw_coll: self.hw_coll,
        }
    }
}

/// Register `comm` with this endpoint's matching engine and re-dispatch any
/// frames that arrived for its contexts before registration.
pub fn register_comm(proc: &Proc, ep: &Arc<Endpoint>, comm: &Communicator) {
    let early = {
        let mut st = ep.state.lock();
        for ctx in [comm.ctx, comm.coll_ctx] {
            assert!(
                !st.comms.contains_key(&ctx),
                "context id {ctx} registered twice"
            );
            st.comms
                .insert(ctx, CommState::new(ctx, comm.group.clone(), comm.my_rank));
        }
        let mut early = Vec::new();
        let mut keep = Vec::new();
        for (hdr, payload) in st.early_frames.drain(..) {
            if hdr.ctx == comm.ctx || hdr.ctx == comm.coll_ctx {
                early.push((hdr, payload));
            } else {
                keep.push((hdr, payload));
            }
        }
        st.early_frames = keep;
        early
    };
    for (hdr, payload) in early {
        crate::proto::handle_match_frame(proc, ep, hdr, payload);
    }
}
