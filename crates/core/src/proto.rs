//! The wire protocol: eager sends, the two rendezvous schemes (RDMA write +
//! FIN, RDMA read + FIN_ACK), chained completion, the shared completion
//! queue, and fragment push for non-RDMA transports.
//!
//! Lock discipline: the endpoint state lock is never held across a
//! time-consuming call (`advance`, QDMA/RDMA issue). Handlers lock, mutate,
//! collect work, unlock, then act.

use std::sync::Arc;

use elan4::{DmaKind, E4Addr, HostBuf, QdmaSpec, Vpid};
use ompi_datatype::Convertor;
use ompi_rte::ProcName;
use qsim::Proc;

use crate::comm::Communicator;
use crate::config::{CompletionMode, ProgressMode, RdmaScheme};
use crate::endpoint::Endpoint;
use crate::hdr::{Hdr, HdrType, MAX_INLINE};
use crate::state::{
    DmaRole, EpState, InflightCtl, MatchInfo, MpiErrClass, PendingDma, PipeChunk, PipeState,
    QueuedSend, RecvReq, SendReq, TcpPush, UnexpectedFrag,
};

/// Payload room in one TCP frame after the 64-byte header.
const TCP_FRAG_PAYLOAD: usize = (64 << 10) - crate::hdr::HDR_LEN;

/// Request kinds, for the user-facing handle.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum ReqKind {
    /// A send request.
    Send,
    /// A receive request.
    Recv,
}

/// A nonblocking-request handle.
#[derive(Copy, Clone, Debug)]
pub struct Request {
    /// The request id within its endpoint.
    pub id: u64,
    /// Send or receive.
    pub kind: ReqKind,
}

/// How a frame travels.
#[derive(Copy, Clone, Debug)]
enum Route {
    Elan { rail: usize },
    Tcp,
}

// ---------------------------------------------------------------------------
// posting
// ---------------------------------------------------------------------------

/// Post a send of `conv` over `buf` to `(comm, dst_rank, tag)`.
pub fn post_send(
    proc: &Proc,
    ep: &Arc<Endpoint>,
    comm: &Communicator,
    dst_rank: usize,
    tag: i32,
    buf: HostBuf,
    conv: Convertor,
) -> Request {
    post_send_mode(proc, ep, comm, dst_rank, tag, buf, conv, false)
}

/// Like [`post_send`], with `sync` forcing MPI_Ssend semantics: the request
/// only completes once the receiver has matched it, which the rendezvous
/// protocol provides for free — so a synchronous send is simply a send that
/// must take the rendezvous path regardless of size.
#[allow(clippy::too_many_arguments)]
pub fn post_send_mode(
    proc: &Proc,
    ep: &Arc<Endpoint>,
    comm: &Communicator,
    dst_rank: usize,
    tag: i32,
    buf: HostBuf,
    conv: Convertor,
    sync: bool,
) -> Request {
    let host = ep.cfg.host.clone();
    let posted_at = proc.now();
    proc.advance(host.req_bookkeep + host.sched);
    let msg_len = conv.packed_len();
    let dst = comm.group[dst_rank];
    ensure_peer(proc, ep, dst);

    let (id, seq, peer, peer_failed, stale_comm) = {
        let mut st = ep.state.lock();
        let id = st.alloc_req_id();
        // A stale communicator handle degrades the request instead of
        // aborting the rank (the seq is then meaningless, but so is the
        // send).
        let (seq, stale_comm) = match st.comms.get_mut(&comm.ctx) {
            Some(c) => (c.alloc_send_seq(dst_rank as u32), false),
            None => (0, true),
        };
        let peer = st.peers[&dst].clone();
        let peer_failed = st.failed_peers.contains(&dst);
        (id, seq, peer, peer_failed, stale_comm)
    };
    // The globally unique message id: derived, not carried on the wire —
    // the first fragment already identifies (sender, send_req), and control
    // frames resolve it from local request state.
    let gid = crate::hdr::msg_gid(ep.name.job.0, ep.name.rank as u32, id);

    let eager = !sync && !ep.cfg.force_rendezvous && msg_len <= ep.tunables.eager_limit();
    // Graceful degradation: a send to a failed or unreachable peer completes
    // immediately with an error status instead of panicking the rank. The
    // ordering seq allocated above leaves a gap, which is harmless — no
    // frame from us can reach that peer anyway.
    let route = if peer_failed || stale_comm {
        None
    } else {
        first_route(ep, &peer)
    };
    let Some(route) = route else {
        let err = if stale_comm {
            MpiErrClass::Internal
        } else if peer_failed {
            MpiErrClass::ProcFailed
        } else {
            MpiErrClass::NoTransport
        };
        ep.state.lock().send_reqs.insert(
            id,
            SendReq {
                id,
                gid,
                ctx: comm.ctx,
                dst,
                dst_rank: dst_rank as u32,
                tag,
                seq,
                msg_len,
                src_e4: None,
                src_region: buf,
                bounce: None,
                bytes_confirmed: 0,
                done: true,
                posted_at,
                rndv_acked: false,
                error: Some(err),
            },
        );
        ep.metric(|m| m.counters.reqs_failed += 1);
        ep.trace(
            proc.now(),
            crate::trace::TraceEvent::ReqFailed {
                req: id,
                send: true,
                err: err.mpi_name(),
            },
        );
        // Same post-mortem as the degraded completion path in
        // `fail_request`: freeze the flight recorder at the failure.
        if ep.tunables.flight_enable() {
            let dump = ep.flight_dump(&format!("request failed: {}", err.mpi_name()), proc.now());
            ep.introspect.lock().flight_dumps.push(dump);
        }
        return Request {
            id,
            kind: ReqKind::Send,
        };
    };

    let mut hdr = Hdr::new(if eager {
        HdrType::Eager
    } else {
        HdrType::Rendezvous
    });
    hdr.ctx = comm.ctx;
    hdr.src_rank = comm.my_rank as u32;
    hdr.tag = tag;
    hdr.seq = seq;
    hdr.msg_len = msg_len as u64;
    hdr.send_req = id;

    ep.trace(
        proc.now(),
        crate::trace::TraceEvent::SendPosted {
            req: id,
            gid,
            coll: ep.cur_coll(),
            dst: dst_rank as u32,
            tag,
            len: msg_len,
            eager,
        },
    );
    if eager {
        // The PML work ends here; staging the copy and building the frame
        // is the PTL's job (paper §6.3 draws the layer boundary at the
        // ptl_send call).
        ep.instr_mark_tx(proc.now());
        // Copy the whole message behind the header (buffered semantics:
        // the request completes locally once the copy is staged).
        let payload = read_packed(ep, &buf, &conv, None, 0, msg_len);
        charge_pack(proc, ep, payload.len());
        proc.advance(host.hdr_build);
        // End-to-end flow control: an eager send consumes one credit from
        // the peer's window; with the window exhausted (or older sends
        // already waiting — FIFO per peer) the frame parks locally until
        // credits return, instead of flooding the peer's receive queue.
        // Self-sends loop back without touching the fabric and are exempt.
        let parked = if ep.tunables.flow_enable() && dst != ep.name {
            let init = ep.tunables.flow_credits();
            let mut st = ep.state.lock();
            let fp = st.flow_entry(dst, init);
            if fp.credits == 0 || !fp.queued.is_empty() {
                fp.queued.push_back(QueuedSend {
                    sid: id,
                    gid,
                    hdr: hdr.clone(),
                    payload: payload.clone(),
                    queued_at: proc.now(),
                });
                true
            } else {
                fp.credits -= 1;
                fp.consumed += 1;
                false
            }
        } else {
            false
        };
        if parked {
            ep.metric(|m| {
                m.counters.flow_sends_queued += 1;
                m.counters.eager_sent += 1;
            });
            ep.trace(
                proc.now(),
                crate::trace::TraceEvent::FlowQueued { req: id, gid },
            );
        } else {
            if ep.tunables.flow_enable() && dst != ep.name {
                ep.metric(|m| m.counters.flow_credits_consumed += 1);
            }
            send_frame(proc, ep, &peer, route, hdr, payload);
        }
        let mut st = ep.state.lock();
        st.send_reqs.insert(
            id,
            SendReq {
                id,
                gid,
                ctx: comm.ctx,
                dst,
                dst_rank: dst_rank as u32,
                tag,
                seq,
                msg_len,
                src_e4: None,
                src_region: buf,
                bounce: None,
                bytes_confirmed: if parked { 0 } else { msg_len },
                done: !parked,
                posted_at,
                rndv_acked: false,
                error: None,
            },
        );
        drop(st);
        if !parked {
            ep.metric(|m| {
                m.counters.eager_sent += 1;
                m.completion_time
                    .record(proc.now().saturating_sub(posted_at));
            });
        }
        return Request {
            id,
            kind: ReqKind::Send,
        };
    }
    // The endpoint-wide outstanding-DMA cap (the GASNet elan-conduit
    // NETWORKDEPTH throttle): a rendezvous post waits for descriptor room
    // before adding more. Only the application thread blocks here — the
    // progress path enforces the same cap inside the chunk engine.
    let dma_cap = ep.tunables.flow_dma_cap();
    if ep.tunables.flow_enable() && dma_cap > 0 {
        let needs_wait = ep.state.lock().pending_dmas.len() >= dma_cap;
        if needs_wait {
            ep.wait_until(proc, |st| st.pending_dmas.len() < dma_cap);
            ep.metric(|m| m.counters.flow_dma_waits += 1);
        }
    }

    // Rendezvous: expose the packed source region for RDMA (paper §4.2 —
    // the memory descriptor is expanded with an E4 address).
    let bounce = if conv.is_contiguous() || msg_len == 0 {
        None
    } else {
        let b = flow_bounce_alloc(proc, ep, msg_len.max(1), false);
        let span = ep.read_buf(&buf, 0, conv.span());
        let packed = conv.pack(&span);
        ep.write_buf(&b, 0, &packed);
        proc.advance(ep.cfg.copy.convertor(&conv, msg_len));
        Some(b)
    };
    let region = bounce.unwrap_or(buf);
    // The read scheme needs the whole source exposed up front: the receiver
    // pulls straight out of it, and the remote side of an RDMA must be one
    // contiguous mapping. The write scheme's source is only touched by our
    // own descriptors, so its registration is deferred to the ACK — where
    // the pipelined path registers it chunk by chunk, overlapped with the
    // transfer, and the monolithic path acquires it lazily.
    let src_e4 = if msg_len > 0 && ep.cfg.scheme == RdmaScheme::Read {
        let t0 = proc.now();
        proc.advance(host.req_bookkeep); // MMU table bookkeeping
                                         // User buffers go through the pin-down cache; bounce buffers are
                                         // freed on completion, so caching their mapping would go stale.
        let e4 = if bounce.is_none() {
            crate::regcache::acquire(proc, ep, &region)
        } else {
            ep.ectx.map(proc, &region)
        };
        ep.trace(
            proc.now(),
            crate::trace::TraceEvent::Registered {
                gid,
                bytes: msg_len,
                cost_ns: proc.now().saturating_sub(t0).as_ns(),
            },
        );
        Some(e4)
    } else {
        None
    };

    let inline_len = if ep.cfg.inline_first_frag {
        msg_len.min(MAX_INLINE)
    } else {
        0
    };
    ep.instr_mark_tx(proc.now());
    let payload = if inline_len > 0 {
        let p = read_packed(ep, &buf, &conv, bounce.as_ref(), 0, inline_len);
        charge_pack(proc, ep, inline_len);
        p
    } else {
        Vec::new()
    };
    if let Some(e4) = src_e4 {
        hdr.e4_va = e4.value();
        hdr.e4_vpid = e4.owner().raw();
    }
    proc.advance(host.hdr_build);
    send_frame(proc, ep, &peer, route, hdr, payload);

    let mut st = ep.state.lock();
    st.send_reqs.insert(
        id,
        SendReq {
            id,
            gid,
            ctx: comm.ctx,
            dst,
            dst_rank: dst_rank as u32,
            tag,
            seq,
            msg_len,
            src_e4,
            src_region: region,
            bounce,
            bytes_confirmed: 0,
            done: false,
            posted_at,
            rndv_acked: false,
            error: None,
        },
    );
    drop(st);
    ep.metric(|m| m.counters.rndv_sent += 1);
    // The handshake span closes when the receiver is first heard from
    // (ACK or FIN_ACK) — see `first_receiver_contact`.
    ep.trace(
        proc.now(),
        crate::trace::TraceEvent::SpanBegin {
            id,
            cat: "rndv",
            name: "rndv_handshake",
        },
    );
    Request {
        id,
        kind: ReqKind::Send,
    }
}

/// Post a receive. `src = None` is MPI_ANY_SOURCE; `tag = None` is
/// MPI_ANY_TAG.
pub fn post_recv(
    proc: &Proc,
    ep: &Arc<Endpoint>,
    comm: &Communicator,
    src: Option<u32>,
    tag: Option<i32>,
    buf: HostBuf,
    conv: Convertor,
) -> Request {
    let host = ep.cfg.host.clone();
    let posted_at = proc.now();
    proc.advance(host.req_bookkeep);
    let cap = conv.packed_len();
    let bounce = if conv.is_contiguous() || cap == 0 {
        None
    } else {
        Some(flow_bounce_alloc(proc, ep, cap.max(1), false))
    };
    let (id, hit, stale_comm) = {
        let mut st = ep.state.lock();
        let id = st.alloc_req_id();
        st.recv_reqs.insert(
            id,
            RecvReq {
                id,
                ctx: comm.ctx,
                src_sel: src,
                tag_sel: tag,
                buf,
                conv,
                matched: None,
                dst_e4: None,
                bounce,
                bytes_received: 0,
                done: false,
                posted_at,
                error: None,
            },
        );
        // Check the unexpected queue before exposing the request.
        let hit = st.match_unexpected(comm.ctx, src, tag);
        let mut stale_comm = false;
        if hit.is_none() {
            // A stale communicator handle degrades the request instead of
            // aborting the rank.
            match st.comms.get_mut(&comm.ctx) {
                Some(c) => c.posted.push(id),
                None => stale_comm = true,
            }
        }
        (id, hit, stale_comm)
    };
    proc.advance(host.pml_match);
    ep.metric(|m| m.counters.recvs_posted += 1);
    ep.trace(proc.now(), crate::trace::TraceEvent::RecvPosted { req: id });
    if stale_comm {
        fail_request(proc, ep, ReqKind::Recv, id, MpiErrClass::Internal);
    } else if let Some(frag) = hit {
        matched(proc, ep, id, frag);
    }
    Request {
        id,
        kind: ReqKind::Recv,
    }
}

/// Root side of a hardware broadcast: one NIC injection delivers an eager
/// fragment to every other member of `comm`. Only legal on communicators
/// with the global-address-space property (`hw_coll`); the collective layer
/// enforces that gate (paper §4.1).
pub fn post_bcast_eager(
    proc: &Proc,
    ep: &Arc<Endpoint>,
    comm: &Communicator,
    tag: i32,
    data: &[u8],
) {
    assert!(data.len() <= MAX_INLINE);
    let host = ep.cfg.host.clone();
    proc.advance(host.req_bookkeep + host.sched);
    // Stage the payload once (single send-buffer copy for the whole group).
    charge_pack(proc, ep, data.len());
    proc.advance(host.hdr_build);

    let targets: Vec<(Vpid, elan4::QueueId, Vec<u8>)> = {
        let mut st = ep.state.lock();
        if !st.comms.contains_key(&comm.ctx) {
            // Stale communicator handle: nothing to broadcast into.
            return;
        }
        let members: Vec<ProcName> = comm.group.clone();
        let mut out = Vec::with_capacity(members.len() - 1);
        for (rank, who) in members.iter().enumerate() {
            if rank == comm.my_rank {
                continue;
            }
            let Some(c) = st.comms.get_mut(&comm.ctx) else {
                break;
            };
            let seq = c.alloc_send_seq(rank as u32);
            let mut hdr = Hdr::new(HdrType::Eager);
            hdr.ctx = comm.ctx;
            hdr.src_rank = comm.my_rank as u32;
            hdr.tag = tag;
            hdr.seq = seq;
            hdr.msg_len = data.len() as u64;
            hdr.payload_len = data.len() as u32;
            let peer = st.peers[who].clone();
            let e = peer.elan.expect("hw bcast to a peer without elan");
            out.push((e.vpid, e.main_q, hdr.frame(data)));
        }
        out
    };
    ep.instr_mark_tx(proc.now());
    ep.ectx.hw_bcast(proc, 0, targets, None);
}

// ---------------------------------------------------------------------------
// waiting
// ---------------------------------------------------------------------------

/// Block until `req` completes; reaps the request.
pub fn wait(proc: &Proc, ep: &Arc<Endpoint>, req: Request) {
    ep.wait_until(proc, |st| req_done(st, req));
    let mut st = ep.state.lock();
    match req.kind {
        ReqKind::Send => {
            st.send_reqs.remove(&req.id);
        }
        ReqKind::Recv => {
            st.recv_reqs.remove(&req.id);
        }
    }
}

fn req_done(st: &EpState, req: Request) -> bool {
    match req.kind {
        ReqKind::Send => st.send_reqs.get(&req.id).map(|r| r.done).unwrap_or(true),
        ReqKind::Recv => st.recv_reqs.get(&req.id).map(|r| r.done).unwrap_or(true),
    }
}

/// Block until any of `reqs` completes; returns its index and reaps it.
pub fn waitany(proc: &Proc, ep: &Arc<Endpoint>, reqs: &[Request]) -> usize {
    waitany_result(proc, ep, reqs).0
}

/// Like [`waitany`], but also surfaces the reaped request's error class
/// instead of silently dropping it.
pub fn waitany_result(
    proc: &Proc,
    ep: &Arc<Endpoint>,
    reqs: &[Request],
) -> (usize, Option<MpiErrClass>) {
    assert!(!reqs.is_empty());
    let mut idx = 0;
    ep.wait_until(proc, |st| {
        for (i, r) in reqs.iter().enumerate() {
            if req_done(st, *r) {
                idx = i;
                return true;
            }
        }
        false
    });
    let mut st = ep.state.lock();
    let err = match reqs[idx].kind {
        ReqKind::Send => st.send_reqs.remove(&reqs[idx].id).and_then(|r| r.error),
        ReqKind::Recv => st.recv_reqs.remove(&reqs[idx].id).and_then(|r| r.error),
    };
    (idx, err)
}

/// Fletcher-16 cost: ~0.17 ns/B of host time.
fn checksum_cost(len: usize) -> qsim::Dur {
    qsim::Dur::for_bytes(len, 6000)
}

/// Nonblocking completion check (MPI_Test). Reaps the request when it
/// reports completion (MPI semantics: a successful test frees the request;
/// a later `wait` on it is a no-op because missing requests count as done).
pub fn test(proc: &Proc, ep: &Arc<Endpoint>, req: Request) -> bool {
    if matches!(
        ep.cfg.progress,
        ProgressMode::Polling | ProgressMode::Interrupt
    ) {
        progress_pass(proc, ep);
    }
    let mut st = ep.state.lock();
    if !req_done(&st, req) {
        return false;
    }
    match req.kind {
        ReqKind::Send => {
            st.send_reqs.remove(&req.id);
        }
        ReqKind::Recv => {
            st.recv_reqs.remove(&req.id);
        }
    }
    true
}

// ---------------------------------------------------------------------------
// progress
// ---------------------------------------------------------------------------

/// One polling sweep over every incoming channel and pending DMA; returns
/// true if any work was done.
pub fn progress_pass(proc: &Proc, ep: &Arc<Endpoint>) -> bool {
    crate::introspect::watchdog_tick(proc, ep);
    crate::introspect::timeline_tick(proc, ep);
    reliability_tick(proc, ep);
    ep.metric(|m| m.counters.progress_iterations += 1);
    let mut any = false;
    if let Some(q) = &ep.main_q {
        while let Some(frame) = q.pop_ready() {
            dispatch(proc, ep, frame);
            any = true;
        }
    }
    if let Some(q) = &ep.comp_q {
        while let Some(frame) = q.pop_ready() {
            dispatch(proc, ep, frame);
            any = true;
        }
    }
    if let Some(ib) = &ep.tcp_inbox {
        while let Some(frame) = ib.pop() {
            if let Some(net) = &ep.tcp_net {
                proc.advance(net.cfg().syscall + ep.cluster.cfg().memcpy(frame.len()));
            }
            dispatch(proc, ep, frame);
            any = true;
        }
    }
    // Poll outstanding DMA completion events (the Basic strategy of §6.2).
    let fired: Vec<PendingDma> = {
        let mut st = ep.state.lock();
        let mut out = Vec::new();
        let mut i = 0;
        while i < st.pending_dmas.len() {
            if st.pending_dmas[i].event.take_fired_ready() {
                out.push(st.pending_dmas.swap_remove(i));
            } else {
                i += 1;
            }
        }
        out
    };
    for p in fired {
        p.event.free();
        dma_done(proc, ep, p.token, p.role);
        any = true;
    }
    // Paced bulk work: parked TCP pushes and pipeline windows with room.
    if tcp_push_pump(proc, ep) {
        any = true;
    }
    if pipe_pump_all(proc, ep) {
        any = true;
    }
    // Flow control: drain credit-starved send queues and flush hoarded
    // credit returns.
    if flow_pump(proc, ep) {
        any = true;
    }
    any
}

/// Handle one incoming frame (from any queue or the TCP inbox).
pub fn dispatch(proc: &Proc, ep: &Arc<Endpoint>, frame: Vec<u8>) {
    proc.advance(ep.cfg.host.hdr_parse);
    // A frame that fails header validation is counted and dropped, never
    // panicked on: one corrupt frame must not take the rank down.
    let hdr = match Hdr::decode(&frame) {
        Ok(h) => h,
        Err(_) => {
            ep.metric(|m| m.counters.corrupt_frames += 1);
            ep.trace(
                proc.now(),
                crate::trace::TraceEvent::CorruptFrame { len: frame.len() },
            );
            return;
        }
    };
    let payload = frame[crate::hdr::HDR_LEN..].to_vec();
    debug_assert_eq!(payload.len(), hdr.payload_len as usize);
    if ep.cfg.integrity_check && !payload.is_empty() {
        proc.advance(checksum_cost(payload.len()));
        let got = crate::hdr::fletcher16(&payload);
        if got != hdr.checksum {
            // Fail-stop: detection is the paper-era guarantee (LA-MPI);
            // recovery is listed as future work (§8).
            panic!(
                "end-to-end integrity check failed: {:?} fragment from rank {} \
                 (expected {:#06x}, computed {got:#06x})",
                hdr.kind, hdr.src_rank, hdr.checksum
            );
        }
    }

    // Receive side of the TCP reliability layer: a sequence-stamped control
    // frame is receipted (always — the previous receipt may itself have been
    // lost) and then deduplicated, making redelivery idempotent before any
    // handler can double-credit or double-complete.
    if ep.cfg.tcp_reliability && control_idx(hdr.kind).is_some() && hdr.tag != 0 {
        let origin = ProcName {
            job: ompi_rte::JobId(hdr.ctx),
            rank: hdr.src_rank as usize,
        };
        let rel_seq = hdr.tag as u32;
        ensure_peer(proc, ep, origin);
        send_ctl_ack(proc, ep, origin, rel_seq);
        let duplicate = {
            let mut st = ep.state.lock();
            !st.ctl_seen.entry(origin).or_default().insert(rel_seq)
        };
        if duplicate {
            ep.metric(|m| m.counters.dup_suppressed += 1);
            ep.trace(
                proc.now(),
                crate::trace::TraceEvent::CtlDuplicate {
                    kind: hdr.kind.name(),
                    rel_seq,
                },
            );
            return;
        }
    }

    match hdr.kind {
        HdrType::Eager | HdrType::Rendezvous => {
            ep.instr_mark_rx(proc.now());
            handle_match_frame(proc, ep, hdr, payload);
        }
        HdrType::Ack => handle_ack(proc, ep, hdr),
        HdrType::Fin => credit_recv(proc, ep, hdr.recv_req, hdr.offset as usize),
        HdrType::FinAck => {
            // Piggybacked flow credits ride in `e4_vpid` (unused on a
            // FIN_ACK); hand them back before the byte credit completes
            // (and possibly reaps) the send.
            if hdr.e4_vpid > 0 {
                let peer = {
                    let st = ep.state.lock();
                    st.send_reqs.get(&hdr.send_req).map(|r| r.dst)
                };
                if let Some(peer) = peer {
                    flow_credits_in(proc, ep, peer, hdr.e4_vpid as usize, true);
                }
            }
            credit_send(proc, ep, hdr.send_req, hdr.offset as usize)
        }
        HdrType::Frag => handle_frag(proc, ep, hdr, payload),
        HdrType::Completion => {
            ep.metric(|m| m.counters.chained_completions += 1);
            let token = hdr.e4_va;
            let pending = {
                let mut st = ep.state.lock();
                st.pending_dmas
                    .iter()
                    .position(|p| p.token == token)
                    .map(|i| st.pending_dmas.swap_remove(i))
            };
            if let Some(p) = pending {
                p.event.free();
                dma_done(proc, ep, p.token, p.role);
            }
        }
        HdrType::CtlAck => handle_ctl_ack(proc, ep, hdr),
        HdrType::Nack => handle_nack(proc, ep, hdr),
        HdrType::CreditReturn => {
            // Explicit credit grant: `seq` carries the count, ctx/src_rank
            // the granting peer (same encoding the reliability layer
            // stamps, so both routes agree).
            let origin = ProcName {
                job: ompi_rte::JobId(hdr.ctx),
                rank: hdr.src_rank as usize,
            };
            flow_credits_in(proc, ep, origin, hdr.seq as usize, false);
        }
    }
}

/// An Eager or Rendezvous fragment arrived: sequence-gate it, then match.
pub(crate) fn handle_match_frame(proc: &Proc, ep: &Arc<Endpoint>, hdr: Hdr, payload: Vec<u8>) {
    proc.advance(ep.cfg.host.pml_match);
    let ctx = hdr.ctx;
    let mut work: Vec<(u64, UnexpectedFrag)> = Vec::new();
    let mut stage_fallbacks = 0usize;
    {
        let mut st = ep.state.lock();
        if !st.comms.contains_key(&ctx) {
            // Communicator not registered on this rank yet (e.g. a split in
            // progress): park the frame; registration re-dispatches it.
            st.early_frames.push((hdr, payload));
            return;
        }
        // Re-checked under the same lock hold, but routed through let-else
        // so a torn-down communicator degrades instead of aborting.
        let Some(comm) = st.comms.get_mut(&ctx) else {
            return;
        };
        let from = comm.group[hdr.src_rank as usize];
        let now = proc.now();
        if !comm.is_in_order(&hdr) {
            let stamp = comm.next_arrival_stamp();
            comm.out_of_order.push(UnexpectedFrag {
                hdr,
                payload,
                stage: None,
                from,
                ptl: 0,
                arrival: stamp,
                arrived_at: now,
            });
            return;
        }
        comm.advance_recv_seq(hdr.src_rank);
        let stamp = comm.next_arrival_stamp();
        queue_or_match(
            &mut st,
            ep,
            now,
            UnexpectedFrag {
                hdr,
                payload,
                stage: None,
                from,
                ptl: 0,
                arrival: stamp,
                arrived_at: now,
            },
            &mut work,
            &mut stage_fallbacks,
        );
        // Earlier out-of-order arrivals may now be in sequence.
        while let Some(comm) = st.comms.get_mut(&ctx) {
            let Some(next) = comm.take_ready_out_of_order() else {
                break;
            };
            comm.advance_recv_seq(next.hdr.src_rank);
            queue_or_match(&mut st, ep, now, next, &mut work, &mut stage_fallbacks);
        }
    }
    // Pool-miss penalty, charged outside the state lock: each fallback is
    // a per-message bounce allocation (+ first touch) on the critical
    // receive path — exactly the cost the preallocated pool exists to
    // avoid (GASNet elan-conduit heritage).
    for _ in 0..stage_fallbacks {
        proc.advance(ep.cfg.host.bounce_alloc);
    }
    for (rid, frag) in work {
        matched(proc, ep, rid, frag);
    }
}

/// Try to match `frag` against posted receives; park it if nothing matches.
/// A parked payload is staged into a bounce region — a preallocated pool
/// slot when one is free (the common, cheap case), otherwise a per-message
/// fallback whose allocation cost the caller charges once per increment of
/// `stage_fallbacks` (charging cannot happen here: the state lock is held).
fn queue_or_match(
    st: &mut EpState,
    ep: &Arc<Endpoint>,
    now: qsim::Time,
    mut frag: UnexpectedFrag,
    work: &mut Vec<(u64, UnexpectedFrag)>,
    stage_fallbacks: &mut usize,
) {
    match st.match_posted(frag.hdr.ctx, &frag.hdr) {
        Some(rid) => work.push((rid, frag)),
        None => {
            ep.trace(
                now,
                crate::trace::TraceEvent::Unexpected {
                    src: frag.hdr.src_rank,
                    tag: frag.hdr.tag,
                },
            );
            if !frag.payload.is_empty() && frag.stage.is_none() {
                match st.bounce_pool.acquire(frag.payload.len()) {
                    Some(slot) => {
                        frag.stage = Some(slot);
                        ep.metric(|m| m.counters.flow_pool_hits += 1);
                    }
                    None => {
                        *stage_fallbacks += 1;
                        ep.metric(|m| m.counters.flow_pool_fallbacks += 1);
                    }
                }
            }
            let ctx = frag.hdr.ctx;
            let Some(comm) = st.comms.get_mut(&ctx) else {
                // Communicator torn down mid-dispatch: drop the fragment,
                // returning its stage to the pool.
                if let Some(slot) = frag.stage.take() {
                    st.bounce_pool.release(slot);
                }
                return;
            };
            comm.unexpected.push(frag);
            let depth = comm.unexpected.len();
            ep.metric(|m| {
                m.counters.unexpected_total += 1;
                m.counters.unexpected_depth(depth);
            });
        }
    }
}

/// A receive has matched a first fragment: copy any inline payload and run
/// the configured long-message scheme for the remainder.
fn matched(proc: &Proc, ep: &Arc<Endpoint>, rid: u64, frag: UnexpectedFrag) {
    let hdr = frag.hdr;
    let msg_len = hdr.msg_len as usize;
    let inline_len = hdr.payload_len as usize;
    // Reconstruct the sender's globally unique message id from the first
    // fragment: the sending process identity plus its request token. A
    // hardware-broadcast fragment carries send_req 0 and stays unattributed.
    let gid = if hdr.send_req != 0 {
        crate::hdr::msg_gid(frag.from.job.0, frag.from.rank as u32, hdr.send_req)
    } else {
        0
    };

    // Record the match and copy the inline bytes.
    let recv_posted_at = {
        let mut st = ep.state.lock();
        let Some(r) = st.recv_reqs.get_mut(&rid) else {
            // The receive was failed or reaped between match and delivery:
            // nothing to land into. Return any staging slot; the sender's
            // request is cleaned up by its own completion or failure path.
            if let Some(slot) = frag.stage {
                if !st.bounce_pool.release(slot) {
                    drop(st);
                    ep.free(slot);
                }
            }
            return;
        };
        assert!(
            msg_len <= r.conv.packed_len(),
            "message truncation: incoming {} bytes into a {}-byte receive",
            msg_len,
            r.conv.packed_len()
        );
        r.matched = Some(MatchInfo {
            gid,
            src_rank: hdr.src_rank,
            src: frag.from,
            tag: hdr.tag,
            msg_len,
            send_req: hdr.send_req,
            src_e4_va: hdr.e4_va,
            src_e4_vpid: hdr.e4_vpid,
        });
        r.posted_at
    };
    // Match latency covers both directions of waiting: a pre-posted receive
    // waits for the fragment, an unexpected fragment waits for the receive.
    ep.metric(|m| {
        m.counters.matches += 1;
        let since = recv_posted_at.max(frag.arrived_at);
        m.match_time.record(proc.now().saturating_sub(since));
    });
    ep.trace(
        proc.now(),
        crate::trace::TraceEvent::Matched {
            req: rid,
            gid,
            src: hdr.src_rank,
            tag: hdr.tag,
            len: msg_len,
        },
    );
    if inline_len > 0 {
        {
            let st = ep.state.lock();
            if let Some(r) = st.recv_reqs.get(&rid) {
                write_packed(ep, r, 0, &frag.payload);
            }
        }
        charge_unpack(proc, ep, inline_len);
        if let Some(r) = ep.state.lock().recv_reqs.get_mut(&rid) {
            r.bytes_received += inline_len;
        }
    }
    // Delivery: the payload now lives in the application buffer, so the
    // staging slot is reusable.
    if let Some(slot) = frag.stage {
        flow_bounce_free(ep, slot);
    }

    if hdr.kind == HdrType::Eager {
        // End-to-end crediting happens at *delivery*, not arrival: only a
        // matched-and-copied message has truly vacated its receiver-side
        // buffering. The credit rides the next control frame toward the
        // sender, or an explicit return once enough accumulate.
        if ep.tunables.flow_enable() && hdr.send_req != 0 && frag.from != ep.name {
            flow_note_delivered(ep, frag.from);
        }
        maybe_complete_recv(proc, ep, rid);
        return;
    }

    // --- rendezvous remainder ---
    // The sender may be from another job (dynamic spawn) and unknown to us
    // until now: resolve its addressing before replying.
    ensure_peer(proc, ep, frag.from);
    let peer = {
        let st = ep.state.lock();
        st.peers[&frag.from].clone()
    };
    proc.advance(ep.cfg.host.sched);
    let remainder = msg_len - inline_len;
    let Some((elan_share, tcp_share)) = plan_remainder(ep, &peer, remainder) else {
        // No transport can carry the remainder: the receive completes with
        // an error status and the sender is told (best effort) to give up
        // on its request too, instead of panicking either rank.
        send_nack(proc, ep, &peer, hdr.send_req, 0, MpiErrClass::NoTransport);
        fail_request(proc, ep, ReqKind::Recv, rid, MpiErrClass::NoTransport);
        return;
    };
    let pull_elan = ep.cfg.scheme == RdmaScheme::Read && elan_share > 0;
    // Pipelined pull: the local destination is registered chunk by chunk by
    // the chunk engine (overlapped with the pulls), so the full-region map
    // below is skipped. The sender's side stays one contiguous mapping —
    // the remote side of an RDMA must translate in a single mapping.
    let pipe_read = pull_elan && pipe_eligible(ep, elan_share);

    // Expose the destination region when RDMA will land data here. The
    // mapping charges time, so it happens *outside* the state lock: read
    // the region under the lock, register, then publish the result —
    // tolerating the request having been raced to a mapping or failed in
    // the meantime.
    let dst_e4 = if remainder > 0
        && ((pull_elan && !pipe_read) || (ep.cfg.scheme == RdmaScheme::Write && elan_share > 0))
    {
        let info = {
            let st = ep.state.lock();
            st.recv_reqs
                .get(&rid)
                .map(|r| (r.dst_e4, r.bounce.unwrap_or(r.buf), r.bounce.is_none()))
        };
        let Some((have, region, cacheable)) = info else {
            // Failed while the match was in flight.
            return;
        };
        let e4 = match have {
            Some(e4) => e4,
            None => {
                let t0 = proc.now();
                let fresh = if cacheable {
                    crate::regcache::acquire(proc, ep, &region)
                } else {
                    ep.ectx.map(proc, &region)
                };
                ep.trace(
                    proc.now(),
                    crate::trace::TraceEvent::Registered {
                        gid,
                        bytes: remainder,
                        cost_ns: proc.now().saturating_sub(t0).as_ns(),
                    },
                );
                enum Publish {
                    Stored,
                    Raced(E4Addr),
                    Gone,
                }
                let publish = {
                    let mut st = ep.state.lock();
                    match st.recv_reqs.get_mut(&rid) {
                        Some(r) if !r.done => match r.dst_e4 {
                            Some(other) => Publish::Raced(other),
                            None => {
                                r.dst_e4 = Some(fresh);
                                Publish::Stored
                            }
                        },
                        _ => Publish::Gone,
                    }
                };
                match publish {
                    Publish::Stored => fresh,
                    Publish::Raced(other) => {
                        crate::regcache::release(proc, ep, &region, fresh);
                        other
                    }
                    Publish::Gone => {
                        // Failed (or reaped) while we were mapping:
                        // nothing left to pull into.
                        crate::regcache::release(proc, ep, &region, fresh);
                        return;
                    }
                }
            }
        };
        proc.advance(ep.cfg.host.req_bookkeep);
        Some(e4)
    } else {
        None
    };

    match ep.cfg.scheme {
        RdmaScheme::Read => {
            if pull_elan {
                // Pull the Elan share straight out of the sender's exposed
                // region; FIN_ACK acknowledges rendezvous + inline + pulled
                // bytes in one control message (Fig. 4).
                let src_e4 = E4Addr::from_raw(Vpid(hdr.e4_vpid), hdr.e4_va);
                let credit = inline_len + elan_share;
                if pipe_read {
                    // Chunked pull: register the landing region piece by
                    // piece, overlapped with the in-flight pulls; the
                    // FIN_ACK rides the final chunk.
                    let dst = {
                        let st = ep.state.lock();
                        st.recv_reqs
                            .get(&rid)
                            .filter(|r| !r.done)
                            .map(|r| (r.bounce.unwrap_or(r.buf), r.bounce.is_none()))
                    };
                    if let Some((region, cacheable)) = dst {
                        ep.metric(|m| m.counters.rdma_read_batches += 1);
                        pipe_start(
                            proc,
                            ep,
                            true,
                            rid,
                            gid,
                            frag.from,
                            src_e4.offset(inline_len),
                            region,
                            inline_len,
                            elan_share,
                            cacheable,
                            fin_ack_with_credits(ep, frag.from, hdr.send_req, credit),
                        );
                    }
                } else {
                    if ep.tunables.pipeline_enable() {
                        ep.metric(|m| m.counters.pipe_fallback += 1);
                    }
                    issue_rdma(
                        proc,
                        ep,
                        &peer,
                        gid,
                        DmaKind::Read,
                        dst_e4.unwrap().offset(inline_len),
                        src_e4.offset(inline_len),
                        elan_share,
                        DmaRole::Read {
                            recv_req: rid,
                            bytes: elan_share,
                            fin_ack: None,
                        },
                        fin_ack_with_credits(ep, frag.from, hdr.send_req, credit),
                    );
                    ep.metric(|m| m.counters.rdma_read_batches += 1);
                }
            } else if let Some(route) = first_route(ep, &peer) {
                // Nothing to pull: acknowledge the rendezvous (and the
                // inline bytes) immediately. An unroutable peer just means
                // the FIN_ACK stays unsent; its side degrades on timeout.
                proc.advance(ep.cfg.host.hdr_build);
                send_frame(
                    proc,
                    ep,
                    &peer,
                    route,
                    fin_ack_with_credits(ep, frag.from, hdr.send_req, inline_len),
                    Vec::new(),
                );
                ep.trace(
                    proc.now(),
                    crate::trace::TraceEvent::ControlSent {
                        gid,
                        kind: "FinAck",
                    },
                );
            }
            if tcp_share > 0 {
                // Ask the sender to push the TCP share.
                let mut ack = Hdr::new(HdrType::Ack);
                ack.ctx = ctx_of(ep, rid);
                ack.send_req = hdr.send_req;
                ack.recv_req = rid;
                ack.offset = (inline_len + elan_share) as u64;
                ack.msg_len = tcp_share as u64;
                stamp_ack_credits(ep, frag.from, &mut ack);
                proc.advance(ep.cfg.host.hdr_build);
                send_frame(proc, ep, &peer, Route::Tcp, ack, Vec::new());
            }
        }
        RdmaScheme::Write => {
            // Expose the destination and let the sender drive everything
            // (Fig. 3). `seq` carries the inline credit.
            let mut ack = Hdr::new(HdrType::Ack);
            ack.ctx = ctx_of(ep, rid);
            ack.send_req = hdr.send_req;
            ack.recv_req = rid;
            ack.offset = inline_len as u64;
            ack.msg_len = remainder as u64;
            ack.seq = inline_len as u32;
            stamp_ack_credits(ep, frag.from, &mut ack);
            if let Some(e4) = dst_e4 {
                ack.e4_va = e4.value();
                ack.e4_vpid = e4.owner().raw();
            }
            if let Some(route) = first_route(ep, &peer) {
                proc.advance(ep.cfg.host.hdr_build);
                send_frame(proc, ep, &peer, route, ack, Vec::new());
                ep.trace(
                    proc.now(),
                    crate::trace::TraceEvent::ControlSent { gid, kind: "Ack" },
                );
            }
        }
    }
    maybe_complete_recv(proc, ep, rid);
}

fn ctx_of(ep: &Arc<Endpoint>, rid: u64) -> u32 {
    ep.state
        .lock()
        .recv_reqs
        .get(&rid)
        .map(|r| r.ctx)
        .unwrap_or(0)
}

/// Sender side: the receiver acknowledged a rendezvous (write scheme), or
/// asked for a TCP push of part of the message (read-scheme striping).
fn handle_ack(proc: &Proc, ep: &Arc<Endpoint>, hdr: Hdr) {
    let host = ep.cfg.host.clone();
    let sid = hdr.send_req;
    // `seq` packs the inline-byte credit in its low half and piggybacked
    // flow-control credits in its high half.
    let credit = crate::hdr::ack_inline_len(hdr.seq) as usize;
    let piggyback = crate::hdr::ack_credits(hdr.seq);
    let range_start = hdr.offset as usize;
    let range_len = hdr.msg_len as usize;

    let Some((peer, src_e4, src_region, cacheable, msg_len, gid)) = ({
        let mut st = ep.state.lock();
        match st.send_reqs.get_mut(&sid) {
            Some(r) => {
                r.bytes_confirmed += credit;
                let dst = r.dst;
                let src_e4 = r.src_e4;
                let region = r.src_region;
                let cacheable = r.bounce.is_none();
                let msg_len = r.msg_len;
                let gid = r.gid;
                let peer = st.peers[&dst].clone();
                Some((peer, src_e4, region, cacheable, msg_len, gid))
            }
            None => None,
        }
    }) else {
        return;
    };
    first_receiver_contact(proc, ep, sid);
    if piggyback > 0 {
        flow_credits_in(proc, ep, peer.name, piggyback as usize, true);
    }

    if range_start + range_len > msg_len {
        // A protocol invariant broke: the ACK describes a transfer range
        // outside the message. Abandon the request (and tell the receiver
        // to do the same) instead of panicking the rank.
        send_nack(proc, ep, &peer, 0, hdr.recv_req, MpiErrClass::Internal);
        fail_request(proc, ep, ReqKind::Send, sid, MpiErrClass::Internal);
        return;
    }

    if range_len > 0 {
        proc.advance(host.sched);
        let (elan_share, tcp_share) = match ep.cfg.scheme {
            // In the read scheme the receiver pulls the Elan share itself;
            // an ACK only ever covers the TCP share.
            RdmaScheme::Read => (0, range_len),
            RdmaScheme::Write => match plan_remainder(ep, &peer, range_len) {
                Some(split) => split,
                None => {
                    // No transport for the bulk bytes: degrade both sides
                    // instead of panicking.
                    send_nack(proc, ep, &peer, 0, hdr.recv_req, MpiErrClass::NoTransport);
                    fail_request(proc, ep, ReqKind::Send, sid, MpiErrClass::NoTransport);
                    return;
                }
            },
        };
        if elan_share > 0 {
            let dst_e4 = E4Addr::from_raw(Vpid(hdr.e4_vpid), hdr.e4_va);
            let mut fin = Hdr::new(HdrType::Fin);
            fin.recv_req = hdr.recv_req;
            fin.offset = elan_share as u64;
            if src_e4.is_none() && pipe_eligible(ep, elan_share) {
                // Chunked push: the source was left unregistered at post
                // time; register it piece by piece, overlapped with the
                // in-flight writes. The FIN rides the final chunk.
                ep.metric(|m| m.counters.rdma_write_batches += 1);
                pipe_start(
                    proc,
                    ep,
                    false,
                    sid,
                    gid,
                    peer.name,
                    dst_e4.offset(range_start),
                    src_region,
                    range_start,
                    elan_share,
                    cacheable,
                    fin,
                );
            } else {
                // Monolithic write: the whole source must be exposed. The
                // write scheme defers the post-time map, so acquire it
                // lazily here (also covering pipelining having been turned
                // off between post and ACK), tolerating the request having
                // been raced to a mapping or failed while registering.
                if ep.tunables.pipeline_enable() {
                    ep.metric(|m| m.counters.pipe_fallback += 1);
                }
                let src_e4 = match src_e4 {
                    Some(e4) => e4,
                    None => {
                        let t0 = proc.now();
                        proc.advance(host.req_bookkeep);
                        let fresh = if cacheable {
                            crate::regcache::acquire(proc, ep, &src_region)
                        } else {
                            ep.ectx.map(proc, &src_region)
                        };
                        ep.trace(
                            proc.now(),
                            crate::trace::TraceEvent::Registered {
                                gid,
                                bytes: elan_share,
                                cost_ns: proc.now().saturating_sub(t0).as_ns(),
                            },
                        );
                        let published = {
                            let mut st = ep.state.lock();
                            match st.send_reqs.get_mut(&sid) {
                                Some(r) if !r.done => match r.src_e4 {
                                    Some(other) => Some(other),
                                    None => {
                                        r.src_e4 = Some(fresh);
                                        Some(fresh)
                                    }
                                },
                                _ => None,
                            }
                        };
                        match published {
                            Some(e4) if e4 == fresh => e4,
                            Some(other) => {
                                crate::regcache::release(proc, ep, &src_region, fresh);
                                other
                            }
                            None => {
                                // Failed (or reaped) while we were mapping.
                                crate::regcache::release(proc, ep, &src_region, fresh);
                                return;
                            }
                        }
                    }
                };
                issue_rdma(
                    proc,
                    ep,
                    &peer,
                    gid,
                    DmaKind::Write,
                    src_e4.offset(range_start),
                    dst_e4.offset(range_start),
                    elan_share,
                    DmaRole::Write {
                        send_req: sid,
                        bytes: elan_share,
                        fin: None,
                    },
                    fin,
                );
                ep.metric(|m| m.counters.rdma_write_batches += 1);
            }
        }
        if tcp_share > 0 {
            // Push fragments over TCP, paced by the chunk engine's depth
            // knob: `handle_ack` no longer fragments the whole share in one
            // unbounded loop — the push is parked and drained a bounded
            // burst per progress pass (buffered semantics still credit each
            // fragment at issue).
            let start = range_start + elan_share;
            let mut fh = Hdr::new(HdrType::Frag);
            fh.recv_req = hdr.recv_req;
            ep.state.lock().tcp_pushes.push(TcpPush {
                send_req: sid,
                peer: peer.name,
                src_region,
                frag_hdr: fh,
                next_off: start,
                end: start + tcp_share,
            });
            tcp_push_pump(proc, ep);
        }
    }
    maybe_complete_send(proc, ep, sid);
}

/// A pushed fragment landed (TCP path).
fn handle_frag(proc: &Proc, ep: &Arc<Endpoint>, hdr: Hdr, payload: Vec<u8>) {
    {
        let st = ep.state.lock();
        let Some(r) = st.recv_reqs.get(&hdr.recv_req) else {
            return;
        };
        write_packed(ep, r, hdr.offset as usize, &payload);
    }
    proc.advance(ep.memcpy_cost(payload.len()));
    credit_recv(proc, ep, hdr.recv_req, payload.len());
}

/// A local DMA descriptor completed (observed via event poll or a
/// shared-completion-queue token). `token` identifies the burst so its
/// trace span can be closed.
fn dma_done(proc: &Proc, ep: &Arc<Endpoint>, token: u64, role: DmaRole) {
    let bytes = match &role {
        DmaRole::Read { bytes, .. }
        | DmaRole::Write { bytes, .. }
        | DmaRole::Chunk { bytes, .. } => *bytes,
    };
    // Attribute the completion to its message: the role names the owning
    // request, whose state carries the globally unique id.
    let gid = {
        let st = ep.state.lock();
        match &role {
            DmaRole::Read { recv_req, .. } => req_gid(&st, false, *recv_req),
            DmaRole::Write { send_req, .. } => req_gid(&st, true, *send_req),
            DmaRole::Chunk { req, is_read, .. } => st
                .pipelines
                .get(req)
                .map(|p| p.gid)
                .unwrap_or_else(|| req_gid(&st, !*is_read, *req)),
        }
    };
    ep.trace(proc.now(), crate::trace::TraceEvent::DmaDone { gid, bytes });
    ep.trace(
        proc.now(),
        crate::trace::TraceEvent::SpanEnd {
            id: token,
            cat: "rdma",
            name: "rdma_burst",
        },
    );
    match role {
        DmaRole::Read {
            recv_req,
            bytes,
            fin_ack,
        } => {
            if let Some((_ptl, to, hdr)) = fin_ack {
                let peer = {
                    let st = ep.state.lock();
                    st.peers[&to].clone()
                };
                if let Some(route) = first_route(ep, &peer) {
                    proc.advance(ep.cfg.host.hdr_build);
                    send_frame(proc, ep, &peer, route, hdr, Vec::new());
                }
            }
            credit_recv(proc, ep, recv_req, bytes);
        }
        DmaRole::Write {
            send_req,
            bytes,
            fin,
        } => {
            if let Some((_ptl, to, hdr)) = fin {
                let peer = {
                    let st = ep.state.lock();
                    st.peers[&to].clone()
                };
                if let Some(route) = first_route(ep, &peer) {
                    proc.advance(ep.cfg.host.hdr_build);
                    send_frame(proc, ep, &peer, route, hdr, Vec::new());
                }
            }
            credit_send(proc, ep, send_req, bytes);
        }
        DmaRole::Chunk {
            req,
            bytes,
            is_read,
        } => {
            pipe_chunk_landed(proc, ep, req, token, bytes, is_read);
        }
    }
}

// ---------------------------------------------------------------------------
// credits & completion
// ---------------------------------------------------------------------------

/// Resolve a live request's globally unique message id from local state:
/// a send carries it from post time; a receive learns it at match time.
/// 0 = unattributed (reaped request, or an unmatched receive).
fn req_gid(st: &EpState, send: bool, id: u64) -> u64 {
    if send {
        st.send_reqs.get(&id).map(|r| r.gid).unwrap_or(0)
    } else {
        st.recv_reqs
            .get(&id)
            .and_then(|r| r.matched.as_ref())
            .map(|m| m.gid)
            .unwrap_or(0)
    }
}

fn credit_recv(proc: &Proc, ep: &Arc<Endpoint>, rid: u64, bytes: usize) {
    {
        let mut st = ep.state.lock();
        if let Some(r) = st.recv_reqs.get_mut(&rid) {
            r.bytes_received += bytes;
        }
    }
    maybe_complete_recv(proc, ep, rid);
}

fn credit_send(proc: &Proc, ep: &Arc<Endpoint>, sid: u64, bytes: usize) {
    {
        let mut st = ep.state.lock();
        if let Some(r) = st.send_reqs.get_mut(&sid) {
            r.bytes_confirmed += bytes;
        }
    }
    first_receiver_contact(proc, ep, sid);
    maybe_complete_send(proc, ep, sid);
}

/// The first time a rendezvous sender hears back from the receiver (ACK in
/// the write scheme, FIN_ACK in the read scheme) closes the handshake: the
/// histogram sample and the `rndv` trace span both end here.
fn first_receiver_contact(proc: &Proc, ep: &Arc<Endpoint>, sid: u64) {
    let posted_at = {
        let mut st = ep.state.lock();
        match st.send_reqs.get_mut(&sid) {
            Some(r) if !r.rndv_acked => {
                r.rndv_acked = true;
                Some(r.posted_at)
            }
            _ => None,
        }
    };
    let Some(posted_at) = posted_at else { return };
    // The flag flip above is protocol state (the watchdog reads it to name
    // the stall phase); only the telemetry below is gated.
    if !ep.tunables.metrics() && !ep.tunables.trace() {
        return;
    }
    ep.metric(|m| {
        m.rndv_handshake
            .record(proc.now().saturating_sub(posted_at))
    });
    ep.trace(
        proc.now(),
        crate::trace::TraceEvent::SpanEnd {
            id: sid,
            cat: "rndv",
            name: "rndv_handshake",
        },
    );
}

fn maybe_complete_recv(proc: &Proc, ep: &Arc<Endpoint>, rid: u64) {
    let finish = {
        let st = ep.state.lock();
        match st.recv_reqs.get(&rid) {
            Some(r) => {
                !r.done
                    && r.matched
                        .as_ref()
                        .map(|m| r.bytes_received >= m.msg_len)
                        .unwrap_or(false)
            }
            None => false,
        }
    };
    if !finish {
        return;
    }
    // Unpack the bounce buffer for non-contiguous receives.
    let unpack = {
        let st = ep.state.lock();
        st.recv_reqs.get(&rid).and_then(|r| {
            r.bounce
                .map(|b| (b, r.matched.as_ref().map(|m| m.msg_len).unwrap_or(0)))
        })
    };
    if let Some((bounce, msg_len)) = unpack {
        let pieces = {
            let st = ep.state.lock();
            st.recv_reqs
                .get(&rid)
                .map(|r| (ep.read_buf(&bounce, 0, msg_len), r.conv.clone(), r.buf))
        };
        if let Some((packed, conv, buf)) = pieces {
            let mut span = ep.read_buf(&buf, 0, conv.span());
            conv.unpack_range(&packed, 0, &mut span);
            ep.write_buf(&buf, 0, &span);
            proc.advance(ep.cfg.copy.convertor(&conv, msg_len));
        }
    }
    let finished = {
        let mut st = ep.state.lock();
        st.recv_reqs.get_mut(&rid).map(|r| {
            r.done = true;
            let gid = r.matched.as_ref().map(|m| m.gid).unwrap_or(0);
            (r.dst_e4.take(), r.bounce.take(), r.buf, r.posted_at, gid)
        })
    };
    let Some((e4, bounce, buf, posted_at, gid)) = finished else {
        // Reaped concurrently (e.g. raced with a failure path).
        return;
    };
    if let Some(e4) = e4 {
        crate::regcache::release(proc, ep, &bounce.unwrap_or(buf), e4);
    }
    if let Some(b) = bounce {
        flow_bounce_free(ep, b);
    }
    proc.advance(ep.cfg.host.req_bookkeep);
    ep.metric(|m| {
        m.completion_time
            .record(proc.now().saturating_sub(posted_at))
    });
    ep.trace(
        proc.now(),
        crate::trace::TraceEvent::Completed {
            req: rid,
            gid,
            send: false,
        },
    );
    notify_waiters(proc, ep);
}

fn maybe_complete_send(proc: &Proc, ep: &Arc<Endpoint>, sid: u64) {
    let finish = {
        let st = ep.state.lock();
        match st.send_reqs.get(&sid) {
            Some(r) => !r.done && r.bytes_confirmed >= r.msg_len,
            None => false,
        }
    };
    if !finish {
        return;
    }
    let finished = {
        let mut st = ep.state.lock();
        st.send_reqs.get_mut(&sid).map(|r| {
            r.done = true;
            (
                r.src_e4.take(),
                r.src_region,
                r.bounce.take(),
                r.posted_at,
                r.gid,
            )
        })
    };
    let Some((e4, region, bounce, posted_at, gid)) = finished else {
        // Reaped concurrently (e.g. raced with a failure path).
        return;
    };
    if let Some(e4) = e4 {
        crate::regcache::release(proc, ep, &region, e4);
    }
    if let Some(b) = bounce {
        flow_bounce_free(ep, b);
    }
    proc.advance(ep.cfg.host.req_bookkeep);
    ep.metric(|m| {
        m.completion_time
            .record(proc.now().saturating_sub(posted_at))
    });
    ep.trace(
        proc.now(),
        crate::trace::TraceEvent::Completed {
            req: sid,
            gid,
            send: true,
        },
    );
    notify_waiters(proc, ep);
}

fn notify_waiters(proc: &Proc, ep: &Arc<Endpoint>) {
    let waiters = std::mem::take(&mut ep.state.lock().waiters);
    let sim = proc.sim();
    for w in waiters {
        w.notify(&sim);
    }
}

// ---------------------------------------------------------------------------
// transport primitives
// ---------------------------------------------------------------------------

/// Pick the first-fragment transport: the lowest-latency *active*
/// component that can reach the peer (paper §2.1's first heuristic).
/// `None` when no common transport exists — the caller degrades the
/// request to an error completion instead of panicking the rank.
fn first_route(ep: &Arc<Endpoint>, peer: &crate::peer::PeerInfo) -> Option<Route> {
    let reg = ep.ptls.lock();
    let mut candidates: Vec<&crate::ptl::PtlInfo> = reg.active().collect();
    candidates.sort_by_key(|i| i.latency_rank);
    for info in candidates {
        match info.kind {
            crate::ptl::PtlKind::Elan4 { rail } if peer.elan.is_some() => {
                return Some(Route::Elan { rail });
            }
            crate::ptl::PtlKind::Tcp if peer.tcp.is_some() => return Some(Route::Tcp),
            _ => {}
        }
    }
    None
}

fn send_frame(
    proc: &Proc,
    ep: &Arc<Endpoint>,
    peer: &crate::peer::PeerInfo,
    route: Route,
    mut hdr: Hdr,
    payload: Vec<u8>,
) {
    hdr.payload_len = payload.len() as u32;
    if ep.cfg.integrity_check && !payload.is_empty() {
        hdr.checksum = crate::hdr::fletcher16(&payload);
        proc.advance(checksum_cost(payload.len()));
    }
    // Sequence-stamp TCP-routed control frames (the reliability layer):
    // the per-peer rel_seq rides the tag bytes — unused by every control
    // handler — and the origin identity rides ctx/src_rank so the receiver
    // can receipt and deduplicate. Elan-routed control frames ride reliable
    // hardware and stay unstamped (tag 0).
    let reliable =
        matches!(route, Route::Tcp) && ep.cfg.tcp_reliability && control_idx(hdr.kind).is_some();
    if reliable {
        let rel_seq = {
            let mut st = ep.state.lock();
            let e = st.ctl_next_seq.entry(peer.name).or_insert(0);
            *e += 1;
            *e
        };
        hdr.tag = rel_seq as i32;
        hdr.ctx = ep.name.job.0;
        hdr.src_rank = ep.name.rank as u32;
    }
    let frame = hdr.frame(&payload);
    if ep.tunables.metrics() {
        ep.metric(|m| {
            if let Some(i) = control_idx(hdr.kind) {
                m.counters.control(i);
            }
        });
        let kind = match route {
            Route::Elan { rail } => crate::ptl::PtlKind::Elan4 { rail },
            Route::Tcp => crate::ptl::PtlKind::Tcp,
        };
        ep.ptls.lock().charge(kind, frame.len());
    }
    match route {
        Route::Elan { rail } => {
            let e = peer.elan.as_ref().expect("peer has no elan address");
            ep.ectx.qdma(proc, rail, e.vpid, e.main_q, frame, None);
        }
        Route::Tcp => {
            if reliable {
                let rel_seq = hdr.tag as u32;
                let timeout = ep.tunables.retransmit_timeout();
                let deadline = proc.now() + timeout;
                ep.state.lock().ctl_inflight.push(InflightCtl {
                    peer: peer.name,
                    rel_seq,
                    kind: hdr.kind,
                    frame: frame.clone(),
                    attempts: 0,
                    timeout,
                    deadline,
                });
                ep.trace(
                    proc.now(),
                    crate::trace::TraceEvent::SpanBegin {
                        id: rel_span_id(peer.name, rel_seq),
                        cat: "rel",
                        name: "ctl_inflight",
                    },
                );
            }
            let net = ep.tcp_net.as_ref().expect("tcp not enabled");
            net.send(proc, ep.cluster.cfg(), ep.node, peer.name, frame);
        }
    }
}

/// Split `len` bulk bytes between the RDMA-capable components (Elan rails)
/// and the push components (TCP) by their registered bandwidth weights
/// (paper §2.1's second heuristic). `None` when no transport can carry the
/// bulk bytes — the caller degrades the request instead of panicking.
fn plan_remainder(
    ep: &Arc<Endpoint>,
    peer: &crate::peer::PeerInfo,
    len: usize,
) -> Option<(usize, usize)> {
    if len == 0 {
        return Some((0, 0));
    }
    let reg = ep.ptls.lock();
    let ew = if peer.elan.is_some() {
        reg.rdma_weight()
    } else {
        0
    };
    let tw = if peer.tcp.is_some() {
        reg.total_weight() - reg.rdma_weight()
    } else {
        0
    };
    match (ew > 0, tw > 0) {
        (true, false) => Some((len, 0)),
        (false, true) => Some((0, len)),
        (true, true) => {
            let elan = (len as u64 * ew / (ew + tw)) as usize;
            Some((elan, len - elan))
        }
        (false, false) => None,
    }
}

/// Issue RDMA chunks for one share, set up completion notification per the
/// configured mode, and attach chained control messages.
#[allow(clippy::too_many_arguments)]
fn issue_rdma(
    proc: &Proc,
    ep: &Arc<Endpoint>,
    peer: &crate::peer::PeerInfo,
    gid: u64,
    kind: DmaKind,
    local: E4Addr,
    remote: E4Addr,
    len: usize,
    mut role: DmaRole,
    control: Hdr,
) {
    let rails = ep.transports.elan_rails;
    let chunks = rail_chunks(len, rails);
    let nchunks = chunks.len().max(1) as u32;

    let event = Arc::new(ep.ectx.event_create(nchunks));
    let e_peer = peer.elan.as_ref().expect("rdma to a peer without elan");

    // Chained control message (FIN / FIN_ACK) — the paper's optimization:
    // the NIC fires it off the final RDMA without host involvement. It
    // bypasses `send_frame`, so the control counter is bumped here.
    if ep.cfg.chained_fin {
        ep.metric(|m| {
            if let Some(i) = control_idx(control.kind) {
                m.counters.control(i);
            }
        });
        event.chain_qdma(QdmaSpec::to_queue(
            e_peer.vpid,
            e_peer.main_q,
            control.frame(&[]),
            0,
        ));
    } else {
        // The host sends the control message after observing completion.
        role = match role {
            DmaRole::Read {
                recv_req, bytes, ..
            } => DmaRole::Read {
                recv_req,
                bytes,
                fin_ack: Some((0, peer.name, control)),
            },
            DmaRole::Write {
                send_req, bytes, ..
            } => DmaRole::Write {
                send_req,
                bytes,
                fin: Some((0, peer.name, control)),
            },
            DmaRole::Chunk { .. } => unreachable!("pipelined chunks use pipe_issue_chunk"),
        };
    }

    // Local completion notification.
    let token = ep.state.lock().alloc_dma_token();
    match ep.cfg.completion {
        CompletionMode::PollEvent => {
            if let Some(bell) = ep.doorbell() {
                event.set_signal(bell);
            }
            if ep.cfg.progress == ProgressMode::Interrupt {
                event.arm_irq(true);
            }
        }
        CompletionMode::SharedQueueCombined | CompletionMode::SharedQueueSeparate => {
            // Chain a small QDMA into the shared completion queue (Fig. 6):
            // many outstanding RDMAs funnel into one host-waitable queue.
            let my_elan = ep.my_info.elan.as_ref().unwrap();
            let q = if ep.cfg.completion == CompletionMode::SharedQueueSeparate {
                my_elan.comp_q.expect("two-queue mode without a comp queue")
            } else {
                my_elan.main_q
            };
            let mut tok_hdr = Hdr::new(HdrType::Completion);
            tok_hdr.e4_va = token;
            ep.metric(|m| m.counters.control(3));
            event.chain_qdma(QdmaSpec::to_queue(my_elan.vpid, q, tok_hdr.frame(&[]), 0));
        }
    }

    ep.state.lock().pending_dmas.push(PendingDma {
        token,
        event: event.clone(),
        role,
    });

    ep.metric(|m| {
        m.counters.rdma_descriptors += nchunks as u64;
        m.counters.rdma_bytes += len as u64;
    });
    ep.trace(
        proc.now(),
        crate::trace::TraceEvent::RdmaIssued {
            gid,
            read: kind == DmaKind::Read,
            bytes: len,
        },
    );
    ep.trace(
        proc.now(),
        crate::trace::TraceEvent::SpanBegin {
            id: token,
            cat: "rdma",
            name: "rdma_burst",
        },
    );
    // Fire the descriptors, striped across rails (rail_chunks never emits
    // zero-length chunks).
    for (rail, (off, chunk_len)) in chunks.into_iter().enumerate() {
        ep.ectx.rdma(
            proc,
            rail,
            kind,
            local.offset(off),
            remote.offset(off),
            chunk_len,
            Some(event.id()),
        );
    }
}

// ---------------------------------------------------------------------------
// pipelined rendezvous: chunked RDMA with registration/transfer overlap
// ---------------------------------------------------------------------------

/// Is an Elan bulk share worth pipelining? Gated on the runtime tunables:
/// pipelining enabled, share at least `pipe.min_len`, and spanning more
/// than one chunk (a single chunk is the monolithic path with extra
/// bookkeeping).
fn pipe_eligible(ep: &Arc<Endpoint>, elan_share: usize) -> bool {
    ep.tunables.pipeline_enable()
        && elan_share >= ep.tunables.pipeline_min_len()
        && elan_share > ep.tunables.pipeline_chunk()
}

/// Begin a pipelined bulk transfer and issue its first window of chunks.
/// `remote` addresses the first bulk byte on the peer — one contiguous peer
/// mapping, because the remote side of an RDMA must translate within a
/// single mapping; only the local, DMA-issuing side is chunked. `base_off`
/// locates that byte in the local `region`.
#[allow(clippy::too_many_arguments)]
fn pipe_start(
    proc: &Proc,
    ep: &Arc<Endpoint>,
    is_read: bool,
    req: u64,
    gid: u64,
    peer: ProcName,
    remote: E4Addr,
    region: HostBuf,
    base_off: usize,
    total: usize,
    cacheable: bool,
    fin: Hdr,
) {
    let rails = ep.transports.elan_rails.max(1);
    let ps = PipeState {
        is_read,
        req,
        gid,
        peer,
        remote,
        region,
        base_off,
        total,
        chunk: ep.tunables.pipeline_chunk(),
        depth: ep.tunables.pipeline_depth(),
        rails,
        cacheable,
        next_off: 0,
        landed: 0,
        inflight: Vec::new(),
        per_rail: vec![0; rails],
        staged_final: None,
        fin,
        next_rail: 0,
    };
    ep.state.lock().pipelines.insert(req, ps);
    ep.metric(|m| m.counters.pipe_started += 1);
    ep.trace(
        proc.now(),
        crate::trace::TraceEvent::SpanBegin {
            id: req,
            cat: "pipe",
            name: "pipe_transfer",
        },
    );
    pipe_pump(proc, ep, req);
}

/// One scheduling step the pump decided on (computed under the state lock,
/// executed outside it — registration and descriptor issue both consume
/// virtual time).
enum PipeStep {
    /// Register and issue the chunk at `off`.
    Mid {
        off: usize,
        len: usize,
        rail: usize,
        overlap: bool,
    },
    /// Register the final chunk's mapping ahead of time (no descriptor).
    Stage {
        off: usize,
        len: usize,
        overlap: bool,
    },
    /// Issue the final chunk from its staged mapping, with the control.
    Last {
        off: usize,
        len: usize,
        rail: usize,
        sub: HostBuf,
        e4: E4Addr,
    },
    /// Window full (or waiting out the hold-back) — nothing to do.
    Idle,
}

/// Round-robin rail choice honoring the per-rail in-flight cap.
fn pipe_pick_rail(ps: &mut PipeState) -> Option<usize> {
    for i in 0..ps.rails {
        let r = (ps.next_rail + i) % ps.rails;
        if ps.per_rail[r] < ps.depth {
            ps.next_rail = (r + 1) % ps.rails;
            return Some(r);
        }
    }
    None
}

/// Keep one pipeline's window full: issue chunk descriptors while the
/// per-rail in-flight window has room, registering each next chunk while
/// earlier ones are on the wire — the overlap this engine exists for.
///
/// The final chunk carries the chained FIN/FIN_ACK, and chunks complete out
/// of order across rails, so it is *held back* until every other chunk has
/// landed (the peer must not see the control — and release its mapping —
/// while data is still in flight). Its registration is staged ahead of
/// time, so the hold-back tail costs one descriptor issue, not a map.
/// Depth 1 on one rail degenerates to strictly sequential chunks with the
/// same message semantics as the monolithic path.
fn pipe_pump(proc: &Proc, ep: &Arc<Endpoint>, req: u64) -> bool {
    let mut worked = false;
    loop {
        let dma_cap = ep.tunables.flow_dma_cap();
        let (step, peer, info) = {
            let mut st = ep.state.lock();
            // Endpoint-wide outstanding-DMA cap: when flow control is on,
            // a full descriptor window idles the pump (non-blocking — the
            // next completion or progress pass refills it).
            let throttled =
                ep.tunables.flow_enable() && dma_cap > 0 && st.pending_dmas.len() >= dma_cap;
            let Some(ps) = st.pipelines.get_mut(&req) else {
                return worked;
            };
            let final_off = ps.final_off();
            let step = if throttled {
                PipeStep::Idle
            } else if ps.next_off < final_off {
                match pipe_pick_rail(ps) {
                    Some(rail) => {
                        let off = ps.next_off;
                        let len = ps.chunk.min(final_off - off);
                        ps.next_off += len;
                        ps.per_rail[rail] += 1;
                        PipeStep::Mid {
                            off,
                            len,
                            rail,
                            overlap: !ps.inflight.is_empty(),
                        }
                    }
                    None => PipeStep::Idle,
                }
            } else if ps.next_off == final_off && ps.staged_final.is_none() {
                PipeStep::Stage {
                    off: final_off,
                    len: ps.total - final_off,
                    overlap: !ps.inflight.is_empty(),
                }
            } else if ps.next_off == final_off {
                // The final chunk may launch once the chained control can
                // no longer overtake data: either the window is empty, or
                // everything still in flight rides ONE rail and the final
                // chunk queues behind it (per-rail bus ordering makes its
                // completion — and thus the chained FIN/FIN_ACK — strictly
                // later).
                let rail = match ps.inflight.as_slice() {
                    [] => pipe_pick_rail(ps),
                    [first, rest @ ..] if rest.iter().all(|c| c.rail == first.rail) => {
                        (ps.per_rail[first.rail] < ps.depth).then_some(first.rail)
                    }
                    _ => None,
                };
                match rail {
                    Some(rail) => {
                        let (sub, e4) = ps.staged_final.take().unwrap();
                        ps.next_off = ps.total;
                        ps.per_rail[rail] += 1;
                        PipeStep::Last {
                            off: final_off,
                            len: ps.total - final_off,
                            rail,
                            sub,
                            e4,
                        }
                    }
                    None => PipeStep::Idle,
                }
            } else {
                PipeStep::Idle
            };
            let peer_name = ps.peer;
            let info = (
                ps.region,
                ps.base_off,
                ps.cacheable,
                ps.remote,
                ps.is_read,
                ps.fin.clone(),
                ps.gid,
            );
            (step, st.peers.get(&peer_name).cloned(), info)
        };
        let Some(peer) = peer else { return worked };
        let (region, base_off, cacheable, remote, is_read, fin, gid) = info;
        match step {
            PipeStep::Idle => return worked,
            PipeStep::Stage { off, len, overlap } => {
                let sub = region.slice(base_off + off, len);
                let e4 = pipe_register(proc, ep, gid, &sub, cacheable, overlap);
                let parked = {
                    let mut st = ep.state.lock();
                    match st.pipelines.get_mut(&req) {
                        Some(ps) => {
                            ps.staged_final = Some((sub, e4));
                            true
                        }
                        None => false,
                    }
                };
                if !parked {
                    // Torn down while registering: nothing references the
                    // staged mapping any more.
                    crate::regcache::release(proc, ep, &sub, e4);
                    return worked;
                }
                worked = true;
            }
            PipeStep::Mid {
                off,
                len,
                rail,
                overlap,
            } => {
                let sub = region.slice(base_off + off, len);
                let e4 = pipe_register(proc, ep, gid, &sub, cacheable, overlap);
                pipe_issue_chunk(
                    proc, ep, &peer, req, is_read, rail, sub, e4, remote, off, len, None,
                );
                worked = true;
            }
            PipeStep::Last {
                off,
                len,
                rail,
                sub,
                e4,
            } => {
                pipe_issue_chunk(
                    proc,
                    ep,
                    &peer,
                    req,
                    is_read,
                    rail,
                    sub,
                    e4,
                    remote,
                    off,
                    len,
                    Some(fin),
                );
                worked = true;
            }
        }
    }
}

/// Register one chunk's sub-buffer, charging the same request-bookkeeping
/// cost the monolithic path pays per mapping. Registration time spent while
/// other chunks are on the wire is the overlap the engine exists to win —
/// count it.
fn pipe_register(
    proc: &Proc,
    ep: &Arc<Endpoint>,
    gid: u64,
    sub: &HostBuf,
    cacheable: bool,
    overlap: bool,
) -> E4Addr {
    let t0 = proc.now();
    proc.advance(ep.cfg.host.req_bookkeep);
    let e4 = if cacheable {
        crate::regcache::acquire(proc, ep, sub)
    } else {
        ep.ectx.map(proc, sub)
    };
    if overlap {
        let dt = proc.now().saturating_sub(t0);
        ep.metric(|m| m.counters.pipe_reg_overlap_ns += dt.as_ns());
    }
    ep.trace(
        proc.now(),
        crate::trace::TraceEvent::Registered {
            gid,
            bytes: sub.len,
            cost_ns: proc.now().saturating_sub(t0).as_ns(),
        },
    );
    e4
}

/// Create the completion event, attach the chained control on the final
/// chunk, publish the in-flight record, and fire one chunk descriptor.
#[allow(clippy::too_many_arguments)]
fn pipe_issue_chunk(
    proc: &Proc,
    ep: &Arc<Endpoint>,
    peer: &crate::peer::PeerInfo,
    req: u64,
    is_read: bool,
    rail: usize,
    sub: HostBuf,
    e4: E4Addr,
    remote: E4Addr,
    off: usize,
    len: usize,
    fin: Option<Hdr>,
) {
    let event = Arc::new(ep.ectx.event_create(1));
    let e_peer = peer.elan.as_ref().expect("rdma to a peer without elan");
    let last = fin.is_some();
    if let Some(ctl) = fin {
        if ep.cfg.chained_fin {
            // The NIC fires the FIN/FIN_ACK off the final chunk without
            // host involvement. It bypasses `send_frame`, so the control
            // counter is bumped here.
            ep.metric(|m| {
                if let Some(i) = control_idx(ctl.kind) {
                    m.counters.control(i);
                }
            });
            event.chain_qdma(QdmaSpec::to_queue(
                e_peer.vpid,
                e_peer.main_q,
                ctl.frame(&[]),
                0,
            ));
        }
        // Not chained: `pipe_chunk_landed` sends the control from the host
        // when the final chunk lands (the header lives in the pipe state).
    }
    let token = ep.state.lock().alloc_dma_token();
    match ep.cfg.completion {
        CompletionMode::PollEvent => {
            if let Some(bell) = ep.doorbell() {
                event.set_signal(bell);
            }
            if ep.cfg.progress == ProgressMode::Interrupt {
                event.arm_irq(true);
            }
        }
        CompletionMode::SharedQueueCombined | CompletionMode::SharedQueueSeparate => {
            // Chain a small QDMA into the shared completion queue (Fig. 6).
            let my_elan = ep.my_info.elan.as_ref().unwrap();
            let q = if ep.cfg.completion == CompletionMode::SharedQueueSeparate {
                my_elan.comp_q.expect("two-queue mode without a comp queue")
            } else {
                my_elan.main_q
            };
            let mut tok_hdr = Hdr::new(HdrType::Completion);
            tok_hdr.e4_va = token;
            ep.metric(|m| m.counters.control(3));
            event.chain_qdma(QdmaSpec::to_queue(my_elan.vpid, q, tok_hdr.frame(&[]), 0));
        }
    }
    // Publish the chunk, tolerating the pipeline having been torn down
    // while its mapping was acquired.
    let depth_now = {
        let mut st = ep.state.lock();
        match st.pipelines.get_mut(&req) {
            Some(ps) => {
                ps.inflight.push(PipeChunk {
                    token,
                    sub,
                    e4,
                    rail,
                });
                Some((ps.inflight.len(), ps.gid))
            }
            None => None,
        }
    };
    let Some((depth_now, gid)) = depth_now else {
        crate::regcache::release(proc, ep, &sub, e4);
        event.free();
        return;
    };
    ep.state.lock().pending_dmas.push(PendingDma {
        token,
        event: event.clone(),
        role: DmaRole::Chunk {
            req,
            bytes: len,
            is_read,
        },
    });
    ep.metric(|m| {
        m.counters.rdma_descriptors += 1;
        m.counters.rdma_bytes += len as u64;
        m.counters.pipe_chunks_issued += 1;
        m.counters.pipe_depth(depth_now);
    });
    ep.trace(
        proc.now(),
        crate::trace::TraceEvent::PipeChunk {
            req,
            gid,
            off,
            len,
            last,
        },
    );
    ep.trace(
        proc.now(),
        crate::trace::TraceEvent::SpanBegin {
            id: token,
            cat: "rdma",
            name: "rdma_burst",
        },
    );
    let kind = if is_read {
        DmaKind::Read
    } else {
        DmaKind::Write
    };
    ep.ectx.rdma(
        proc,
        rail,
        kind,
        e4,
        remote.offset(off),
        len,
        Some(event.id()),
    );
}

/// A pipelined chunk's completion fired: release its mapping, credit the
/// owning request, forward the control message when the transfer finished
/// un-chained, and refill the window. The pipeline record dies with its
/// final chunk.
fn pipe_chunk_landed(
    proc: &Proc,
    ep: &Arc<Endpoint>,
    req: u64,
    token: u64,
    bytes: usize,
    is_read: bool,
) {
    let (chunk, fin) = {
        let mut st = ep.state.lock();
        let Some(ps) = st.pipelines.get_mut(&req) else {
            // Torn down by a failure path, which released the mappings.
            return;
        };
        let chunk = ps
            .inflight
            .iter()
            .position(|c| c.token == token)
            .map(|i| ps.inflight.remove(i));
        if let Some(c) = &chunk {
            ps.per_rail[c.rail] -= 1;
        }
        ps.landed += bytes;
        let finished = ps.landed >= ps.total && ps.inflight.is_empty();
        let fin = if finished {
            st.pipelines.remove(&req).map(|ps| (ps.peer, ps.fin))
        } else {
            None
        };
        (chunk, fin)
    };
    if let Some(c) = chunk {
        // Cached chunk mappings go back to the pin-down cache; direct
        // (bounce-buffer) mappings fall through to a charged unmap. Either
        // way the mapping is gone before the credit below can complete the
        // request and free the region.
        crate::regcache::release(proc, ep, &c.sub, c.e4);
    }
    ep.metric(|m| m.counters.pipe_chunks_landed += 1);
    let finished = fin.is_some();
    if let Some((to, ctl)) = fin {
        ep.trace(
            proc.now(),
            crate::trace::TraceEvent::SpanEnd {
                id: req,
                cat: "pipe",
                name: "pipe_transfer",
            },
        );
        if !ep.cfg.chained_fin {
            // The control did not ride the final chunk: the host sends it,
            // like the monolithic un-chained path.
            let peer = {
                let st = ep.state.lock();
                st.peers.get(&to).cloned()
            };
            if let Some(peer) = peer {
                if let Some(route) = first_route(ep, &peer) {
                    proc.advance(ep.cfg.host.hdr_build);
                    send_frame(proc, ep, &peer, route, ctl, Vec::new());
                }
            }
        }
    }
    if is_read {
        credit_recv(proc, ep, req, bytes);
    } else {
        credit_send(proc, ep, req, bytes);
    }
    if !finished {
        pipe_pump(proc, ep, req);
    }
}

/// Pump every live pipeline. A safety net for the thread-progress modes —
/// chunk completions normally refill their own windows.
pub(crate) fn pipe_pump_all(proc: &Proc, ep: &Arc<Endpoint>) -> bool {
    let ids: Vec<u64> = ep.state.lock().pipelines.keys().copied().collect();
    let mut any = false;
    for id in ids {
        if pipe_pump(proc, ep, id) {
            any = true;
        }
    }
    any
}

/// Drain the parked TCP bulk pushes, at most `pipe.depth` fragments per
/// push per call: the pacing that replaced `handle_ack`'s unbounded
/// fragment loop. Returns true when fragments went out, so the polling
/// wait loop keeps cycling until the pushes drain instead of blocking.
pub(crate) fn tcp_push_pump(proc: &Proc, ep: &Arc<Endpoint>) -> bool {
    let host = ep.cfg.host.clone();
    let burst_frags = ep.tunables.pipeline_depth();
    let bursts: Vec<(u64, crate::peer::PeerInfo, Hdr, HostBuf, usize, usize)> = {
        let mut st = ep.state.lock();
        if st.tcp_pushes.is_empty() {
            return false;
        }
        let mut out = Vec::new();
        for i in 0..st.tcp_pushes.len() {
            let (sid, peer_name, fh, region, start, end) = {
                let p = &st.tcp_pushes[i];
                (
                    p.send_req,
                    p.peer,
                    p.frag_hdr.clone(),
                    p.src_region,
                    p.next_off,
                    p.end,
                )
            };
            let burst_end = end.min(start + burst_frags * TCP_FRAG_PAYLOAD);
            if burst_end <= start {
                continue;
            }
            let Some(peer) = st.peers.get(&peer_name).cloned() else {
                continue;
            };
            st.tcp_pushes[i].next_off = burst_end;
            out.push((sid, peer, fh, region, start, burst_end));
        }
        st.tcp_pushes.retain(|p| p.next_off < p.end);
        out
    };
    if bursts.is_empty() {
        return false;
    }
    for (sid, peer, fh_template, region, start, end) in bursts {
        let mut off = start;
        while off < end {
            let take = (end - off).min(TCP_FRAG_PAYLOAD);
            let bytes = ep.read_buf(&region, off, take);
            let mut fh = fh_template.clone();
            fh.offset = off as u64;
            proc.advance(host.hdr_build);
            send_frame(proc, ep, &peer, Route::Tcp, fh, bytes);
            ep.metric(|m| m.counters.frags_sent += 1);
            off += take;
        }
        {
            let mut st = ep.state.lock();
            if let Some(r) = st.send_reqs.get_mut(&sid) {
                r.bytes_confirmed += end - start;
            }
        }
        maybe_complete_send(proc, ep, sid);
    }
    true
}

/// Split `len` into per-rail `(offset, len)` chunks. Zero-length chunks are
/// omitted (no zero-byte RDMA descriptors when `len < rails`), and
/// `rails == 0` is treated as a single rail rather than dividing by zero.
fn rail_chunks(len: usize, rails: usize) -> Vec<(usize, usize)> {
    let rails = rails.max(1);
    let base = len / rails;
    let extra = len % rails;
    let mut out = Vec::with_capacity(rails);
    let mut off = 0;
    for r in 0..rails {
        let l = base + usize::from(r < extra);
        if l == 0 {
            continue;
        }
        out.push((off, l));
        off += l;
    }
    out
}

/// Index of a control-message kind in [`crate::metrics::CONTROL_KINDS`].
fn control_idx(kind: HdrType) -> Option<usize> {
    match kind {
        HdrType::Ack => Some(0),
        HdrType::Fin => Some(1),
        HdrType::FinAck => Some(2),
        HdrType::Completion => Some(3),
        // Losing a credit return would wedge the sender's window shut, so
        // explicit returns ride the retransmit buffer like the rest of the
        // control plane.
        HdrType::CreditReturn => Some(4),
        _ => None,
    }
}

fn make_fin_ack(send_req: u64, credit: usize) -> Hdr {
    let mut h = Hdr::new(HdrType::FinAck);
    h.send_req = send_req;
    h.offset = credit as u64;
    h
}

// ---------------------------------------------------------------------------
// end-to-end flow control: per-peer send credits + bounce-buffer pool
// ---------------------------------------------------------------------------
//
// Eager traffic has no end-to-end limit in the base protocol: every sender
// fires QDMAs as fast as the host can post them, and an incast receiver
// drowns — its NIC queue overflows and every unexpected message costs a
// fresh per-message bounce allocation. The scheme here is the classic
// receiver-granted credit window (cf. MVAPICH on InfiniBand and the GASNet
// elan conduit's NETWORKDEPTH throttle): each peer may have at most
// `flow.credits` undelivered eager messages in flight; a credit returns
// when the *receiver has matched and copied out* the message, piggybacked
// on whatever control frame next travels back (ACK / FIN_ACK) or — when
// the reverse direction is silent — in an explicit CREDIT_RETURN frame
// once half the window has accumulated. Senders without credits park the
// built frame locally (`FlowPeer::queued`) and the request stays
// incomplete, which is the backpressure.

/// Acquire a bounce region: a preallocated pool slot when one fits (the
/// cheap, steady-state case), else a per-message allocation. Callers on
/// the unexpected-message path charge `host.bounce_alloc` for fallbacks;
/// posted-receive/send staging passes `charge_fallback = false` because
/// the base protocol already allocated per message there.
fn flow_bounce_alloc(
    proc: &Proc,
    ep: &Arc<Endpoint>,
    len: usize,
    charge_fallback: bool,
) -> HostBuf {
    let slot = ep.state.lock().bounce_pool.acquire(len);
    match slot {
        Some(b) => {
            ep.metric(|m| m.counters.flow_pool_hits += 1);
            b
        }
        None => {
            ep.metric(|m| m.counters.flow_pool_fallbacks += 1);
            if charge_fallback {
                proc.advance(ep.cfg.host.bounce_alloc);
            }
            ep.alloc(len)
        }
    }
}

/// Return a bounce region to wherever it came from: the pool when it is a
/// pool slot, the allocator otherwise.
fn flow_bounce_free(ep: &Arc<Endpoint>, buf: HostBuf) {
    let pooled = ep.state.lock().bounce_pool.release(buf);
    if !pooled {
        ep.free(buf);
    }
}

/// Receiver side: an eager message was delivered (matched + copied out),
/// so one unit of receiver-side buffering is free again. The credit is
/// *noted*, not sent — it rides the next control frame toward that peer,
/// or an explicit return once enough accumulate (see `flow_pump`).
fn flow_note_delivered(ep: &Arc<Endpoint>, peer: ProcName) {
    let init = ep.tunables.flow_credits();
    let mut st = ep.state.lock();
    let fp = st.flow_entry(peer, init);
    fp.pending_return += 1;
    fp.delivered += 1;
}

/// Take every credit currently owed to `peer`, for piggybacking on an
/// outgoing control frame (capped at what a u16 carries; the remainder
/// stays pending). Zero when flow control is off — the packed fields then
/// carry exactly the legacy values.
fn flow_take_pending(ep: &Arc<Endpoint>, peer: ProcName) -> u16 {
    if !ep.tunables.flow_enable() {
        return 0;
    }
    let mut st = ep.state.lock();
    let Some(fp) = st.flow.get_mut(&peer) else {
        return 0;
    };
    let take = fp.pending_return.min(u16::MAX as usize);
    fp.pending_return -= take;
    take as u16
}

/// Build a FIN_ACK stamped with any credits owed to `peer`: `e4_vpid` is
/// meaningless on a FIN_ACK (no address travels), so the credits ride
/// there for free.
fn fin_ack_with_credits(ep: &Arc<Endpoint>, peer: ProcName, send_req: u64, credit: usize) -> Hdr {
    let mut h = make_fin_ack(send_req, credit);
    let pb = flow_take_pending(ep, peer);
    if pb > 0 {
        h.e4_vpid = pb as u32;
        ep.metric(|m| m.counters.flow_piggybacked += 1);
    }
    h
}

/// Re-pack an ACK's `seq` so its high half carries any credits owed to
/// `peer` (the low half keeps the inline-byte credit already stored).
fn stamp_ack_credits(ep: &Arc<Endpoint>, peer: ProcName, ack: &mut Hdr) {
    let inline = ack.seq;
    let pb = flow_take_pending(ep, peer);
    if pb > 0 {
        ep.metric(|m| m.counters.flow_piggybacked += 1);
    }
    ack.seq = crate::hdr::pack_ack_seq(inline, pb);
}

/// Sender side: `n` credits came back from `peer` (piggybacked or via an
/// explicit CREDIT_RETURN). Restock the window and drain any sends parked
/// on it.
fn flow_credits_in(proc: &Proc, ep: &Arc<Endpoint>, peer: ProcName, n: usize, _piggyback: bool) {
    if n == 0 || !ep.tunables.flow_enable() {
        return;
    }
    let init = ep.tunables.flow_credits();
    {
        let mut st = ep.state.lock();
        let fp = st.flow_entry(peer, init);
        fp.credits += n;
        fp.returned += n as u64;
    }
    ep.metric(|m| m.counters.flow_credits_returned += n as u64);
    flow_drain_peer(proc, ep, peer);
}

/// Send parked eager frames to `peer` while its credit window has room,
/// in FIFO order (MPI ordering: `hdr.seq` was assigned at post time, and
/// the receiver's in-order check would park anything sent out of order
/// anyway). Each drained send completes like a normal buffered eager send.
fn flow_drain_peer(proc: &Proc, ep: &Arc<Endpoint>, peer: ProcName) -> bool {
    let batch: Vec<QueuedSend> = {
        let mut st = ep.state.lock();
        match st.flow.get_mut(&peer) {
            Some(fp) => {
                let mut out = Vec::new();
                while fp.credits > 0 && !fp.queued.is_empty() {
                    fp.credits -= 1;
                    fp.consumed += 1;
                    out.push(fp.queued.pop_front().expect("checked non-empty"));
                }
                out
            }
            None => Vec::new(),
        }
    };
    if batch.is_empty() {
        return false;
    }
    let peer_info = ep.state.lock().peers.get(&peer).cloned();
    let Some(pi) = peer_info else {
        for q in batch {
            fail_request(proc, ep, ReqKind::Send, q.sid, MpiErrClass::ProcFailed);
        }
        return true;
    };
    for q in batch {
        let waited = proc.now().saturating_sub(q.queued_at);
        ep.metric(|m| {
            m.counters.flow_credits_consumed += 1;
            m.counters.flow_queued_ns += waited.as_ns();
        });
        ep.trace(
            proc.now(),
            crate::trace::TraceEvent::FlowSent {
                req: q.sid,
                gid: q.gid,
            },
        );
        let Some(route) = first_route(ep, &pi) else {
            fail_request(proc, ep, ReqKind::Send, q.sid, MpiErrClass::NoTransport);
            continue;
        };
        proc.advance(ep.cfg.host.hdr_build);
        send_frame(proc, ep, &pi, route, q.hdr, q.payload);
        // Buffered eager semantics: on the wire = locally complete.
        {
            let mut st = ep.state.lock();
            if let Some(r) = st.send_reqs.get_mut(&q.sid) {
                r.bytes_confirmed = r.msg_len;
            }
        }
        maybe_complete_send(proc, ep, q.sid);
    }
    true
}

/// Explicit credit return: the reverse direction is silent (pure eager
/// floods generate no ACK/FIN_ACK back toward the sender), so the credits
/// travel in their own control frame. Origin identity rides ctx/src_rank
/// — the same fields the reliability layer stamps, with the same values —
/// and the count rides `seq`.
fn send_credit_return(proc: &Proc, ep: &Arc<Endpoint>, to: ProcName, n: usize) {
    let peer = ep.state.lock().peers.get(&to).cloned();
    let restore = |ep: &Arc<Endpoint>| {
        if let Some(fp) = ep.state.lock().flow.get_mut(&to) {
            fp.pending_return += n;
        }
    };
    let Some(peer) = peer else {
        restore(ep);
        return;
    };
    let Some(route) = first_route(ep, &peer) else {
        restore(ep);
        return;
    };
    let mut h = Hdr::new(HdrType::CreditReturn);
    h.ctx = ep.name.job.0;
    h.src_rank = ep.name.rank as u32;
    h.seq = n as u32;
    proc.advance(ep.cfg.host.hdr_build);
    send_frame(proc, ep, &peer, route, h, Vec::new());
    ep.metric(|m| m.counters.flow_credit_frames += 1);
    ep.trace(
        proc.now(),
        crate::trace::TraceEvent::ControlSent {
            gid: 0,
            kind: "CreditReturn",
        },
    );
}

/// One flow-control progress step, run from every progress pass: drain
/// send queues whose windows re-opened, and flush hoarded credit returns
/// (at least half a window's worth) for peers with no reverse traffic to
/// piggyback on. Credit grants defer while the local ejection queue is
/// backed up past `flow.ej_backoff` — the fabric's congestion signal
/// feeding the end-to-end window — and retry on a later pass, so deferral
/// can stall but never deadlock.
pub(crate) fn flow_pump(proc: &Proc, ep: &Arc<Endpoint>) -> bool {
    if !ep.tunables.flow_enable() {
        return false;
    }
    let mut any = false;
    let drainable: Vec<ProcName> = {
        let st = ep.state.lock();
        st.flow
            .iter()
            .filter(|(_, fp)| fp.credits > 0 && !fp.queued.is_empty())
            .map(|(p, _)| *p)
            .collect()
    };
    for p in drainable {
        if flow_drain_peer(proc, ep, p) {
            any = true;
        }
    }
    let threshold = (ep.tunables.flow_credits() / 2).max(1);
    let backoff = ep.cfg.flow_ej_backoff;
    let congested = backoff > 0 && ep.ejection_depth(proc.now()) >= backoff as u64;
    let returns: Vec<(ProcName, usize)> = {
        let mut st = ep.state.lock();
        let due: Vec<ProcName> = st
            .flow
            .iter()
            .filter(|(_, fp)| fp.pending_return >= threshold)
            .map(|(p, _)| *p)
            .collect();
        if !due.is_empty() && congested {
            // Congested ejection link: granting more credits now would
            // invite more injection straight into the hot spot.
            ep.metric(|m| m.counters.flow_grant_deferrals += 1);
            Vec::new()
        } else {
            due.into_iter()
                .map(|p| {
                    let fp = st.flow.get_mut(&p).expect("peer listed above");
                    let n = fp.pending_return;
                    fp.pending_return = 0;
                    (p, n)
                })
                .collect()
        }
    };
    for (p, n) in returns {
        send_credit_return(proc, ep, p, n);
        any = true;
    }
    any
}

// ---------------------------------------------------------------------------
// TCP control-frame reliability
// ---------------------------------------------------------------------------

/// Trace-span id of one retransmit-buffer entry, unique per (peer, seq).
fn rel_span_id(peer: ProcName, rel_seq: u32) -> u64 {
    ((peer.job.0 as u64) << 48) | ((peer.rank as u64) << 32) | rel_seq as u64
}

/// Wire code of an error class carried in a NACK's `seq` field.
fn err_code(err: MpiErrClass) -> u32 {
    match err {
        MpiErrClass::ProcFailed => 0,
        MpiErrClass::NoTransport => 1,
        MpiErrClass::Internal => 2,
    }
}

fn err_from_code(code: u32) -> MpiErrClass {
    match code {
        1 => MpiErrClass::NoTransport,
        2 => MpiErrClass::Internal,
        _ => MpiErrClass::ProcFailed,
    }
}

/// Receipt for a sequence-stamped control frame. Itself unreliable by
/// design: if it is lost, the peer retransmits and the duplicate triggers a
/// fresh receipt here.
fn send_ctl_ack(proc: &Proc, ep: &Arc<Endpoint>, origin: ProcName, rel_seq: u32) {
    let peer = {
        let st = ep.state.lock();
        st.peers[&origin].clone()
    };
    let mut h = Hdr::new(HdrType::CtlAck);
    h.ctx = ep.name.job.0;
    h.src_rank = ep.name.rank as u32;
    h.seq = rel_seq;
    proc.advance(ep.cfg.host.hdr_build);
    send_frame(proc, ep, &peer, Route::Tcp, h, Vec::new());
    ep.metric(|m| m.counters.ctl_acks_sent += 1);
}

/// The peer receipted one of our stamped control frames: retire its
/// retransmit-buffer entry.
fn handle_ctl_ack(proc: &Proc, ep: &Arc<Endpoint>, hdr: Hdr) {
    let from = ProcName {
        job: ompi_rte::JobId(hdr.ctx),
        rank: hdr.src_rank as usize,
    };
    let rel_seq = hdr.seq;
    let retired = {
        let mut st = ep.state.lock();
        st.ctl_inflight
            .iter()
            .position(|e| e.peer == from && e.rel_seq == rel_seq)
            .map(|i| st.ctl_inflight.remove(i))
    };
    if retired.is_some() {
        ep.trace(
            proc.now(),
            crate::trace::TraceEvent::SpanEnd {
                id: rel_span_id(from, rel_seq),
                cat: "rel",
                name: "ctl_inflight",
            },
        );
        // Finalize waits for the retransmit buffer to drain.
        notify_waiters(proc, ep);
    }
}

/// Best-effort failure notice from a peer that gave up retransmitting a
/// control frame naming one of our requests: complete it with an error
/// status instead of leaving it to stall.
fn handle_nack(proc: &Proc, ep: &Arc<Endpoint>, hdr: Hdr) {
    let err = err_from_code(hdr.seq);
    if hdr.send_req != 0 {
        fail_request(proc, ep, ReqKind::Send, hdr.send_req, err);
    }
    if hdr.recv_req != 0 {
        fail_request(proc, ep, ReqKind::Recv, hdr.recv_req, err);
    }
}

/// Send a best-effort NACK naming the *peer-owned* request tokens in
/// `send_req` / `recv_req` (zero = not named). Unreliable and unstamped.
fn send_nack(
    proc: &Proc,
    ep: &Arc<Endpoint>,
    peer: &crate::peer::PeerInfo,
    send_req: u64,
    recv_req: u64,
    err: MpiErrClass,
) {
    let Some(route) = first_route(ep, peer) else {
        return;
    };
    let mut h = Hdr::new(HdrType::Nack);
    h.ctx = ep.name.job.0;
    h.src_rank = ep.name.rank as u32;
    h.send_req = send_req;
    h.recv_req = recv_req;
    h.seq = err_code(err);
    proc.advance(ep.cfg.host.hdr_build);
    send_frame(proc, ep, peer, route, h, Vec::new());
}

/// Complete a request with an MPI-style error status: the graceful-
/// degradation path for exhausted retries, NACKed requests, and unroutable
/// peers. Mirrors the completion path (resource release, telemetry,
/// waiter wakeup) with `error` set instead of a delivered payload.
pub(crate) fn fail_request(
    proc: &Proc,
    ep: &Arc<Endpoint>,
    kind: ReqKind,
    id: u64,
    err: MpiErrClass,
) {
    let cleanup = {
        let mut st = ep.state.lock();
        match kind {
            ReqKind::Send => {
                let info = st.send_reqs.get_mut(&id).and_then(|r| {
                    if r.done {
                        None
                    } else {
                        r.done = true;
                        r.error = Some(err);
                        Some((r.src_e4.take(), r.src_region, r.bounce.take(), r.dst))
                    }
                });
                info.map(|(e4, region, bounce, dst)| {
                    // A credit-starved send still parked in the flow queue
                    // never went on the wire; the parked frame dies with
                    // the request.
                    if let Some(fp) = st.flow.get_mut(&dst) {
                        fp.queued.retain(|q| q.sid != id);
                    }
                    (e4, region, bounce)
                })
            }
            ReqKind::Recv => {
                let cleanup = st.recv_reqs.get_mut(&id).and_then(|r| {
                    if r.done {
                        None
                    } else {
                        r.done = true;
                        r.error = Some(err);
                        let region = r.bounce.unwrap_or(r.buf);
                        Some((r.dst_e4.take(), region, r.bounce.take(), r.ctx))
                    }
                });
                // An unmatched recv failed here is still in its comm's
                // posted list; drop it so matching never dereferences the
                // request after the application reaps it.
                cleanup.map(|(e4, region, bounce, ctx)| {
                    if let Some(c) = st.comms.get_mut(&ctx) {
                        c.posted.retain(|rid| *rid != id);
                    }
                    (e4, region, bounce)
                })
            }
        }
    };
    let Some((e4, region, bounce)) = cleanup else {
        return;
    };
    // Tear down any pipelined transfer this request owned: forget its
    // in-flight chunk completions (stale event fires are ignored), drop
    // parked TCP pushes, and release every chunk mapping — a failed
    // request must leave `mapping_count()` untouched.
    let (chunks, staged) = {
        let mut st = ep.state.lock();
        if kind == ReqKind::Send {
            st.tcp_pushes.retain(|p| p.send_req != id);
        }
        match st.pipelines.remove(&id) {
            Some(ps) => {
                let tokens: Vec<u64> = ps.inflight.iter().map(|c| c.token).collect();
                let mut i = 0;
                while i < st.pending_dmas.len() {
                    if tokens.contains(&st.pending_dmas[i].token) {
                        let p = st.pending_dmas.swap_remove(i);
                        p.event.free();
                    } else {
                        i += 1;
                    }
                }
                (ps.inflight, ps.staged_final)
            }
            None => (Vec::new(), None),
        }
    };
    for c in &chunks {
        crate::regcache::release(proc, ep, &c.sub, c.e4);
    }
    if let Some((sub, e4)) = staged {
        crate::regcache::release(proc, ep, &sub, e4);
    }
    if !chunks.is_empty() || staged.is_some() {
        ep.trace(
            proc.now(),
            crate::trace::TraceEvent::SpanEnd {
                id,
                cat: "pipe",
                name: "pipe_transfer",
            },
        );
    }
    // Same resource discipline as the success path: cached mappings go
    // back to the cache, everything else is unmapped — a failed request
    // must not leak its registration.
    if let Some(e4) = e4 {
        crate::regcache::release(proc, ep, &region, e4);
    }
    if let Some(b) = bounce {
        flow_bounce_free(ep, b);
    }
    ep.metric(|m| m.counters.reqs_failed += 1);
    ep.trace(
        proc.now(),
        crate::trace::TraceEvent::ReqFailed {
            req: id,
            send: kind == ReqKind::Send,
            err: err.mpi_name(),
        },
    );
    // Post-mortem: freeze the flight recorder at the moment of failure so
    // the harness can explain *what led up to* the error, not just name it.
    if ep.tunables.flight_enable() {
        let dump = ep.flight_dump(&format!("request failed: {}", err.mpi_name()), proc.now());
        ep.introspect.lock().flight_dumps.push(dump);
    }
    notify_waiters(proc, ep);
}

/// Scan the retransmit buffer: re-send entries whose timeout expired (with
/// exponential backoff) and give up on entries whose retries are exhausted,
/// degrading the affected requests to error completions. Driven from every
/// progress pass and from bounded-wait expiries.
pub(crate) fn reliability_tick(proc: &Proc, ep: &Arc<Endpoint>) {
    if !ep.cfg.tcp_reliability {
        return;
    }
    let now = proc.now();
    let max_retries = ep.tunables.retransmit_max_retries();
    let backoff = ep.tunables.retransmit_backoff().max(1) as u64;
    let mut resends: Vec<(ProcName, Vec<u8>, HdrType, u32, u32)> = Vec::new();
    let mut abandoned: Vec<InflightCtl> = Vec::new();
    {
        let mut st = ep.state.lock();
        if st.ctl_inflight.is_empty() {
            return;
        }
        let mut i = 0;
        while i < st.ctl_inflight.len() {
            if st.ctl_inflight[i].deadline > now {
                i += 1;
                continue;
            }
            if st.ctl_inflight[i].attempts >= max_retries {
                let e = st.ctl_inflight.remove(i);
                st.failed_peers.insert(e.peer);
                abandoned.push(e);
            } else {
                let e = &mut st.ctl_inflight[i];
                e.attempts += 1;
                e.timeout = e.timeout * backoff;
                e.deadline = now + e.timeout;
                resends.push((e.peer, e.frame.clone(), e.kind, e.rel_seq, e.attempts));
                i += 1;
            }
        }
    }
    for (to, frame, kind, rel_seq, attempt) in resends {
        ep.metric(|m| m.counters.retransmits += 1);
        ep.trace(
            proc.now(),
            crate::trace::TraceEvent::CtlRetransmit {
                kind: kind.name(),
                rel_seq,
                attempt,
            },
        );
        if let Some(net) = &ep.tcp_net {
            net.send(proc, ep.cluster.cfg(), ep.node, to, frame);
        }
    }
    for e in abandoned {
        give_up_on(proc, ep, e);
    }
}

/// Retries exhausted on one stamped control frame: the peer is now
/// considered failed. Tell it (best effort) which of *its* requests will
/// never complete, then degrade every live local request bound to it.
fn give_up_on(proc: &Proc, ep: &Arc<Endpoint>, e: InflightCtl) {
    ep.metric(|m| m.counters.gave_up += 1);
    ep.trace(
        proc.now(),
        crate::trace::TraceEvent::CtlGaveUp {
            kind: e.kind.name(),
            rel_seq: e.rel_seq,
        },
    );
    ep.trace(
        proc.now(),
        crate::trace::TraceEvent::SpanEnd {
            id: rel_span_id(e.peer, e.rel_seq),
            cat: "rel",
            name: "ctl_inflight",
        },
    );
    // Request tokens are per-endpoint counters, so the NACK names only the
    // ids the *peer* owns, recovered from the abandoned frame itself.
    let (peer_send_req, peer_recv_req, peer) = {
        let st = ep.state.lock();
        let orig = Hdr::decode(&e.frame).ok();
        let (s, r) = match (e.kind, &orig) {
            (HdrType::Ack | HdrType::FinAck, Some(h)) => (h.send_req, 0),
            (HdrType::Fin, Some(h)) => (0, h.recv_req),
            _ => (0, 0),
        };
        (s, r, st.peers.get(&e.peer).cloned())
    };
    if let Some(peer) = &peer {
        if peer_send_req != 0 || peer_recv_req != 0 {
            send_nack(
                proc,
                ep,
                peer,
                peer_send_req,
                peer_recv_req,
                MpiErrClass::ProcFailed,
            );
        }
    }
    // Degrade every live local request bound to the failed peer.
    let (sends, recvs) = {
        let st = ep.state.lock();
        let sends: Vec<u64> = st
            .send_reqs
            .values()
            .filter(|r| !r.done && r.dst == e.peer)
            .map(|r| r.id)
            .collect();
        let recvs: Vec<u64> = st
            .recv_reqs
            .values()
            .filter(|r| {
                if r.done {
                    return false;
                }
                match &r.matched {
                    // In flight from the failed peer: it will never finish.
                    Some(m) => m.src == e.peer,
                    // Unmatched but selecting the failed peer by name: no
                    // other sender can ever satisfy it, so complete it with
                    // the error instead of letting it hang silently.
                    None => r.src_sel.is_some_and(|s| {
                        st.comms
                            .get(&r.ctx)
                            .and_then(|c| c.group.get(s as usize))
                            .is_some_and(|name| *name == e.peer)
                    }),
                }
            })
            .map(|r| r.id)
            .collect();
        (sends, recvs)
    };
    for id in sends {
        fail_request(proc, ep, ReqKind::Send, id, MpiErrClass::ProcFailed);
    }
    for id in recvs {
        fail_request(proc, ep, ReqKind::Recv, id, MpiErrClass::ProcFailed);
    }
    // Purge the failed peer's parked receive-side state: its unexpected
    // fragments will never match a receive that completes, and each one
    // staged in the bounce pool pins a slot other peers need. Failing the
    // per-request sends above already emptied its flow queue; the peer's
    // credit entry goes with it.
    let leaked = {
        let mut st = ep.state.lock();
        st.flow.remove(&e.peer);
        let mut stages: Vec<HostBuf> = Vec::new();
        for c in st.comms.values_mut() {
            c.unexpected.retain_mut(|f| {
                if f.from == e.peer {
                    if let Some(s) = f.stage.take() {
                        stages.push(s);
                    }
                    false
                } else {
                    true
                }
            });
            c.out_of_order.retain_mut(|f| {
                if f.from == e.peer {
                    if let Some(s) = f.stage.take() {
                        stages.push(s);
                    }
                    false
                } else {
                    true
                }
            });
        }
        let mut leaked = Vec::new();
        for s in stages {
            if !st.bounce_pool.release(s) {
                leaked.push(s);
            }
        }
        leaked
    };
    for b in leaked {
        ep.free(b);
    }
    // The retransmit buffer shrank even if no request was degraded:
    // finalize may now be able to proceed.
    notify_waiters(proc, ep);
}

// ---------------------------------------------------------------------------
// data staging helpers
// ---------------------------------------------------------------------------

fn charge_pack(proc: &Proc, ep: &Arc<Endpoint>, len: usize) {
    if len == 0 {
        return;
    }
    let mut cost = ep.cfg.host.inline_copy_setup + ep.memcpy_cost(len);
    if ep.cfg.use_datatype_engine {
        cost += ep.cfg.copy.convertor_setup;
    }
    proc.advance(cost);
}

fn charge_unpack(proc: &Proc, ep: &Arc<Endpoint>, len: usize) {
    if len == 0 {
        return;
    }
    proc.advance(ep.cfg.host.unpack_setup + ep.memcpy_cost(len));
}

/// Read `[off, off+len)` of the packed stream of a send.
fn read_packed(
    ep: &Arc<Endpoint>,
    buf: &HostBuf,
    conv: &Convertor,
    bounce: Option<&HostBuf>,
    off: usize,
    len: usize,
) -> Vec<u8> {
    if len == 0 {
        return Vec::new();
    }
    if let Some(b) = bounce {
        ep.read_buf(b, off, len)
    } else if conv.is_contiguous() {
        ep.read_buf(buf, off, len)
    } else {
        let span = ep.read_buf(buf, 0, conv.span());
        conv.pack_range(&span, off, len)
    }
}

/// Write packed-stream bytes into a receive's landing region.
fn write_packed(ep: &Arc<Endpoint>, r: &RecvReq, off: usize, data: &[u8]) {
    if data.is_empty() {
        return;
    }
    match &r.bounce {
        Some(b) => ep.write_buf(b, off, data),
        None => ep.write_buf(&r.buf, off, data),
    }
}

fn ensure_peer(proc: &Proc, ep: &Arc<Endpoint>, who: ProcName) {
    let known = ep.state.lock().peers.contains_key(&who);
    if !known {
        let raw = ep.rte.modex_get(proc, who, "ptl");
        let info = crate::peer::PeerInfo::from_bytes(&raw);
        ep.state.lock().peers.insert(who, info);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rail_chunks_covers_len_without_empty_chunks() {
        for (len, rails) in [
            (0usize, 1usize),
            (1, 4),
            (3, 4),
            (4, 4),
            (5, 4),
            (64 << 10, 3),
        ] {
            let chunks = rail_chunks(len, rails);
            assert!(
                chunks.iter().all(|c| c.1 > 0),
                "empty chunk for len={len} rails={rails}"
            );
            let total: usize = chunks.iter().map(|c| c.1).sum();
            assert_eq!(total, len, "bytes lost for len={len} rails={rails}");
            // Chunks are contiguous and in order.
            let mut off = 0;
            for (o, l) in chunks {
                assert_eq!(o, off);
                off += l;
            }
        }
    }

    #[test]
    fn rail_chunks_zero_rails_does_not_divide_by_zero() {
        assert_eq!(rail_chunks(10, 0), vec![(0, 10)]);
        assert_eq!(rail_chunks(0, 0), Vec::<(usize, usize)>::new());
    }

    #[test]
    fn rail_chunks_fewer_bytes_than_rails_skips_idle_rails() {
        assert_eq!(rail_chunks(2, 4), vec![(0, 1), (1, 1)]);
    }

    #[test]
    fn rel_span_ids_distinct_across_peers_and_seqs() {
        let a = ProcName {
            job: ompi_rte::JobId(0),
            rank: 1,
        };
        let b = ProcName {
            job: ompi_rte::JobId(0),
            rank: 2,
        };
        assert_ne!(rel_span_id(a, 1), rel_span_id(b, 1));
        assert_ne!(rel_span_id(a, 1), rel_span_id(a, 2));
    }

    #[test]
    fn nack_error_codes_roundtrip() {
        for err in [
            MpiErrClass::ProcFailed,
            MpiErrClass::NoTransport,
            MpiErrClass::Internal,
        ] {
            assert_eq!(err_from_code(err_code(err)), err);
        }
    }
}
