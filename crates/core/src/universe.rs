//! The universe: the shared simulated machine plus everything needed to
//! launch MPI worlds on it (and spawn further jobs dynamically).

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use elan4::{Cluster, NicConfig};
use ompi_rte::{JobId, ProcName, Rte, RteConfig};
use qsim::Simulation;
use qsnet::FabricConfig;

use crate::comm::{register_comm, Communicator};
use crate::config::StackConfig;
use crate::endpoint::{Endpoint, Transports};
use crate::mpi::Mpi;
use crate::ptl_tcp::{TcpConfig, TcpNet};

/// Where to place ranks on the simulated cluster.
#[derive(Clone, Debug)]
pub enum Placement {
    /// Rank `r` on node `r % nodes` (one rank per node up to the node count).
    RoundRobin,
    /// Explicit node per rank.
    Nodes(Vec<usize>),
}

impl Placement {
    /// The node `rank` is placed on.
    pub fn node_of(&self, rank: usize, nodes: usize) -> usize {
        match self {
            Placement::RoundRobin => rank % nodes,
            Placement::Nodes(v) => v[rank],
        }
    }
}

/// Shared machine + configuration; cheap to clone via `Arc`.
pub struct Universe {
    /// The simulated machine.
    pub cluster: Arc<Cluster>,
    /// The runtime environment.
    pub rte: Arc<Rte>,
    /// The management Ethernet for the TCP PTL.
    pub tcp_net: Arc<TcpNet>,
    /// Stack configuration every launched rank uses.
    pub cfg: StackConfig,
    /// Transports every launched rank activates.
    pub transports: Transports,
    next_ctx: AtomicU32,
}

impl Universe {
    /// Build a universe over a custom machine and stack configuration.
    pub fn new(
        nic: NicConfig,
        fabric: FabricConfig,
        cfg: StackConfig,
        transports: Transports,
    ) -> Arc<Universe> {
        cfg.validate();
        let nodes = fabric.nodes;
        let cluster = Cluster::new(nic, fabric);
        Arc::new(Universe {
            cluster,
            rte: Rte::new(RteConfig::default()),
            tcp_net: TcpNet::new(TcpConfig::default(), nodes),
            cfg,
            transports,
            next_ctx: AtomicU32::new(0),
        })
    }

    /// Default machine: the paper's 8-node QS-8A testbed, Elan4 only.
    pub fn paper_testbed(cfg: StackConfig) -> Arc<Universe> {
        Universe::new(
            NicConfig::default(),
            FabricConfig::default(),
            cfg,
            Transports::default(),
        )
    }

    /// Allocate a (p2p, collective) context-id pair, globally unique.
    pub fn alloc_ctx_pair(&self) -> (u32, u32) {
        let base = self.next_ctx.fetch_add(2, Ordering::SeqCst);
        (base, base + 1)
    }

    /// Launch an MPI world of `n` ranks; each runs `entry`. Returns the job
    /// id (the simulation must be driven to completion by the caller).
    pub fn launch_world(
        self: &Arc<Self>,
        sim: &Simulation,
        n: usize,
        placement: Placement,
        entry: impl Fn(Mpi) + Send + Sync + 'static,
    ) -> JobId {
        let job = self.rte.create_job(n, None);
        let (ctx, coll_ctx) = self.alloc_ctx_pair();
        let entry = Arc::new(entry);
        let nodes = self.cluster.nodes();
        for rank in 0..n {
            let node = placement.node_of(rank, nodes);
            let uni = self.clone();
            let entry = entry.clone();
            sim.spawn(&format!("rank{rank}"), move |p| {
                let name = ProcName { job, rank };
                let ep = Endpoint::init(
                    &p,
                    name,
                    node,
                    uni.cfg.clone(),
                    uni.transports.clone(),
                    uni.cluster.clone(),
                    uni.rte.clone(),
                    Some(uni.tcp_net.clone()),
                );
                ep.start_progress(&p);
                let group = (0..n).map(|r| ProcName { job, rank: r }).collect();
                let world = Communicator {
                    ctx,
                    coll_ctx,
                    group,
                    my_rank: rank,
                    // Launched synchronously: the global virtual address
                    // space exists, so hardware collectives are available.
                    hw_coll: true,
                };
                register_comm(&p, &ep, &world);
                // Everyone must have registered before traffic flows.
                uni.rte.barrier(&p, job);
                let mpi = Mpi::new(p, ep, uni, world);
                entry(mpi);
            });
        }
        job
    }

    /// Convenience: build a simulation, launch one world, run to completion.
    pub fn run_world(
        self: &Arc<Self>,
        n: usize,
        placement: Placement,
        entry: impl Fn(Mpi) + Send + Sync + 'static,
    ) -> qsim::Report {
        let sim = Simulation::new();
        self.launch_world(&sim, n, placement, entry);
        match sim.run() {
            Ok(r) => r,
            Err(e) => panic!("simulation failed: {e}"),
        }
    }
}
