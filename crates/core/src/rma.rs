//! MPI-2 one-sided communication (RMA) over the Elan4 RDMA path.
//!
//! The paper positions Open MPI as an MPI-2 implementation and its related
//! work (Jiang et al. [15, 16]) maps one-sided operations directly onto
//! RDMA. This module does the same on the simulated hardware: a window
//! exposes a registered (Elan-mapped) region on every rank; `put`/`get`
//! translate to RDMA write/read against the target's E4 address with *zero*
//! target-side host involvement; `fence` closes an active-target epoch by
//! draining local completions and synchronizing the group.
//!
//! Supported synchronization: active-target fence epochs. RMA requires a
//! polling or interrupt progress engine (the thread-progress modes funnel
//! completions through the shared queue, which fence does not consume).

use std::sync::Arc;

use elan4::{DmaKind, E4Addr, ElanEvent, HostBuf, Vpid};
use qsim::Wait;

use crate::comm::Communicator;
use crate::config::ProgressMode;
use crate::mpi::Mpi;

/// An outstanding RMA descriptor and the origin mapping (with its region,
/// for the registration cache) to release once it completes.
type PendingRma = (Arc<ElanEvent>, Option<(E4Addr, HostBuf)>);

/// An exposed memory window (one per rank of the communicator).
pub struct Window {
    comm: Communicator,
    /// The locally exposed region.
    buf: HostBuf,
    local_e4: E4Addr,
    /// Exposed region of every rank: (vpid, e4 value, length).
    peers: Vec<(Vpid, u64, usize)>,
    /// Outstanding RMA descriptors started in this epoch.
    pending: Vec<PendingRma>,
}

impl Window {
    /// Size of the exposed region at `rank`.
    pub fn len_at(&self, rank: usize) -> usize {
        self.peers[rank].2
    }

    /// The communicator the window spans.
    pub fn comm(&self) -> &Communicator {
        &self.comm
    }

    /// Outstanding operations in the current epoch.
    pub fn pending_ops(&self) -> usize {
        self.pending.len()
    }
}

impl Mpi {
    /// Collectively create a window exposing `buf` on every rank of `comm`.
    pub fn win_create(&self, comm: &Communicator, buf: HostBuf) -> Window {
        assert!(
            matches!(
                self.endpoint().cfg.progress,
                ProgressMode::Polling | ProgressMode::Interrupt
            ),
            "RMA requires polling or interrupt progress"
        );
        // Register the region with the NIC (paper §4.2: the memory
        // descriptor is expanded with an E4 address). Windows live until
        // win_free, so the mapping is charged directly, not cached.
        let local_e4 = self.endpoint().ectx.map(self.proc(), &buf);
        self.compute(self.endpoint().cfg.host.req_bookkeep);

        // Exchange (vpid, e4, len) with the group.
        let mut mine = Vec::with_capacity(16);
        mine.extend_from_slice(&local_e4.owner().raw().to_le_bytes());
        mine.extend_from_slice(&local_e4.value().to_le_bytes());
        mine.extend_from_slice(&(buf.len as u32).to_le_bytes());
        let all = self.allgather_bytes(comm, &mine);
        let peers = all
            .chunks_exact(16)
            .map(|c| {
                (
                    Vpid(u32::from_le_bytes(c[0..4].try_into().unwrap())),
                    u64::from_le_bytes(c[4..12].try_into().unwrap()),
                    u32::from_le_bytes(c[12..16].try_into().unwrap()) as usize,
                )
            })
            .collect();
        Window {
            comm: comm.clone(),
            buf,
            local_e4,
            peers,
            pending: Vec::new(),
        }
    }

    /// One-sided write: `len` bytes from `(src, src_off)` into the window
    /// of `target` at `target_off`. Completes (remotely) by the next fence.
    pub fn put(
        &self,
        win: &mut Window,
        target: usize,
        target_off: usize,
        src: &HostBuf,
        src_off: usize,
        len: usize,
    ) {
        if len == 0 {
            return;
        }
        let (vpid, va, wlen) = win.peers[target];
        assert!(target_off + len <= wlen, "put beyond the target window");
        assert!(src_off + len <= src.len, "put beyond the origin buffer");
        let remote = E4Addr::from_raw(vpid, va + target_off as u64);
        let (local, unmap) = self.origin_mapping(win, src, src_off, len);
        let ep = self.endpoint();
        let event = Arc::new(ep.ectx.event_create(1));
        self.arm_rma_event(&event);
        ep.ectx.rdma(
            self.proc(),
            0,
            DmaKind::Write,
            local,
            remote,
            len,
            Some(event.id()),
        );
        win.pending.push((event, unmap));
    }

    /// One-sided read: `len` bytes from `target`'s window at `target_off`
    /// into `(dst, dst_off)`. Data is valid after the next fence.
    pub fn get(
        &self,
        win: &mut Window,
        target: usize,
        target_off: usize,
        dst: &HostBuf,
        dst_off: usize,
        len: usize,
    ) {
        if len == 0 {
            return;
        }
        let (vpid, va, wlen) = win.peers[target];
        assert!(target_off + len <= wlen, "get beyond the target window");
        assert!(dst_off + len <= dst.len, "get beyond the origin buffer");
        let remote = E4Addr::from_raw(vpid, va + target_off as u64);
        let (local, unmap) = self.origin_mapping(win, dst, dst_off, len);
        let ep = self.endpoint();
        let event = Arc::new(ep.ectx.event_create(1));
        self.arm_rma_event(&event);
        ep.ectx.rdma(
            self.proc(),
            0,
            DmaKind::Read,
            local,
            remote,
            len,
            Some(event.id()),
        );
        win.pending.push((event, unmap));
    }

    /// Fence-epoch accumulate (sum of f64): fetch the target region, apply
    /// the operation, write it back. Origin-side arithmetic: correct as
    /// long as one origin touches a given target region per epoch (the
    /// usual fence-discipline requirement).
    pub fn accumulate_sum_f64(
        &self,
        win: &mut Window,
        target: usize,
        target_off: usize,
        src: &HostBuf,
        src_off: usize,
        len: usize,
    ) {
        assert_eq!(len % 8, 0);
        // Synchronous fetch.
        let tmp = self.alloc(len.max(1));
        self.get(win, target, target_off, &tmp, 0, len);
        self.rma_flush(win);
        let mut acc = self.read(&tmp, 0, len);
        let add = self.read(src, src_off, len);
        crate::coll::ReduceOp::SumF64.apply(&mut acc, &add);
        self.write(&tmp, 0, &acc);
        self.compute(self.endpoint().cfg.copy.memcpy(len));
        self.put(win, target, target_off, &tmp, 0, len);
        self.rma_flush(win);
        self.free(tmp);
    }

    /// Close the access/exposure epoch: drain local RMA completions, then
    /// synchronize the group so every peer's operations are also complete.
    pub fn win_fence(&self, win: &mut Window) {
        self.rma_flush(win);
        self.barrier(&win.comm);
    }

    /// Collectively tear the window down.
    pub fn win_free(&self, win: Window) {
        let mut win = win;
        self.rma_flush(&mut win);
        self.barrier(&win.comm);
        self.endpoint().ectx.unmap(self.proc(), win.local_e4);
        let _ = win.buf; // ownership stays with the caller
    }

    // -- internals ----------------------------------------------------------

    /// Map the origin buffer for one op; windows' own buffers reuse the
    /// window mapping, others go through the registration cache so a
    /// repeated origin buffer pays the pin-down cost once.
    fn origin_mapping(
        &self,
        win: &Window,
        buf: &HostBuf,
        off: usize,
        len: usize,
    ) -> (E4Addr, Option<(E4Addr, HostBuf)>) {
        if buf.addr == win.buf.addr && off + len <= win.buf.len {
            (win.local_e4.offset(off), None)
        } else {
            let region = buf.slice(off, len);
            let e4 = crate::regcache::acquire(self.proc(), self.endpoint(), &region);
            self.compute(self.endpoint().cfg.host.req_bookkeep);
            (e4, Some((e4, region)))
        }
    }

    fn arm_rma_event(&self, event: &Arc<ElanEvent>) {
        let ep = self.endpoint();
        if let Some(bell) = ep.doorbell() {
            event.set_signal(bell);
        }
        if ep.cfg.progress == ProgressMode::Interrupt {
            event.arm_irq(true);
        }
    }

    /// Wait for every outstanding RMA descriptor of this window.
    fn rma_flush(&self, win: &mut Window) {
        let ep = self.endpoint().clone();
        let bell = ep.doorbell().expect("RMA without a progress doorbell");
        for (event, unmap) in win.pending.drain(..) {
            loop {
                if event.take_fired_ready() {
                    break;
                }
                match self.proc().wait(&bell) {
                    Wait::Signaled => self.compute(ep.cluster.cfg().poll_check),
                    Wait::Shutdown => panic!("shutdown during RMA flush"),
                }
            }
            event.free();
            if let Some((e4, region)) = unmap {
                crate::regcache::release(self.proc(), &ep, &region, e4);
            }
        }
    }
}

/// Reserved collective-plane tags for PSCW control messages.
const TAG_RMA_POST: i32 = 900;
const TAG_RMA_COMPLETE: i32 = 901;

/// Generalized active-target synchronization (MPI_Win_post / start /
/// complete / wait): exposure and access epochs between explicit rank
/// groups rather than the whole communicator.
impl Mpi {
    /// Expose the window to the `origins` group (MPI_Win_post). Pair with
    /// [`Mpi::win_wait`].
    pub fn win_post(&self, win: &Window, origins: &[usize]) {
        let c = win.comm().coll_plane();
        let buf = self.alloc(1);
        for &o in origins {
            assert_ne!(o, c.rank(), "cannot post to self");
            self.send(&c, o, TAG_RMA_POST, &buf, 0);
        }
        self.free(buf);
    }

    /// Begin an access epoch against the `targets` group (MPI_Win_start):
    /// blocks until each target has posted its exposure epoch.
    pub fn win_start(&self, win: &Window, targets: &[usize]) {
        let c = win.comm().coll_plane();
        let buf = self.alloc(1);
        for &t in targets {
            self.recv(&c, t as i32, TAG_RMA_POST, &buf, 0);
        }
        self.free(buf);
    }

    /// End the access epoch (MPI_Win_complete): drains local RMA
    /// completions, then tells each target its data is in place.
    pub fn win_complete(&self, win: &mut Window, targets: &[usize]) {
        self.flush_pending_pub(win);
        let c = win.comm().coll_plane();
        let buf = self.alloc(1);
        for &t in targets {
            self.send(&c, t, TAG_RMA_COMPLETE, &buf, 0);
        }
        self.free(buf);
    }

    /// End the exposure epoch (MPI_Win_wait): blocks until every origin
    /// has completed its accesses.
    pub fn win_wait(&self, win: &Window, origins: &[usize]) {
        let c = win.comm().coll_plane();
        let buf = self.alloc(1);
        for &o in origins {
            self.recv(&c, o as i32, TAG_RMA_COMPLETE, &buf, 0);
        }
        self.free(buf);
    }

    /// Public flush: wait for this window's outstanding RMA descriptors
    /// without group synchronization (MPI_Win_flush_local-ish).
    pub fn flush_pending_pub(&self, win: &mut Window) {
        self.rma_flush(win);
    }
}
