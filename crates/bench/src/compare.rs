//! Side-by-side comparison of the paper's published numbers against the
//! regenerated ones — the quantitative backbone of EXPERIMENTS.md, as code.
//!
//! The paper publishes exact values only for Table 1; the figures are
//! curves, so their anchors here are read off the plots/text (§6) and the
//! tolerance is correspondingly loose. Each anchor records what we compare,
//! both values, and the relative error.

use crate::measure::{layer_decomposition, mpich_latency, ompi_latency, Setup};
use elan4::NicConfig;
use openmpi_core::{CompletionMode, ProgressMode, RdmaScheme, StackConfig};
use qsnet::FabricConfig;

/// One paper-vs-measured anchor point.
#[derive(Clone, Debug)]
pub struct Anchor {
    /// Which experiment/claim this belongs to.
    pub name: &'static str,
    /// The paper's value (µs unless stated in the name).
    pub paper: f64,
    /// Our regenerated value.
    pub ours: f64,
}

impl Anchor {
    /// Signed relative error (ours vs paper).
    pub fn rel_err(&self) -> f64 {
        (self.ours - self.paper) / self.paper
    }
}

fn rndv(scheme: RdmaScheme) -> StackConfig {
    let mut c = StackConfig::best();
    c.scheme = scheme;
    c.force_rendezvous = true;
    c
}

/// Regenerate every anchored comparison.
pub fn anchors() -> Vec<Anchor> {
    let mut out = Vec::new();
    let paper_setup = |c: StackConfig| Setup::paper(c);

    // Table 1 (exact numbers in the paper).
    let basic = rndv(RdmaScheme::Read);
    let mut irq = basic.clone();
    irq.progress = ProgressMode::Interrupt;
    let mut one = basic.clone();
    one.progress = ProgressMode::OneThread;
    one.completion = CompletionMode::SharedQueueCombined;
    let mut two = basic.clone();
    two.progress = ProgressMode::TwoThreads;
    two.completion = CompletionMode::SharedQueueSeparate;
    let t1 = [
        ("table1 basic 4B", basic.clone(), 4usize, 3.87),
        ("table1 interrupt 4B", irq.clone(), 4, 14.70),
        ("table1 one-thread 4B", one.clone(), 4, 22.76),
        ("table1 two-thread 4B", two.clone(), 4, 27.50),
        ("table1 basic 4KB", basic, 4096, 15.25),
        ("table1 interrupt 4KB", irq, 4096, 27.16),
        ("table1 one-thread 4KB", one, 4096, 32.80),
        ("table1 two-thread 4KB", two, 4096, 47.72),
    ];
    for (name, cfg, len, paper) in t1 {
        out.push(Anchor {
            name,
            paper,
            ours: ompi_latency(&paper_setup(cfg), len),
        });
    }

    // §6.3: the PML layer costs ~0.5 µs.
    let (_t, pml, _p) = layer_decomposition(&Setup::paper(StackConfig::best()), 0);
    out.push(Anchor {
        name: "fig9 PML layer cost 0B",
        paper: 0.5,
        ours: pml,
    });

    // §6.1: the datatype engine costs ~0.4 µs.
    let mut dtp = rndv(RdmaScheme::Read);
    dtp.inline_first_frag = true;
    let mut base = dtp.clone();
    base.use_datatype_engine = false;
    dtp.use_datatype_engine = true;
    out.push(Anchor {
        name: "fig7 DTP overhead",
        paper: 0.4,
        ours: ompi_latency(&paper_setup(dtp), 256) - ompi_latency(&paper_setup(base), 256),
    });

    // Fig. 10(b): 1 MB latency ≈ 1100 µs (≈950 MB/s effective).
    out.push(Anchor {
        name: "fig10b openmpi 1MB latency",
        paper: 1100.0,
        ours: ompi_latency(&Setup::paper(StackConfig::best()), 1 << 20),
    });
    out.push(Anchor {
        name: "fig10b mpich 1MB latency",
        paper: 1100.0,
        ours: mpich_latency(&NicConfig::default(), &FabricConfig::default(), 1 << 20),
    });

    // Fig. 10(a): MPICH small-message latency ≈ 3 µs (QsNetII-era MPI).
    out.push(Anchor {
        name: "fig10a mpich 0B latency",
        paper: 3.0,
        ours: mpich_latency(&NicConfig::default(), &FabricConfig::default(), 0),
    });

    out
}

/// Render the comparison as an aligned table.
pub fn render(anchors: &[Anchor]) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "{:<30}{:>12}{:>12}{:>10}\n",
        "anchor", "paper", "ours", "rel err"
    ));
    for a in anchors {
        s.push_str(&format!(
            "{:<30}{:>12.2}{:>12.2}{:>9.0}%\n",
            a.name,
            a.paper,
            a.ours,
            a.rel_err() * 100.0
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anchors_within_reproduction_bands() {
        for a in anchors() {
            let err = a.rel_err().abs();
            assert!(
                err < 0.45,
                "{}: paper {:.2} vs ours {:.2} ({:+.0}%) outside the band",
                a.name,
                a.paper,
                a.ours,
                a.rel_err() * 100.0
            );
        }
    }
}
