//! Tabular experiment output: aligned text for the terminal, CSV for
//! post-processing, and shape assertions for tests.

/// One experiment's results: x = message size (bytes), one column per
/// series, values in the experiment's unit (µs or MB/s).
#[derive(Clone, Debug)]
pub struct Table {
    pub title: String,
    pub unit: String,
    pub series: Vec<String>,
    pub rows: Vec<(usize, Vec<f64>)>,
}

impl Table {
    pub fn new(title: &str, unit: &str, series: &[&str]) -> Table {
        Table {
            title: title.to_string(),
            unit: unit.to_string(),
            series: series.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn push(&mut self, x: usize, values: Vec<f64>) {
        assert_eq!(values.len(), self.series.len());
        self.rows.push((x, values));
    }

    /// The column values of one series.
    pub fn column(&self, series: &str) -> Vec<f64> {
        let i = self
            .series
            .iter()
            .position(|s| s == series)
            .unwrap_or_else(|| panic!("no series {series}"));
        self.rows.iter().map(|(_, v)| v[i]).collect()
    }

    /// Value at `(size, series)`.
    pub fn at(&self, x: usize, series: &str) -> f64 {
        let i = self.series.iter().position(|s| s == series).unwrap();
        self.rows
            .iter()
            .find(|(r, _)| *r == x)
            .map(|(_, v)| v[i])
            .unwrap_or_else(|| panic!("no row {x}"))
    }

    pub fn print(&self) {
        println!("\n## {}  ({})", self.title, self.unit);
        print!("{:>10}", "bytes");
        for s in &self.series {
            print!("{s:>18}");
        }
        println!();
        for (x, vals) in &self.rows {
            print!("{x:>10}");
            for v in vals {
                print!("{v:>18.3}");
            }
            println!();
        }
    }

    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str("bytes");
        for s in &self.series {
            out.push(',');
            out.push_str(s);
        }
        out.push('\n');
        for (x, vals) in &self.rows {
            out.push_str(&x.to_string());
            for v in vals {
                out.push_str(&format!(",{v:.4}"));
            }
            out.push('\n');
        }
        out
    }

    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("| bytes | {} |\n", self.series.join(" | ")));
        out.push_str(&format!("|---{}|\n", "|---".repeat(self.series.len())));
        for (x, vals) in &self.rows {
            out.push_str(&format!("| {x} "));
            for v in vals {
                out.push_str(&format!("| {v:.2} "));
            }
            out.push_str("|\n");
        }
        out
    }
}

/// Message-size sweeps used by the figures.
pub fn sizes_small() -> Vec<usize> {
    vec![0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024]
}

pub fn sizes_large() -> Vec<usize> {
    vec![
        2048,
        4096,
        8192,
        16 << 10,
        32 << 10,
        64 << 10,
        128 << 10,
        256 << 10,
        512 << 10,
        1 << 20,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_roundtrip() {
        let mut t = Table::new("test", "us", &["a", "b"]);
        t.push(0, vec![1.0, 2.0]);
        t.push(8, vec![3.0, 4.0]);
        assert_eq!(t.column("b"), vec![2.0, 4.0]);
        assert_eq!(t.at(8, "a"), 3.0);
        let csv = t.to_csv();
        assert!(csv.starts_with("bytes,a,b\n0,1.0000,2.0000\n"));
        assert!(t.to_markdown().contains("| 8 | 3.00 | 4.00 |"));
    }

    #[test]
    #[should_panic(expected = "no series")]
    fn unknown_series_panics() {
        Table::new("t", "us", &["a"]).column("zzz");
    }
}
