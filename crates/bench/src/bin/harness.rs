//! Experiment harness: regenerate the paper's tables and figures.
//!
//! ```text
//! cargo run --release -p ompi-bench --bin harness -- <experiment>...
//! cargo run --release -p ompi-bench --bin harness -- all
//! cargo run --release -p ompi-bench --bin harness -- fig10a --csv
//! ```

use ompi_bench::{
    apps_scaling, coll_bcast, fig10a, fig10b, fig10c, fig10d, fig7a, fig7b, fig8, fig9, io_scaling,
    multinet, multirail, onesided, overlap, scale, sweep_irq_cost, sweep_rndv_threshold, table1,
    Table,
};

#[allow(clippy::type_complexity)]
const EXPERIMENTS: &[(&str, fn() -> Table)] = &[
    ("fig7a", fig7a as fn() -> Table),
    ("fig7b", fig7b),
    ("fig8", fig8),
    ("fig9", fig9),
    ("table1", table1),
    ("fig10a", fig10a),
    ("fig10b", fig10b),
    ("fig10c", fig10c),
    ("fig10d", fig10d),
    ("multirail", multirail),
    ("multinet", multinet),
    ("coll-bcast", coll_bcast),
    ("onesided", onesided),
    ("apps", apps_scaling),
    ("overlap", overlap),
    ("scale", scale),
    ("io", io_scaling),
    ("sweep-rndv", sweep_rndv_threshold),
    ("sweep-irq", sweep_irq_cost),
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let csv = args.iter().any(|a| a == "--csv");
    let md = args.iter().any(|a| a == "--md");
    let selected: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|s| s.as_str())
        .collect();

    if selected.is_empty() {
        eprintln!("usage: harness [--csv|--md] <experiment>... | all | paper | compare");
        eprintln!("experiments:");
        for (name, _) in EXPERIMENTS {
            eprintln!("  {name}");
        }
        std::process::exit(2);
    }

    if selected == ["compare"] {
        let anchors = ompi_bench::compare::anchors();
        print!("{}", ompi_bench::compare::render(&anchors));
        return;
    }

    let run_list: Vec<&str> = if selected == ["all"] {
        EXPERIMENTS.iter().map(|(n, _)| *n).collect()
    } else if selected == ["paper"] {
        // Only the experiments that appear in the paper's evaluation.
        vec![
            "fig7a", "fig7b", "fig8", "fig9", "table1", "fig10a", "fig10b", "fig10c", "fig10d",
        ]
    } else {
        selected
    };

    for name in run_list {
        let Some((_, f)) = EXPERIMENTS.iter().find(|(n, _)| *n == name) else {
            eprintln!("unknown experiment `{name}`");
            std::process::exit(2);
        };
        let start = std::time::Instant::now();
        let table = f();
        if csv {
            println!("# {}", table.title);
            print!("{}", table.to_csv());
        } else if md {
            println!("### {}", table.title);
            print!("{}", table.to_markdown());
        } else {
            table.print();
        }
        eprintln!("[{name} regenerated in {:.1?} wall time]", start.elapsed());
    }
}
