//! Experiment harness: regenerate the paper's tables and figures.
//!
//! ```text
//! cargo run --release -p ompi-bench --bin harness -- <experiment>...
//! cargo run --release -p ompi-bench --bin harness -- all
//! cargo run --release -p ompi-bench --bin harness -- fig10a --csv
//! cargo run --release -p ompi-bench --bin harness -- --emit-metrics --trace-out trace.json
//! ```
//!
//! `--emit-metrics` runs an instrumented 4-rank ping-pong after any selected
//! experiments and prints the telemetry snapshot (per-endpoint counters,
//! latency histograms, PTL traffic, simulator profile) as JSON on stdout.
//! `--trace-out FILE` additionally writes the per-rank Chrome trace-event
//! timeline, loadable in `chrome://tracing` or Perfetto.
//! `--introspect-out FILE` arms the progress watchdog, runs the same
//! instrumented ping-pong with the introspection plane active, and writes
//! the cluster-wide pvar aggregation (min/max/sum per variable, straggler
//! rank, stall diagnostics) as JSON; `--watchdog N` tunes the scan interval
//! in progress ticks (default 64). With `--emit-metrics` too, both documents
//! come from the same run, so their totals agree exactly.
//! `--loss N` switches the instrumented run to a TCP-only rendezvous
//! ping-pong with N FIN_ACK control frames dropped off the wire: the
//! emitted metrics then show the reliability layer absorbing the loss
//! (`retransmits` == N, `gave_up` == 0) with the run completing normally.
//! `--reg-bench` runs the repeated-buffer rendezvous benchmark with the
//! registration cache off and on, prints the before/after JSON, and exits
//! nonzero unless the cached run is strictly faster with nonzero hits;
//! `--bench-out FILE` writes the same JSON to a file.
//! `--bw-curve` measures streaming bandwidth across message sizes three
//! ways — Open MPI with the chunked-RDMA pipeline, Open MPI forced onto
//! the monolithic single-RDMA path, and MPICH-QsNet — with the
//! registration cache off, prints the curve JSON (with the ompi-vs-mpich
//! crossover size for both series), and exits nonzero unless the pipelined
//! series is strictly faster at 256 KiB and 1 MiB; `--bench-out FILE`
//! writes the same JSON to a file.
//! `--congestion-report` runs an 8-rank incast and prints the fabric's
//! per-link congestion report (top-N hottest links, occupancy fraction,
//! per-stage utilization) plus the `fab.*` pvar aggregation, naming the
//! victim's ejection link; exits nonzero if the link table comes up empty.
//! `--metrics-out FILE` writes the telemetry / congestion JSON documents
//! produced this run to a file.
//! `--sim-bench` times the discrete-event kernel itself on a reference
//! ping-pong and prints its self-profile (events executed, events/s wall
//! clock) as JSON; `--bench-out FILE` writes the same JSON to a file.
//! `--coll-curve` sweeps barrier / bcast / allreduce latency at 64, 256,
//! and 1024 ranks, host-driven vs NIC-offloaded (the chained event
//! programs behind `coll.nic_offload`), prints the curve JSON, and exits
//! nonzero unless the offloaded path strictly beats the host path for
//! every collective at 256 and 1024 ranks; `--bench-out FILE` writes the
//! same JSON (the CI artifact `BENCH_coll.json`).
//! `--sweep-floor N` makes `--rank-sweep` also fail if any point falls
//! below N simulator events/s of wall-clock throughput.
//! `--stall-demo` forces a rendezvous stall (dropped FIN_ACK, reliability
//! off), lets the watchdog abort the run, and prints the recovered
//! post-mortem — stall diagnostics plus the flight-recorder dumps frozen
//! at detection; `--flight-out FILE` writes the bundle to a file.
//! `--critpath` runs a 1 MiB pipelined-rendezvous ping-pong, merges both
//! ranks' trace rings by global message id, and prints the critical-path
//! report — each message's latency decomposed into named stages
//! (match-wait, handshake, wire, registration, host gap, fin-wait) that
//! sum to the measured total — plus the per-size-bucket table; exits
//! nonzero unless the stages reconcile within 5% and the merged Chrome
//! trace carries cross-rank flow arrows; `--critpath-out FILE` writes the
//! report JSON.
//! `--flow-bench` runs the end-to-end flow-control benchmark — 8-rank
//! incast, all-to-all burst, and unexpected-message flood, each with
//! credit-based flow control off and on, plus an uncongested 1 KiB
//! ping-pong pricing the credit machinery — and prints the report JSON;
//! exits nonzero unless flow-on beats flow-off on incast completion time,
//! bounds the victim's ejection-queue peak below the flow-off run, and
//! keeps the ping-pong within 5% of the flow-off latency; `--bench-out
//! FILE` writes the same JSON (the CI artifact `BENCH_flow.json`).
//! `--timeline` runs an 8-rank incast with the periodic pvar sampler on
//! and prints every rank's time-series ring; exits nonzero unless the
//! victim's ejection-queue series shows the congestion ramp;
//! `--timeline-out FILE` writes the timeline JSON.
//! `--list-introspect` dumps the full control/performance-variable
//! registry (name, type, default, writability, current value,
//! description) as JSON and exits.

use ompi_bench::{
    apps_scaling, coll_bcast, fig10a, fig10b, fig10c, fig10d, fig7a, fig7b, fig8, fig9, io_scaling,
    multinet, multirail, onesided, overlap, scale, sweep_irq_cost, sweep_rndv_threshold, table1,
    Table,
};

#[allow(clippy::type_complexity)]
const EXPERIMENTS: &[(&str, fn() -> Table)] = &[
    ("fig7a", fig7a as fn() -> Table),
    ("fig7b", fig7b),
    ("fig8", fig8),
    ("fig9", fig9),
    ("table1", table1),
    ("fig10a", fig10a),
    ("fig10b", fig10b),
    ("fig10c", fig10c),
    ("fig10d", fig10d),
    ("multirail", multirail),
    ("multinet", multinet),
    ("coll-bcast", coll_bcast),
    ("onesided", onesided),
    ("apps", apps_scaling),
    ("overlap", overlap),
    ("scale", scale),
    ("io", io_scaling),
    ("sweep-rndv", sweep_rndv_threshold),
    ("sweep-irq", sweep_irq_cost),
];

fn main() {
    let mut csv = false;
    let mut md = false;
    let mut emit_metrics = false;
    let mut trace_out: Option<String> = None;
    let mut introspect_out: Option<String> = None;
    let mut watchdog: u64 = 64;
    let mut loss: u64 = 0;
    let mut reg_bench = false;
    let mut bw_curve = false;
    let mut flow_bench_flag = false;
    let mut bench_out: Option<String> = None;
    let mut congestion_report = false;
    let mut metrics_out: Option<String> = None;
    let mut sim_bench_flag = false;
    let mut sim_floor: f64 = 0.0;
    let mut rank_sweep_flag = false;
    let mut sweep_budget_ms: u64 = 60_000;
    let mut sweep_floor: f64 = 0.0;
    let mut coll_curve_flag = false;
    let mut stall_demo = false;
    let mut flight_out: Option<String> = None;
    let mut critpath = false;
    let mut critpath_out: Option<String> = None;
    let mut timeline_flag = false;
    let mut timeline_out: Option<String> = None;
    let mut list_introspect = false;
    let mut selected: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--csv" => csv = true,
            "--md" => md = true,
            "--emit-metrics" => emit_metrics = true,
            "--trace-out" => {
                trace_out = args.next();
                if trace_out.is_none() {
                    eprintln!("--trace-out needs a file path");
                    std::process::exit(2);
                }
            }
            "--introspect-out" => {
                introspect_out = args.next();
                if introspect_out.is_none() {
                    eprintln!("--introspect-out needs a file path");
                    std::process::exit(2);
                }
            }
            "--watchdog" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => watchdog = n,
                None => {
                    eprintln!("--watchdog needs an interval in progress ticks");
                    std::process::exit(2);
                }
            },
            "--loss" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => loss = n,
                None => {
                    eprintln!("--loss needs a frame count");
                    std::process::exit(2);
                }
            },
            "--reg-bench" => reg_bench = true,
            "--bw-curve" => bw_curve = true,
            "--flow-bench" => flow_bench_flag = true,
            "--congestion-report" => congestion_report = true,
            "--sim-bench" => sim_bench_flag = true,
            "--sim-floor" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => sim_floor = n,
                None => {
                    eprintln!("--sim-floor needs an events/s number");
                    std::process::exit(2);
                }
            },
            "--rank-sweep" => rank_sweep_flag = true,
            "--sweep-floor" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => sweep_floor = n,
                None => {
                    eprintln!("--sweep-floor needs an events/s number");
                    std::process::exit(2);
                }
            },
            "--coll-curve" => coll_curve_flag = true,
            "--sweep-budget-ms" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => sweep_budget_ms = n,
                None => {
                    eprintln!("--sweep-budget-ms needs a millisecond count");
                    std::process::exit(2);
                }
            },
            "--stall-demo" => stall_demo = true,
            "--critpath" => critpath = true,
            "--timeline" => timeline_flag = true,
            "--list-introspect" => list_introspect = true,
            "--critpath-out" => {
                critpath_out = args.next();
                if critpath_out.is_none() {
                    eprintln!("--critpath-out needs a file path");
                    std::process::exit(2);
                }
            }
            "--timeline-out" => {
                timeline_out = args.next();
                if timeline_out.is_none() {
                    eprintln!("--timeline-out needs a file path");
                    std::process::exit(2);
                }
            }
            "--metrics-out" => {
                metrics_out = args.next();
                if metrics_out.is_none() {
                    eprintln!("--metrics-out needs a file path");
                    std::process::exit(2);
                }
            }
            "--flight-out" => {
                flight_out = args.next();
                if flight_out.is_none() {
                    eprintln!("--flight-out needs a file path");
                    std::process::exit(2);
                }
            }
            "--bench-out" => {
                bench_out = args.next();
                if bench_out.is_none() {
                    eprintln!("--bench-out needs a file path");
                    std::process::exit(2);
                }
            }
            _ if a.starts_with("--") => {
                eprintln!("unknown flag `{a}`");
                std::process::exit(2);
            }
            _ => selected.push(a),
        }
    }
    let selected: Vec<&str> = selected.iter().map(|s| s.as_str()).collect();

    if selected.is_empty()
        && !emit_metrics
        && introspect_out.is_none()
        && !reg_bench
        && !bw_curve
        && !flow_bench_flag
        && !congestion_report
        && !sim_bench_flag
        && !rank_sweep_flag
        && !coll_curve_flag
        && !stall_demo
        && !critpath
        && !timeline_flag
        && !list_introspect
    {
        eprintln!(
            "usage: harness [--csv|--md] [--emit-metrics] [--trace-out FILE] \
             [--introspect-out FILE] [--watchdog N] [--loss N] \
             [--reg-bench] [--bw-curve] [--flow-bench] [--bench-out FILE] \
             [--congestion-report] [--metrics-out FILE] \
             [--sim-bench] [--sim-floor EVENTS_PER_SEC] \
             [--rank-sweep] [--sweep-budget-ms N] [--sweep-floor EVENTS_PER_SEC] \
             [--coll-curve] \
             [--stall-demo] [--flight-out FILE] \
             [--critpath] [--critpath-out FILE] \
             [--timeline] [--timeline-out FILE] [--list-introspect] \
             <experiment>... | all | paper | compare"
        );
        eprintln!("experiments:");
        for (name, _) in EXPERIMENTS {
            eprintln!("  {name}");
        }
        std::process::exit(2);
    }

    if selected == ["compare"] {
        let anchors = ompi_bench::compare::anchors();
        print!("{}", ompi_bench::compare::render(&anchors));
        return;
    }

    let run_list: Vec<&str> = if selected == ["all"] {
        EXPERIMENTS.iter().map(|(n, _)| *n).collect()
    } else if selected == ["paper"] {
        // Only the experiments that appear in the paper's evaluation.
        vec![
            "fig7a", "fig7b", "fig8", "fig9", "table1", "fig10a", "fig10b", "fig10c", "fig10d",
        ]
    } else {
        selected
    };

    for name in run_list {
        let Some((_, f)) = EXPERIMENTS.iter().find(|(n, _)| *n == name) else {
            eprintln!("unknown experiment `{name}`");
            std::process::exit(2);
        };
        let start = std::time::Instant::now();
        let table = f();
        if csv {
            println!("# {}", table.title);
            print!("{}", table.to_csv());
        } else if md {
            println!("### {}", table.title);
            print!("{}", table.to_markdown());
        } else {
            table.print();
        }
        eprintln!("[{name} regenerated in {:.1?} wall time]", start.elapsed());
    }

    // Documents destined for `--metrics-out`, keyed by section name.
    let mut metrics_docs: Vec<(&str, String)> = Vec::new();

    if emit_metrics || introspect_out.is_some() {
        use ompi_bench::measure::{
            introspect_pingpong, reliability_pingpong, telemetry_pingpong, Setup,
        };
        use openmpi_core::StackConfig;
        let start = std::time::Instant::now();
        // 4 ranks, 16 KiB messages: well past the eager limit, so the
        // rendezvous histograms and RDMA counters all light up.
        let setup = Setup::paper(StackConfig::default());
        let telemetry = match introspect_out {
            Some(path) => {
                // One run feeds both documents, so pvar and metric totals
                // agree exactly.
                let (telemetry, introspect) = introspect_pingpong(&setup, 4, 16 << 10, 8, watchdog);
                std::fs::write(&path, introspect.to_json())
                    .unwrap_or_else(|e| panic!("writing {path}: {e}"));
                eprintln!(
                    "[introspection written to {path}: {} stalls, straggler {:?}]",
                    introspect.stalls, introspect.cluster.straggler
                );
                telemetry
            }
            None if loss > 0 => {
                let telemetry = reliability_pingpong(&setup, 64 << 10, loss);
                let healed: u64 = telemetry
                    .per_rank
                    .iter()
                    .map(|m| m.counters.retransmits)
                    .sum();
                eprintln!(
                    "[reliability demo: {loss} FIN_ACK frame(s) dropped, \
                     {healed} retransmission(s) healed the loss]"
                );
                telemetry
            }
            None => telemetry_pingpong(&setup, 4, 16 << 10, 8),
        };
        // A non-zero drop count means the timeline is missing its oldest
        // events — surfaced loudly instead of silently truncating.
        for (rank, log) in &telemetry.traces {
            if log.dropped() > 0 {
                eprintln!(
                    "[warning: rank {rank} trace ring dropped {} event(s); \
                     raise telemetry.trace_capacity for a complete timeline]",
                    log.dropped()
                );
            }
        }
        let json = telemetry.to_json();
        if emit_metrics {
            println!("{json}");
        }
        metrics_docs.push(("telemetry", json));
        if let Some(path) = trace_out {
            std::fs::write(&path, telemetry.chrome_trace())
                .unwrap_or_else(|e| panic!("writing {path}: {e}"));
            eprintln!("[chrome trace written to {path}]");
        }
        eprintln!("[telemetry captured in {:.1?} wall time]", start.elapsed());
    }

    if congestion_report {
        use ompi_bench::measure::{incast_congestion, Setup};
        use openmpi_core::StackConfig;
        let start = std::time::Instant::now();
        // 8 ranks on the default QS-8A fat tree: ranks 1..8 flood rank 0
        // with eager-sized messages, so every sender's traffic funnels into
        // one ejection link — the congestion the report must name.
        let capture = incast_congestion(&Setup::paper(StackConfig::default()), 8, 1 << 10, 32, 16);
        print!("{}", capture.congestion.render());
        let json = capture.to_json();
        println!("{json}");
        eprintln!(
            "[congestion: hot rank {} via link {}, {} active link(s), \
             in {:.1?} wall time]",
            capture.hot_rank,
            capture.hot_link().unwrap_or_else(|| "none".to_string()),
            capture.congestion.links_active,
            start.elapsed()
        );
        metrics_docs.push(("congestion", json));
        if capture.congestion.links.is_empty() {
            eprintln!("congestion-report FAILED: empty link table");
            std::process::exit(1);
        }
    }

    if sim_bench_flag {
        use ompi_bench::measure::{sim_bench, Setup};
        use openmpi_core::StackConfig;
        let start = std::time::Instant::now();
        // Fixed reference workload: the event count is deterministic, so
        // events/s tracks only the kernel's wall-clock speed.
        let report = sim_bench(&Setup::paper(StackConfig::default()), 8, 16 << 10, 16);
        let json = report.to_json();
        println!("{json}");
        if let Some(path) = &bench_out {
            std::fs::write(path, &json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
            eprintln!("[simulator profile written to {path}]");
        }
        eprintln!(
            "[sim-bench: {} events ({} calls, {} wakes, {} stale) at \
             {:.0} events/s, determinism {}, in {:.1?} wall time]",
            report.report.events_processed,
            report.report.calls_executed,
            report.report.wakes_executed,
            report.report.stale_wakes,
            report.report.events_per_sec(),
            if report.determinism_ok {
                "ok"
            } else {
                "BROKEN"
            },
            start.elapsed()
        );
        if report.report.events_processed == 0 || report.report.wall_ns == 0 {
            eprintln!("sim-bench FAILED: kernel profile came up empty");
            std::process::exit(1);
        }
        if !report.determinism_ok {
            eprintln!(
                "sim-bench FAILED: schedule fingerprints diverged across \
                 repeat runs / queue implementations"
            );
            std::process::exit(1);
        }
        if sim_floor > 0.0 && report.report.events_per_sec() < sim_floor {
            eprintln!(
                "sim-bench FAILED: {:.0} events/s is below the floor of {:.0}",
                report.report.events_per_sec(),
                sim_floor
            );
            std::process::exit(1);
        }
    }

    if rank_sweep_flag {
        use ompi_bench::measure::{rank_sweep, Setup};
        use openmpi_core::StackConfig;
        let start = std::time::Instant::now();
        // Scaling sweep up to a 1024-rank collective: 4 barrier rounds per
        // world size, the whole sweep budgeted in wall clock.
        let report = rank_sweep(
            &Setup::paper(StackConfig::default()),
            &[64, 256, 1024],
            4,
            sweep_budget_ms,
        );
        let json = report.to_json();
        println!("{json}");
        if let Some(path) = &bench_out {
            std::fs::write(path, &json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
            eprintln!("[rank sweep written to {path}]");
        }
        for p in &report.points {
            eprintln!(
                "[rank-sweep: {} ranks, {} events in {:.1} ms wall \
                 ({:.0} events/s)]",
                p.ranks,
                p.report.events_processed,
                p.report.wall_ns as f64 / 1e6,
                p.report.events_per_sec()
            );
        }
        eprintln!(
            "[rank-sweep: total {:.1} ms against a {} ms budget, in {:.1?}]",
            report.total_wall_ms,
            report.budget_ms,
            start.elapsed()
        );
        if report.points.iter().any(|p| p.report.events_processed == 0) {
            eprintln!("rank-sweep FAILED: a point came up empty");
            std::process::exit(1);
        }
        if !report.within_budget() {
            eprintln!(
                "rank-sweep FAILED: {:.1} ms exceeds the {} ms wall budget",
                report.total_wall_ms, report.budget_ms
            );
            std::process::exit(1);
        }
        if sweep_floor > 0.0 {
            // Per-point throughput floor: the 1024-rank point is the
            // binding one — smaller worlds only run faster.
            let mut failed = false;
            for p in &report.points {
                if p.report.events_per_sec() < sweep_floor {
                    eprintln!(
                        "rank-sweep FAILED: {} ranks ran at {:.0} events/s, \
                         below the floor of {:.0}",
                        p.ranks,
                        p.report.events_per_sec(),
                        sweep_floor
                    );
                    failed = true;
                }
            }
            if failed {
                std::process::exit(1);
            }
        }
    }

    if coll_curve_flag {
        use ompi_bench::measure::{coll_curve, Setup};
        use openmpi_core::StackConfig;
        let start = std::time::Instant::now();
        // Barrier / bcast / allreduce at growing world sizes, 512-byte
        // payloads (inside the NIC event-program ceiling), each timed
        // host-driven and NIC-offloaded on an identical fabric.
        let report = coll_curve(
            &Setup::paper(StackConfig::default()),
            &[64, 256, 1024],
            512,
            8,
        );
        let json = report.to_json();
        println!("{json}");
        if let Some(path) = &bench_out {
            std::fs::write(path, &json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
            eprintln!("[collective curve written to {path}]");
        }
        for p in &report.points {
            eprintln!(
                "[coll-curve: {} ranks {:>9}: host {:.1}us, nic {:.1}us ({:.2}x)]",
                p.ranks,
                p.coll,
                p.host_us,
                p.nic_us,
                p.speedup()
            );
        }
        eprintln!(
            "[coll-curve: 18 cells in {:.1?} wall time]",
            start.elapsed()
        );
        // The gate: once the tree is deep enough that host wakeups dominate
        // — 256 ranks and up — the NIC-resident program must win outright
        // for every collective.
        let mut failed = false;
        for ranks in [256usize, 1024] {
            for coll in ["barrier", "bcast", "allreduce"] {
                let p = report
                    .point(ranks, coll)
                    .expect("gate cells are on the measured grid");
                if p.nic_us >= p.host_us {
                    eprintln!(
                        "coll-curve FAILED: NIC-offloaded {coll} ({:.1}us) not \
                         faster than host-driven ({:.1}us) at {ranks} ranks",
                        p.nic_us, p.host_us
                    );
                    failed = true;
                }
            }
        }
        if failed {
            std::process::exit(1);
        }
    }

    if stall_demo {
        use ompi_bench::measure::stall_flight_demo;
        let start = std::time::Instant::now();
        eprintln!(
            "[stall-demo: forcing a rendezvous stall — the panic below is \
             the watchdog firing, not a harness bug]"
        );
        let demo = stall_flight_demo();
        let json = demo.to_json();
        println!("{json}");
        if let Some(path) = &flight_out {
            std::fs::write(path, &json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
            eprintln!("[flight-recorder post-mortem written to {path}]");
        }
        eprintln!(
            "[stall-demo: {} diagnostic(s), {} flight dump(s), in {:.1?} wall time]",
            demo.diagnostics.len(),
            demo.flight_dumps.len(),
            start.elapsed()
        );
        if demo.flight_dumps.is_empty() {
            eprintln!("stall-demo FAILED: no flight-recorder dump produced");
            std::process::exit(1);
        }
    }

    if critpath {
        use ompi_bench::measure::{critpath_pingpong, Setup};
        use openmpi_core::StackConfig;
        let start = std::time::Instant::now();
        // 1 MiB messages: past the pipeline floor, so each send runs the
        // full chunked rendezvous whose stages the report decomposes.
        let capture = critpath_pingpong(&Setup::paper(StackConfig::default()), 1 << 20, 4);
        print!("{}", capture.report.render());
        let json = capture.to_json();
        println!("{json}");
        if let Some(path) = &critpath_out {
            std::fs::write(path, &json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
            eprintln!("[critical-path report written to {path}]");
        }
        metrics_docs.push(("critpath", json));
        eprintln!(
            "[critpath: {} message(s) decomposed across {} size bucket(s), \
             in {:.1?} wall time]",
            capture.report.msgs.len(),
            capture.report.buckets.len(),
            start.elapsed()
        );
        // The gates: a 1 MiB rendezvous must decompose into at least four
        // named stages that reconcile with the measured total, and the
        // merged Chrome trace must link the two ranks with flow arrows.
        let mut failed = false;
        let big: Vec<_> = capture
            .report
            .msgs
            .iter()
            .filter(|m| !m.eager && m.len == 1 << 20)
            .collect();
        if big.is_empty() {
            eprintln!("critpath FAILED: no 1 MiB rendezvous message in the report");
            failed = true;
        }
        for m in &big {
            let nonzero = m.stages.iter().filter(|(_, ns)| *ns > 0).count();
            if nonzero < 4 {
                eprintln!(
                    "critpath FAILED: gid {:#x} decomposed into only {nonzero} \
                     nonzero stage(s): {:?}",
                    m.gid, m.stages
                );
                failed = true;
            }
            let sum = m.stage_sum_ns();
            if (sum.abs_diff(m.total_ns)) * 20 > m.total_ns {
                eprintln!(
                    "critpath FAILED: gid {:#x} stages sum to {sum}ns, \
                     total is {}ns (off by more than 5%)",
                    m.gid, m.total_ns
                );
                failed = true;
            }
        }
        let chrome = capture.chrome_trace();
        if !chrome.contains("\"ph\":\"s\"") || !chrome.contains("\"ph\":\"f\"") {
            eprintln!("critpath FAILED: merged Chrome trace has no cross-rank flow events");
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
    }

    if timeline_flag {
        use ompi_bench::measure::{timeline_incast, Setup};
        use openmpi_core::StackConfig;
        let start = std::time::Instant::now();
        // 8 ranks, eager-sized messages: the senders flood without waiting
        // for a handshake, so every packet converges on rank 0's ejection
        // link at once and the periodic sampler sees its queue depth ramp
        // while the incast is in full swing.
        let capture = timeline_incast(&Setup::paper(StackConfig::default()), 8, 1 << 10, 32);
        let json = capture.to_json();
        println!("{json}");
        if let Some(path) = &timeline_out {
            std::fs::write(path, &json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
            eprintln!("[timeline written to {path}]");
        }
        metrics_docs.push(("timeline", json));
        let victim = capture.victim_samples();
        eprintln!(
            "[timeline: {} sample(s) on the victim, peak ej queue {}, \
             in {:.1?} wall time]",
            victim.len(),
            capture.victim_max_ej_queue(),
            start.elapsed()
        );
        if victim.is_empty() {
            eprintln!("timeline FAILED: sampler produced no samples on the victim");
            std::process::exit(1);
        }
        if capture.victim_max_ej_queue() < 2 {
            eprintln!(
                "timeline FAILED: victim ejection queue never exceeded 1 \
                 (no congestion ramp visible)"
            );
            std::process::exit(1);
        }
    }

    if list_introspect {
        use ompi_bench::measure::{introspect_registry, Setup};
        use openmpi_core::StackConfig;
        // A 1-rank world is enough: the registry is per-endpoint and the
        // values reported are the live ones after config application.
        let json = introspect_registry(&Setup::paper(StackConfig::default()));
        println!("{json}");
        if !json.contains("\"cvars\":[{") || !json.contains("\"pvars\":[{") {
            eprintln!("list-introspect FAILED: registry dump came up empty");
            std::process::exit(1);
        }
    }

    if bw_curve {
        use ompi_bench::measure::{bw_curve, Setup};
        use openmpi_core::{StackConfig, Transports};
        let start = std::time::Instant::now();
        // Rendezvous-sized messages from just below the pipeline floor up
        // to multi-megabyte streams. Window 1: each message's registration
        // sits on the critical path, which is what the pipeline attacks.
        // Two rails: Open MPI stripes across both (pipelined chunks
        // round-robin, the monolithic path splits per-rail) while the
        // MPICH-QsNet Tport rides one rail, so the Open MPI series
        // overtake the baseline once striping outweighs their per-message
        // registration cost — the crossover the curve reports.
        let sizes: &[usize] = &[
            16 << 10,
            32 << 10,
            64 << 10,
            128 << 10,
            256 << 10,
            512 << 10,
            1 << 20,
            2 << 20,
            4 << 20,
        ];
        let setup = Setup {
            nic: elan4::NicConfig::default(),
            fabric: qsnet::FabricConfig {
                rails: 2,
                ..Default::default()
            },
            stack: StackConfig::default(),
            transports: Transports {
                elan_rails: 2,
                tcp: false,
            },
        };
        let report = bw_curve(&setup, sizes, 1, 8);
        let json = report.to_json();
        println!("{json}");
        if let Some(path) = &bench_out {
            std::fs::write(path, &json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
            eprintln!("[bandwidth curve written to {path}]");
        }
        eprintln!(
            "[bw-curve: crossover vs mpich at {:?} pipelined / {:?} monolithic, \
             in {:.1?} wall time]",
            report.crossover(true),
            report.crossover(false),
            start.elapsed()
        );
        // The gate: with registration charged, chunking must win once the
        // map cost is large enough to hide — 256 KiB and up.
        let mut failed = false;
        for gate_len in [256 << 10, 1 << 20] {
            let p = report
                .point(gate_len)
                .expect("gate sizes are on the measured grid");
            if p.pipelined <= p.monolithic {
                eprintln!(
                    "bw-curve FAILED: pipelined ({:.1} MB/s) not faster than \
                     monolithic ({:.1} MB/s) at {} bytes",
                    p.pipelined, p.monolithic, p.len
                );
                failed = true;
            }
        }
        if failed {
            std::process::exit(1);
        }
    }

    if flow_bench_flag {
        use ompi_bench::measure::{flow_bench, Setup};
        use openmpi_core::StackConfig;
        let start = std::time::Instant::now();
        // Three congestion scenarios with flow control off and on, plus the
        // uncongested ping-pong pricing the credit machinery's overhead.
        let report = flow_bench(&Setup::paper(StackConfig::default()));
        let json = report.to_json();
        println!("{json}");
        if let Some(path) = &bench_out {
            std::fs::write(path, &json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
            eprintln!("[flow benchmark written to {path}]");
        }
        eprintln!(
            "[flow-bench: incast {:.0}us (off) vs {:.0}us (on), victim ej peak \
             {} -> {}, pool fallbacks {} -> {}, pingpong ratio {:.3}, \
             in {:.1?} wall time]",
            report.incast.0.completion_ns as f64 / 1_000.0,
            report.incast.1.completion_ns as f64 / 1_000.0,
            report.incast.0.victim_ej_queue_peak,
            report.incast.1.victim_ej_queue_peak,
            report.incast.0.pool_fallbacks,
            report.incast.1.pool_fallbacks,
            report.pingpong_ratio(),
            start.elapsed()
        );
        // The gates: flow-on must pay for itself under congestion and cost
        // nothing measurable without it.
        let mut failed = false;
        if report.incast.1.completion_ns >= report.incast.0.completion_ns {
            eprintln!(
                "flow-bench FAILED: flow-on incast ({}ns) not faster than \
                 flow-off ({}ns)",
                report.incast.1.completion_ns, report.incast.0.completion_ns
            );
            failed = true;
        }
        if report.incast.1.victim_ej_queue_peak >= report.incast.0.victim_ej_queue_peak {
            eprintln!(
                "flow-bench FAILED: flow-on victim ejection peak ({}) not below \
                 flow-off ({})",
                report.incast.1.victim_ej_queue_peak, report.incast.0.victim_ej_queue_peak
            );
            failed = true;
        }
        if report.pingpong_ratio() > 1.05 {
            eprintln!(
                "flow-bench FAILED: flow-on ping-pong ({:.3}us) regresses \
                 flow-off ({:.3}us) by more than 5%",
                report.pingpong_on_us, report.pingpong_off_us
            );
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
    }

    if reg_bench {
        use ompi_bench::measure::{reg_cache_compare, Setup};
        use openmpi_core::StackConfig;
        let start = std::time::Instant::now();
        // 64 KiB messages, well past the eager limit, reusing the same
        // buffers every round — the workload the pin-down cache targets.
        let report = reg_cache_compare(&Setup::paper(StackConfig::default()), 64 << 10, 16);
        let json = report.to_json();
        println!("{json}");
        if let Some(path) = bench_out {
            std::fs::write(&path, &json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
            eprintln!("[registration benchmark written to {path}]");
        }
        eprintln!(
            "[reg-bench: {:.3}us (cache off) vs {:.3}us (cache on), {:.2}x, \
             {} hits, in {:.1?} wall time]",
            report.off.latency_us,
            report.on.latency_us,
            report.speedup(),
            report.on.stats.hits,
            start.elapsed()
        );
        if report.on.latency_us >= report.off.latency_us {
            eprintln!("reg-bench FAILED: cache-on latency is not strictly lower");
            std::process::exit(1);
        }
        if report.on.stats.hits == 0 {
            eprintln!("reg-bench FAILED: cache reported zero hits");
            std::process::exit(1);
        }
    }

    if let Some(path) = metrics_out {
        let body: Vec<String> = metrics_docs
            .iter()
            .map(|(k, v)| format!("\"{k}\":{v}"))
            .collect();
        std::fs::write(&path, format!("{{{}}}", body.join(",")))
            .unwrap_or_else(|e| panic!("writing {path}: {e}"));
        eprintln!(
            "[{} metrics section(s) written to {path}]",
            metrics_docs.len()
        );
    }
}
