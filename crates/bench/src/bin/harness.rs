//! Experiment harness: regenerate the paper's tables and figures.
//!
//! ```text
//! cargo run --release -p ompi-bench --bin harness -- <experiment>...
//! cargo run --release -p ompi-bench --bin harness -- all
//! cargo run --release -p ompi-bench --bin harness -- fig10a --csv
//! cargo run --release -p ompi-bench --bin harness -- --emit-metrics --trace-out trace.json
//! ```
//!
//! `--emit-metrics` runs an instrumented 4-rank ping-pong after any selected
//! experiments and prints the telemetry snapshot (per-endpoint counters,
//! latency histograms, PTL traffic, simulator profile) as JSON on stdout.
//! `--trace-out FILE` additionally writes the per-rank Chrome trace-event
//! timeline, loadable in `chrome://tracing` or Perfetto.
//! `--introspect-out FILE` arms the progress watchdog, runs the same
//! instrumented ping-pong with the introspection plane active, and writes
//! the cluster-wide pvar aggregation (min/max/sum per variable, straggler
//! rank, stall diagnostics) as JSON; `--watchdog N` tunes the scan interval
//! in progress ticks (default 64). With `--emit-metrics` too, both documents
//! come from the same run, so their totals agree exactly.
//! `--loss N` switches the instrumented run to a TCP-only rendezvous
//! ping-pong with N FIN_ACK control frames dropped off the wire: the
//! emitted metrics then show the reliability layer absorbing the loss
//! (`retransmits` == N, `gave_up` == 0) with the run completing normally.
//! `--reg-bench` runs the repeated-buffer rendezvous benchmark with the
//! registration cache off and on, prints the before/after JSON, and exits
//! nonzero unless the cached run is strictly faster with nonzero hits;
//! `--bench-out FILE` writes the same JSON to a file.
//! `--bw-curve` measures streaming bandwidth across message sizes three
//! ways — Open MPI with the chunked-RDMA pipeline, Open MPI forced onto
//! the monolithic single-RDMA path, and MPICH-QsNet — with the
//! registration cache off, prints the curve JSON (with the ompi-vs-mpich
//! crossover size for both series), and exits nonzero unless the pipelined
//! series is strictly faster at 256 KiB and 1 MiB; `--bench-out FILE`
//! writes the same JSON to a file.

use ompi_bench::{
    apps_scaling, coll_bcast, fig10a, fig10b, fig10c, fig10d, fig7a, fig7b, fig8, fig9, io_scaling,
    multinet, multirail, onesided, overlap, scale, sweep_irq_cost, sweep_rndv_threshold, table1,
    Table,
};

#[allow(clippy::type_complexity)]
const EXPERIMENTS: &[(&str, fn() -> Table)] = &[
    ("fig7a", fig7a as fn() -> Table),
    ("fig7b", fig7b),
    ("fig8", fig8),
    ("fig9", fig9),
    ("table1", table1),
    ("fig10a", fig10a),
    ("fig10b", fig10b),
    ("fig10c", fig10c),
    ("fig10d", fig10d),
    ("multirail", multirail),
    ("multinet", multinet),
    ("coll-bcast", coll_bcast),
    ("onesided", onesided),
    ("apps", apps_scaling),
    ("overlap", overlap),
    ("scale", scale),
    ("io", io_scaling),
    ("sweep-rndv", sweep_rndv_threshold),
    ("sweep-irq", sweep_irq_cost),
];

fn main() {
    let mut csv = false;
    let mut md = false;
    let mut emit_metrics = false;
    let mut trace_out: Option<String> = None;
    let mut introspect_out: Option<String> = None;
    let mut watchdog: u64 = 64;
    let mut loss: u64 = 0;
    let mut reg_bench = false;
    let mut bw_curve = false;
    let mut bench_out: Option<String> = None;
    let mut selected: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--csv" => csv = true,
            "--md" => md = true,
            "--emit-metrics" => emit_metrics = true,
            "--trace-out" => {
                trace_out = args.next();
                if trace_out.is_none() {
                    eprintln!("--trace-out needs a file path");
                    std::process::exit(2);
                }
            }
            "--introspect-out" => {
                introspect_out = args.next();
                if introspect_out.is_none() {
                    eprintln!("--introspect-out needs a file path");
                    std::process::exit(2);
                }
            }
            "--watchdog" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => watchdog = n,
                None => {
                    eprintln!("--watchdog needs an interval in progress ticks");
                    std::process::exit(2);
                }
            },
            "--loss" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => loss = n,
                None => {
                    eprintln!("--loss needs a frame count");
                    std::process::exit(2);
                }
            },
            "--reg-bench" => reg_bench = true,
            "--bw-curve" => bw_curve = true,
            "--bench-out" => {
                bench_out = args.next();
                if bench_out.is_none() {
                    eprintln!("--bench-out needs a file path");
                    std::process::exit(2);
                }
            }
            _ if a.starts_with("--") => {
                eprintln!("unknown flag `{a}`");
                std::process::exit(2);
            }
            _ => selected.push(a),
        }
    }
    let selected: Vec<&str> = selected.iter().map(|s| s.as_str()).collect();

    if selected.is_empty() && !emit_metrics && introspect_out.is_none() && !reg_bench && !bw_curve {
        eprintln!(
            "usage: harness [--csv|--md] [--emit-metrics] [--trace-out FILE] \
             [--introspect-out FILE] [--watchdog N] [--loss N] \
             [--reg-bench] [--bw-curve] [--bench-out FILE] \
             <experiment>... | all | paper | compare"
        );
        eprintln!("experiments:");
        for (name, _) in EXPERIMENTS {
            eprintln!("  {name}");
        }
        std::process::exit(2);
    }

    if selected == ["compare"] {
        let anchors = ompi_bench::compare::anchors();
        print!("{}", ompi_bench::compare::render(&anchors));
        return;
    }

    let run_list: Vec<&str> = if selected == ["all"] {
        EXPERIMENTS.iter().map(|(n, _)| *n).collect()
    } else if selected == ["paper"] {
        // Only the experiments that appear in the paper's evaluation.
        vec![
            "fig7a", "fig7b", "fig8", "fig9", "table1", "fig10a", "fig10b", "fig10c", "fig10d",
        ]
    } else {
        selected
    };

    for name in run_list {
        let Some((_, f)) = EXPERIMENTS.iter().find(|(n, _)| *n == name) else {
            eprintln!("unknown experiment `{name}`");
            std::process::exit(2);
        };
        let start = std::time::Instant::now();
        let table = f();
        if csv {
            println!("# {}", table.title);
            print!("{}", table.to_csv());
        } else if md {
            println!("### {}", table.title);
            print!("{}", table.to_markdown());
        } else {
            table.print();
        }
        eprintln!("[{name} regenerated in {:.1?} wall time]", start.elapsed());
    }

    if emit_metrics || introspect_out.is_some() {
        use ompi_bench::measure::{
            introspect_pingpong, reliability_pingpong, telemetry_pingpong, Setup,
        };
        use openmpi_core::StackConfig;
        let start = std::time::Instant::now();
        // 4 ranks, 16 KiB messages: well past the eager limit, so the
        // rendezvous histograms and RDMA counters all light up.
        let setup = Setup::paper(StackConfig::default());
        let telemetry = match introspect_out {
            Some(path) => {
                // One run feeds both documents, so pvar and metric totals
                // agree exactly.
                let (telemetry, introspect) = introspect_pingpong(&setup, 4, 16 << 10, 8, watchdog);
                std::fs::write(&path, introspect.to_json())
                    .unwrap_or_else(|e| panic!("writing {path}: {e}"));
                eprintln!(
                    "[introspection written to {path}: {} stalls, straggler {:?}]",
                    introspect.stalls, introspect.cluster.straggler
                );
                telemetry
            }
            None if loss > 0 => {
                let telemetry = reliability_pingpong(&setup, 64 << 10, loss);
                let healed: u64 = telemetry
                    .per_rank
                    .iter()
                    .map(|m| m.counters.retransmits)
                    .sum();
                eprintln!(
                    "[reliability demo: {loss} FIN_ACK frame(s) dropped, \
                     {healed} retransmission(s) healed the loss]"
                );
                telemetry
            }
            None => telemetry_pingpong(&setup, 4, 16 << 10, 8),
        };
        if emit_metrics {
            println!("{}", telemetry.to_json());
        }
        if let Some(path) = trace_out {
            std::fs::write(&path, telemetry.chrome_trace())
                .unwrap_or_else(|e| panic!("writing {path}: {e}"));
            eprintln!("[chrome trace written to {path}]");
        }
        eprintln!("[telemetry captured in {:.1?} wall time]", start.elapsed());
    }

    if bw_curve {
        use ompi_bench::measure::{bw_curve, Setup};
        use openmpi_core::{StackConfig, Transports};
        let start = std::time::Instant::now();
        // Rendezvous-sized messages from just below the pipeline floor up
        // to multi-megabyte streams. Window 1: each message's registration
        // sits on the critical path, which is what the pipeline attacks.
        // Two rails: Open MPI stripes across both (pipelined chunks
        // round-robin, the monolithic path splits per-rail) while the
        // MPICH-QsNet Tport rides one rail, so the Open MPI series
        // overtake the baseline once striping outweighs their per-message
        // registration cost — the crossover the curve reports.
        let sizes: &[usize] = &[
            16 << 10,
            32 << 10,
            64 << 10,
            128 << 10,
            256 << 10,
            512 << 10,
            1 << 20,
            2 << 20,
            4 << 20,
        ];
        let setup = Setup {
            nic: elan4::NicConfig::default(),
            fabric: qsnet::FabricConfig {
                rails: 2,
                ..Default::default()
            },
            stack: StackConfig::default(),
            transports: Transports {
                elan_rails: 2,
                tcp: false,
            },
        };
        let report = bw_curve(&setup, sizes, 1, 8);
        let json = report.to_json();
        println!("{json}");
        if let Some(path) = &bench_out {
            std::fs::write(path, &json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
            eprintln!("[bandwidth curve written to {path}]");
        }
        eprintln!(
            "[bw-curve: crossover vs mpich at {:?} pipelined / {:?} monolithic, \
             in {:.1?} wall time]",
            report.crossover(true),
            report.crossover(false),
            start.elapsed()
        );
        // The gate: with registration charged, chunking must win once the
        // map cost is large enough to hide — 256 KiB and up.
        let mut failed = false;
        for gate_len in [256 << 10, 1 << 20] {
            let p = report
                .point(gate_len)
                .expect("gate sizes are on the measured grid");
            if p.pipelined <= p.monolithic {
                eprintln!(
                    "bw-curve FAILED: pipelined ({:.1} MB/s) not faster than \
                     monolithic ({:.1} MB/s) at {} bytes",
                    p.pipelined, p.monolithic, p.len
                );
                failed = true;
            }
        }
        if failed {
            std::process::exit(1);
        }
    }

    if reg_bench {
        use ompi_bench::measure::{reg_cache_compare, Setup};
        use openmpi_core::StackConfig;
        let start = std::time::Instant::now();
        // 64 KiB messages, well past the eager limit, reusing the same
        // buffers every round — the workload the pin-down cache targets.
        let report = reg_cache_compare(&Setup::paper(StackConfig::default()), 64 << 10, 16);
        let json = report.to_json();
        println!("{json}");
        if let Some(path) = bench_out {
            std::fs::write(&path, &json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
            eprintln!("[registration benchmark written to {path}]");
        }
        eprintln!(
            "[reg-bench: {:.3}us (cache off) vs {:.3}us (cache on), {:.2}x, \
             {} hits, in {:.1?} wall time]",
            report.off.latency_us,
            report.on.latency_us,
            report.speedup(),
            report.on.stats.hits,
            start.elapsed()
        );
        if report.on.latency_us >= report.off.latency_us {
            eprintln!("reg-bench FAILED: cache-on latency is not strictly lower");
            std::process::exit(1);
        }
        if report.on.stats.hits == 0 {
            eprintln!("reg-bench FAILED: cache reported zero hits");
            std::process::exit(1);
        }
    }
}
